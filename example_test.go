package lognic_test

import (
	"fmt"
	"log"

	"lognic"
)

// buildExample constructs the model used by the runnable examples: an
// 8-core echo server behind a 50 Gbps interconnect, offered 12 Gbps of
// MTU traffic.
func buildExample() lognic.Model {
	g, err := lognic.NewBuilder("udp-echo").
		AddIngress("rx").
		AddIP("nic-cores", 2e9, 8, 64).
		AddEgress("tx").
		Connect("rx", "nic-cores", 1).
		Connect("nic-cores", "tx", 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	return lognic.Model{
		Hardware: lognic.Hardware{InterfaceBW: lognic.Gbps(50).BytesPerSecond()},
		Graph:    g,
		Traffic:  lognic.Traffic{IngressBW: lognic.Gbps(12).BytesPerSecond(), Granularity: 1500},
	}
}

// Estimate a model and read off throughput and bottleneck.
func Example() {
	m := buildExample()
	est, err := m.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("throughput:", lognic.Bandwidth(est.Throughput.Attainable))
	fmt.Println("bottleneck:", est.Throughput.Bottleneck.Kind)
	// Output:
	// throughput: 12Gbps
	// bottleneck: ingress
}

// Saturation analysis ignores the offered load and reports the graph's
// own capacity.
func ExampleModel_saturation() {
	m := buildExample()
	sat, err := m.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity:  ", lognic.Bandwidth(sat.Attainable))
	fmt.Println("limited by:", sat.Bottleneck.Kind, sat.Bottleneck.Name)
	// Output:
	// capacity:   16Gbps
	// limited by: ip-compute nic-cores
}

// The optimizer searches a parameter space; here, a load that meets a
// throughput floor while keeping modeled latency under 20µs.
func ExampleSatisfy() {
	base := buildExample()
	res, err := lognic.Satisfy(lognic.FeasibilityProblem{
		Build: func(x []float64) (lognic.Model, error) {
			m := base
			m.Traffic.IngressBW = x[0]
			return m, nil
		},
		Bounds: lognic.Bounds{Lo: []float64{1e8}, Hi: []float64{1.9e9}},
		Requirements: []lognic.Requirement{
			lognic.ThroughputFloor(1e9),
			lognic.LatencyBound(20e-6),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", res.Feasible)
	fmt.Println("meets floor:", res.X[0] >= 1e9)
	// Output:
	// feasible: true
	// meets floor: true
}

// Extension #3: a rate limiter models a non-work-conserving IP.
func ExampleInsertRateLimiter() {
	m := buildExample()
	g, err := lognic.InsertRateLimiter(m.Graph, "nic-cores", 1e9, 8)
	if err != nil {
		log.Fatal(err)
	}
	m.Graph = g
	sat, err := m.SaturationThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity:", lognic.Bandwidth(sat.Attainable))
	fmt.Println("limited by:", sat.Bottleneck.Name)
	// Output:
	// capacity: 8Gbps
	// limited by: ratelimit:nic-cores
}

// Extension #2: estimate a mixed traffic profile as the dist_size-weighted
// combination of per-size models.
func ExampleEstimateMix() {
	small := buildExample()
	small.Traffic.Granularity = 64
	large := buildExample()
	large.Traffic.Granularity = 1500
	mix, err := lognic.EstimateMix([]lognic.MixComponent{
		{Weight: 0.5, Model: small},
		{Weight: 0.5, Model: large},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mixed throughput:", lognic.Bandwidth(mix.Throughput))
	// Output:
	// mixed throughput: 12Gbps
}
