// Package baselines implements the prior architectural models the paper
// positions LogNIC against (Table 1 / §2.4): the LogCA accelerator model
// and a Gables-style multi-IP SoC Roofline. They exist so the repository
// can *demonstrate* the paper's argument — that execution-flow models
// answer "is offloading this kernel worth it?" but cannot attribute
// SmartNIC data-path bottlenecks or react to traffic profiles — with
// running code rather than prose. The comparisons live in the package
// tests and in BenchmarkAblationLogCA.
package baselines

import (
	"errors"
	"fmt"
	"math"
)

// LogCA is the five-parameter accelerator model of Altaf & Wood (ISCA'17):
// for a kernel of granularity g (bytes offloaded per invocation),
//
//	unaccelerated time  T0(g) = C·g
//	accelerated time    T1(g) = o + L·g + C·g/A
//
// with C the host computation index (seconds per byte), A the peak
// acceleration, o the fixed offload overhead (seconds per invocation) and
// L the communication latency per byte. The Overlapped flag models a
// design that hides communication behind computation (T1's L·g term and
// C·g/A term overlap, taking their max).
type LogCA struct {
	// Compute is C: host seconds per byte.
	Compute float64
	// Acceleration is A: the accelerator's peak speedup over the host.
	Acceleration float64
	// Overhead is o: fixed host seconds per offload invocation.
	Overhead float64
	// Latency is L: communication seconds per byte moved.
	Latency float64
	// Overlapped selects max(L·g, C·g/A) instead of their sum.
	Overlapped bool
}

// Validate checks the parameters.
func (m LogCA) Validate() error {
	if m.Compute <= 0 || math.IsNaN(m.Compute) || math.IsInf(m.Compute, 0) {
		return fmt.Errorf("baselines: invalid computation index %v", m.Compute)
	}
	if m.Acceleration <= 1 {
		return errors.New("baselines: acceleration must exceed 1")
	}
	if m.Overhead < 0 || m.Latency < 0 {
		return errors.New("baselines: negative overhead or latency")
	}
	return nil
}

// HostTime returns T0(g).
func (m LogCA) HostTime(g float64) float64 { return m.Compute * g }

// AcceleratedTime returns T1(g).
func (m LogCA) AcceleratedTime(g float64) float64 {
	comm := m.Latency * g
	comp := m.Compute * g / m.Acceleration
	if m.Overlapped {
		return m.Overhead + math.Max(comm, comp)
	}
	return m.Overhead + comm + comp
}

// Speedup returns T0(g)/T1(g).
func (m LogCA) Speedup(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return m.HostTime(g) / m.AcceleratedTime(g)
}

// BreakEven returns g1, the granularity where offloading starts to pay
// (speedup = 1), and false when the accelerator never breaks even (the
// per-byte communication cost eats the whole computational gain).
func (m LogCA) BreakEven() (float64, bool) {
	// C·g = o + L·g + C·g/A  ⇒  g = o / (C(1−1/A) − L)   (unoverlapped)
	gain := m.Compute * (1 - 1/m.Acceleration)
	if !m.Overlapped {
		den := gain - m.Latency
		if den <= 0 {
			return 0, false
		}
		return m.Overhead / den, true
	}
	// Overlapped: T1 = o + max(L·g, C·g/A). Try both regimes.
	// Communication-hidden regime (C·g/A ≥ L·g):
	if m.Compute/m.Acceleration >= m.Latency {
		if gain <= 0 {
			return 0, false
		}
		return m.Overhead / gain, true
	}
	// Communication-bound regime:
	den := m.Compute - m.Latency
	if den <= 0 {
		return 0, false
	}
	g := m.Overhead / den
	return g, true
}

// AsymptoticSpeedup returns the g→∞ speedup limit: C/(L + C/A)
// (unoverlapped) or C/max(L, C/A) (overlapped).
func (m LogCA) AsymptoticSpeedup() float64 {
	if m.Overlapped {
		return m.Compute / math.Max(m.Latency, m.Compute/m.Acceleration)
	}
	return m.Compute / (m.Latency + m.Compute/m.Acceleration)
}

// GHalf returns g_{A/2}, the granularity achieving half of the asymptotic
// speedup — LogCA's characteristic "how big must offloads be" metric —
// found by bisection.
func (m LogCA) GHalf() (float64, bool) {
	target := m.AsymptoticSpeedup() / 2
	if m.Speedup(1e15) < target {
		return 0, false
	}
	lo, hi := 1e-12, 1e15
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // log-space bisection
		if m.Speedup(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return math.Sqrt(lo * hi), true
}
