package baselines

import (
	"fmt"
	"math"
)

// Gables is a simplified form of the Gables mobile-SoC Roofline (Hill &
// Reddi, HPCA'19): N IPs run concurrently, IP i receiving work fraction
// f_i of the kernel's operations at operational intensity I_i (operations
// per byte of memory traffic), bounded by its peak P_i and by the shared
// DRAM bandwidth B. Attainable performance is limited by the slowest IP
// (they finish together only if perfectly balanced) and by the aggregate
// memory traffic:
//
//	Perf ≤ min_i  min(P_i, I_i·B) / f_i        (per-IP roof on its slice)
//	Perf ≤ B · (Σ_i f_i / I_i)⁻¹               (shared-DRAM roof)
//
// The paper's §2.4 calls Gables "the closest one that might be applicable"
// to SmartNICs but notes it cannot capture an IP's I/O behavior — there is
// no notion of per-packet invocation cost, finite queues, or traffic
// profiles, which is what the comparison tests demonstrate.
type Gables struct {
	// IPs lists the SoC's engines.
	IPs []GablesIP
	// MemoryBW is the shared DRAM bandwidth (bytes/second).
	MemoryBW float64
}

// GablesIP is one engine of the SoC.
type GablesIP struct {
	// Name identifies the engine.
	Name string
	// Peak is the engine's compute roof (operations/second).
	Peak float64
	// Intensity is the kernel's operational intensity on this engine
	// (operations per byte of memory traffic).
	Intensity float64
}

// Validate checks the parameters.
func (m Gables) Validate() error {
	if len(m.IPs) == 0 {
		return fmt.Errorf("baselines: gables needs at least one IP")
	}
	if m.MemoryBW <= 0 {
		return fmt.Errorf("baselines: invalid memory bandwidth %v", m.MemoryBW)
	}
	for _, ip := range m.IPs {
		if ip.Peak <= 0 || ip.Intensity <= 0 {
			return fmt.Errorf("baselines: IP %q needs positive peak and intensity", ip.Name)
		}
	}
	return nil
}

// Attainable returns the performance roof (operations/second) for a work
// split f (fractions per IP, matching len(IPs), summing to ~1), and the
// name of the binding component ("memory" or an IP name).
func (m Gables) Attainable(f []float64) (float64, string, error) {
	if err := m.Validate(); err != nil {
		return 0, "", err
	}
	if len(f) != len(m.IPs) {
		return 0, "", fmt.Errorf("baselines: split has %d entries for %d IPs", len(f), len(m.IPs))
	}
	sum := 0.0
	for _, v := range f {
		if v < 0 {
			return 0, "", fmt.Errorf("baselines: negative work fraction %v", v)
		}
		sum += v
	}
	if sum <= 0 {
		return 0, "", fmt.Errorf("baselines: work fractions sum to zero")
	}
	best := math.Inf(1)
	binding := ""
	memTraffic := 0.0 // bytes per operation, aggregated
	for i, ip := range m.IPs {
		fi := f[i] / sum
		if fi == 0 {
			continue
		}
		roof := math.Min(ip.Peak, ip.Intensity*m.MemoryBW) / fi
		if roof < best {
			best = roof
			binding = ip.Name
		}
		memTraffic += fi / ip.Intensity
	}
	if memTraffic > 0 {
		memRoof := m.MemoryBW / memTraffic
		if memRoof < best {
			best = memRoof
			binding = "memory"
		}
	}
	return best, binding, nil
}

// BestSplit searches (by dense enumeration for two IPs, proportional
// heuristic beyond) for the work split maximizing attainable performance.
func (m Gables) BestSplit() ([]float64, float64, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(m.IPs)
	if n == 1 {
		perf, _, err := m.Attainable([]float64{1})
		return []float64{1}, perf, err
	}
	if n == 2 {
		bestF := []float64{0.5, 0.5}
		bestP := 0.0
		for i := 0; i <= 1000; i++ {
			x := float64(i) / 1000
			p, _, err := m.Attainable([]float64{x, 1 - x})
			if err != nil {
				return nil, 0, err
			}
			if p > bestP {
				bestP = p
				bestF = []float64{x, 1 - x}
			}
		}
		return bestF, bestP, nil
	}
	// Proportional-to-roof heuristic for wider SoCs.
	f := make([]float64, n)
	total := 0.0
	for i, ip := range m.IPs {
		f[i] = math.Min(ip.Peak, ip.Intensity*m.MemoryBW)
		total += f[i]
	}
	for i := range f {
		f[i] /= total
	}
	p, _, err := m.Attainable(f)
	return f, p, err
}
