package baselines

import (
	"math"
	"testing"
	"testing/quick"

	"lognic/internal/apps"
	"lognic/internal/devices"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func md5LogCA() LogCA {
	// A LiquidIO-flavored instance: host (NIC core) hashing at ~0.5 GB/s,
	// engine 10× faster, 1.7µs invocation overhead, CMI moving bytes at
	// 6.25 GB/s.
	return LogCA{
		Compute:      2e-9, // 0.5 GB/s host hashing
		Acceleration: 10,
		Overhead:     1.7e-6,
		Latency:      0.16e-9, // 6.25 GB/s interconnect
	}
}

func TestLogCAValidate(t *testing.T) {
	if err := md5LogCA().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LogCA{
		{Compute: 0, Acceleration: 2},
		{Compute: 1e-9, Acceleration: 1},
		{Compute: 1e-9, Acceleration: 2, Overhead: -1},
		{Compute: 1e-9, Acceleration: 2, Latency: -1},
		{Compute: math.NaN(), Acceleration: 2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLogCASpeedupShape(t *testing.T) {
	m := md5LogCA()
	// Tiny offloads lose (overhead dominates); big ones approach the
	// asymptote from below, monotonically.
	if m.Speedup(64) >= 1 {
		t.Fatalf("64B speedup = %v, should lose to overhead", m.Speedup(64))
	}
	asym := m.AsymptoticSpeedup()
	prev := 0.0
	for _, g := range []float64{64, 256, 1024, 4096, 65536, 1 << 20} {
		s := m.Speedup(g)
		if s < prev {
			t.Fatalf("speedup not monotone at g=%v", g)
		}
		if s > asym+1e-9 {
			t.Fatalf("speedup %v exceeds asymptote %v", s, asym)
		}
		prev = s
	}
	if !approx(m.Speedup(1e12), asym, 1e-3) {
		t.Fatalf("speedup at huge g = %v, want ≈ %v", m.Speedup(1e12), asym)
	}
}

func TestLogCABreakEven(t *testing.T) {
	m := md5LogCA()
	g1, ok := m.BreakEven()
	if !ok {
		t.Fatal("expected a break-even granularity")
	}
	if !approx(m.Speedup(g1), 1, 1e-9) {
		t.Fatalf("speedup at g1 = %v, want 1", m.Speedup(g1))
	}
	// Below g1 the host wins; above, the accelerator.
	if m.Speedup(g1*0.9) >= 1 || m.Speedup(g1*1.1) <= 1 {
		t.Fatal("break-even is not a crossing")
	}
	// An accelerator whose communication costs exceed its gain never
	// breaks even.
	hopeless := LogCA{Compute: 1e-9, Acceleration: 2, Overhead: 1e-6, Latency: 1e-9}
	if _, ok := hopeless.BreakEven(); ok {
		t.Fatal("hopeless accelerator should not break even")
	}
}

func TestLogCAOverlapped(t *testing.T) {
	m := md5LogCA()
	ov := m
	ov.Overlapped = true
	// Overlap can only help.
	for _, g := range []float64{64, 1024, 1 << 20} {
		if ov.AcceleratedTime(g) > m.AcceleratedTime(g)+1e-15 {
			t.Fatalf("overlap made things worse at g=%v", g)
		}
	}
	if ov.AsymptoticSpeedup() < m.AsymptoticSpeedup() {
		t.Fatal("overlapped asymptote should be at least the unoverlapped one")
	}
	g1, ok := ov.BreakEven()
	if !ok || !approx(ov.Speedup(g1), 1, 1e-9) {
		t.Fatalf("overlapped break-even wrong: g1=%v ok=%v", g1, ok)
	}
	// Communication-bound overlapped instance exercises the other branch.
	commBound := LogCA{Compute: 1e-9, Acceleration: 100, Overhead: 1e-6, Latency: 0.5e-9, Overlapped: true}
	g1c, ok := commBound.BreakEven()
	if !ok || !approx(commBound.Speedup(g1c), 1, 1e-9) {
		t.Fatalf("comm-bound break-even wrong: %v ok=%v", g1c, ok)
	}
}

func TestLogCAGHalf(t *testing.T) {
	m := md5LogCA()
	gh, ok := m.GHalf()
	if !ok {
		t.Fatal("expected gHalf")
	}
	if !approx(m.Speedup(gh), m.AsymptoticSpeedup()/2, 1e-6) {
		t.Fatalf("speedup at gHalf = %v, want %v", m.Speedup(gh), m.AsymptoticSpeedup()/2)
	}
	g1, _ := m.BreakEven()
	if gh <= g1 {
		// Half the asymptote can land below break-even only when the
		// asymptote is below 2; not the case for this instance.
		t.Fatalf("gHalf %v should exceed g1 %v here", gh, g1)
	}
}

func TestLogCASpeedupBoundedProperty(t *testing.T) {
	f := func(cRaw, aRaw, oRaw, lRaw, gRaw uint16) bool {
		m := LogCA{
			Compute:      float64(cRaw%1000+1) * 1e-10,
			Acceleration: float64(aRaw%50) + 1.5,
			Overhead:     float64(oRaw%1000) * 1e-8,
			Latency:      float64(lRaw%100) * 1e-11,
		}
		g := float64(gRaw) + 1
		s := m.Speedup(g)
		return s >= 0 && s <= m.Acceleration+1e-9 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The §2.4 argument, executable: LogCA's offload verdict is traffic-blind —
// its speedup depends only on granularity — while LogNIC's attainable
// throughput for the same scenario shifts with the offered profile and
// attributes the binding component.
func TestLogCAIsTrafficBlindLogNICIsNot(t *testing.T) {
	m := md5LogCA()
	// Same granularity, any offered rate: LogCA's answer is one number.
	s := m.Speedup(1500)
	if !(s > 1) {
		t.Fatalf("MTU offload should win under LogCA: %v", s)
	}
	// LogNIC on the corresponding LiquidIO scenario: the bottleneck moves
	// from the NIC cores (low parallelism) to the accelerator as cores
	// are added — an attribution LogCA cannot express at all.
	d := devices.LiquidIO2CN2360()
	m2, err := apps.InlineAccel(apps.InlineAccelConfig{Device: d, Accel: "md5", Cores: 2, PacketBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := m2.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	m16, err := apps.InlineAccel(apps.InlineAccelConfig{Device: d, Accel: "md5", Cores: 16, PacketBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rep16, err := m16.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Bottleneck.Name != "nic-cores" || rep16.Bottleneck.Name != "md5" {
		t.Fatalf("LogNIC attribution: %s then %s", rep2.Bottleneck.Name, rep16.Bottleneck.Name)
	}
}

func TestGablesValidate(t *testing.T) {
	good := Gables{
		IPs:      []GablesIP{{Name: "cpu", Peak: 1e9, Intensity: 2}},
		MemoryBW: 10e9,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Gables{
		{MemoryBW: 1e9},
		{IPs: good.IPs, MemoryBW: 0},
		{IPs: []GablesIP{{Name: "x", Peak: 0, Intensity: 1}}, MemoryBW: 1e9},
		{IPs: []GablesIP{{Name: "x", Peak: 1, Intensity: 0}}, MemoryBW: 1e9},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGablesAttainable(t *testing.T) {
	m := Gables{
		IPs: []GablesIP{
			{Name: "cpu", Peak: 10e9, Intensity: 4},
			{Name: "dsp", Peak: 40e9, Intensity: 8},
		},
		MemoryBW: 4e9,
	}
	// All work on the CPU: roof = min(10e9, 4·4e9) = 10e9... memory roof
	// = 4e9·4 = 16e9, so compute binds.
	perf, binding, err := m.Attainable([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(perf, 10e9, 1e-9) || binding != "cpu" {
		t.Fatalf("perf=%v binding=%s", perf, binding)
	}
	// Splitting work raises attainable performance until memory binds.
	best, bestPerf, err := m.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	if bestPerf <= perf {
		t.Fatalf("best split %v should beat single-IP %v", bestPerf, perf)
	}
	if len(best) != 2 || best[0] < 0 || best[1] < 0 {
		t.Fatalf("split = %v", best)
	}
	// Errors.
	if _, _, err := m.Attainable([]float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, _, err := m.Attainable([]float64{-1, 2}); err == nil {
		t.Fatal("negative fraction should fail")
	}
	if _, _, err := m.Attainable([]float64{0, 0}); err == nil {
		t.Fatal("zero fractions should fail")
	}
}

func TestGablesMemoryBinding(t *testing.T) {
	// Low intensity on both IPs: shared DRAM binds and the report says so.
	m := Gables{
		IPs: []GablesIP{
			{Name: "a", Peak: 100e9, Intensity: 0.5},
			{Name: "b", Peak: 100e9, Intensity: 0.5},
		},
		MemoryBW: 4e9,
	}
	perf, binding, err := m.Attainable([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Per-IP roof: min(100e9, 0.5·4e9)/0.5 = 4e9; memory roof:
	// 4e9/(1/0.5) = 2e9 → memory binds.
	if !approx(perf, 2e9, 1e-9) || binding != "memory" {
		t.Fatalf("perf=%v binding=%s", perf, binding)
	}
	// Gables normalizes unnormalized splits.
	perf2, _, err := m.Attainable([]float64{5, 5})
	if err != nil || !approx(perf2, perf, 1e-9) {
		t.Fatalf("normalization broken: %v vs %v (%v)", perf2, perf, err)
	}
}

func TestGablesSingleIPAndHeuristic(t *testing.T) {
	one := Gables{IPs: []GablesIP{{Name: "cpu", Peak: 5e9, Intensity: 10}}, MemoryBW: 1e9}
	f, perf, err := one.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 || f[0] != 1 {
		t.Fatalf("split = %v", f)
	}
	// min(5e9, 10·1e9) = 5e9 compute roof vs memory roof 1e9·10 = 10e9.
	if !approx(perf, 5e9, 1e-9) {
		t.Fatalf("perf = %v", perf)
	}
	three := Gables{
		IPs: []GablesIP{
			{Name: "a", Peak: 1e9, Intensity: 4},
			{Name: "b", Peak: 2e9, Intensity: 4},
			{Name: "c", Peak: 3e9, Intensity: 4},
		},
		MemoryBW: 100e9,
	}
	f3, perf3, err := three.BestSplit()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) != 3 || perf3 <= 0 {
		t.Fatalf("split = %v perf = %v", f3, perf3)
	}
	// Proportional split across compute-bound IPs achieves the aggregate.
	if !approx(perf3, 6e9, 0.01) {
		t.Fatalf("perf = %v, want ~6e9", perf3)
	}
}

// Cross-model consistency: LogCA's break-even granularity for the crypto
// offload lands in the same packet-size region where LogNIC's placement
// optimizer flips from ARM to engine (the Figure 13 crossover at
// ~128–512B) — the models agree on the offload question even though only
// LogNIC can answer the data-path ones.
func TestLogCABreakEvenMatchesPlacementCrossover(t *testing.T) {
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()
	pe := chain[4]
	eng, err := d.Engine("crypto")
	if err != nil {
		t.Fatal(err)
	}
	m := LogCA{
		Compute:      pe.ARMPerByte,
		Acceleration: pe.ARMPerByte / eng.PerByte,
		Overhead:     eng.TransferOverhead + eng.PacketBase,
		Latency:      1 / d.InterfaceBW.BytesPerSecond(),
	}
	g1, ok := m.BreakEven()
	if !ok {
		t.Fatal("crypto offload should break even")
	}
	if g1 < 100 || g1 > 600 {
		t.Fatalf("break-even %vB outside the Fig13 crossover region", g1)
	}
}
