package apps

import (
	"testing"

	"lognic/internal/devices"
)

func TestHostValidate(t *testing.T) {
	if err := DefaultHost().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Host{
		{Cores: 0, SpeedFactor: 1, PCIeBW: 1},
		{Cores: 1, SpeedFactor: 0, PCIeBW: 1},
		{Cores: 1, SpeedFactor: 1, PCIeOverhead: -1, PCIeBW: 1},
		{Cores: 1, SpeedFactor: 1, PCIeBW: 0},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMigratedModelAllOnNIC(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0]
	onHost := make([]bool, len(chain.Stages))
	cores := proportionalNICCores(chain, onHost, d.Cores)
	m, err := MigratedModel(d, chain, onHost, cores, DefaultHost(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing host-resident, nothing crosses PCIe.
	for _, v := range m.Graph.Vertices() {
		if len(v.Name) > 5 && v.Name[:5] == "host-" {
			t.Fatalf("unexpected host vertex %q", v.Name)
		}
	}
	for _, e := range m.Graph.Edges() {
		if e.Bandwidth != 0 {
			t.Fatalf("unexpected PCIe edge %s->%s", e.From, e.To)
		}
	}
}

func TestMigratedModelCrossings(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0] // parse, flow-track, export
	onHost := []bool{false, true, false}
	m, err := MigratedModel(d, chain, onHost, []int{8, 8}, DefaultHost(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Graph.Vertex("host-s1-flow-track"); !ok {
		t.Fatal("migrated stage missing")
	}
	// Two PCIe crossings: into the host stage and back out.
	crossings := 0
	for _, e := range m.Graph.Edges() {
		if e.Bandwidth > 0 {
			crossings++
		}
	}
	if crossings != 2 {
		t.Fatalf("crossings = %d, want 2", crossings)
	}
	// The migrated stage and its successor both carry the PCIe overhead.
	hostV, _ := m.Graph.Vertex("host-s1-flow-track")
	if hostV.Overhead < DefaultHost().PCIeOverhead {
		t.Fatal("host stage missing PCIe overhead")
	}
}

func TestMigratedModelErrors(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0]
	h := DefaultHost()
	if _, err := MigratedModel(d, chain, []bool{true}, nil, h, 1e9); err == nil {
		t.Fatal("mask length mismatch should fail")
	}
	onHost := make([]bool, len(chain.Stages))
	if _, err := MigratedModel(d, chain, onHost, []int{1}, h, 1e9); err == nil {
		t.Fatal("core list mismatch should fail")
	}
	if _, err := MigratedModel(d, chain, onHost, []int{1, 1, 0}, h, 1e9); err == nil {
		t.Fatal("zero-core stage should fail")
	}
	if _, err := MigratedModel(d, chain, onHost, []int{1, 1, 1}, Host{}, 1e9); err == nil {
		t.Fatal("bad host should fail")
	}
	if _, err := MigratedModel(d, chain, onHost, []int{1, 1, 1}, h, 0); err == nil {
		t.Fatal("zero load should fail")
	}
}

func TestPlanMigrationRelievesOverload(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[2] // RTA-SF: costliest chain
	host := DefaultHost()

	// NIC-only capacity.
	nicOnly := make([]bool, len(chain.Stages))
	nicCores := proportionalNICCores(chain, nicOnly, d.Cores)
	m0, err := MigratedModel(d, chain, nicOnly, nicCores, host, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	sat0, err := m0.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}

	// Offer 1.8× the NIC-only capacity: the orchestrator must migrate.
	offered := 1.8 * sat0.Attainable
	onHost, cores, m, err := PlanMigration(d, chain, host, offered, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	migrated := 0
	for _, h := range onHost {
		if h {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("orchestrator should migrate at least one stage")
	}
	sat, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if sat.Attainable < 1.05*offered*0.999 {
		t.Fatalf("migrated capacity %v does not cover offer %v", sat.Attainable, offered)
	}
	if len(cores) != len(chain.Stages)-migrated {
		t.Fatalf("cores = %v for %d NIC stages", cores, len(chain.Stages)-migrated)
	}
	// The crossing itself is visible in the latency decomposition: the
	// migrated path pays PCIe overhead and link movement the NIC-only
	// path does not. (Total latency may still drop — host cores are
	// faster — which is exactly why E3 migrates under pressure.)
	m0.Traffic.IngressBW = 0.3 * sat0.Attainable
	m.Traffic.IngressBW = m0.Traffic.IngressBW
	lr0, err := m0.Latency()
	if err != nil {
		t.Fatal(err)
	}
	lr, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if !(lr.Paths[0].Overhead > lr0.Paths[0].Overhead) {
		t.Fatalf("PCIe overhead missing: %v vs %v", lr.Paths[0].Overhead, lr0.Paths[0].Overhead)
	}
	if !(lr.Paths[0].Movement > lr0.Paths[0].Movement) {
		t.Fatalf("PCIe movement missing: %v vs %v", lr.Paths[0].Movement, lr0.Paths[0].Movement)
	}
}

func TestPlanMigrationNoOpWhenNICSuffices(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0]
	onHost, _, _, err := PlanMigration(d, chain, DefaultHost(), 1e8, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range onHost {
		if h {
			t.Fatalf("stage %d migrated at trivial load", i)
		}
	}
}

func TestProportionalNICCores(t *testing.T) {
	chain := E3Workloads()[0]
	onHost := []bool{false, true, false}
	cores := proportionalNICCores(chain, onHost, 16)
	if len(cores) != 2 {
		t.Fatalf("cores = %v", cores)
	}
	total := 0
	for _, c := range cores {
		if c < 1 {
			t.Fatalf("zero-core stage in %v", cores)
		}
		total += c
	}
	if total > 16 {
		t.Fatalf("allocated %d cores of 16", total)
	}
	if proportionalNICCores(chain, []bool{true, true, true}, 16) != nil {
		t.Fatal("all-host chain should yield nil cores")
	}
}
