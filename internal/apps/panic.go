package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// This file builds the PANIC prototype scenarios of case study #5 (§4.6):
// Model 1 "Pipelined Chain" (credit sizing, Figure 15), Model 2
// "Parallelized Chain" (traffic steering, Figures 16/17), and the modified
// Model 3 "Hybrid Chain" (unit parallelism, Figures 18/19).

// panicFrontend adds the common RMT-pipeline and central-scheduler
// vertices: rx → rmt → sched, returning the scheduler vertex name. Packet
// descriptors cross the switching fabric on every hop (α=1).
func panicFrontend(b *core.Builder, d devices.PANIC, packetBytes float64) string {
	b.AddIngress("rx").
		AddVertex(core.Vertex{
			Name: "rmt", Kind: core.KindIP,
			Throughput:  d.RMTRate * packetBytes,
			Parallelism: 1, QueueCapacity: 128,
		}).
		AddVertex(core.Vertex{
			Name: "sched", Kind: core.KindIP,
			Throughput:  d.SchedulerRate * packetBytes,
			Parallelism: 1, QueueCapacity: 128,
			Overhead: 0.05e-6, // credit grant round trip
		}).
		AddEdge(core.Edge{From: "rx", To: "rmt", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "rmt", To: "sched", Delta: 1, Alpha: 1})
	return "sched"
}

// unitVertex builds a compute-unit vertex: credits map to the unit's
// request-queue capacity (the PANIC credit mechanism), parallel engine
// lanes to Parallelism.
func unitVertex(u devices.PANICUnit, packetBytes float64, credits, lanes int) core.Vertex {
	if lanes < 1 {
		lanes = 1
	}
	perLane := packetBytes / u.ServiceTime(packetBytes)
	return core.Vertex{
		Name: u.Name, Kind: core.KindIP,
		Throughput:    perLane * float64(lanes),
		Parallelism:   lanes,
		QueueCapacity: credits,
		// Engine lanes serve packets independently, so the multi-server
		// queue extension matches the hardware (and the simulator).
		QueueModel: core.QueueMMcK,
	}
}

// PANICPipelined builds Model 1: rx → rmt → sched → a1 → a2 → tx, every
// unit provisioned with the given credits (queue capacity). Figure 15
// sweeps credits under four mixed traffic profiles.
func PANICPipelined(d devices.PANIC, packetBytes, offeredBW float64, credits int) (core.Model, error) {
	if credits < 1 {
		return core.Model{}, fmt.Errorf("apps: credits %d < 1", credits)
	}
	if packetBytes <= 0 || offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid packet size %v or load %v", packetBytes, offeredBW)
	}
	a1, err := d.Unit("a1")
	if err != nil {
		return core.Model{}, err
	}
	a2, err := d.Unit("a2")
	if err != nil {
		return core.Model{}, err
	}
	b := core.NewBuilder(fmt.Sprintf("panic-m1-c%d", credits))
	sched := panicFrontend(b, d, packetBytes)
	b.AddVertex(unitVertex(a1, packetBytes, credits, 1)).
		AddVertex(unitVertex(a2, packetBytes, credits, 1)).
		AddEgress("tx").
		AddEdge(core.Edge{From: sched, To: "a1", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "a1", To: "a2", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "a2", To: "tx", Delta: 1, Alpha: 1})
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: packetBytes},
	}, nil
}

// PANICParallelized builds Model 2: the scheduler steers traffic across
// units a1/a2/a3 in parallel with the given shares (each in [0,1], summing
// to 1). Figure 16/17's experiment fixes share1 = 0.2 and sweeps share2
// (the paper's X%), leaving 0.8−share2 for a3.
func PANICParallelized(d devices.PANIC, packetBytes, offeredBW float64, share1, share2, share3 float64, credits int) (core.Model, error) {
	if credits < 1 {
		return core.Model{}, fmt.Errorf("apps: credits %d < 1", credits)
	}
	if packetBytes <= 0 || offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid packet size %v or load %v", packetBytes, offeredBW)
	}
	sum := share1 + share2 + share3
	if share1 < 0 || share2 < 0 || share3 < 0 || sum <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid shares %v/%v/%v", share1, share2, share3)
	}
	share1, share2, share3 = share1/sum, share2/sum, share3/sum
	b := core.NewBuilder(fmt.Sprintf("panic-m2-%.0f", share2*100))
	sched := panicFrontend(b, d, packetBytes)
	b.AddEgress("tx")
	units := []struct {
		name  string
		share float64
	}{{"a1", share1}, {"a2", share2}, {"a3", share3}}
	for _, us := range units {
		name, share := us.name, us.share
		u, err := d.Unit(name)
		if err != nil {
			return core.Model{}, err
		}
		if share == 0 {
			continue
		}
		b.AddVertex(unitVertex(u, packetBytes, credits, 1)).
			AddEdge(core.Edge{From: sched, To: name, Delta: share, Alpha: share}).
			AddEdge(core.Edge{From: name, To: "tx", Delta: share, Alpha: share})
	}
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: packetBytes},
	}, nil
}

// PANICHybrid builds the modified Model 3 of §4.6 scenario #3: three
// execution paths IP1→IP3, IP1→IP4 and IP2→IP4 between ingress and egress.
// splitIP1ToIP3 is the fraction of IP1's traffic continuing to IP3 (the
// paper sweeps 50%/50% and 80%/20%); shareIP1 is the ingress fraction
// entering IP1 (the rest enters IP2); lanes4 is IP4's parallel degree, the
// Figure 18/19 sweep variable.
func PANICHybrid(d devices.PANIC, packetBytes, offeredBW, shareIP1, splitIP1ToIP3 float64, lanes4, credits int) (core.Model, error) {
	if credits < 1 || lanes4 < 1 {
		return core.Model{}, fmt.Errorf("apps: invalid credits %d or lanes %d", credits, lanes4)
	}
	if packetBytes <= 0 || offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid packet size %v or load %v", packetBytes, offeredBW)
	}
	if shareIP1 < 0 || shareIP1 > 1 || splitIP1ToIP3 < 0 || splitIP1ToIP3 > 1 {
		return core.Model{}, fmt.Errorf("apps: invalid split %v/%v", shareIP1, splitIP1ToIP3)
	}
	u1, err := d.Unit("a1")
	if err != nil {
		return core.Model{}, err
	}
	u2, err := d.Unit("a2")
	if err != nil {
		return core.Model{}, err
	}
	u3, err := d.Unit("a3")
	if err != nil {
		return core.Model{}, err
	}
	u4, err := d.Unit("a4")
	if err != nil {
		return core.Model{}, err
	}
	d13 := shareIP1 * splitIP1ToIP3       // ingress fraction on IP1→IP3
	d14 := shareIP1 * (1 - splitIP1ToIP3) // IP1→IP4
	d24 := 1 - shareIP1                   // IP2→IP4

	b := core.NewBuilder(fmt.Sprintf("panic-m3-l%d", lanes4))
	sched := panicFrontend(b, d, packetBytes)
	b.AddVertex(unitVertex(u1, packetBytes, credits, 1)).
		AddVertex(unitVertex(u2, packetBytes, credits, 1)).
		AddVertex(unitVertex(u3, packetBytes, credits, 1)).
		AddVertex(unitVertex(u4, packetBytes, credits, lanes4)).
		AddEgress("tx").
		AddEdge(core.Edge{From: sched, To: "a1", Delta: shareIP1, Alpha: shareIP1}).
		AddEdge(core.Edge{From: sched, To: "a2", Delta: d24, Alpha: d24}).
		AddEdge(core.Edge{From: "a1", To: "a3", Delta: d13, Alpha: d13}).
		AddEdge(core.Edge{From: "a1", To: "a4", Delta: d14, Alpha: d14}).
		AddEdge(core.Edge{From: "a2", To: "a4", Delta: d24, Alpha: d24}).
		AddEdge(core.Edge{From: "a3", To: "tx", Delta: d13, Alpha: d13}).
		AddEdge(core.Edge{From: "a4", To: "tx", Delta: d14 + d24, Alpha: d14 + d24})
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: packetBytes},
	}, nil
}
