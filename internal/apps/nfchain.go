package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// NF is one network function of the case-study-#4 middlebox chain (§4.5).
type NF struct {
	// Name identifies the function ("fw", "lb", "dpi", "nat", "pe").
	Name string
	// ARMBase/ARMPerByte give the software cost on an ARM core:
	// base + perByte·size seconds per packet.
	ARMBase, ARMPerByte float64
	// Engine names the BlueField-2 hardware engine that can host this NF,
	// or "" when none exists (DPI).
	Engine string
}

// ARMCost is the software per-packet cost at the given size.
func (f NF) ARMCost(packetBytes float64) float64 {
	return f.ARMBase + f.ARMPerByte*packetBytes
}

// MiddleboxChain returns the FW→LB→DPI→NAT→PE chain with synthetic ARM
// costs. Per-byte-heavy functions (DPI, PE) benefit from offload at large
// packets; at 64B the engines' transfer overheads dominate — the trade-off
// Figures 13/14 sweep.
func MiddleboxChain() []NF {
	return []NF{
		{Name: "fw", ARMBase: 0.45e-6, ARMPerByte: 0.05e-9, Engine: "conntrack"},
		{Name: "lb", ARMBase: 0.40e-6, ARMPerByte: 0.04e-9, Engine: "hash"},
		{Name: "dpi", ARMBase: 0.70e-6, ARMPerByte: 1.60e-9, Engine: ""},
		{Name: "nat", ARMBase: 0.35e-6, ARMPerByte: 0.03e-9, Engine: "conntrack"},
		{Name: "pe", ARMBase: 0.55e-6, ARMPerByte: 2.60e-9, Engine: "crypto"},
	}
}

// Placement maps NF name → true when the NF runs on its hardware engine,
// false for the ARM cores. NFs without an engine are always on ARM.
type Placement map[string]bool

// ARMOnly places every NF on the ARM cores.
func ARMOnly(chain []NF) Placement {
	p := Placement{}
	for _, f := range chain {
		p[f.Name] = false
	}
	return p
}

// AcceleratorOnly places every NF with an engine on that engine.
func AcceleratorOnly(chain []NF) Placement {
	p := Placement{}
	for _, f := range chain {
		p[f.Name] = f.Engine != ""
	}
	return p
}

// Placements enumerates every feasible placement of the chain (2^k for the
// k offloadable NFs) — the §4.5 optimizer's search space.
func Placements(chain []NF) []Placement {
	var offloadable []string
	for _, f := range chain {
		if f.Engine != "" {
			offloadable = append(offloadable, f.Name)
		}
	}
	n := len(offloadable)
	out := make([]Placement, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		p := ARMOnly(chain)
		for i, name := range offloadable {
			if mask&(1<<i) != 0 {
				p[name] = true
			}
		}
		out = append(out, p)
	}
	return out
}

// NFChainModel builds the case-study-#4 model for one placement and packet
// size on the BlueField-2. ARM-resident NFs share the 8 cores, partitioned
// (γ) proportionally to their per-packet costs — the best static split.
// Engine-resident NFs become their own vertices; the ARM-side transfer
// overhead of an offloaded NF is charged to the ARM pool (raising its
// effective per-packet cost) and the packet crosses the SoC interconnect
// to reach the engine (α=1 per crossing).
func NFChainModel(d devices.BlueField2, chain []NF, place Placement, packetBytes, offeredBW float64) (core.Model, error) {
	if packetBytes <= 0 || offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid packet size %v or load %v", packetBytes, offeredBW)
	}
	// ARM pool: per-packet time spent on ARM across the chain = software
	// NFs' costs + offloaded NFs' transfer overheads.
	armTime := map[string]float64{} // per NF on-ARM seconds
	for _, f := range chain {
		if place[f.Name] && f.Engine != "" {
			e, err := d.Engine(f.Engine)
			if err != nil {
				return core.Model{}, err
			}
			armTime[f.Name] = e.TransferOverhead
		} else {
			armTime[f.Name] = f.ARMCost(packetBytes)
		}
	}
	// Sum in chain order, not map order: float addition is not
	// associative, and map iteration order would make γ (and so every
	// simulated service time) vary by ULPs from run to run, breaking the
	// bitwise determinism the golden-digest suite enforces.
	totalARM := 0.0
	for _, f := range chain {
		totalARM += armTime[f.Name]
	}
	// Engines can host several NFs (FW and NAT both use conntrack): the
	// physical engine is γ-partitioned by per-packet engine time, like the
	// ARM pool.
	engineTotal := map[string]float64{}
	for _, f := range chain {
		if place[f.Name] && f.Engine != "" {
			e, err := d.Engine(f.Engine)
			if err != nil {
				return core.Model{}, err
			}
			engineTotal[f.Engine] += e.ServiceTime(packetBytes)
		}
	}

	b := core.NewBuilder(fmt.Sprintf("nfchain-%dB", int(packetBytes))).AddIngress("rx")
	prev := "rx"
	for _, f := range chain {
		offloaded := place[f.Name] && f.Engine != ""
		gamma := armTime[f.Name] / totalARM
		// γ-share of the 8 ARM cores handles this NF's ARM-side work.
		armP := float64(d.Cores) * packetBytes / armTime[f.Name]
		armName := "arm-" + f.Name
		b.AddVertex(core.Vertex{
			Name: armName, Kind: core.KindIP,
			Throughput:    armP, // physical pool rate for this work item
			Parallelism:   d.Cores,
			Partition:     gamma,
			QueueCapacity: 64,
		})
		b.AddEdge(core.Edge{From: prev, To: armName, Delta: 1})
		prev = armName
		if offloaded {
			e, _ := d.Engine(f.Engine)
			// One packet of B bytes occupies the engine for its service
			// time, so the engine's rate is B/service(B) bytes/second.
			engP := packetBytes / e.ServiceTime(packetBytes)
			engName := f.Engine + "-" + f.Name
			b.AddVertex(core.Vertex{
				Name: engName, Kind: core.KindIP,
				Throughput:  engP,
				Parallelism: 1, QueueCapacity: 64,
				Partition: e.ServiceTime(packetBytes) / engineTotal[f.Engine],
			})
			// Crossing to the engine and back traverses the SoC
			// interconnect.
			b.AddEdge(core.Edge{From: prev, To: engName, Delta: 1, Alpha: 1})
			prev = engName
		}
	}
	b.AddEgress("tx")
	b.AddEdge(core.Edge{From: prev, To: "tx", Delta: 1})
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: packetBytes},
	}, nil
}
