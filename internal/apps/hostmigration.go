package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// This file models E3's orchestrator (§4.4): E3 runs each microservice on
// the SmartNIC by default and migrates services to the host when the NIC
// overloads (it watches the traffic-manager queue length). Here the same
// decision is made analytically: stages move to host cores — faster, but
// behind a PCIe crossing — until the modeled NIC capacity covers the
// offered load.

// Host describes the host side of an E3 deployment.
type Host struct {
	// Cores is the number of host cores available to migrated stages.
	Cores int
	// SpeedFactor scales stage costs on a host core (a 3 GHz Xeon core
	// runs a stage several times faster than a 1.5 GHz cnMIPS core).
	SpeedFactor float64
	// PCIeOverhead is the per-request cost of crossing to the host and
	// back (seconds) — DMA descriptor handling and doorbells.
	PCIeOverhead float64
	// PCIeBW is the host link bandwidth (bytes/second).
	PCIeBW float64
}

// Validate checks the host parameters.
func (h Host) Validate() error {
	if h.Cores < 1 {
		return fmt.Errorf("apps: host needs at least one core")
	}
	if h.SpeedFactor <= 0 {
		return fmt.Errorf("apps: invalid host speed factor %v", h.SpeedFactor)
	}
	if h.PCIeOverhead < 0 || h.PCIeBW <= 0 {
		return fmt.Errorf("apps: invalid PCIe parameters")
	}
	return nil
}

// DefaultHost returns the E3 testbed's host side: a Xeon with cores twice
// as fast as the cnMIPS, a ~1µs PCIe round trip, and a Gen3 x8 link.
func DefaultHost() Host {
	return Host{Cores: 8, SpeedFactor: 2.0, PCIeOverhead: 1.0e-6, PCIeBW: 7.9e9}
}

// MigratedModel builds the chain with stages marked in onHost running on
// host cores. NIC-resident stages split the NIC cores per alloc (which
// indexes only the NIC-resident stages, in chain order); host stages split
// the host cores proportionally to cost. Each NIC↔host boundary crossing
// rides the PCIe link and pays its overhead.
func MigratedModel(d devices.LiquidIO2, chain ServiceChain, onHost []bool, nicCores []int, host Host, offeredBW float64) (core.Model, error) {
	if len(onHost) != len(chain.Stages) {
		return core.Model{}, fmt.Errorf("apps: onHost has %d entries for %d stages", len(onHost), len(chain.Stages))
	}
	if err := host.Validate(); err != nil {
		return core.Model{}, err
	}
	if offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid offered bandwidth %v", offeredBW)
	}
	// Host cores split by cost share across host stages.
	hostCost := 0.0
	nicStageCount := 0
	for i, st := range chain.Stages {
		if onHost[i] {
			hostCost += st.Cost
		} else {
			nicStageCount++
		}
	}
	if len(nicCores) != nicStageCount {
		return core.Model{}, fmt.Errorf("apps: nicCores has %d entries for %d NIC stages", len(nicCores), nicStageCount)
	}

	b := core.NewBuilder(fmt.Sprintf("%s-migrated", chain.Name)).AddIngress("rx")
	prev := "rx"
	prevOnHost := false
	nicIdx := 0
	for i, st := range chain.Stages {
		name := fmt.Sprintf("s%d-%s", i, st.Name)
		var v core.Vertex
		if onHost[i] {
			gamma := st.Cost / hostCost
			hostStageCost := st.Cost / host.SpeedFactor
			v = core.Vertex{
				Name: "host-" + name, Kind: core.KindIP,
				Throughput:  float64(host.Cores) * chain.RequestBytes / hostStageCost,
				Parallelism: host.Cores, QueueCapacity: 64,
				Partition:  gamma,
				QueueModel: core.QueueMMcK,
			}
		} else {
			cores := nicCores[nicIdx]
			nicIdx++
			if cores < 1 {
				return core.Model{}, fmt.Errorf("apps: NIC stage %q needs at least one core", st.Name)
			}
			v = core.Vertex{
				Name: name, Kind: core.KindIP,
				Throughput:  float64(cores) * chain.RequestBytes / st.Cost,
				Parallelism: cores, QueueCapacity: 64,
				Overhead: 0.2e-6,
			}
		}
		crossing := onHost[i] != prevOnHost
		if crossing {
			// The stage on the far side of a NIC↔host boundary pays the
			// PCIe round-trip overhead on its onward hop.
			v.Overhead += host.PCIeOverhead
		}
		b.AddVertex(v)
		e := core.Edge{From: prev, To: v.Name, Delta: 1}
		if crossing {
			e.Bandwidth = host.PCIeBW
		}
		b.AddEdge(e)
		prev = v.Name
		prevOnHost = onHost[i]
	}
	b.AddEgress("tx")
	last := core.Edge{From: prev, To: "tx", Delta: 1}
	if prevOnHost {
		last.Bandwidth = host.PCIeBW // response returns over PCIe
	}
	b.AddEdge(last)
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: chain.RequestBytes},
	}, nil
}

// PlanMigration is the analytical orchestrator: starting NIC-resident, it
// migrates the costliest stages to the host until the modeled capacity
// covers the offered load (plus headroom), then allocates the NIC cores
// cost-proportionally among the stages that stayed. It returns the
// migration mask, the NIC core allocation, and the resulting model.
func PlanMigration(d devices.LiquidIO2, chain ServiceChain, host Host, offeredBW, headroom float64) ([]bool, []int, core.Model, error) {
	if headroom < 1 {
		headroom = 1.1
	}
	k := len(chain.Stages)
	onHost := make([]bool, k)
	var (
		bestMask  []bool
		bestCores []int
		bestModel core.Model
		bestSat   = -1.0
	)
	for migrated := 0; migrated <= k; migrated++ {
		nicCores := proportionalNICCores(chain, onHost, d.Cores)
		m, err := MigratedModel(d, chain, onHost, nicCores, host, offeredBW)
		if err != nil {
			return nil, nil, core.Model{}, err
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			return nil, nil, core.Model{}, err
		}
		if sat.Attainable >= headroom*offeredBW {
			return onHost, nicCores, m, nil
		}
		if sat.Attainable > bestSat {
			bestSat = sat.Attainable
			bestMask = append([]bool(nil), onHost...)
			bestCores = nicCores
			bestModel = m
		}
		if migrated == k {
			// No configuration covers the demand; return the highest-
			// capacity state found (E3 would shed load on top of it).
			return bestMask, bestCores, bestModel, nil
		}
		// Migrate the costliest NIC-resident stage next (it frees the
		// most NIC cycles per request).
		next, nextCost := -1, 0.0
		for i, st := range chain.Stages {
			if !onHost[i] && st.Cost > nextCost {
				next, nextCost = i, st.Cost
			}
		}
		onHost[next] = true
	}
	return nil, nil, core.Model{}, fmt.Errorf("apps: migration plan did not converge")
}

// proportionalNICCores splits the NIC cores across NIC-resident stages in
// proportion to their costs (minimum one each).
func proportionalNICCores(chain ServiceChain, onHost []bool, total int) []int {
	nicCost := 0.0
	count := 0
	for i, st := range chain.Stages {
		if !onHost[i] {
			nicCost += st.Cost
			count++
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	used := 0
	for i, st := range chain.Stages {
		if onHost[i] {
			continue
		}
		c := int(float64(total) * st.Cost / nicCost)
		if c < 1 {
			c = 1
		}
		if used+c > total-(count-len(out)-1) {
			c = total - (count - len(out) - 1) - used
			if c < 1 {
				c = 1
			}
		}
		used += c
		out = append(out, c)
	}
	return out
}
