package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// Microservice is one stage of an E3 service chain (case study #3, §4.4).
type Microservice struct {
	// Name identifies the stage.
	Name string
	// Cost is the per-request NIC-core time of the stage (seconds).
	Cost float64
}

// ServiceChain is an E3 application: a pipeline of microservices.
type ServiceChain struct {
	// Name is the application name (NFV-FIN, RTA-SF, ...).
	Name string
	// RequestBytes is the mean request size.
	RequestBytes float64
	// Stages is the pipeline, ingress to egress.
	Stages []Microservice
}

// TotalCost is the per-request cost of the whole chain (seconds).
func (c ServiceChain) TotalCost() float64 {
	sum := 0.0
	for _, s := range c.Stages {
		sum += s.Cost
	}
	return sum
}

// MonolithPenalty is the run-to-completion inflation factor: when one core
// executes the entire chain per request (E3's default round-robin
// dispatch), instruction-cache and state working sets of all stages thrash
// against each other. The E3 paper motivates pipelining with exactly this
// effect; 1.8 is the synthetic value DESIGN.md documents (the chains'
// combined working sets far exceed a cnMIPS core's caches).
const MonolithPenalty = 1.8

// E3Workloads returns the five §4.4 applications with synthetic per-stage
// costs. Stage costs are deliberately skewed — the gap between uniform
// core allocation and cost-proportional allocation is what the LogNIC
// optimizer exploits.
func E3Workloads() []ServiceChain {
	return []ServiceChain{
		{
			Name: "NFV-FIN", RequestBytes: 512,
			Stages: []Microservice{
				{Name: "parse", Cost: 0.8e-6},
				{Name: "flow-track", Cost: 2.9e-6},
				{Name: "export", Cost: 1.4e-6},
			},
		},
		{
			Name: "NFV-DIN", RequestBytes: 1024,
			Stages: []Microservice{
				{Name: "parse", Cost: 0.9e-6},
				{Name: "reassemble", Cost: 2.2e-6},
				{Name: "inspect", Cost: 3.4e-6},
				{Name: "verdict", Cost: 1.5e-6},
			},
		},
		{
			Name: "RTA-SF", RequestBytes: 2048,
			Stages: []Microservice{
				{Name: "tokenize", Cost: 2.8e-6},
				{Name: "classify", Cost: 5.8e-6},
				{Name: "score", Cost: 1.6e-6},
			},
		},
		{
			Name: "RTA-SHM", RequestBytes: 256,
			Stages: []Microservice{
				{Name: "decode", Cost: 0.9e-6},
				{Name: "aggregate", Cost: 1.2e-6},
				{Name: "alert", Cost: 2.8e-6},
			},
		},
		{
			Name: "IOT-DH", RequestBytes: 512,
			Stages: []Microservice{
				{Name: "auth", Cost: 2.4e-6},
				{Name: "transform", Cost: 1.0e-6},
				{Name: "route", Cost: 0.9e-6},
				{Name: "persist", Cost: 3.2e-6},
			},
		},
	}
}

// Allocation assigns NIC cores to chain stages; Cores[i] belongs to
// Stages[i]. A nil Cores means run-to-completion on all cores.
type Allocation struct {
	// Name labels the scheme ("Round-Robin", "Equal-Partition",
	// "LogNIC-Opt").
	Name string
	// Cores[i] is the parallelism of stage i; empty means monolithic
	// run-to-completion across every core.
	Cores []int
}

// EqualPartition splits the device's cores evenly across stages, leftmost
// stages receiving the remainder — the "equal partition mechanism" baseline
// of §4.4.
func EqualPartition(chain ServiceChain, totalCores int) Allocation {
	k := len(chain.Stages)
	cores := make([]int, k)
	for i := range cores {
		cores[i] = totalCores / k
		if i < totalCores%k {
			cores[i]++
		}
		if cores[i] < 1 {
			cores[i] = 1
		}
	}
	return Allocation{Name: "Equal-Partition", Cores: cores}
}

// RoundRobin is E3's default: every request is dispatched to the next
// available core, which runs the whole chain to completion. Modeled as a
// single monolithic stage over all cores with the MonolithPenalty applied.
func RoundRobin() Allocation {
	return Allocation{Name: "Round-Robin"}
}

// MicroserviceModel builds the LogNIC model for a chain under an
// allocation on the LiquidIO-II. Pipelined allocations produce one virtual
// IP per stage, each with γ = cores_i/totalCores of the physical core pool
// and P_i = cores_i·reqBytes/cost_i; the monolithic allocation produces a
// single IP at the penalized rate. offeredBW is BW_in.
func MicroserviceModel(d devices.LiquidIO2, chain ServiceChain, alloc Allocation, offeredBW float64) (core.Model, error) {
	if len(chain.Stages) == 0 {
		return core.Model{}, fmt.Errorf("apps: chain %q has no stages", chain.Name)
	}
	if offeredBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid offered bandwidth %v", offeredBW)
	}
	b := core.NewBuilder(fmt.Sprintf("%s-%s", chain.Name, alloc.Name)).
		AddIngress("rx")
	prev := "rx"
	if len(alloc.Cores) == 0 {
		// Monolithic run-to-completion: one stage, all cores, penalized.
		cost := chain.TotalCost() * MonolithPenalty
		p := float64(d.Cores) * chain.RequestBytes / cost
		b.AddVertex(core.Vertex{
			Name: "chain", Kind: core.KindIP,
			Throughput: p, Parallelism: d.Cores, QueueCapacity: 64,
		})
		b.AddEdge(core.Edge{From: prev, To: "chain", Delta: 1})
		prev = "chain"
	} else {
		if len(alloc.Cores) != len(chain.Stages) {
			return core.Model{}, fmt.Errorf("apps: allocation has %d entries for %d stages", len(alloc.Cores), len(chain.Stages))
		}
		total := 0
		for _, c := range alloc.Cores {
			if c < 1 {
				return core.Model{}, fmt.Errorf("apps: stage core count %d < 1", c)
			}
			total += c
		}
		if total > d.Cores {
			return core.Model{}, fmt.Errorf("apps: allocation uses %d cores, device has %d", total, d.Cores)
		}
		for i, st := range chain.Stages {
			cores := alloc.Cores[i]
			p := float64(cores) * chain.RequestBytes / st.Cost
			name := fmt.Sprintf("s%d-%s", i, st.Name)
			b.AddVertex(core.Vertex{
				Name: name, Kind: core.KindIP,
				Throughput: p, Parallelism: cores, QueueCapacity: 64,
				Partition: 1,
				Overhead:  0.2e-6, // inter-core handoff
			})
			// Stage handoffs ride core-to-core through shared L2, not the
			// accelerator interconnect, so the edges carry no α.
			b.AddEdge(core.Edge{From: prev, To: name, Delta: 1})
			prev = name
		}
	}
	b.AddEgress("tx")
	b.AddEdge(core.Edge{From: prev, To: "tx", Delta: 1})
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: offeredBW, Granularity: chain.RequestBytes},
	}, nil
}
