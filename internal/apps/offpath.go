package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// OffPathConfig parameterizes the §2.1 off-path SmartNIC pattern: the
// device exposes itself as a second network endpoint behind a NIC switch.
// Flows matching host rules take the bypass path (traffic manager →
// TX pipeline → host PCIe) without entering the SoC; the rest trigger the
// NIC-resident program. BlueField-2 and Stingray are off-path cards.
type OffPathConfig struct {
	// Device is the BlueField-2 catalog (switch + ARM complex).
	Device devices.BlueField2
	// HostShare is the fraction of ingress traffic bypassing to the host.
	HostShare float64
	// NICServiceTime is the per-packet ARM cost of the NIC-resident
	// program (seconds).
	NICServiceTime float64
	// PacketBytes is the traffic packet size.
	PacketBytes float64
	// OfferedBW is the ingress rate (bytes/second).
	OfferedBW float64
	// SwitchRate is the NIC switch's forwarding rate (packets/second);
	// zero uses 200 Mpps, far above any evaluated load.
	SwitchRate float64
}

// OffPath builds the off-path model: rx → nic-switch → {host egress
// (bypass, δ=HostShare), arm complex → soc egress}. The bypass path
// crosses no SoC interconnect and carries no compute, so host-bound
// traffic is insulated from SoC overload — the property off-path designs
// are chosen for.
func OffPath(cfg OffPathConfig) (core.Model, error) {
	if cfg.HostShare < 0 || cfg.HostShare > 1 {
		return core.Model{}, fmt.Errorf("apps: host share %v outside [0,1]", cfg.HostShare)
	}
	if cfg.PacketBytes <= 0 || cfg.OfferedBW <= 0 || cfg.NICServiceTime <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid off-path parameters")
	}
	switchRate := cfg.SwitchRate
	if switchRate == 0 {
		switchRate = 200e6
	}
	d := cfg.Device
	nicShare := 1 - cfg.HostShare

	vertices := []core.Vertex{
		{Name: "rx", Kind: core.KindIngress},
		{
			Name: "nic-switch", Kind: core.KindIP,
			Throughput:  switchRate * cfg.PacketBytes,
			Parallelism: 1, QueueCapacity: 128,
		},
	}
	var edges []core.Edge
	edges = append(edges, core.Edge{From: "rx", To: "nic-switch", Delta: 1})
	if cfg.HostShare > 0 {
		vertices = append(vertices, core.Vertex{Name: "host", Kind: core.KindEgress})
		// The bypass path goes straight to the host PCIe: no SoC
		// interconnect crossing (α=0), no compute.
		edges = append(edges, core.Edge{From: "nic-switch", To: "host", Delta: cfg.HostShare})
	}
	if nicShare > 0 {
		armP := float64(d.Cores) * cfg.PacketBytes / cfg.NICServiceTime
		vertices = append(vertices,
			core.Vertex{
				Name: "arm", Kind: core.KindIP,
				Throughput:  armP,
				Parallelism: d.Cores, QueueCapacity: 64,
				QueueModel: core.QueueMMcK,
			},
			core.Vertex{Name: "soc-tx", Kind: core.KindEgress},
		)
		// The default path enters the SoC over the interconnect.
		edges = append(edges,
			core.Edge{From: "nic-switch", To: "arm", Delta: nicShare, Alpha: nicShare},
			core.Edge{From: "arm", To: "soc-tx", Delta: nicShare, Alpha: nicShare},
		)
	}
	g, err := core.NewGraph("offpath", vertices, edges)
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: cfg.OfferedBW, Granularity: cfg.PacketBytes},
	}, nil
}
