package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/nvme"
	"lognic/internal/sim"
)

// NVMeoFConfig parameterizes case study #2 (§4.3): the target-side
// NVMe-over-RDMA protocol on a Stingray JBOF, Figure 2(c)'s graph.
type NVMeoFConfig struct {
	// Device is the Stingray catalog.
	Device devices.Stingray
	// Drive is the SSD configuration (see nvme.StingrayDrive).
	Drive nvme.Config
	// Kind is the I/O pattern.
	Kind nvme.IOKind
	// IOBytes is the I/O request size (4KB, 128KB, ...).
	IOBytes float64
	// OfferedBW is the ingress data rate (bytes/second).
	OfferedBW float64
	// SSDCapacityOverride, when positive, replaces the drive's analytic
	// capacity as the SSD vertex's P — this is how curve-fitted
	// characterization parameters (§4.3's remedy for opaque IPs) are
	// injected back into the model.
	SSDCapacityOverride float64
}

// NVMeoF builds the case-study-#2 model: eth-in → ip1 (submission cores) →
// ssd → ip3 (completion cores) → eth-out. The 8 ARM cores are partitioned
// between submission and completion handling with γ proportional to their
// per-IO costs; I/O payloads stage through DRAM on both SSD edges (β=1),
// matching edges 2/3 of Figure 2(c).
func NVMeoF(cfg NVMeoFConfig) (core.Model, error) {
	d := cfg.Device
	if cfg.IOBytes <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid IO size %v", cfg.IOBytes)
	}
	if cfg.OfferedBW <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid offered bandwidth %v", cfg.OfferedBW)
	}
	drive, err := nvme.New(cfg.Drive)
	if err != nil {
		return core.Model{}, err
	}
	totalCoreCost := d.SubmissionCost + d.CompletionCost
	gammaSub := d.SubmissionCost / totalCoreCost
	gammaComp := 1 - gammaSub
	// With γ-partitioned cores, both stages sustain
	// cores·IOBytes/totalCoreCost bytes/s.
	coreP := float64(d.Cores) * cfg.IOBytes / totalCoreCost

	ssdP := cfg.SSDCapacityOverride
	if ssdP <= 0 {
		ssdP = drive.Capacity(cfg.Kind, cfg.IOBytes)
	}

	g, err := core.NewBuilder(fmt.Sprintf("nvmeof-%s-%dB", cfg.Kind, int(cfg.IOBytes))).
		AddIngress("eth-in").
		AddVertex(core.Vertex{
			Name: "ip1", Kind: core.KindIP,
			Throughput:  coreP / gammaSub, // physical rate; γ scales it back
			Parallelism: d.Cores, QueueCapacity: 128,
			Partition:  gammaSub,
			QueueModel: core.QueueMMcK,
			Overhead:   0.4e-6, // NVMe doorbell
		}).
		AddVertex(core.Vertex{
			Name: "ssd", Kind: core.KindIP,
			Throughput:  ssdP,
			Parallelism: cfg.Drive.Channels, QueueCapacity: 256,
			QueueModel: core.QueueMMcK,
			Overhead:   0.3e-6, // completion interrupt/poll
		}).
		AddVertex(core.Vertex{
			Name: "ip3", Kind: core.KindIP,
			Throughput:  coreP / gammaComp,
			Parallelism: d.Cores, QueueCapacity: 128,
			Partition:  gammaComp,
			QueueModel: core.QueueMMcK,
		}).
		AddEgress("eth-out").
		AddEdge(core.Edge{From: "eth-in", To: "ip1", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "ip1", To: "ssd", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(core.Edge{From: "ssd", To: "ip3", Delta: 1, Alpha: 1, Beta: 1}).
		AddEdge(core.Edge{From: "ip3", To: "eth-out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: cfg.OfferedBW, Granularity: cfg.IOBytes},
	}, nil
}

// NVMeoFServiceTimers returns the simulator service-time hooks for a
// NVMeoF run: the SSD vertex follows the drive's IO-kind process (with GC
// when the drive is fragmented). A fresh drive instance is created per call
// so GC state never leaks across runs.
func NVMeoFServiceTimers(cfg NVMeoFConfig) (map[string]sim.ServiceTimer, error) {
	drive, err := nvme.New(cfg.Drive)
	if err != nil {
		return nil, err
	}
	return map[string]sim.ServiceTimer{
		"ssd": drive.Timer(cfg.Kind),
	}, nil
}

// NVMeoFMixServiceTimers returns simulator hooks for a read/write mixed
// run (Figure 7): each SSD command is a read with probability readRatio.
func NVMeoFMixServiceTimers(cfg NVMeoFConfig, readRatio float64) (map[string]sim.ServiceTimer, error) {
	if readRatio < 0 || readRatio > 1 {
		return nil, fmt.Errorf("apps: read ratio %v outside [0,1]", readRatio)
	}
	drive, err := nvme.New(cfg.Drive)
	if err != nil {
		return nil, err
	}
	return map[string]sim.ServiceTimer{
		"ssd": drive.MixTimer(readRatio),
	}, nil
}

// NVMeoFMixedModel builds the Figure 7 analytical estimate: the SSD's
// effective rate under an r/(1−r) read/write mix is the time-weighted
// harmonic combination of the two pure-stream *characterized* capacities —
// the best a static model can do for a drive whose GC couples the two
// classes dynamically (the pure-write characterization bakes in worst-case
// GC, so the model underpredicts mixed workloads; §4.3).
func NVMeoFMixedModel(cfg NVMeoFConfig, readRatio float64) (core.Model, error) {
	if readRatio < 0 || readRatio > 1 {
		return core.Model{}, fmt.Errorf("apps: read ratio %v outside [0,1]", readRatio)
	}
	drive, err := nvme.New(cfg.Drive)
	if err != nil {
		return core.Model{}, err
	}
	pr := drive.CharacterizedCapacity(nvme.RandRead, cfg.IOBytes)
	pw := drive.CharacterizedCapacity(nvme.RandWrite, cfg.IOBytes)
	mixed := 1 / (readRatio/pr + (1-readRatio)/pw)
	out := cfg
	out.SSDCapacityOverride = mixed
	out.Kind = nvme.RandRead // direction irrelevant once P is fixed
	return NVMeoF(out)
}
