// Package apps builds the execution graphs and simulator configurations of
// the paper's five evaluation scenarios (§4.2–§4.6): inline acceleration on
// the LiquidIO-II, the NVMe-oF target on the Stingray, E3 microservice
// chains, the BlueField-2 NF middlebox chain, and the PANIC prototype
// models. Each builder returns the analytical model (internal/core) and
// enough structure for internal/sim to produce the matching "measured"
// series.
package apps

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/devices"
)

// InlineAccelConfig parameterizes case study #1 (§4.2): a UDP echo server
// on the LiquidIO-II that ships every packet through one accelerator.
type InlineAccelConfig struct {
	// Device is the LiquidIO catalog.
	Device devices.LiquidIO2
	// Accel names the engine to trigger ("md5", "kasumi", "hfa", ...).
	Accel string
	// Cores is the NIC-core parallelism of IP1 (1..Device.Cores).
	Cores int
	// PacketBytes is the traffic packet size.
	PacketBytes float64
	// ChunkBytes is the accelerator's data access granularity per
	// invocation (Figure 5's x axis). Zero means one packet per call.
	ChunkBytes float64
	// QueueCapacity is the per-IP queue size (default 64).
	QueueCapacity int
}

// InlineAccel builds the case-study-#1 model: eth-in → nic-cores (IP1) →
// accelerator (IP2) → eth-out, offered at line rate. The NIC cores' compute
// rate folds in the engine's invocation overhead (submission and completion
// run on the same core, §4.2); the accelerator's data fetches traverse its
// interconnect path, expressed as the edge's α against the path bandwidth.
func InlineAccel(cfg InlineAccelConfig) (core.Model, error) {
	d := cfg.Device
	a, err := d.Accel(cfg.Accel)
	if err != nil {
		return core.Model{}, err
	}
	if cfg.Cores < 1 || cfg.Cores > d.Cores {
		return core.Model{}, fmt.Errorf("apps: cores %d outside 1..%d", cfg.Cores, d.Cores)
	}
	if cfg.PacketBytes <= 0 {
		return core.Model{}, fmt.Errorf("apps: invalid packet size %v", cfg.PacketBytes)
	}
	chunk := cfg.ChunkBytes
	if chunk == 0 {
		chunk = cfg.PacketBytes
	}
	if chunk < 0 {
		return core.Model{}, fmt.Errorf("apps: invalid chunk size %v", chunk)
	}
	qcap := cfg.QueueCapacity
	if qcap == 0 {
		qcap = 64
	}

	// IP1: the NIC-core group. Per-packet cost = base + invocation
	// overhead for this engine.
	coreP := d.CoreThroughput(a, cfg.PacketBytes, cfg.Cores)
	// IP2: the accelerator, invocation-rate bound. One invocation
	// processes one ingress packet (chunking only changes fetched bytes).
	accelP := a.PacketRate * cfg.PacketBytes

	// Data fetched per invocation is the chunk size; relative to ingress
	// bytes that is chunk/packet — the α of the cores→accel edge.
	alphaFetch := chunk / cfg.PacketBytes

	g, err := core.NewBuilder(fmt.Sprintf("inline-%s", a.Name)).
		AddIngress("eth-in").
		AddVertex(core.Vertex{
			Name:          "nic-cores",
			Kind:          core.KindIP,
			Throughput:    coreP,
			Parallelism:   cfg.Cores,
			QueueCapacity: qcap,
			Overhead:      0.3e-6, // doorbell/PCIe write latency per hop
		}).
		AddVertex(core.Vertex{
			Name:          a.Name,
			Kind:          core.KindIP,
			Throughput:    accelP,
			Parallelism:   1,
			QueueCapacity: qcap,
		}).
		AddEgress("eth-out").
		AddEdge(core.Edge{From: "eth-in", To: "nic-cores", Delta: 1}).
		AddEdge(core.Edge{From: "nic-cores", To: a.Name, Delta: 1, Alpha: alphaFetch}).
		// The response leaves through the TX port, not the accelerator's
		// data path, so the egress edge consumes no interconnect α.
		AddEdge(core.Edge{From: a.Name, To: "eth-out", Delta: 1}).
		Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: core.Hardware{
			// BW_INTF is the engine's data path (CMI for on-chip crypto,
			// I/O interconnect for HFA/ZIP); DRAM is BW_MEM.
			InterfaceBW: d.PathBW(a).BytesPerSecond(),
			MemoryBW:    d.MemoryBW.BytesPerSecond(),
		},
		Graph: g,
		Traffic: core.Traffic{
			IngressBW:   d.LineRate.BytesPerSecond(),
			Granularity: cfg.PacketBytes,
		},
	}, nil
}
