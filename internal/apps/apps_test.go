package apps

import (
	"math"
	"testing"

	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/nvme"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestInlineAccelBuild(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	m, err := InlineAccel(InlineAccelConfig{
		Device: d, Accel: "md5", Cores: 16, PacketBytes: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// With all 16 cores the bottleneck at MTU must be the MD5 engine
	// (1.8 Mpps < 2.08 Mpps line rate < 16-core capacity).
	rep, err := m.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck.Kind != core.ConstraintIPCompute || rep.Bottleneck.Name != "md5" {
		t.Fatalf("bottleneck = %+v", rep.Bottleneck)
	}
	wantBps := 1.8e6 * 1500
	if !approx(rep.Attainable, wantBps, 1e-9) {
		t.Fatalf("attainable = %v, want %v", rep.Attainable, wantBps)
	}
}

func TestInlineAccelCoreBound(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	// With 2 cores the NIC cores bind, not the accelerator.
	m, err := InlineAccel(InlineAccelConfig{Device: d, Accel: "md5", Cores: 2, PacketBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := m.Throughput()
	if rep.Bottleneck.Name != "nic-cores" {
		t.Fatalf("bottleneck = %+v", rep.Bottleneck)
	}
}

func TestInlineAccelChunkGranularityHitsInterconnect(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	// 16KB fetches per 1KB packet: interface ceiling binds (Figure 5).
	m, err := InlineAccel(InlineAccelConfig{
		Device: d, Accel: "crc", Cores: 16, PacketBytes: 1024, ChunkBytes: 16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck.Kind != core.ConstraintInterface {
		t.Fatalf("bottleneck = %+v", rep.Bottleneck)
	}
	// Ops/s at the ceiling = CMI / 16KB ≈ 381 kops — 13.6% of CRC max.
	ops := rep.Attainable / 1024
	crc, _ := d.Accel("crc")
	if !approx(ops/crc.PacketRate, 0.136, 0.02) {
		t.Fatalf("fraction = %v, want 0.136", ops/crc.PacketRate)
	}
}

func TestInlineAccelErrors(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	cases := []InlineAccelConfig{
		{Device: d, Accel: "nope", Cores: 4, PacketBytes: 1500},
		{Device: d, Accel: "md5", Cores: 0, PacketBytes: 1500},
		{Device: d, Accel: "md5", Cores: 99, PacketBytes: 1500},
		{Device: d, Accel: "md5", Cores: 4, PacketBytes: 0},
		{Device: d, Accel: "md5", Cores: 4, PacketBytes: 1500, ChunkBytes: -1},
	}
	for i, cfg := range cases {
		if _, err := InlineAccel(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNVMeoFBuild(t *testing.T) {
	d := devices.StingrayPS1100R()
	m, err := NVMeoF(NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(false),
		Kind: nvme.RandRead, IOBytes: 4096, OfferedBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 2(c) topology.
	for _, v := range []string{"eth-in", "ip1", "ssd", "ip3", "eth-out"} {
		if _, ok := m.Graph.Vertex(v); !ok {
			t.Fatalf("vertex %q missing", v)
		}
	}
	paths, err := m.Graph.Paths()
	if err != nil || len(paths) != 1 {
		t.Fatalf("paths = %v err = %v", paths, err)
	}
	// γ partitions must sum to 1 over the core pool.
	ip1, _ := m.Graph.Vertex("ip1")
	ip3, _ := m.Graph.Vertex("ip3")
	if !approx(ip1.Partition+ip3.Partition, 1, 1e-12) {
		t.Fatalf("γ1+γ3 = %v", ip1.Partition+ip3.Partition)
	}
	// Both virtual core IPs expose the same effective capacity.
	e1 := ip1.Partition * ip1.Throughput
	e3 := ip3.Partition * ip3.Throughput
	if !approx(e1, e3, 1e-9) {
		t.Fatalf("effective capacities differ: %v vs %v", e1, e3)
	}
}

func TestNVMeoFSSDBottleneckAtHighLoad(t *testing.T) {
	d := devices.StingrayPS1100R()
	m, err := NVMeoF(NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(false),
		Kind: nvme.RandRead, IOBytes: 4096, OfferedBW: 100e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck.Name != "ssd" {
		t.Fatalf("bottleneck = %+v (want ssd)", rep.Bottleneck)
	}
}

func TestNVMeoFCapacityOverride(t *testing.T) {
	d := devices.StingrayPS1100R()
	m, err := NVMeoF(NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(false),
		Kind: nvme.RandRead, IOBytes: 4096, OfferedBW: 100e9,
		SSDCapacityOverride: 123456789,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.Graph.Vertex("ssd")
	if v.Throughput != 123456789 {
		t.Fatalf("override not applied: %v", v.Throughput)
	}
}

func TestNVMeoFMixedModelInterpolates(t *testing.T) {
	d := devices.StingrayPS1100R()
	cfg := NVMeoFConfig{
		Device: d, Drive: nvme.StingrayDrive(true),
		IOBytes: 4096, OfferedBW: 100e9,
	}
	drive, _ := nvme.New(cfg.Drive)
	pr := drive.CharacterizedCapacity(nvme.RandRead, 4096)
	pw := drive.CharacterizedCapacity(nvme.RandWrite, 4096)
	mAll, err := NVMeoFMixedModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	vAll, _ := mAll.Graph.Vertex("ssd")
	if !approx(vAll.Throughput, pr, 1e-9) {
		t.Fatalf("r=1 capacity %v, want %v", vAll.Throughput, pr)
	}
	mW, _ := NVMeoFMixedModel(cfg, 0)
	vW, _ := mW.Graph.Vertex("ssd")
	if !approx(vW.Throughput, pw, 1e-9) {
		t.Fatalf("r=0 capacity %v, want %v", vW.Throughput, pw)
	}
	mHalf, _ := NVMeoFMixedModel(cfg, 0.5)
	vHalf, _ := mHalf.Graph.Vertex("ssd")
	if !(vHalf.Throughput > pw && vHalf.Throughput < pr) {
		t.Fatalf("mixed capacity %v outside (%v, %v)", vHalf.Throughput, pw, pr)
	}
	if _, err := NVMeoFMixedModel(cfg, 1.5); err == nil {
		t.Fatal("ratio > 1 should fail")
	}
}

func TestNVMeoFServiceTimers(t *testing.T) {
	cfg := NVMeoFConfig{
		Device: devices.StingrayPS1100R(), Drive: nvme.StingrayDrive(false),
		Kind: nvme.RandRead, IOBytes: 4096, OfferedBW: 1e9,
	}
	timers, err := NVMeoFServiceTimers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if timers["ssd"] == nil {
		t.Fatal("missing ssd timer")
	}
	mix, err := NVMeoFMixServiceTimers(cfg, 0.7)
	if err != nil || mix["ssd"] == nil {
		t.Fatalf("mix timers: %v", err)
	}
	if _, err := NVMeoFMixServiceTimers(cfg, -0.1); err == nil {
		t.Fatal("bad ratio should fail")
	}
}

func TestNVMeoFErrors(t *testing.T) {
	d := devices.StingrayPS1100R()
	bad := []NVMeoFConfig{
		{Device: d, Drive: nvme.StingrayDrive(false), IOBytes: 0, OfferedBW: 1},
		{Device: d, Drive: nvme.StingrayDrive(false), IOBytes: 4096, OfferedBW: 0},
		{Device: d, Drive: nvme.Config{}, IOBytes: 4096, OfferedBW: 1},
	}
	for i, cfg := range bad {
		if _, err := NVMeoF(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestE3Workloads(t *testing.T) {
	ws := E3Workloads()
	if len(ws) != 5 {
		t.Fatalf("workloads = %d, want 5", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name] = true
		if len(w.Stages) < 3 {
			t.Errorf("%s: only %d stages", w.Name, len(w.Stages))
		}
		if w.TotalCost() <= 0 {
			t.Errorf("%s: non-positive total cost", w.Name)
		}
		if w.RequestBytes <= 0 {
			t.Errorf("%s: non-positive request size", w.Name)
		}
	}
	for _, want := range []string{"NFV-FIN", "NFV-DIN", "RTA-SF", "RTA-SHM", "IOT-DH"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestEqualPartition(t *testing.T) {
	chain := E3Workloads()[0] // 3 stages
	a := EqualPartition(chain, 16)
	if len(a.Cores) != 3 {
		t.Fatalf("cores = %v", a.Cores)
	}
	sum := 0
	for _, c := range a.Cores {
		sum += c
		if c < 1 {
			t.Fatal("zero-core stage")
		}
	}
	if sum != 16 {
		t.Fatalf("total = %d, want 16", sum)
	}
	// 16/3: leftmost stages get the remainder.
	if a.Cores[0] != 6 || a.Cores[1] != 5 || a.Cores[2] != 5 {
		t.Fatalf("cores = %v", a.Cores)
	}
}

func TestMicroserviceModelSchemes(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0]
	// Monolithic run-to-completion.
	mono, err := MicroserviceModel(d, chain, RoundRobin(), 1e8)
	if err != nil {
		t.Fatal(err)
	}
	repMono, _ := mono.SaturationThroughput()
	// P = 16·size/(total·penalty).
	want := 16 * chain.RequestBytes / (chain.TotalCost() * MonolithPenalty)
	if !approx(repMono.Attainable, want, 1e-9) {
		t.Fatalf("mono attainable = %v, want %v", repMono.Attainable, want)
	}
	// Pipelined equal partition.
	eq, err := MicroserviceModel(d, chain, EqualPartition(chain, d.Cores), 1e8)
	if err != nil {
		t.Fatal(err)
	}
	repEq, _ := eq.SaturationThroughput()
	if repEq.Attainable <= 0 {
		t.Fatal("equal partition attainable must be positive")
	}
	// Cost-proportional allocation beats equal partition for skewed
	// chains.
	prop := Allocation{Name: "prop", Cores: []int{2, 10, 4}}
	pm, err := MicroserviceModel(d, chain, prop, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	repProp, _ := pm.SaturationThroughput()
	if repProp.Attainable <= repEq.Attainable {
		t.Fatalf("proportional %v should beat equal %v", repProp.Attainable, repEq.Attainable)
	}
}

func TestMicroserviceModelErrors(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := E3Workloads()[0]
	if _, err := MicroserviceModel(d, ServiceChain{Name: "x"}, RoundRobin(), 1e8); err == nil {
		t.Fatal("empty chain should fail")
	}
	if _, err := MicroserviceModel(d, chain, RoundRobin(), 0); err == nil {
		t.Fatal("zero load should fail")
	}
	if _, err := MicroserviceModel(d, chain, Allocation{Cores: []int{1, 1}}, 1e8); err == nil {
		t.Fatal("stage count mismatch should fail")
	}
	if _, err := MicroserviceModel(d, chain, Allocation{Cores: []int{0, 1, 1}}, 1e8); err == nil {
		t.Fatal("zero-core stage should fail")
	}
	if _, err := MicroserviceModel(d, chain, Allocation{Cores: []int{10, 10, 10}}, 1e8); err == nil {
		t.Fatal("over-allocation should fail")
	}
}

func TestMiddleboxChainAndPlacements(t *testing.T) {
	chain := MiddleboxChain()
	if len(chain) != 5 {
		t.Fatalf("chain = %d NFs", len(chain))
	}
	// DPI has no engine.
	for _, f := range chain {
		if f.Name == "dpi" && f.Engine != "" {
			t.Fatal("dpi should have no engine")
		}
	}
	ps := Placements(chain)
	if len(ps) != 16 { // 4 offloadable NFs
		t.Fatalf("placements = %d, want 16", len(ps))
	}
	ao := AcceleratorOnly(chain)
	if ao["dpi"] {
		t.Fatal("dpi can never be offloaded")
	}
	if !ao["fw"] || !ao["pe"] {
		t.Fatal("accelerator-only should offload fw and pe")
	}
	armOnly := ARMOnly(chain)
	for _, f := range chain {
		if armOnly[f.Name] {
			t.Fatal("ARM-only should offload nothing")
		}
	}
}

func TestNFChainModelBuildsAllPlacements(t *testing.T) {
	d := devices.BlueField2DPU()
	chain := MiddleboxChain()
	for i, p := range Placements(chain) {
		m, err := NFChainModel(d, chain, p, 1500, 10e9)
		if err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
		if _, err := m.Estimate(); err != nil {
			t.Fatalf("placement %d estimate: %v", i, err)
		}
	}
}

func TestNFChainPlacementTradeoffCrossover(t *testing.T) {
	d := devices.BlueField2DPU()
	chain := MiddleboxChain()
	cap := func(place Placement, size float64) float64 {
		m, err := NFChainModel(d, chain, place, size, 10e9)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Attainable / size // packets/s
	}
	arm := ARMOnly(chain)
	acc := AcceleratorOnly(chain)
	// At MTU, offloading the per-byte-heavy NFs must win.
	if !(cap(acc, 1500) > cap(arm, 1500)) {
		t.Fatalf("at MTU accel-only (%v pps) should beat ARM-only (%v pps)",
			cap(acc, 1500), cap(arm, 1500))
	}
	// The ARM pool's γ partitioning must keep aggregate ARM capacity
	// consistent: chain pps can never exceed cores/totalARMTime.
	armPPS := cap(arm, 1500)
	totalCost := 0.0
	for _, f := range chain {
		totalCost += f.ARMCost(1500)
	}
	if !approx(armPPS, float64(d.Cores)/totalCost, 1e-9) {
		t.Fatalf("ARM-only pps = %v, want %v", armPPS, float64(d.Cores)/totalCost)
	}
}

func TestNFChainModelErrors(t *testing.T) {
	d := devices.BlueField2DPU()
	chain := MiddleboxChain()
	if _, err := NFChainModel(d, chain, ARMOnly(chain), 0, 1e9); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := NFChainModel(d, chain, ARMOnly(chain), 1500, 0); err == nil {
		t.Fatal("zero load should fail")
	}
	badChain := []NF{{Name: "x", ARMBase: 1e-6, Engine: "ghost"}}
	if _, err := NFChainModel(d, badChain, Placement{"x": true}, 1500, 1e9); err == nil {
		t.Fatal("unknown engine should fail")
	}
}

func TestPANICPipelined(t *testing.T) {
	d := devices.PANICPrototype()
	m, err := PANICPipelined(d, 1500, 50e9/8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"rmt", "sched", "a1", "a2"} {
		if _, ok := m.Graph.Vertex(v); !ok {
			t.Fatalf("vertex %q missing", v)
		}
	}
	// Credits map to queue capacity.
	a1, _ := m.Graph.Vertex("a1")
	if a1.QueueCapacity != 8 {
		t.Fatalf("credits = %d", a1.QueueCapacity)
	}
	if _, err := PANICPipelined(d, 1500, 1e9, 0); err == nil {
		t.Fatal("zero credits should fail")
	}
	if _, err := PANICPipelined(d, 0, 1e9, 4); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestPANICParallelizedShares(t *testing.T) {
	d := devices.PANICPrototype()
	m, err := PANICParallelized(d, 1500, 10e9, 0.2, 0.56, 0.24, 8)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := m.Graph.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	// Heaviest path goes through a2.
	found := false
	for _, v := range paths[0].Vertices {
		if v == "a2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("heaviest path should use a2: %v", paths[0].Vertices)
	}
	if !approx(paths[0].Weight, 0.56, 1e-9) {
		t.Fatalf("a2 weight = %v", paths[0].Weight)
	}
	// Shares normalize.
	m2, err := PANICParallelized(d, 1500, 10e9, 2, 5.6, 2.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := m2.Graph.Paths()
	if !approx(p2[0].Weight, 0.56, 1e-9) {
		t.Fatalf("normalized a2 weight = %v", p2[0].Weight)
	}
	if _, err := PANICParallelized(d, 1500, 1e9, -0.1, 0.6, 0.5, 8); err == nil {
		t.Fatal("negative share should fail")
	}
}

func TestPANICHybridLanesRaiseCapacity(t *testing.T) {
	d := devices.PANICPrototype()
	capAt := func(lanes int) float64 {
		m, err := PANICHybrid(d, 1500, 80e9/8, 0.5, 0.5, lanes, 8)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Attainable
	}
	if !(capAt(4) > capAt(1)) {
		t.Fatalf("capacity should grow with IP4 lanes: %v vs %v", capAt(1), capAt(4))
	}
	if _, err := PANICHybrid(d, 1500, 1e9, 0.5, 0.5, 0, 8); err == nil {
		t.Fatal("zero lanes should fail")
	}
	if _, err := PANICHybrid(d, 1500, 1e9, 1.5, 0.5, 1, 8); err == nil {
		t.Fatal("share > 1 should fail")
	}
}

func TestPANICHybridPathStructure(t *testing.T) {
	d := devices.PANICPrototype()
	m, err := PANICHybrid(d, 1500, 10e9, 0.6, 0.5, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := m.Graph.Paths()
	if err != nil {
		t.Fatal(err)
	}
	// Three execution paths: a1→a3, a1→a4, a2→a4.
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	w := 0.0
	for _, p := range paths {
		w += p.Weight
	}
	if !approx(w, 1, 1e-9) {
		t.Fatalf("weights sum to %v", w)
	}
}

func TestOffPathBypassInsulatesHostTraffic(t *testing.T) {
	d := devices.BlueField2DPU()
	base := OffPathConfig{
		Device: d, HostShare: 0.6, NICServiceTime: 2e-6,
		PacketBytes: 1500, OfferedBW: 40e9 / 8,
	}
	m, err := OffPath(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two endpoints, two paths.
	paths, err := m.Graph.Paths()
	if err != nil || len(paths) != 2 {
		t.Fatalf("paths = %v err = %v", len(paths), err)
	}
	// The ARM complex caps only its 40% slice: capacity = armP/0.4.
	sat, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	armP := float64(d.Cores) * 1500 / 2e-6
	if !approx(sat.Attainable, armP/0.4, 1e-9) {
		t.Fatalf("capacity = %v, want %v", sat.Attainable, armP/0.4)
	}
	// Shifting traffic to the host raises total capacity — the off-path
	// scaling argument.
	more := base
	more.HostShare = 0.9
	m2, err := OffPath(more)
	if err != nil {
		t.Fatal(err)
	}
	sat2, err := m2.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if !(sat2.Attainable > sat.Attainable) {
		t.Fatalf("more bypass should raise capacity: %v vs %v", sat2.Attainable, sat.Attainable)
	}
	// The bypass path is far faster than the SoC path.
	lr, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	var hostLat, socLat float64
	for _, p := range lr.Paths {
		last := p.Vertices[len(p.Vertices)-1]
		if last == "host" {
			hostLat = p.Total
		} else {
			socLat = p.Total
		}
	}
	if !(hostLat < socLat/3) {
		t.Fatalf("bypass latency %v should be well under SoC path %v", hostLat, socLat)
	}
}

func TestOffPathEdgeCases(t *testing.T) {
	d := devices.BlueField2DPU()
	// All traffic to the host: no SoC vertices at all.
	all, err := OffPath(OffPathConfig{
		Device: d, HostShare: 1, NICServiceTime: 2e-6,
		PacketBytes: 1500, OfferedBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := all.Graph.Vertex("arm"); ok {
		t.Fatal("full bypass should not build the ARM complex")
	}
	// No bypass: no host endpoint.
	none, err := OffPath(OffPathConfig{
		Device: d, HostShare: 0, NICServiceTime: 2e-6,
		PacketBytes: 1500, OfferedBW: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := none.Graph.Vertex("host"); ok {
		t.Fatal("on-path configuration should not build the host egress")
	}
	bad := []OffPathConfig{
		{Device: d, HostShare: -0.1, NICServiceTime: 1e-6, PacketBytes: 64, OfferedBW: 1},
		{Device: d, HostShare: 1.1, NICServiceTime: 1e-6, PacketBytes: 64, OfferedBW: 1},
		{Device: d, HostShare: 0.5, NICServiceTime: 0, PacketBytes: 64, OfferedBW: 1},
		{Device: d, HostShare: 0.5, NICServiceTime: 1e-6, PacketBytes: 0, OfferedBW: 1},
		{Device: d, HostShare: 0.5, NICServiceTime: 1e-6, PacketBytes: 64, OfferedBW: 0},
	}
	for i, cfg := range bad {
		if _, err := OffPath(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
