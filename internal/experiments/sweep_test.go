package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"lognic/internal/sim"
)

// TestSweepWorkerCountInvariance is the sweep engine's core guarantee:
// a simulator-backed figure regenerated at Workers: 1 and Workers: 8 must
// produce byte-identical Figure.Format() output, because every
// replication's RNG stream is fixed by its (figure, point, replication)
// coordinates and cannot observe scheduling order. CI runs this under
// -race, which also shakes out data races in the pool itself.
func TestSweepWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	base := Options{Scale: 0.05, Seed: 11}
	for _, id := range []string{"fig9", "fig15"} {
		gen, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial := base
		serial.Workers = 1
		f1, err := gen.Run(serial)
		if err != nil {
			t.Fatal(err)
		}
		parallel := base
		parallel.Workers = 8
		f8, err := gen.Run(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := f8.Format(), f1.Format(); got != want {
			t.Errorf("%s: output differs between Workers=1 and Workers=8:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", id, want, got)
		}
	}
}

func TestSweepOrderAndBounds(t *testing.T) {
	var active, peak atomic.Int64
	out, err := sweep(context.Background(), 3, 20, func(_ context.Context, i int) (int, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer active.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d: results not reassembled in task order", i, v)
		}
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestSweepErrorWinsOverCancellation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := sweep(context.Background(), workers, 16, func(ctx context.Context, i int) (int, error) {
			if i == 5 {
				return 0, fmt.Errorf("task failed: %w", boom)
			}
			// Tasks after the failure observe the cancelled context, like
			// an in-flight simulator replication would via RunContext.
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the genuine task failure", workers, err)
		}
	}
}

func TestSweepParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := sweep(ctx, workers, 4, func(context.Context, int) (int, error) {
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestBudgetExceededPropagates drives a figure whose replications blow a
// tiny event budget: the typed sim.ErrBudgetExceeded must surface through
// the worker pool as the figure's error, regardless of worker count.
func TestBudgetExceededPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Fig9(Options{Scale: 0.05, Seed: 1, Workers: workers, MaxEvents: 50})
		if !errors.Is(err, sim.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want sim.ErrBudgetExceeded", workers, err)
		}
	}
}

// TestSeedZeroIsARealSeed pins the Options seed semantics: a bare zero
// Options still means the documented default seed 1, while SeedSet makes
// zero a distinct, honored seed.
func TestSeedZeroIsARealSeed(t *testing.T) {
	bare := Options{}.withDefaults()
	if bare.Seed != 1 {
		t.Fatalf("bare zero Options seed = %d, want default 1", bare.Seed)
	}
	explicit := Options{SeedSet: true}.withDefaults()
	if explicit.Seed != 0 {
		t.Fatalf("explicit zero seed remapped to %d", explicit.Seed)
	}
	if explicit.seedFor("fig9", 0, 0) == bare.seedFor("fig9", 0, 0) {
		t.Fatal("seed 0 and seed 1 derive identical replication streams")
	}
	// Replication streams must differ across every coordinate.
	o := Options{Seed: 3}.withDefaults()
	ref := o.seedFor("fig9", 1, 1)
	if o.seedFor("fig15", 1, 1) == ref || o.seedFor("fig9", 2, 1) == ref || o.seedFor("fig9", 1, 2) == ref {
		t.Fatal("replication stream collision across coordinates")
	}
}
