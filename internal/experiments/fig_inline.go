package experiments

import (
	"context"
	"fmt"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// Fig5 — accelerator throughput (MOPS) vs data access granularity
// 512B–16KB for CRC/3DES/MD5/HFA under 1KB traffic (§4.2). Pure model
// output: the figure demonstrates Equation 4's interconnect terms, with
// the CMI (50 Gbps) capping on-chip crypto fetches and the I/O
// interconnect (40 Gbps) capping HFA.
func Fig5(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.LiquidIO2CN2360()
	granularities := []float64{512, 1024, 2048, 4096, 8192, 16384}
	accels := []string{"crc", "3des", "md5", "hfa"}
	fig := Figure{
		ID:     "fig5",
		Title:  "Accelerator throughput vs data access granularity (1KB traffic)",
		XLabel: "granularity(B)",
		YLabel: "Throughput (MOPS)",
	}
	series, err := sweepObs(context.Background(), opts, "fig5", len(accels),
		func(_ context.Context, ai int) (Series, error) {
			s := Series{Name: accels[ai]}
			for _, g := range granularities {
				m, err := apps.InlineAccel(apps.InlineAccelConfig{
					Device: d, Accel: accels[ai], Cores: d.Cores,
					PacketBytes: 1024, ChunkBytes: g,
				})
				if err != nil {
					return Series{}, err
				}
				rep, err := m.SaturationThroughput()
				if err != nil {
					return Series{}, err
				}
				ops := rep.Attainable / 1024 // invocations per second
				s.Points = append(s.Points, Point{X: g, Y: ops / 1e6})
			}
			return s, nil
		})
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// fig9Accels are the engines Figure 9 sweeps, with the paper's observed
// saturation parallelism.
var fig9Accels = []struct {
	Name     string
	PaperSat int
}{
	{"md5", 9},
	{"kasumi", 8},
	{"hfa", 11},
}

// Fig9 — throughput (MOPS) vs IP1 parallelism 1–16 under MTU line rate,
// measured (simulator) vs LogNIC, for MD5/KASUMI/HFA (§4.2). Each
// (engine, cores) cell is one independent sweep task whose simulator
// replication runs on its own hashed RNG stream.
func Fig9(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.LiquidIO2CN2360()
	fig := Figure{
		ID:     "fig9",
		Title:  "Throughput vs NIC-core parallelism at 25GbE line rate (MTU)",
		XLabel: "cores",
		YLabel: "Throughput (MOPS)",
	}
	type cell struct{ measured, model float64 }
	nCores := d.Cores
	cells, err := sweepObs(context.Background(), opts, "fig9", len(fig9Accels)*nCores,
		func(ctx context.Context, ti int) (cell, error) {
			ai, ci := ti/nCores, ti%nCores
			cores := ci + 1
			m, err := apps.InlineAccel(apps.InlineAccelConfig{
				Device: d, Accel: fig9Accels[ai].Name, Cores: cores, PacketBytes: 1500,
			})
			if err != nil {
				return cell{}, err
			}
			rep, err := m.Throughput()
			if err != nil {
				return cell{}, err
			}
			res, err := runSim(ctx, opts, sim.Config{
				Graph:     m.Graph,
				Hardware:  m.Hardware,
				Profile:   traffic.Fixed("mtu", unit.Bandwidth(m.Traffic.IngressBW), 1500),
				Seed:      opts.seedFor("fig9", ai, cores),
				Duration:  opts.simTime(0.08),
				MaxEvents: opts.MaxEvents,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				measured: res.Throughput / 1500 / 1e6,
				model:    rep.Attainable / 1500 / 1e6,
			}, nil
		})
	if err != nil {
		return Figure{}, err
	}
	for ai, ac := range fig9Accels {
		measured := Series{Name: ac.Name + "-Measured"}
		model := Series{Name: ac.Name + "-LogNIC"}
		for ci := 0; ci < nCores; ci++ {
			c := cells[ai*nCores+ci]
			x := float64(ci + 1)
			measured.Points = append(measured.Points, Point{X: x, Y: c.measured})
			model.Points = append(model.Points, Point{X: x, Y: c.model})
		}
		fig.Series = append(fig.Series, measured, model)
	}
	return fig, nil
}

// Fig10 — achieved bandwidth (Gbps) vs packet size 64B–1500B under line
// rate for six accelerators (§4.2): the achieved bandwidth tracks
// min(P_IP2·pktsize, 25 Gbps).
func Fig10(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.LiquidIO2CN2360()
	sizes := []float64{64, 128, 256, 512, 1024, 1500}
	accels := []string{"crc", "aes", "md5", "sha1", "sms4", "hfa"}
	fig := Figure{
		ID:     "fig10",
		Title:  "Achieved bandwidth vs packet size at 25GbE line rate",
		XLabel: "pkt(B)",
		YLabel: "Bandwidth (Gbps)",
	}
	series, err := sweepObs(context.Background(), opts, "fig10", len(accels),
		func(_ context.Context, ai int) (Series, error) {
			s := Series{Name: accels[ai]}
			for _, size := range sizes {
				m, err := apps.InlineAccel(apps.InlineAccelConfig{
					Device: d, Accel: accels[ai], Cores: d.Cores, PacketBytes: size,
				})
				if err != nil {
					return Series{}, err
				}
				rep, err := m.Throughput()
				if err != nil {
					return Series{}, err
				}
				s.Points = append(s.Points, Point{X: size, Y: unit.Bandwidth(rep.Attainable).GbpsValue()})
			}
			return s, nil
		})
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// Fig9SaturationCores derives, from the model alone, the parallelism at
// which each Figure 9 engine saturates — the paper's 9/8/11 anchor. Used
// by tests and EXPERIMENTS.md.
func Fig9SaturationCores() (map[string]int, error) {
	d := devices.LiquidIO2CN2360()
	out := map[string]int{}
	for _, ac := range fig9Accels {
		prev := -1.0
		for cores := 1; cores <= d.Cores; cores++ {
			m, err := apps.InlineAccel(apps.InlineAccelConfig{
				Device: d, Accel: ac.Name, Cores: cores, PacketBytes: 1500,
			})
			if err != nil {
				return nil, err
			}
			rep, err := m.Throughput()
			if err != nil {
				return nil, err
			}
			if rep.Attainable <= prev*(1+1e-9) {
				out[ac.Name] = cores - 1
				break
			}
			prev = rep.Attainable
			if cores == d.Cores {
				out[ac.Name] = cores
			}
		}
	}
	if len(out) != len(fig9Accels) {
		return nil, fmt.Errorf("experiments: saturation search incomplete: %v", out)
	}
	return out, nil
}
