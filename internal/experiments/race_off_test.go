//go:build !race

package experiments_test

// raceEnabled reports whether the race detector is compiled in; the
// golden figure suite (14 figures × 3 seeds) skips under it — the
// sim-level golden suite still runs raced, and figure digests are a pure
// function of the unraced engine behavior it pins.
const raceEnabled = false
