package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"lognic/internal/sim"
)

// This file is the parallel sweep engine every figure generator runs on.
// A figure is a grid of independent simulator replications (points ×
// series × repetitions); sweep fans them out over a bounded worker pool
// and reassembles the results in task order, so regeneration scales with
// cores while the output stays byte-identical at any worker count —
// including Workers: 1. Determinism comes from the seed discipline, not
// from scheduling: each replication's RNG stream is fixed by its
// coordinates via Options.seedFor, so no task can observe another task's
// randomness or its completion order.

// sweep runs task(ctx, i) for i in [0, n) on at most `workers` concurrent
// goroutines and returns the results indexed by task. The first task
// failure cancels the shared context so in-flight siblings abort (the
// simulator polls it in RunContext); the error returned is the
// lowest-indexed genuine failure, with knock-on cancellations of sibling
// tasks filtered out, so the reported error is also independent of worker
// count.
func sweep[T any](ctx context.Context, workers, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := task(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				v, err := task(wctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// runSim executes one simulator replication under the sweep's context, so
// a sibling worker's failure — or an exceeded Options.MaxEvents budget —
// cancels in-flight replications instead of letting them run out the
// clock. Typed harness errors (sim.ErrBudgetExceeded, sim.ErrStalled)
// surface unchanged through the pool.
func runSim(ctx context.Context, cfg sim.Config) (sim.Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return s.RunContext(ctx)
}
