package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"lognic/internal/obs"
	"lognic/internal/sim"
)

// This file is the parallel sweep engine every figure generator runs on.
// A figure is a grid of independent simulator replications (points ×
// series × repetitions); sweep fans them out over a bounded worker pool
// and reassembles the results in task order, so regeneration scales with
// cores while the output stays byte-identical at any worker count —
// including Workers: 1. Determinism comes from the seed discipline, not
// from scheduling: each replication's RNG stream is fixed by its
// coordinates via Options.seedFor, so no task can observe another task's
// randomness or its completion order.

// sweep runs task(ctx, i) for i in [0, n) on at most `workers` concurrent
// goroutines and returns the results indexed by task. The first task
// failure cancels the shared context so in-flight siblings abort (the
// simulator polls it in RunContext); the error returned is the
// lowest-indexed genuine failure, with knock-on cancellations of sibling
// tasks filtered out, so the reported error is also independent of worker
// count.
func sweep[T any](ctx context.Context, workers, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := task(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				v, err := task(wctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// sweepObs is sweep with the figure's observability attached: a
// points-total/points-done progress gauge pair and a per-point wall-time
// histogram, labeled by figure id. Timing uses the host clock and so never
// touches simulator state — figure output stays byte-identical whether or
// not a registry is attached.
func sweepObs[T any](ctx context.Context, o Options, figID string, n int, task func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if o.Metrics == nil {
		return sweep(ctx, o.Workers, n, task)
	}
	labels := obs.Labels{"fig": figID}
	total := o.Metrics.Gauge("lognic_sweep_points_total", "replications this figure fans out", labels)
	done := o.Metrics.Gauge("lognic_sweep_points_done", "replications completed so far", labels)
	seconds := o.Metrics.Histogram("lognic_sweep_point_seconds", "wall time per replication", pointBuckets(), labels)
	total.Add(float64(n))
	timed := func(ctx context.Context, i int) (T, error) {
		start := time.Now()
		v, err := task(ctx, i)
		seconds.Observe(time.Since(start).Seconds())
		if err == nil {
			done.Add(1)
		}
		return v, err
	}
	return sweep(ctx, o.Workers, n, timed)
}

// pointBuckets spans 100µs..~100s geometrically — replication wall times
// from the fastest smoke-scale point to a full-duration figure cell.
func pointBuckets() []float64 { return obs.ExpBuckets(1e-4, 4, 10) }

// runSim executes one simulator replication under the sweep's context, so
// a sibling worker's failure — or an exceeded Options.MaxEvents budget —
// cancels in-flight replications instead of letting them run out the
// clock. Typed harness errors (sim.ErrBudgetExceeded, sim.ErrStalled)
// surface unchanged through the pool. The sweep Options' registry and
// tracer ride into every replication here, so all figure generators are
// observable without per-figure wiring.
func runSim(ctx context.Context, o Options, cfg sim.Config) (sim.Result, error) {
	cfg.Metrics = o.Metrics
	cfg.Spans = o.Trace
	cfg.Shards = o.Shards
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return s.RunContext(ctx)
}
