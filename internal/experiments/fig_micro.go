package experiments

import (
	"context"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// microserviceSchemes evaluates the three §4.4 allocation schemes for one
// E3 workload at 80% load and returns the simulator-measured throughput
// (requests/second) and mean latency (seconds) per scheme, in the order
// Round-Robin, Equal-Partition, LogNIC-Opt. workload indexes the chain in
// the E3 suite and keys its replications' RNG streams.
func microserviceSchemes(ctx context.Context, d devices.LiquidIO2, chain apps.ServiceChain, opts Options, workload int) ([3]float64, [3]float64, error) {
	var thr, lat [3]float64
	opt, err := optimizer.TuneParallelism(d, chain, d.Cores, 1e9)
	if err != nil {
		return thr, lat, err
	}
	schemes := []apps.Allocation{
		apps.RoundRobin(),
		apps.EqualPartition(chain, d.Cores),
		opt,
	}
	// The paper drives every scheme at the same 80% traffic load; we take
	// 80% of the optimized configuration's capacity as the common offer.
	ref, err := apps.MicroserviceModel(d, chain, opt, 1e9)
	if err != nil {
		return thr, lat, err
	}
	sat, err := ref.SaturationThroughput()
	if err != nil {
		return thr, lat, err
	}
	offered := 0.8 * sat.Attainable
	for i, alloc := range schemes {
		m, err := apps.MicroserviceModel(d, chain, alloc, offered)
		if err != nil {
			return thr, lat, err
		}
		res, err := runSim(ctx, opts, sim.Config{
			Graph:     m.Graph,
			Hardware:  m.Hardware,
			Profile:   traffic.Fixed(chain.Name, unit.Bandwidth(offered), unit.Size(chain.RequestBytes)),
			Seed:      opts.seedFor("fig1112", workload, i),
			Duration:  opts.simTime(0.25),
			MaxEvents: opts.MaxEvents,
		})
		if err != nil {
			return thr, lat, err
		}
		thr[i] = res.Throughput / chain.RequestBytes
		lat[i] = res.MeanLatency
	}
	return thr, lat, nil
}

// fig1112 runs the case-study-#3 comparison once and splits it into the
// two figures. The five E3 workloads fan out over the sweep pool; the
// three schemes of one workload stay sequential inside its task (they
// share the workload's optimizer output).
func fig1112(opts Options) (Figure, Figure, error) {
	opts = opts.withDefaults()
	d := devices.LiquidIO2CN2360()
	schemes := []string{"Round-Robin", "Equal-Partition", "LogNIC-Opt"}
	f11 := Figure{
		ID: "fig11", Title: "Microservice throughput across allocation schemes (80% load)",
		XLabel: "application", YLabel: "Throughput (MRPS)",
	}
	f12 := Figure{
		ID: "fig12", Title: "Microservice average latency across allocation schemes (80% load)",
		XLabel: "application", YLabel: "Avg latency (ms)",
	}
	for i := range schemes {
		f11.Series = append(f11.Series, Series{Name: schemes[i]})
		f12.Series = append(f12.Series, Series{Name: schemes[i]})
	}
	workloads := apps.E3Workloads()
	type cell struct{ thr, lat [3]float64 }
	cells, err := sweepObs(context.Background(), opts, "fig1112", len(workloads),
		func(ctx context.Context, ai int) (cell, error) {
			thr, lat, err := microserviceSchemes(ctx, d, workloads[ai], opts, ai)
			if err != nil {
				return cell{}, err
			}
			return cell{thr: thr, lat: lat}, nil
		})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	for ai, chain := range workloads {
		for i := range schemes {
			f11.Series[i].Points = append(f11.Series[i].Points,
				Point{X: float64(ai), Label: chain.Name, Y: cells[ai].thr[i] / 1e6})
			f12.Series[i].Points = append(f12.Series[i].Points,
				Point{X: float64(ai), Label: chain.Name, Y: cells[ai].lat[i] * 1e3})
		}
	}
	return f11, f12, nil
}

// Fig11 — microservice throughput (MRPS) for the five E3 workloads under
// Round-Robin / Equal-Partition / LogNIC-Opt core allocation (§4.4).
func Fig11(opts Options) (Figure, error) {
	f11, _, err := fig1112(opts)
	return f11, err
}

// Fig12 — microservice average latency (ms) for the same setups (§4.4).
func Fig12(opts Options) (Figure, error) {
	_, f12, err := fig1112(opts)
	return f12, err
}

// MicroserviceGains summarizes the Figure 11/12 improvements the way the
// paper quotes them: LogNIC-Opt's mean throughput gain and latency saving
// versus each baseline across the five workloads.
type MicroserviceGains struct {
	ThroughputVsRR, ThroughputVsEqual float64
	LatencyVsRR, LatencyVsEqual       float64
}

// GainsFromFigures derives the §4.4 summary percentages from regenerated
// Figure 11/12 data.
func GainsFromFigures(f11, f12 Figure) MicroserviceGains {
	var g MicroserviceGains
	n := float64(len(f11.Series[0].Points))
	for i := range f11.Series[0].Points {
		rrT := f11.Series[0].Points[i].Y
		eqT := f11.Series[1].Points[i].Y
		optT := f11.Series[2].Points[i].Y
		g.ThroughputVsRR += (optT/rrT - 1) / n
		g.ThroughputVsEqual += (optT/eqT - 1) / n
		rrL := f12.Series[0].Points[i].Y
		eqL := f12.Series[1].Points[i].Y
		optL := f12.Series[2].Points[i].Y
		g.LatencyVsRR += (1 - optL/rrL) / n
		g.LatencyVsEqual += (1 - optL/eqL) / n
	}
	return g
}
