//go:build race

package experiments_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
