// Package experiments regenerates every result figure of the paper's
// evaluation (§4): each FigNN function reproduces the corresponding
// figure's data series, pairing "Measured" runs of the discrete-event
// simulator (this repository's hardware substitute) with "LogNIC"
// estimates from the analytical model. cmd/lognic-bench prints them, the
// root bench_test.go wraps them in testing.B benchmarks, and
// EXPERIMENTS.md records the paper-vs-repo comparison.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"lognic/internal/obs"
	"lognic/internal/sim"
)

// Point is one (x, y) sample of a series. X carries the sweep variable in
// the paper's axis unit (packet bytes, cores, credits, percent, GB/s...).
type Point struct {
	X float64
	Y float64
	// Label optionally names a categorical x position (application or
	// traffic-profile names).
	Label string
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	// ID is the paper figure number ("fig5" ... "fig19").
	ID string
	// Title summarizes the experiment.
	Title string
	// XLabel and YLabel are the axis units.
	XLabel, YLabel string
	// Series holds the data, in the paper's legend order.
	Series []Series
}

// Options tunes how expensively the simulator-backed figures run.
type Options struct {
	// Scale multiplies the simulated durations; 1.0 reproduces the
	// defaults, smaller values trade statistical tightness for speed
	// (tests use ~0.2).
	Scale float64
	// Seed is the base seed every simulator replication derives its RNG
	// stream from (see seedFor). The default is 1; zero is a valid,
	// distinct seed when SeedSet marks it as deliberate.
	Seed int64
	// SeedSet marks Seed as explicitly chosen. Without it the zero
	// value of Options must mean "the documented default seed", so a
	// bare Seed: 0 is remapped to 1; with SeedSet true, Seed 0 is
	// honored as a real seed.
	SeedSet bool
	// Workers bounds the sweep engine's worker pool: how many figure
	// points / simulator replications regenerate concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0). Figure output is
	// byte-identical at any worker count — every replication draws from
	// its own hashed RNG stream, so scheduling order cannot leak into
	// the data.
	Workers int
	// MaxEvents bounds every simulator replication's event count (zero =
	// unbounded). A replication that exceeds it aborts the whole figure
	// with sim.ErrBudgetExceeded, propagated out of the worker pool.
	MaxEvents uint64
	// Metrics, when set, receives sweep progress (points done/total per
	// figure), per-point wall-time histograms, and every replication's
	// simulator counters. Replications share the registry's series;
	// attaching it never changes figure output (observability consumes no
	// simulator randomness).
	Metrics *obs.Registry
	// Trace, when set, receives packet spans from every simulator
	// replication. With many replications sharing one bounded ring the
	// trace is a sample, not a full record; single-run tracing (the
	// `lognic trace` command) gives one coherent timeline.
	Trace *obs.Tracer
	// Shards, when above 1, runs every simulator replication on the
	// sharded event engine (sim.Config.Shards): the execution graph is
	// partitioned into vertex domains with conservative-lookahead
	// synchronization. Results are byte-identical to serial replication
	// by the engine's determinism contract, so figures do not change —
	// only wall-clock does, and only for graphs the partitioner does not
	// collapse back to one domain (see docs/SIM.md).
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = 1
	}
	o.SeedSet = true
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// simTime returns a scaled simulation duration.
func (o Options) simTime(base float64) float64 { return base * o.Scale }

// seedFor derives the RNG seed of one simulator replication from the base
// seed and the replication's (figure, point, replication) coordinates, by
// SplitMix64-style hashing (sim.SeedStream) — never by seed arithmetic.
// Hashed streams are what make the parallel sweep engine deterministic:
// every replication's randomness is fixed by its coordinates alone, so
// results cannot depend on worker count or scheduling order, and distinct
// coordinates never collide the way seed+k derivations do.
func (o Options) seedFor(figID string, point, rep int) int64 {
	return sim.SeedStream(o.Seed, sim.StreamTag(figID), uint64(point), uint64(rep))
}

// Format renders the figure as an aligned text table, one row per x value,
// one column per series — the "same rows/series the paper reports".
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	// Collect x positions in first-series order.
	type key struct {
		x     float64
		label string
	}
	var xs []key
	seen := map[key]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			k := key{p.X, p.Label}
			if !seen[k] {
				seen[k] = true
				xs = append(xs, k)
			}
		}
	}
	fmt.Fprintf(&b, "%-16s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%20s", s.Name)
	}
	b.WriteByte('\n')
	for _, k := range xs {
		if k.label != "" {
			fmt.Fprintf(&b, "%-16s", k.label)
		} else {
			fmt.Fprintf(&b, "%-16.6g", k.x)
		}
		for _, s := range f.Series {
			v, ok := lookup(s, k.x, k.label)
			if ok {
				fmt.Fprintf(&b, "%20.6g", v)
			} else {
				fmt.Fprintf(&b, "%20s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x float64, label string) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x && p.Label == label {
			return p.Y, true
		}
	}
	return 0, false
}

// Generator regenerates one figure.
type Generator struct {
	ID   string
	Name string
	Run  func(Options) (Figure, error)
}

// All returns every figure generator in paper order.
func All() []Generator {
	return []Generator{
		{"fig5", "Accelerator throughput vs data access granularity", Fig5},
		{"fig6", "NVMe-oF latency vs throughput, three I/O profiles", Fig6},
		{"fig7", "4KB random IO bandwidth vs read ratio", Fig7},
		{"fig9", "Throughput vs IP1 parallelism at line rate", Fig9},
		{"fig10", "Achieved bandwidth vs packet size at line rate", Fig10},
		{"fig11", "Microservice throughput across allocation schemes", Fig11},
		{"fig12", "Microservice average latency across allocation schemes", Fig12},
		{"fig13", "NF chain throughput vs packet size across placements", Fig13},
		{"fig14", "NF chain average latency vs packet size across placements", Fig14},
		{"fig15", "PANIC bandwidth vs provisioned credits", Fig15},
		{"fig16", "PANIC steering latency: static vs LogNIC splits", Fig16},
		{"fig17", "PANIC steering throughput: static vs LogNIC splits", Fig17},
		{"fig18", "PANIC latency vs IP4 parallel degree", Fig18},
		{"fig19", "PANIC throughput vs IP4 parallel degree", Fig19},
	}
}

// ByID returns the generator for a figure id.
func ByID(id string) (Generator, error) {
	for _, g := range All() {
		if g.ID == id {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("experiments: unknown figure %q", id)
}
