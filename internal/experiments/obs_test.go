package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"lognic/internal/obs"
)

// TestFigureUnchangedByObservability is the load-bearing guarantee behind
// wiring a registry and tracer through every figure generator: attaching
// them must not perturb a single sampled value. Timing metrics read the
// host clock, never simulator state, so the figure payload stays
// byte-identical.
func TestFigureUnchangedByObservability(t *testing.T) {
	g, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: 0.05, Seed: 3}
	bare, err := g.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	obsOpts := opts
	obsOpts.Metrics = obs.NewRegistry()
	obsOpts.Trace = obs.NewTracer(0)
	traced, err := g.Run(obsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, traced) {
		t.Fatal("figure output changed when observability was attached")
	}
	if obsOpts.Trace.Len() == 0 {
		t.Fatal("tracer collected no spans from the figure's replications")
	}
}

// gaugeValue reads one labeled series out of a registry snapshot.
func gaugeValue(t *testing.T, reg *obs.Registry, name, fig string) float64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name && s.Labels["fig"] == fig {
			return s.Value
		}
	}
	t.Fatalf("series %s{fig=%q} missing", name, fig)
	return 0
}

func TestSweepObsProgressGauges(t *testing.T) {
	reg := obs.NewRegistry()
	o := Options{Workers: 2, Metrics: reg}
	got, err := sweepObs(context.Background(), o, "figX", 6,
		func(ctx context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	if total := gaugeValue(t, reg, "lognic_sweep_points_total", "figX"); total != 6 {
		t.Fatalf("points_total = %v, want 6", total)
	}
	if done := gaugeValue(t, reg, "lognic_sweep_points_done", "figX"); done != 6 {
		t.Fatalf("points_done = %v, want 6", done)
	}
	// Wall-time histogram saw every replication.
	var count uint64
	for _, s := range reg.Gather() {
		if s.Name == "lognic_sweep_point_seconds" && s.Labels["fig"] == "figX" {
			count = s.Count
		}
	}
	if count != 6 {
		t.Fatalf("point_seconds count = %d, want 6", count)
	}
}

func TestSweepObsFailureNotCountedDone(t *testing.T) {
	reg := obs.NewRegistry()
	o := Options{Workers: 1, Metrics: reg}
	boom := errors.New("boom")
	_, err := sweepObs(context.Background(), o, "figY", 4,
		func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if done := gaugeValue(t, reg, "lognic_sweep_points_done", "figY"); done != 2 {
		t.Fatalf("points_done = %v, want 2 (tasks before the failure)", done)
	}
}

func TestSweepObsNilRegistryIsPlainSweep(t *testing.T) {
	got, err := sweepObs(context.Background(), Options{Workers: 3}, "figZ", 5,
		func(ctx context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("results = %v", got)
	}
}
