package experiments

import (
	"context"
	"fmt"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/fit"
	"lognic/internal/nvme"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fig6Profile is one I/O pattern of Figure 6.
type fig6Profile struct {
	Name    string
	Kind    nvme.IOKind
	IOBytes float64
}

func fig6Profiles() []fig6Profile {
	return []fig6Profile{
		{"4KB-RRD", nvme.RandRead, 4096},
		{"128KB-RRD", nvme.RandRead, 128 * 1024},
		{"4KB-SWR", nvme.SeqWrite, 4096},
	}
}

// runNVMeoF simulates the NVMe-oF target at one offered rate and returns
// (delivered bytes/s, mean latency seconds). The simulated duration is
// stretched when the offered IOPS is low, so every run observes a few
// hundred I/Os regardless of request size — simulated time is cheap when
// little happens. seed is the replication's hashed RNG stream.
func runNVMeoF(ctx context.Context, cfg apps.NVMeoFConfig, opts Options, base float64, seed int64) (float64, float64, error) {
	m, err := apps.NVMeoF(cfg)
	if err != nil {
		return 0, 0, err
	}
	timers, err := apps.NVMeoFServiceTimers(cfg)
	if err != nil {
		return 0, 0, err
	}
	const minIOs = 500
	duration := opts.simTime(base)
	if need := minIOs * cfg.IOBytes / cfg.OfferedBW; need > duration {
		duration = need
	}
	res, err := runSim(ctx, opts, sim.Config{
		Graph:       m.Graph,
		Hardware:    m.Hardware,
		Profile:     traffic.Fixed(cfg.Kind.String(), unit.Bandwidth(cfg.OfferedBW), unit.Size(cfg.IOBytes)),
		Seed:        seed,
		Duration:    duration,
		ServiceTime: timers,
		MaxEvents:   opts.MaxEvents,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.Throughput, res.MeanLatency, nil
}

// CharacterizeSSD reproduces §4.3's opaque-IP remedy: sweep the offered
// rate against the simulated drive (as one would against real hardware,
// "increasing the IO depth"), ramping geometrically until the delivered
// throughput stops tracking the offer. The plateau is the fitted Capacity
// parameter that feeds the model's SSD vertex; the low-load latency is the
// curve's Base. No internal drive parameter is read — the drive stays
// opaque. The ramp is inherently sequential (each step decides whether to
// continue), so it runs inside one sweep task; profIdx keys its RNG
// streams.
func CharacterizeSSD(prof fig6Profile, drive nvme.Config, opts Options) (fit.SaturationCurve, error) {
	return characterizeSSD(context.Background(), prof, drive, opts.withDefaults(), 0)
}

func characterizeSSD(ctx context.Context, prof fig6Profile, drive nvme.Config, opts Options, profIdx int) (fit.SaturationCurve, error) {
	d := devices.StingrayPS1100R()
	offered := 16e6 // 16 MB/s probe; well under any plausible drive
	var base, peak float64
	for step := 0; step < 40; step++ {
		cfg := apps.NVMeoFConfig{
			Device: d, Drive: drive, Kind: prof.Kind,
			IOBytes: prof.IOBytes, OfferedBW: offered,
		}
		thr, lat, err := runNVMeoF(ctx, cfg, opts, 0.2, opts.seedFor("fig6.ramp", profIdx, step))
		if err != nil {
			return fit.SaturationCurve{}, err
		}
		if base == 0 && lat > 0 {
			base = lat
		}
		if thr > peak {
			peak = thr
		}
		if thr < 0.8*offered {
			// Saturated: the best delivered rate seen along the ramp is
			// the capacity. (The ramp factor is kept small so the
			// saturating step is only mildly overloaded and the pipeline
			// stays stationary.)
			return fit.SaturationCurve{Base: base, Capacity: peak}, nil
		}
		offered *= 1.4
	}
	return fit.SaturationCurve{}, fmt.Errorf("experiments: %s never saturated", prof.Name)
}

// fig6Fracs are the load fractions of the Figure 6 sweep.
var fig6Fracs = []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9}

// Fig6 — NVMe-oF latency vs throughput for 4KB-RRD / 128KB-RRD / 4KB-SWR,
// measured (simulator) vs LogNIC with curve-fitted SSD parameters (§4.3).
// Two sweep stages: the per-profile characterization ramps run
// concurrently, then every (profile, load fraction) pair fans out.
func Fig6(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	d := devices.StingrayPS1100R()
	drive := nvme.StingrayDrive(false)
	profiles := fig6Profiles()
	fig := Figure{
		ID:     "fig6",
		Title:  "NVMe-oF target latency vs throughput (Stingray JBOF)",
		XLabel: "Throughput(GB/s)",
		YLabel: "Latency (us)",
	}
	curves, err := sweepObs(ctx, opts, "fig6.ramp", len(profiles),
		func(ctx context.Context, pi int) (fit.SaturationCurve, error) {
			curve, err := characterizeSSD(ctx, profiles[pi], drive, opts, pi)
			if err != nil {
				return fit.SaturationCurve{}, fmt.Errorf("characterize %s: %w", profiles[pi].Name, err)
			}
			return curve, nil
		})
	if err != nil {
		return Figure{}, err
	}
	type cell struct{ measured, model Point }
	cells, err := sweepObs(ctx, opts, "fig6", len(profiles)*len(fig6Fracs),
		func(ctx context.Context, ti int) (cell, error) {
			pi, fi := ti/len(fig6Fracs), ti%len(fig6Fracs)
			prof, curve := profiles[pi], curves[pi]
			offered := fig6Fracs[fi] * curve.Capacity
			cfg := apps.NVMeoFConfig{
				Device: d, Drive: drive, Kind: prof.Kind,
				IOBytes: prof.IOBytes, OfferedBW: offered,
				SSDCapacityOverride: curve.Capacity,
			}
			thr, lat, err := runNVMeoF(ctx, cfg, opts, 0.4, opts.seedFor("fig6", pi, fi))
			if err != nil {
				return cell{}, err
			}
			m, err := apps.NVMeoF(cfg)
			if err != nil {
				return cell{}, err
			}
			lr, err := m.Latency()
			if err != nil {
				return cell{}, err
			}
			tr, err := m.Throughput()
			if err != nil {
				return cell{}, err
			}
			return cell{
				measured: Point{X: thr / 1e9, Y: lat * 1e6},
				model:    Point{X: tr.Attainable / 1e9, Y: lr.Attainable * 1e6},
			}, nil
		})
	if err != nil {
		return Figure{}, err
	}
	for pi, prof := range profiles {
		measured := Series{Name: prof.Name + "-Measured"}
		model := Series{Name: prof.Name + "-LogNIC"}
		for fi := range fig6Fracs {
			c := cells[pi*len(fig6Fracs)+fi]
			measured.Points = append(measured.Points, c.measured)
			model.Points = append(model.Points, c.model)
		}
		fig.Series = append(fig.Series, measured, model)
	}
	return fig, nil
}

// fig7Ratios is the Figure 7 read-ratio grid, 0%..100% in 10% steps.
var fig7Ratios = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// Fig7 — 4KB random I/O bandwidth vs read ratio on a fragmented
// (GC-active) drive (§4.3): measured read/write bandwidth from the
// simulator against the static-model estimate, which cannot capture GC and
// underpredicts. Each read ratio is one sweep task.
func Fig7(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.StingrayPS1100R()
	drive := nvme.StingrayDrive(true)
	fig := Figure{
		ID:     "fig7",
		Title:  "4KB random IO bandwidth vs read ratio (fragmented drive)",
		XLabel: "read%",
		YLabel: "Bandwidth (MB/s)",
	}
	type cell struct{ measured, model float64 }
	cells, err := sweepObs(context.Background(), opts, "fig7", len(fig7Ratios),
		func(ctx context.Context, ri int) (cell, error) {
			ratio := fig7Ratios[ri]
			// Offer near the mixed capacity so the drive saturates.
			model, err := apps.NVMeoFMixedModel(apps.NVMeoFConfig{
				Device: d, Drive: drive, IOBytes: 4096, OfferedBW: 100e9,
			}, ratio)
			if err != nil {
				return cell{}, err
			}
			tr, err := model.Throughput()
			if err != nil {
				return cell{}, err
			}
			modelTotal := tr.Attainable

			cfg := apps.NVMeoFConfig{
				Device: d, Drive: drive, Kind: nvme.RandRead,
				IOBytes: 4096, OfferedBW: 1.2 * modelTotal,
			}
			m, err := apps.NVMeoF(cfg)
			if err != nil {
				return cell{}, err
			}
			timers, err := apps.NVMeoFMixServiceTimers(cfg, ratio)
			if err != nil {
				return cell{}, err
			}
			res, err := runSim(ctx, opts, sim.Config{
				Graph:       m.Graph,
				Hardware:    m.Hardware,
				Profile:     traffic.Fixed("mix", unit.Bandwidth(cfg.OfferedBW), 4096),
				Seed:        opts.seedFor("fig7", ri, 0),
				Duration:    opts.simTime(0.4),
				ServiceTime: timers,
				MaxEvents:   opts.MaxEvents,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{measured: res.Throughput, model: modelTotal}, nil
		})
	if err != nil {
		return Figure{}, err
	}
	rdM := Series{Name: "RD-Measured"}
	wrM := Series{Name: "WR-Measured"}
	rdL := Series{Name: "RD-LogNIC"}
	wrL := Series{Name: "WR-LogNIC"}
	const mb = 1024 * 1024
	for ri, ratio := range fig7Ratios {
		x := ratio * 100
		c := cells[ri]
		rdM.Points = append(rdM.Points, Point{X: x, Y: c.measured * ratio / mb})
		wrM.Points = append(wrM.Points, Point{X: x, Y: c.measured * (1 - ratio) / mb})
		rdL.Points = append(rdL.Points, Point{X: x, Y: c.model * ratio / mb})
		wrL.Points = append(wrL.Points, Point{X: x, Y: c.model * (1 - ratio) / mb})
	}
	fig.Series = []Series{rdM, wrM, rdL, wrL}
	return fig, nil
}
