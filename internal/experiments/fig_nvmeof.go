package experiments

import (
	"fmt"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/fit"
	"lognic/internal/nvme"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fig6Profile is one I/O pattern of Figure 6.
type fig6Profile struct {
	Name    string
	Kind    nvme.IOKind
	IOBytes float64
}

func fig6Profiles() []fig6Profile {
	return []fig6Profile{
		{"4KB-RRD", nvme.RandRead, 4096},
		{"128KB-RRD", nvme.RandRead, 128 * 1024},
		{"4KB-SWR", nvme.SeqWrite, 4096},
	}
}

// runNVMeoF simulates the NVMe-oF target at one offered rate and returns
// (delivered bytes/s, mean latency seconds). The simulated duration is
// stretched when the offered IOPS is low, so every run observes a few
// hundred I/Os regardless of request size — simulated time is cheap when
// little happens.
func runNVMeoF(cfg apps.NVMeoFConfig, opts Options, base float64) (float64, float64, error) {
	m, err := apps.NVMeoF(cfg)
	if err != nil {
		return 0, 0, err
	}
	timers, err := apps.NVMeoFServiceTimers(cfg)
	if err != nil {
		return 0, 0, err
	}
	const minIOs = 500
	duration := opts.simTime(base)
	if need := minIOs * cfg.IOBytes / cfg.OfferedBW; need > duration {
		duration = need
	}
	res, err := sim.Run(sim.Config{
		Graph:       m.Graph,
		Hardware:    m.Hardware,
		Profile:     traffic.Fixed(cfg.Kind.String(), unit.Bandwidth(cfg.OfferedBW), unit.Size(cfg.IOBytes)),
		Seed:        opts.Seed,
		Duration:    duration,
		ServiceTime: timers,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.Throughput, res.MeanLatency, nil
}

// CharacterizeSSD reproduces §4.3's opaque-IP remedy: sweep the offered
// rate against the simulated drive (as one would against real hardware,
// "increasing the IO depth"), ramping geometrically until the delivered
// throughput stops tracking the offer. The plateau is the fitted Capacity
// parameter that feeds the model's SSD vertex; the low-load latency is the
// curve's Base. No internal drive parameter is read — the drive stays
// opaque.
func CharacterizeSSD(prof fig6Profile, drive nvme.Config, opts Options) (fit.SaturationCurve, error) {
	opts = opts.withDefaults()
	d := devices.StingrayPS1100R()
	offered := 16e6 // 16 MB/s probe; well under any plausible drive
	var base, peak float64
	for step := 0; step < 40; step++ {
		cfg := apps.NVMeoFConfig{
			Device: d, Drive: drive, Kind: prof.Kind,
			IOBytes: prof.IOBytes, OfferedBW: offered,
		}
		thr, lat, err := runNVMeoF(cfg, opts, 0.2)
		if err != nil {
			return fit.SaturationCurve{}, err
		}
		if base == 0 && lat > 0 {
			base = lat
		}
		if thr > peak {
			peak = thr
		}
		if thr < 0.8*offered {
			// Saturated: the best delivered rate seen along the ramp is
			// the capacity. (The ramp factor is kept small so the
			// saturating step is only mildly overloaded and the pipeline
			// stays stationary.)
			return fit.SaturationCurve{Base: base, Capacity: peak}, nil
		}
		offered *= 1.4
	}
	return fit.SaturationCurve{}, fmt.Errorf("experiments: %s never saturated", prof.Name)
}

// Fig6 — NVMe-oF latency vs throughput for 4KB-RRD / 128KB-RRD / 4KB-SWR,
// measured (simulator) vs LogNIC with curve-fitted SSD parameters (§4.3).
func Fig6(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.StingrayPS1100R()
	drive := nvme.StingrayDrive(false)
	fig := Figure{
		ID:     "fig6",
		Title:  "NVMe-oF target latency vs throughput (Stingray JBOF)",
		XLabel: "Throughput(GB/s)",
		YLabel: "Latency (us)",
	}
	for _, prof := range fig6Profiles() {
		curve, err := CharacterizeSSD(prof, drive, opts)
		if err != nil {
			return Figure{}, fmt.Errorf("characterize %s: %w", prof.Name, err)
		}
		measured := Series{Name: prof.Name + "-Measured"}
		model := Series{Name: prof.Name + "-LogNIC"}
		for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
			offered := frac * curve.Capacity
			cfg := apps.NVMeoFConfig{
				Device: d, Drive: drive, Kind: prof.Kind,
				IOBytes: prof.IOBytes, OfferedBW: offered,
				SSDCapacityOverride: curve.Capacity,
			}
			thr, lat, err := runNVMeoF(cfg, opts, 0.4)
			if err != nil {
				return Figure{}, err
			}
			measured.Points = append(measured.Points, Point{X: thr / 1e9, Y: lat * 1e6})

			m, err := apps.NVMeoF(cfg)
			if err != nil {
				return Figure{}, err
			}
			lr, err := m.Latency()
			if err != nil {
				return Figure{}, err
			}
			tr, err := m.Throughput()
			if err != nil {
				return Figure{}, err
			}
			model.Points = append(model.Points, Point{X: tr.Attainable / 1e9, Y: lr.Attainable * 1e6})
		}
		fig.Series = append(fig.Series, measured, model)
	}
	return fig, nil
}

// Fig7 — 4KB random I/O bandwidth vs read ratio on a fragmented
// (GC-active) drive (§4.3): measured read/write bandwidth from the
// simulator against the static-model estimate, which cannot capture GC and
// underpredicts.
func Fig7(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	d := devices.StingrayPS1100R()
	drive := nvme.StingrayDrive(true)
	fig := Figure{
		ID:     "fig7",
		Title:  "4KB random IO bandwidth vs read ratio (fragmented drive)",
		XLabel: "read%",
		YLabel: "Bandwidth (MB/s)",
	}
	rdM := Series{Name: "RD-Measured"}
	wrM := Series{Name: "WR-Measured"}
	rdL := Series{Name: "RD-LogNIC"}
	wrL := Series{Name: "WR-LogNIC"}
	for ratio := 0.0; ratio <= 1.0001; ratio += 0.1 {
		// Offer near the mixed capacity so the drive saturates.
		model, err := apps.NVMeoFMixedModel(apps.NVMeoFConfig{
			Device: d, Drive: drive, IOBytes: 4096, OfferedBW: 100e9,
		}, ratio)
		if err != nil {
			return Figure{}, err
		}
		tr, err := model.Throughput()
		if err != nil {
			return Figure{}, err
		}
		modelTotal := tr.Attainable

		cfg := apps.NVMeoFConfig{
			Device: d, Drive: drive, Kind: nvme.RandRead,
			IOBytes: 4096, OfferedBW: 1.2 * modelTotal,
		}
		m, err := apps.NVMeoF(cfg)
		if err != nil {
			return Figure{}, err
		}
		timers, err := apps.NVMeoFMixServiceTimers(cfg, ratio)
		if err != nil {
			return Figure{}, err
		}
		res, err := sim.Run(sim.Config{
			Graph:       m.Graph,
			Hardware:    m.Hardware,
			Profile:     traffic.Fixed("mix", unit.Bandwidth(cfg.OfferedBW), 4096),
			Seed:        opts.Seed,
			Duration:    opts.simTime(0.4),
			ServiceTime: timers,
		})
		if err != nil {
			return Figure{}, err
		}
		x := ratio * 100
		const mb = 1024 * 1024
		rdM.Points = append(rdM.Points, Point{X: x, Y: res.Throughput * ratio / mb})
		wrM.Points = append(wrM.Points, Point{X: x, Y: res.Throughput * (1 - ratio) / mb})
		rdL.Points = append(rdL.Points, Point{X: x, Y: modelTotal * ratio / mb})
		wrL.Points = append(wrL.Points, Point{X: x, Y: modelTotal * (1 - ratio) / mb})
	}
	fig.Series = []Series{rdM, wrM, rdL, wrL}
	return fig, nil
}
