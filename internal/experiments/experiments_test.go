package experiments

import (
	"math"
	"strings"
	"testing"
)

// quick runs simulator-backed figures fast; statistical assertions below
// are tolerant accordingly.
var quick = Options{Scale: 0.15, Seed: 7}

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func series(t *testing.T, f Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: series %q missing (have %v)", f.ID, name, func() []string {
		var out []string
		for _, s := range f.Series {
			out = append(out, s.Name)
		}
		return out
	}())
	return Series{}
}

func TestAllRegistryComplete(t *testing.T) {
	gens := All()
	want := []string{"fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"}
	if len(gens) != len(want) {
		t.Fatalf("got %d generators, want %d", len(gens), len(want))
	}
	for i, id := range want {
		if gens[i].ID != id {
			t.Errorf("generator %d = %s, want %s", i, gens[i].ID, id)
		}
		if gens[i].Run == nil || gens[i].Name == "" {
			t.Errorf("generator %s incomplete", id)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestFig5Anchors(t *testing.T) {
	fig, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper anchor: at 16KB granularity CRC/3DES/MD5/HFA reach
	// 13.6/17.3/21.2/25.8% of their small-granularity maxima.
	want := map[string]float64{"crc": 0.136, "3des": 0.173, "md5": 0.212, "hfa": 0.258}
	for name, frac := range want {
		s := series(t, fig, name)
		max := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		if s.Points[len(s.Points)-1].X != 16384 {
			t.Fatalf("%s: last point is %v, want 16384", name, s.Points[len(s.Points)-1].X)
		}
		if !approx(last/max, frac, 0.02) {
			t.Errorf("%s: 16KB fraction %.3f, want %.3f", name, last/max, frac)
		}
		// Monotone non-increasing with granularity.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
				t.Errorf("%s: throughput increased with granularity at %v", name, s.Points[i].X)
			}
		}
	}
}

func TestFig6ModelTracksMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	fig, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	for _, prof := range []string{"4KB-RRD", "128KB-RRD", "4KB-SWR"} {
		meas := series(t, fig, prof+"-Measured")
		model := series(t, fig, prof+"-LogNIC")
		if len(meas.Points) != len(model.Points) {
			t.Fatalf("%s: point count mismatch", prof)
		}
		// Mean relative latency error across the load sweep stays small
		// (the paper quotes 0.24–2.75%; our sim has finite-sample noise).
		sum := 0.0
		for i := range meas.Points {
			sum += math.Abs(model.Points[i].Y-meas.Points[i].Y) / meas.Points[i].Y
		}
		mean := sum / float64(len(meas.Points))
		if mean > 0.20 {
			t.Errorf("%s: mean latency error %.1f%%, want < 20%%", prof, mean*100)
		}
		// Latency grows with throughput (saturation shape).
		first, last := meas.Points[0].Y, meas.Points[len(meas.Points)-1].Y
		if last <= first {
			t.Errorf("%s: measured latency did not grow toward saturation", prof)
		}
	}
}

func TestFig7UnderpredictionSign(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	fig, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	rdM := series(t, fig, "RD-Measured")
	rdL := series(t, fig, "RD-LogNIC")
	wrM := series(t, fig, "WR-Measured")
	wrL := series(t, fig, "WR-LogNIC")
	// In the mixed region the static model must *under*-predict the
	// GC-coupled measurement (paper: ~14.6% lower).
	var gapSum float64
	var n int
	for i := range rdM.Points {
		r := rdM.Points[i].X / 100
		if r < 0.25 || r > 0.85 {
			continue
		}
		total := rdM.Points[i].Y + wrM.Points[i].Y
		model := rdL.Points[i].Y + wrL.Points[i].Y
		if model > total*1.02 {
			t.Errorf("read%%=%v: model %v overpredicts measured %v", rdM.Points[i].X, model, total)
		}
		gapSum += 1 - model/total
		n++
	}
	gap := gapSum / float64(n)
	if gap < 0.05 || gap > 0.30 {
		t.Errorf("mean underprediction %.1f%%, want roughly 5–30%% (paper 14.6%%)", gap*100)
	}
	// Read bandwidth grows with read ratio; write shrinks.
	last := len(rdM.Points) - 1
	if !(rdM.Points[last].Y > rdM.Points[0].Y) || !(wrM.Points[0].Y > wrM.Points[last].Y) {
		t.Error("read/write bandwidth trends wrong")
	}
}

func TestFig9SaturationAnchors(t *testing.T) {
	sat, err := Fig9SaturationCores()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"md5": 9, "kasumi": 8, "hfa": 11}
	for name, cores := range want {
		if sat[name] != cores {
			t.Errorf("%s saturates at %d cores, paper says %d", name, sat[name], cores)
		}
	}
}

func TestFig9ModelMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	fig, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"md5", "kasumi", "hfa"} {
		meas := series(t, fig, name+"-Measured")
		model := series(t, fig, name+"-LogNIC")
		for i := range meas.Points {
			if !approx(meas.Points[i].Y, model.Points[i].Y, 0.08) {
				t.Errorf("%s at %v cores: measured %v vs model %v", name,
					meas.Points[i].X, meas.Points[i].Y, model.Points[i].Y)
			}
		}
	}
}

func TestFig10MinLaw(t *testing.T) {
	fig, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Bandwidth grows with packet size and never exceeds 25 Gbps.
		for i, p := range s.Points {
			if p.Y > 25+1e-9 {
				t.Errorf("%s: %v Gbps exceeds line rate", s.Name, p.Y)
			}
			if i > 0 && p.Y < s.Points[i-1].Y-1e-9 {
				t.Errorf("%s: bandwidth fell with packet size", s.Name)
			}
		}
	}
	// CRC reaches line rate at MTU; HFA does not.
	crc := series(t, fig, "crc")
	hfa := series(t, fig, "hfa")
	if !approx(crc.Points[len(crc.Points)-1].Y, 25, 1e-6) {
		t.Errorf("crc at MTU = %v, want 25", crc.Points[len(crc.Points)-1].Y)
	}
	if hfa.Points[len(hfa.Points)-1].Y > 20 {
		t.Errorf("hfa at MTU = %v, should stay below line rate", hfa.Points[len(hfa.Points)-1].Y)
	}
}

func TestFig11Fig12Gains(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	f11, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Series) != 3 || len(f12.Series) != 3 {
		t.Fatal("expected 3 schemes")
	}
	if len(f11.Series[0].Points) != 5 {
		t.Fatalf("expected 5 applications, got %d", len(f11.Series[0].Points))
	}
	g := GainsFromFigures(f11, f12)
	// Paper: +34.8%/+36.4% throughput, −22.4%/−22.8% latency. Require the
	// right direction and a comparable magnitude band for throughput.
	if g.ThroughputVsRR < 0.15 || g.ThroughputVsRR > 0.60 {
		t.Errorf("throughput gain vs RR = %.1f%%, want 15–60%%", g.ThroughputVsRR*100)
	}
	if g.ThroughputVsEqual < 0.15 || g.ThroughputVsEqual > 0.60 {
		t.Errorf("throughput gain vs Equal = %.1f%%, want 15–60%%", g.ThroughputVsEqual*100)
	}
	if g.LatencyVsRR <= 0 || g.LatencyVsEqual <= 0 {
		t.Errorf("latency savings must be positive: %.1f%% / %.1f%%",
			g.LatencyVsRR*100, g.LatencyVsEqual*100)
	}
}

func TestFig13Fig14PlacementCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	f13, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	arm := series(t, f13, "ARM-only")
	acc := series(t, f13, "Accelerator-only")
	opt := series(t, f13, "LogNIC-opt")
	n := len(arm.Points)
	// At 64B ARM wins over accelerators (transfer overheads dominate); at
	// MTU the accelerators win (per-byte work offloaded).
	if !(arm.Points[0].Y > acc.Points[0].Y) {
		t.Errorf("at 64B ARM-only (%v) should beat Accelerator-only (%v)",
			arm.Points[0].Y, acc.Points[0].Y)
	}
	if !(acc.Points[n-1].Y > arm.Points[n-1].Y) {
		t.Errorf("at MTU Accelerator-only (%v) should beat ARM-only (%v)",
			acc.Points[n-1].Y, arm.Points[n-1].Y)
	}
	// LogNIC-opt is never materially worse than either baseline.
	for i := 0; i < n; i++ {
		best := math.Max(arm.Points[i].Y, acc.Points[i].Y)
		if opt.Points[i].Y < 0.93*best {
			t.Errorf("at %vB LogNIC-opt %v below best baseline %v",
				opt.Points[i].X, opt.Points[i].Y, best)
		}
	}
	// Latency: opt at most ~ the better baseline at the extremes.
	armL := series(t, f14, "ARM-only")
	accL := series(t, f14, "Accelerator-only")
	optL := series(t, f14, "LogNIC-opt")
	if optL.Points[0].Y > 1.1*math.Min(armL.Points[0].Y, accL.Points[0].Y) {
		t.Errorf("64B latency: opt %v worse than both baselines", optL.Points[0].Y)
	}
	if optL.Points[n-1].Y > 1.1*math.Min(armL.Points[n-1].Y, accL.Points[n-1].Y) {
		t.Errorf("MTU latency: opt %v worse than both baselines", optL.Points[n-1].Y)
	}
}

func TestFig15CreditKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	fig, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 8 {
			t.Fatalf("%s: %d points, want 8", s.Name, len(s.Points))
		}
		// Bandwidth improves early then flattens: the 1→4 gain dominates
		// the 5→8 gain.
		early := s.Points[3].Y - s.Points[0].Y
		late := s.Points[7].Y - s.Points[4].Y
		if early <= 0 {
			t.Errorf("%s: no early credit gain", s.Name)
		}
		if late > early {
			t.Errorf("%s: late gain %v exceeds early gain %v (no knee)", s.Name, late, early)
		}
	}
}

func TestFig15SuggestedCredits(t *testing.T) {
	credits, err := Fig15SuggestedCredits()
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range credits {
		// Paper suggests 5/4/4/4: fewer than the PANIC default of 8.
		if c >= 8 || c < 3 {
			t.Errorf("%s: suggested %d credits, want within 3..7", name, c)
		}
	}
}

func TestFig16Fig17SteeringWins(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	f16, err := Fig16(quick)
	if err != nil {
		t.Fatal(err)
	}
	f17, err := Fig17(quick)
	if err != nil {
		t.Fatal(err)
	}
	logn16 := series(t, f16, "LogNIC")
	logn17 := series(t, f17, "LogNIC")
	for ti := range logn16.Points {
		for _, static := range []string{"10/70", "30/50", "50/30", "70/10"} {
			s16 := series(t, f16, static)
			s17 := series(t, f17, static)
			if logn16.Points[ti].Y > s16.Points[ti].Y*1.05 {
				t.Errorf("%s: LogNIC latency %v worse than %s (%v)",
					logn16.Points[ti].Label, logn16.Points[ti].Y, static, s16.Points[ti].Y)
			}
			if logn17.Points[ti].Y < s17.Points[ti].Y*0.95 {
				t.Errorf("%s: LogNIC throughput %v worse than %s (%v)",
					logn17.Points[ti].Label, logn17.Points[ti].Y, static, s17.Points[ti].Y)
			}
		}
	}
}

func TestFig18Fig19ParallelismShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed figure")
	}
	f18, err := Fig18(quick)
	if err != nil {
		t.Fatal(err)
	}
	f19, err := Fig19(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []string{"Traffic Profile 1", "Traffic Profile 2"} {
		lat := series(t, f18, tp)
		thr := series(t, f19, tp)
		// Latency improves substantially from 1 lane to 8.
		if !(lat.Points[0].Y > 1.5*lat.Points[7].Y) {
			t.Errorf("%s: latency should drop strongly with lanes: %v -> %v",
				tp, lat.Points[0].Y, lat.Points[7].Y)
		}
		// Throughput grows then saturates: the final step adds <5%.
		if !(thr.Points[7].Y > thr.Points[0].Y) {
			t.Errorf("%s: throughput should grow with lanes", tp)
		}
		lastGain := thr.Points[7].Y/thr.Points[6].Y - 1
		if lastGain > 0.05 {
			t.Errorf("%s: still gaining %.1f%% at 8 lanes (no saturation)", tp, lastGain*100)
		}
	}
}

func TestFig18SuggestedLanesMatchPaper(t *testing.T) {
	lanes, err := Fig18SuggestedLanes()
	if err != nil {
		t.Fatal(err)
	}
	if lanes["Traffic Profile 1"] != 6 {
		t.Errorf("profile 1 lanes = %d, paper says 6", lanes["Traffic Profile 1"])
	}
	if lanes["Traffic Profile 2"] != 4 {
		t.Errorf("profile 2 lanes = %d, paper says 4", lanes["Traffic Profile 2"])
	}
}

func TestFigureFormat(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Name: "b", Points: []Point{{X: 1, Y: 4}}},
		},
	}
	out := fig.Format()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "demo") {
		t.Fatal("header missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header(2) + column row + 2 x rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "-") {
		t.Fatalf("missing-value dash expected in %q", lines[4])
	}
	// Labeled points use the label column.
	figL := Figure{
		ID: "figY", Series: []Series{{Name: "s", Points: []Point{{X: 0, Label: "app", Y: 1}}}},
	}
	if !strings.Contains(figL.Format(), "app") {
		t.Fatal("label missing from output")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	if !o.SeedSet {
		t.Fatal("withDefaults must mark the seed as resolved")
	}
	if o.Workers < 1 {
		t.Fatalf("default workers = %d, want >= 1 (GOMAXPROCS)", o.Workers)
	}
	if w := (Options{Workers: 3}).withDefaults().Workers; w != 3 {
		t.Fatalf("explicit workers = %d, want 3", w)
	}
	if s := (Options{Seed: 9}).withDefaults().Seed; s != 9 {
		t.Fatalf("explicit seed = %d, want 9", s)
	}
	if got := (Options{Scale: 2}).simTime(0.1); !approx(got, 0.2, 1e-12) {
		t.Fatalf("simTime = %v", got)
	}
}
