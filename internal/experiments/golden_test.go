package experiments_test

// Golden-digest suite over the figure generators (ISSUE 4): every figure
// of the paper's evaluation is regenerated at a fixed small scale for base
// seeds {1, 2, 3} and its complete data table digested. The committed
// digests were recorded from the seed container/heap event engine, so a
// pass proves the specialized engine reproduces every figure's every
// point bit-for-bit — the acceptance criterion of the fast-path rewrite.
// Refresh intentionally changed goldens with:
//
//	go test ./internal/experiments -run TestGoldenFigureDigests -update

import (
	"testing"

	"lognic/internal/experiments"
	"lognic/internal/simtest"
)

// goldenScale keeps the 14 × 3 regenerations affordable; figure content at
// this scale is statistically loose but bitwise deterministic, which is
// all a digest needs.
const goldenScale = 0.05

func TestGoldenFigureDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure three times")
	}
	if raceEnabled {
		t.Skip("42 figure regenerations under the race detector; the raced sim-level golden suite covers the engine")
	}
	g := simtest.LoadGolden(t, "testdata/golden_digests.json")
	defer g.Save(t)
	for _, gen := range experiments.All() {
		for _, seed := range []int64{1, 2, 3} {
			fig, err := gen.Run(experiments.Options{Scale: goldenScale, Seed: seed})
			if err != nil {
				t.Fatalf("%s/seed%d: %v", gen.ID, seed, err)
			}
			if len(fig.Series) == 0 {
				t.Fatalf("%s/seed%d: empty figure", gen.ID, seed)
			}
			g.Check(t, simtest.Key(gen.ID, "seed", seed), simtest.FigureDigest(fig))
		}
	}
}

// TestGoldenWorkerInvariance re-digests one simulator-heavy figure at
// Workers 1 vs the default pool: the digest, not just a summary statistic,
// must match — scheduling order can never leak into figure data.
func TestGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a figure twice")
	}
	gen, err := experiments.ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := gen.Run(experiments.Options{Scale: goldenScale, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := gen.Run(experiments.Options{Scale: goldenScale, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if simtest.FigureDigest(serial) != simtest.FigureDigest(parallel) {
		t.Fatal("figure digest depends on worker count")
	}
}
