package experiments

import (
	"context"
	"fmt"

	"lognic/internal/apps"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fig15Profiles are the four §4.6 scenario-#1 mixed traffic profiles; each
// splits bandwidth equally across its flow sizes.
func fig15Profiles() []struct {
	Name  string
	Sizes []unit.Size
} {
	return []struct {
		Name  string
		Sizes []unit.Size
	}{
		{"TP1(64/512)", []unit.Size{64, 512}},
		{"TP2(64/512/1024)", []unit.Size{64, 512, 1024}},
		{"TP3(64/256/512/1500)", []unit.Size{64, 256, 512, 1500}},
		{"TP4(64/128/256/1024/1500)", []unit.Size{64, 128, 256, 1024, 1500}},
	}
}

// fig15Credits is the provisioning range Figure 15 sweeps.
const fig15Credits = 8

// Fig15 — PANIC Model-1 bandwidth vs provisioned credits 1..8 for four
// mixed traffic profiles (§4.6 scenario #1). Measured by simulation at a
// fixed offered load; the LogNIC-suggested minimal credits per profile are
// available via Fig15SuggestedCredits. The per-profile offered loads come
// from the (deterministic) model, then all profile × credit replications
// fan out over the sweep pool.
func Fig15(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	d := devices.PANICPrototype()
	profiles := fig15Profiles()
	fig := Figure{
		ID: "fig15", Title: "PANIC bandwidth vs compute-unit credits (Model 1)",
		XLabel: "credits", YLabel: "Bandwidth (Gbps)",
	}
	type prep struct {
		prof traffic.Profile
		mean float64
	}
	preps, err := sweepObs(ctx, opts, "fig15.prep", len(profiles),
		func(_ context.Context, pi int) (prep, error) {
			tp := profiles[pi]
			prof, err := traffic.EqualSplit(tp.Name, unit.Gbps(1), tp.Sizes...)
			if err != nil {
				return prep{}, err
			}
			mean := prof.Sizes.Mean().Bytes()
			offered, err := panicM1Offer(d, mean)
			if err != nil {
				return prep{}, err
			}
			prof.Rate = unit.Bandwidth(offered)
			return prep{prof: prof, mean: mean}, nil
		})
	if err != nil {
		return Figure{}, err
	}
	ys, err := sweepObs(ctx, opts, "fig15", len(profiles)*fig15Credits,
		func(ctx context.Context, ti int) (float64, error) {
			pi, ci := ti/fig15Credits, ti%fig15Credits
			credits := ci + 1
			m, err := apps.PANICPipelined(d, preps[pi].mean, preps[pi].prof.Rate.BytesPerSecond(), credits)
			if err != nil {
				return 0, err
			}
			res, err := runSim(ctx, opts, sim.Config{
				Graph:    m.Graph,
				Hardware: m.Hardware,
				Profile:  preps[pi].prof,
				Seed:     opts.seedFor("fig15", pi, credits),
				Duration: opts.simTime(0.06),
				// PANIC compute units are fixed-function pipelines: their
				// per-packet time is set by the packet, not by a random
				// draw, which is what gives the credit knee its sharpness.
				DeterministicService: true,
				MaxEvents:            opts.MaxEvents,
			})
			if err != nil {
				return 0, err
			}
			return unit.Bandwidth(res.Throughput).GbpsValue(), nil
		})
	if err != nil {
		return Figure{}, err
	}
	for pi, tp := range profiles {
		s := Series{Name: tp.Name}
		for ci := 0; ci < fig15Credits; ci++ {
			s.Points = append(s.Points, Point{X: float64(ci + 1), Y: ys[pi*fig15Credits+ci]})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// panicM1Offer returns the Figure 15 offered load for a mean packet size:
// 75% of the pipelined chain's saturation capacity (the PANIC experiments
// run below line rate; the knee position is what the figure is about).
func panicM1Offer(d devices.PANIC, meanSize float64) (float64, error) {
	m, err := apps.PANICPipelined(d, meanSize, 1, 8)
	if err != nil {
		return 0, err
	}
	sat, err := m.SaturationThroughput()
	if err != nil {
		return 0, err
	}
	return 0.75 * sat.Attainable, nil
}

// Fig15SuggestedCredits runs the §4.6 scenario-#1 optimizer: the minimal
// credits whose modeled goodput stays within 3% of full provisioning, per
// traffic profile.
func Fig15SuggestedCredits() (map[string]int, error) {
	d := devices.PANICPrototype()
	out := map[string]int{}
	for _, tp := range fig15Profiles() {
		prof, err := traffic.EqualSplit(tp.Name, unit.Gbps(1), tp.Sizes...)
		if err != nil {
			return nil, err
		}
		mean := prof.Sizes.Mean().Bytes()
		offered, err := panicM1Offer(d, mean)
		if err != nil {
			return nil, err
		}
		credits, err := optimizer.SizeCredits(func(c int) (core.Model, error) {
			return apps.PANICPipelined(d, mean, offered, c)
		}, 8, 0.03)
		if err != nil {
			return nil, err
		}
		out[tp.Name] = credits
	}
	return out, nil
}

// fig16Sizes are the steering experiment's packet sizes.
var fig16Sizes = []struct {
	Name string
	Size float64
}{
	{"TP1(64B)", 64},
	{"TP2(512B)", 512},
	{"TP3(MTU)", 1500},
}

// fig16Splits are the static A2 shares (the paper's "10/70 … 70/10"
// labels: X% to A2, 80−X% to A3, A1 fixed at 20%).
var fig16Splits = []float64{0.10, 0.30, 0.50, 0.70}

// fig16Credits is the per-unit queue provisioning of the steering
// experiment: deep enough that a mis-steered unit shows up as queueing
// delay rather than as silent drops.
const fig16Credits = 64

// panicM2Offer is the Model-2 offered load for a packet size: 80% of the
// capacity at the capability-proportional steering point.
func panicM2Offer(d devices.PANIC, size float64) (float64, error) {
	m, err := apps.PANICParallelized(d, size, 1, 0.2, 0.56, 0.24, fig16Credits)
	if err != nil {
		return 0, err
	}
	sat, err := m.SaturationThroughput()
	if err != nil {
		return 0, err
	}
	return 0.8 * sat.Attainable, nil
}

// fig1617 runs the steering comparison once: per packet size, the four
// static splits plus the LogNIC-suggested one, measured by simulation.
// Stage 1 derives each size's offered load and optimizer-suggested split
// (model-only, fanned out per size); stage 2 fans every (size, split)
// replication out over the pool.
func fig1617(opts Options) (Figure, Figure, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	d := devices.PANICPrototype()
	f16 := Figure{
		ID: "fig16", Title: "PANIC steering latency: static vs LogNIC splits (Model 2)",
		XLabel: "profile", YLabel: "Latency (us)",
	}
	f17 := Figure{
		ID: "fig17", Title: "PANIC steering throughput: static vs LogNIC splits (Model 2)",
		XLabel: "profile", YLabel: "Throughput (Gbps)",
	}
	names := []string{"10/70", "30/50", "50/30", "70/10", "LogNIC"}
	for _, n := range names {
		f16.Series = append(f16.Series, Series{Name: n})
		f17.Series = append(f17.Series, Series{Name: n})
	}
	type prep struct {
		offered float64
		splits  []float64
	}
	preps, err := sweepObs(ctx, opts, "fig1617.prep", len(fig16Sizes),
		func(_ context.Context, ti int) (prep, error) {
			tp := fig16Sizes[ti]
			offered, err := panicM2Offer(d, tp.Size)
			if err != nil {
				return prep{}, err
			}
			splits := append([]float64(nil), fig16Splits...)
			suggested, err := optimizer.SteerTraffic(func(x float64) (core.Model, error) {
				return apps.PANICParallelized(d, tp.Size, offered, 0.2, x, 0.8-x, fig16Credits)
			}, 0.05, 0.75)
			if err != nil {
				return prep{}, err
			}
			return prep{offered: offered, splits: append(splits, suggested)}, nil
		})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	nSplits := len(names)
	type cell struct{ latency, throughput float64 }
	cells, err := sweepObs(ctx, opts, "fig1617", len(fig16Sizes)*nSplits,
		func(ctx context.Context, ci int) (cell, error) {
			ti, si := ci/nSplits, ci%nSplits
			tp, p := fig16Sizes[ti], preps[ti]
			m, err := apps.PANICParallelized(d, tp.Size, p.offered, 0.2, p.splits[si], 0.8-p.splits[si], fig16Credits)
			if err != nil {
				return cell{}, err
			}
			res, err := runSim(ctx, opts, sim.Config{
				Graph:     m.Graph,
				Hardware:  m.Hardware,
				Profile:   traffic.Fixed(tp.Name, unit.Bandwidth(p.offered), unit.Size(tp.Size)),
				Seed:      opts.seedFor("fig1617", ti, si),
				Duration:  opts.simTime(0.06),
				MaxEvents: opts.MaxEvents,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				latency:    res.MeanLatency * 1e6,
				throughput: unit.Bandwidth(res.Throughput).GbpsValue(),
			}, nil
		})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	for ti, tp := range fig16Sizes {
		for si := 0; si < nSplits; si++ {
			c := cells[ti*nSplits+si]
			f16.Series[si].Points = append(f16.Series[si].Points,
				Point{X: float64(ti), Label: tp.Name, Y: c.latency})
			f17.Series[si].Points = append(f17.Series[si].Points,
				Point{X: float64(ti), Label: tp.Name, Y: c.throughput})
		}
	}
	return f16, f17, nil
}

// Fig16 — PANIC Model-2 latency under static and LogNIC-suggested traffic
// splits (§4.6 scenario #2).
func Fig16(opts Options) (Figure, error) {
	f16, _, err := fig1617(opts)
	return f16, err
}

// Fig17 — PANIC Model-2 throughput for the same splits (§4.6 scenario #2).
func Fig17(opts Options) (Figure, error) {
	_, f17, err := fig1617(opts)
	return f17, err
}

// fig18Traffic are the two Model-3 traffic splits: the fraction of IP1's
// output continuing to IP3 (the rest joins IP2's traffic at IP4).
var fig18Traffic = []struct {
	Name  string
	Split float64
}{
	{"Traffic Profile 1", 0.5}, // 50%/50%
	{"Traffic Profile 2", 0.8}, // 80%/20%
}

// fig18Lanes is the IP4 parallel-degree range Figures 18/19 sweep.
const fig18Lanes = 8

// panicM3 builds the Model-3 configuration at one lane count.
func panicM3(d devices.PANIC, split float64, lanes int) (core.Model, float64, error) {
	const (
		shareIP1 = 0.7
		size     = 1024.0
	)
	u4, err := d.Unit("a4")
	if err != nil {
		return core.Model{}, 0, err
	}
	laneCap := size / u4.ServiceTime(size) // bytes/s per lane
	offered := 6.9 * laneCap
	m, err := apps.PANICHybrid(d, size, offered, shareIP1, split, lanes, 8)
	return m, offered, err
}

// fig1819 sweeps IP4's parallel degree 1..8 for both traffic profiles;
// every (profile, lanes) replication is one sweep task.
func fig1819(opts Options) (Figure, Figure, error) {
	opts = opts.withDefaults()
	d := devices.PANICPrototype()
	f18 := Figure{
		ID: "fig18", Title: "PANIC latency vs IP4 parallel degree (Model 3)",
		XLabel: "lanes", YLabel: "Latency (us)",
	}
	f19 := Figure{
		ID: "fig19", Title: "PANIC throughput vs IP4 parallel degree (Model 3)",
		XLabel: "lanes", YLabel: "Throughput (Gbps)",
	}
	type cell struct{ latency, throughput float64 }
	cells, err := sweepObs(context.Background(), opts, "fig1819", len(fig18Traffic)*fig18Lanes,
		func(ctx context.Context, ti int) (cell, error) {
			tpi, li := ti/fig18Lanes, ti%fig18Lanes
			lanes := li + 1
			m, offered, err := panicM3(d, fig18Traffic[tpi].Split, lanes)
			if err != nil {
				return cell{}, err
			}
			res, err := runSim(ctx, opts, sim.Config{
				Graph:     m.Graph,
				Hardware:  m.Hardware,
				Profile:   traffic.Fixed(fig18Traffic[tpi].Name, unit.Bandwidth(offered), 1024),
				Seed:      opts.seedFor("fig1819", tpi, lanes),
				Duration:  opts.simTime(0.3),
				MaxEvents: opts.MaxEvents,
			})
			if err != nil {
				return cell{}, err
			}
			return cell{
				latency:    res.MeanLatency * 1e6,
				throughput: unit.Bandwidth(res.Throughput).GbpsValue(),
			}, nil
		})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	for tpi, tp := range fig18Traffic {
		s18 := Series{Name: tp.Name}
		s19 := Series{Name: tp.Name}
		for li := 0; li < fig18Lanes; li++ {
			c := cells[tpi*fig18Lanes+li]
			x := float64(li + 1)
			s18.Points = append(s18.Points, Point{X: x, Y: c.latency})
			s19.Points = append(s19.Points, Point{X: x, Y: c.throughput})
		}
		f18.Series = append(f18.Series, s18)
		f19.Series = append(f19.Series, s19)
	}
	return f18, f19, nil
}

// Fig18 — PANIC Model-3 latency vs IP4 parallel degree for two traffic
// splits (§4.6 scenario #3).
func Fig18(opts Options) (Figure, error) {
	f18, _, err := fig1819(opts)
	return f18, err
}

// Fig19 — PANIC Model-3 throughput for the same sweep (§4.6 scenario #3).
func Fig19(opts Options) (Figure, error) {
	_, f19, err := fig1819(opts)
	return f19, err
}

// Fig18SuggestedLanes runs the §4.6 scenario-#3 optimizer: the minimal IP4
// parallel degree whose modeled latency is within 12% of full parallelism,
// per traffic profile.
func Fig18SuggestedLanes() (map[string]int, error) {
	d := devices.PANICPrototype()
	out := map[string]int{}
	for _, tp := range fig18Traffic {
		lanes, err := optimizer.TuneUnitParallelism(func(l int) (core.Model, error) {
			m, _, err := panicM3(d, tp.Split, l)
			return m, err
		}, 8, 0.12)
		if err != nil {
			return nil, fmt.Errorf("lanes for %s: %w", tp.Name, err)
		}
		out[tp.Name] = lanes
	}
	return out, nil
}
