package experiments

import (
	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fig13Sizes are the packet sizes Figures 13/14 sweep.
var fig13Sizes = []float64{64, 128, 256, 512, 1024, 1500}

// nfSchemes evaluates the three §4.5 placement schemes at one packet size
// and returns (throughput bytes/s, mean latency seconds) per scheme, in
// the order ARM-only, Accelerator-only, LogNIC-opt.
func nfSchemes(d devices.BlueField2, chain []apps.NF, size float64, opts Options) ([3]float64, [3]float64, error) {
	var thr, lat [3]float64
	opt, err := optimizer.PlaceNFs(d, chain, size, d.LineRate.BytesPerSecond())
	if err != nil {
		return thr, lat, err
	}
	placements := []apps.Placement{
		apps.ARMOnly(chain),
		apps.AcceleratorOnly(chain),
		opt,
	}
	// Common offered load for the latency comparison: 70% of the
	// optimized placement's capacity (the paper drives identical traffic
	// into all three).
	ref, err := apps.NFChainModel(d, chain, opt, size, d.LineRate.BytesPerSecond())
	if err != nil {
		return thr, lat, err
	}
	sat, err := ref.SaturationThroughput()
	if err != nil {
		return thr, lat, err
	}
	latLoad := 0.7 * sat.Attainable

	for i, p := range placements {
		// Throughput: offer line rate, measure what survives.
		m, err := apps.NFChainModel(d, chain, p, size, d.LineRate.BytesPerSecond())
		if err != nil {
			return thr, lat, err
		}
		res, err := sim.Run(sim.Config{
			Graph:    m.Graph,
			Hardware: m.Hardware,
			Profile:  traffic.Fixed("line", d.LineRate, unit.Size(size)),
			Seed:     opts.Seed,
			Duration: opts.simTime(0.05),
		})
		if err != nil {
			return thr, lat, err
		}
		thr[i] = res.Throughput

		// Latency: offer the common sub-saturation load.
		m2, err := apps.NFChainModel(d, chain, p, size, latLoad)
		if err != nil {
			return thr, lat, err
		}
		res2, err := sim.Run(sim.Config{
			Graph:    m2.Graph,
			Hardware: m2.Hardware,
			Profile:  traffic.Fixed("load", unit.Bandwidth(latLoad), unit.Size(size)),
			Seed:     opts.Seed + 1,
			Duration: opts.simTime(0.05),
		})
		if err != nil {
			return thr, lat, err
		}
		lat[i] = res2.MeanLatency
	}
	return thr, lat, nil
}

// fig1314 runs the case-study-#4 comparison once and splits it.
func fig1314(opts Options) (Figure, Figure, error) {
	opts = opts.withDefaults()
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()
	schemes := []string{"ARM-only", "Accelerator-only", "LogNIC-opt"}
	f13 := Figure{
		ID: "fig13", Title: "NF chain throughput vs packet size across placements",
		XLabel: "pkt(B)", YLabel: "Throughput (Gbps)",
	}
	f14 := Figure{
		ID: "fig14", Title: "NF chain average latency vs packet size across placements",
		XLabel: "pkt(B)", YLabel: "Avg latency (us)",
	}
	for i := range schemes {
		f13.Series = append(f13.Series, Series{Name: schemes[i]})
		f14.Series = append(f14.Series, Series{Name: schemes[i]})
	}
	for _, size := range fig13Sizes {
		thr, lat, err := nfSchemes(d, chain, size, opts)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		for i := range schemes {
			f13.Series[i].Points = append(f13.Series[i].Points,
				Point{X: size, Y: unit.Bandwidth(thr[i]).GbpsValue()})
			f14.Series[i].Points = append(f14.Series[i].Points,
				Point{X: size, Y: lat[i] * 1e6})
		}
	}
	return f13, f14, nil
}

// Fig13 — NF chain throughput (Gbps) vs packet size for ARM-only /
// Accelerator-only / LogNIC-opt placement on the BlueField-2 (§4.5).
func Fig13(opts Options) (Figure, error) {
	f13, _, err := fig1314(opts)
	return f13, err
}

// Fig14 — NF chain average latency (µs) vs packet size for the same
// placements (§4.5).
func Fig14(opts Options) (Figure, error) {
	_, f14, err := fig1314(opts)
	return f14, err
}
