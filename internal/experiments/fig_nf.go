package experiments

import (
	"context"

	"lognic/internal/apps"
	"lognic/internal/devices"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fig13Sizes are the packet sizes Figures 13/14 sweep.
var fig13Sizes = []float64{64, 128, 256, 512, 1024, 1500}

// nfSchemes evaluates the three §4.5 placement schemes at one packet size
// and returns (throughput bytes/s, mean latency seconds) per scheme, in
// the order ARM-only, Accelerator-only, LogNIC-opt. sizeIdx keys the RNG
// streams of the six simulator replications (two per scheme: a line-rate
// throughput run and a sub-saturation latency run).
func nfSchemes(ctx context.Context, d devices.BlueField2, chain []apps.NF, size float64, opts Options, sizeIdx int) ([3]float64, [3]float64, error) {
	var thr, lat [3]float64
	opt, err := optimizer.PlaceNFs(d, chain, size, d.LineRate.BytesPerSecond())
	if err != nil {
		return thr, lat, err
	}
	placements := []apps.Placement{
		apps.ARMOnly(chain),
		apps.AcceleratorOnly(chain),
		opt,
	}
	// Common offered load for the latency comparison: 70% of the
	// optimized placement's capacity (the paper drives identical traffic
	// into all three).
	ref, err := apps.NFChainModel(d, chain, opt, size, d.LineRate.BytesPerSecond())
	if err != nil {
		return thr, lat, err
	}
	sat, err := ref.SaturationThroughput()
	if err != nil {
		return thr, lat, err
	}
	latLoad := 0.7 * sat.Attainable

	for i, p := range placements {
		// Throughput: offer line rate, measure what survives.
		m, err := apps.NFChainModel(d, chain, p, size, d.LineRate.BytesPerSecond())
		if err != nil {
			return thr, lat, err
		}
		res, err := runSim(ctx, opts, sim.Config{
			Graph:     m.Graph,
			Hardware:  m.Hardware,
			Profile:   traffic.Fixed("line", d.LineRate, unit.Size(size)),
			Seed:      opts.seedFor("fig1314", sizeIdx, i*2),
			Duration:  opts.simTime(0.05),
			MaxEvents: opts.MaxEvents,
		})
		if err != nil {
			return thr, lat, err
		}
		thr[i] = res.Throughput

		// Latency: offer the common sub-saturation load.
		m2, err := apps.NFChainModel(d, chain, p, size, latLoad)
		if err != nil {
			return thr, lat, err
		}
		res2, err := runSim(ctx, opts, sim.Config{
			Graph:     m2.Graph,
			Hardware:  m2.Hardware,
			Profile:   traffic.Fixed("load", unit.Bandwidth(latLoad), unit.Size(size)),
			Seed:      opts.seedFor("fig1314", sizeIdx, i*2+1),
			Duration:  opts.simTime(0.05),
			MaxEvents: opts.MaxEvents,
		})
		if err != nil {
			return thr, lat, err
		}
		lat[i] = res2.MeanLatency
	}
	return thr, lat, nil
}

// fig1314 runs the case-study-#4 comparison once and splits it. The six
// packet sizes fan out over the sweep pool.
func fig1314(opts Options) (Figure, Figure, error) {
	opts = opts.withDefaults()
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()
	schemes := []string{"ARM-only", "Accelerator-only", "LogNIC-opt"}
	f13 := Figure{
		ID: "fig13", Title: "NF chain throughput vs packet size across placements",
		XLabel: "pkt(B)", YLabel: "Throughput (Gbps)",
	}
	f14 := Figure{
		ID: "fig14", Title: "NF chain average latency vs packet size across placements",
		XLabel: "pkt(B)", YLabel: "Avg latency (us)",
	}
	for i := range schemes {
		f13.Series = append(f13.Series, Series{Name: schemes[i]})
		f14.Series = append(f14.Series, Series{Name: schemes[i]})
	}
	type cell struct{ thr, lat [3]float64 }
	cells, err := sweepObs(context.Background(), opts, "fig1314", len(fig13Sizes),
		func(ctx context.Context, si int) (cell, error) {
			thr, lat, err := nfSchemes(ctx, d, chain, fig13Sizes[si], opts, si)
			if err != nil {
				return cell{}, err
			}
			return cell{thr: thr, lat: lat}, nil
		})
	if err != nil {
		return Figure{}, Figure{}, err
	}
	for si, size := range fig13Sizes {
		for i := range schemes {
			f13.Series[i].Points = append(f13.Series[i].Points,
				Point{X: size, Y: unit.Bandwidth(cells[si].thr[i]).GbpsValue()})
			f14.Series[i].Points = append(f14.Series[i].Points,
				Point{X: size, Y: cells[si].lat[i] * 1e6})
		}
	}
	return f13, f14, nil
}

// Fig13 — NF chain throughput (Gbps) vs packet size for ARM-only /
// Accelerator-only / LogNIC-opt placement on the BlueField-2 (§4.5).
func Fig13(opts Options) (Figure, error) {
	f13, _, err := fig1314(opts)
	return f13, err
}

// Fig14 — NF chain average latency (µs) vs packet size for the same
// placements (§4.5).
func Fig14(opts Options) (Figure, error) {
	_, f14, err := fig1314(opts)
	return f14, err
}
