// Package graph provides the generic directed-graph machinery the LogNIC
// execution graph (internal/core) is built on: insertion-ordered adjacency,
// cycle detection, topological ordering, reachability, and source→sink path
// enumeration. Vertices are identified by string names; payloads live in
// the caller's own structures.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed edge between two named vertices.
type Edge struct {
	From, To string
}

// Directed is a simple directed graph. The zero value is not usable;
// construct with New.
type Directed struct {
	order []string            // insertion order of vertices
	index map[string]int      // vertex name -> order position
	succ  map[string][]string // adjacency, insertion ordered
	pred  map[string][]string
	edges map[Edge]bool
}

// New returns an empty directed graph.
func New() *Directed {
	return &Directed{
		index: map[string]int{},
		succ:  map[string][]string{},
		pred:  map[string][]string{},
		edges: map[Edge]bool{},
	}
}

// AddVertex inserts a vertex if not already present.
func (g *Directed) AddVertex(name string) {
	if _, ok := g.index[name]; ok {
		return
	}
	g.index[name] = len(g.order)
	g.order = append(g.order, name)
}

// HasVertex reports whether the vertex exists.
func (g *Directed) HasVertex(name string) bool {
	_, ok := g.index[name]
	return ok
}

// AddEdge inserts a directed edge, creating missing endpoints. Duplicate
// edges are ignored. Self loops are rejected because LogNIC execution
// graphs are DAGs by construction.
func (g *Directed) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("graph: self loop on %q", from)
	}
	g.AddVertex(from)
	g.AddVertex(to)
	e := Edge{From: from, To: to}
	if g.edges[e] {
		return nil
	}
	g.edges[e] = true
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// HasEdge reports whether the edge exists.
func (g *Directed) HasEdge(from, to string) bool {
	return g.edges[Edge{From: from, To: to}]
}

// Vertices returns the vertex names in insertion order (copy).
func (g *Directed) Vertices() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Edges returns all edges sorted by (from, to) insertion order.
func (g *Directed) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if g.index[out[i].From] != g.index[out[j].From] {
			return g.index[out[i].From] < g.index[out[j].From]
		}
		return g.index[out[i].To] < g.index[out[j].To]
	})
	return out
}

// NumVertices reports the vertex count.
func (g *Directed) NumVertices() int { return len(g.order) }

// NumEdges reports the edge count.
func (g *Directed) NumEdges() int { return len(g.edges) }

// Successors returns the out-neighbors of a vertex in insertion order.
func (g *Directed) Successors(name string) []string {
	out := make([]string, len(g.succ[name]))
	copy(out, g.succ[name])
	return out
}

// Predecessors returns the in-neighbors of a vertex in insertion order.
func (g *Directed) Predecessors(name string) []string {
	out := make([]string, len(g.pred[name]))
	copy(out, g.pred[name])
	return out
}

// InDegree returns the number of incoming edges.
func (g *Directed) InDegree(name string) int { return len(g.pred[name]) }

// OutDegree returns the number of outgoing edges.
func (g *Directed) OutDegree(name string) int { return len(g.succ[name]) }

// Sources returns vertices with no incoming edges, in insertion order.
func (g *Directed) Sources() []string {
	var out []string
	for _, v := range g.order {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns vertices with no outgoing edges, in insertion order.
func (g *Directed) Sinks() []string {
	var out []string
	for _, v := range g.order {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// ErrCycle is returned by TopoSort when the graph is not acyclic.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order of the vertices (stable with respect
// to insertion order among ready vertices), or ErrCycle.
func (g *Directed) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.order))
	for _, v := range g.order {
		indeg[v] = len(g.pred[v])
	}
	// Kahn's algorithm with an insertion-ordered ready list.
	ready := make([]string, 0, len(g.order))
	for _, v := range g.order {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	out := make([]string, 0, len(g.order))
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		out = append(out, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(out) != len(g.order) {
		return nil, ErrCycle
	}
	return out, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Directed) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable returns the set of vertices reachable from the given start
// (including the start itself).
func (g *Directed) Reachable(start string) map[string]bool {
	seen := map[string]bool{}
	if !g.HasVertex(start) {
		return seen
	}
	stack := []string{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		for _, w := range g.succ[v] {
			if !seen[w] {
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Paths enumerates every simple path from one vertex to another, in a
// deterministic order. For DAGs all paths are simple, so this enumerates
// every execution path between ingress and egress. The limit guards against
// combinatorial blowups; 0 means no limit. It returns an error if the limit
// is exceeded.
func (g *Directed) Paths(from, to string, limit int) ([][]string, error) {
	if !g.HasVertex(from) || !g.HasVertex(to) {
		return nil, nil
	}
	var out [][]string
	var path []string
	onPath := map[string]bool{}
	var dfs func(v string) error
	dfs = func(v string) error {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[v] = false
		}()
		if v == to {
			cp := make([]string, len(path))
			copy(cp, path)
			out = append(out, cp)
			if limit > 0 && len(out) > limit {
				return fmt.Errorf("graph: more than %d paths from %q to %q", limit, from, to)
			}
			return nil
		}
		for _, w := range g.succ[v] {
			if onPath[w] {
				continue // skip cycles; only simple paths
			}
			if err := dfs(w); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(from); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns an independent copy of the graph.
func (g *Directed) Clone() *Directed {
	c := New()
	for _, v := range g.order {
		c.AddVertex(v)
	}
	for _, v := range g.order {
		for _, w := range g.succ[v] {
			_ = c.AddEdge(v, w)
		}
	}
	return c
}
