package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T) *Directed {
	t.Helper()
	g := New()
	for _, e := range [][2]string{{"in", "a"}, {"in", "b"}, {"a", "out"}, {"b", "out"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddVertexIdempotent(t *testing.T) {
	g := New()
	g.AddVertex("x")
	g.AddVertex("x")
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
	if !g.HasVertex("x") || g.HasVertex("y") {
		t.Fatal("HasVertex wrong")
	}
}

func TestAddEdgeCreatesVerticesAndDedups(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("HasEdge wrong")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("expected error for self loop")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := buildDiamond(t)
	if g.InDegree("out") != 2 || g.OutDegree("in") != 2 {
		t.Fatal("degree mismatch")
	}
	if got := g.Successors("in"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Successors(in) = %v", got)
	}
	if got := g.Predecessors("out"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Predecessors(out) = %v", got)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := buildDiamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []string{"in"}) {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []string{"out"}) {
		t.Fatalf("Sinks = %v", got)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates edge %v: %v", e, order)
		}
	}
	if !g.IsDAG() {
		t.Fatal("diamond should be a DAG")
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("b", "c")
	_ = g.AddEdge("c", "a")
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	if g.IsDAG() {
		t.Fatal("cycle should not be a DAG")
	}
}

func TestReachable(t *testing.T) {
	g := buildDiamond(t)
	_ = g.AddEdge("isolated1", "isolated2")
	r := g.Reachable("in")
	for _, v := range []string{"in", "a", "b", "out"} {
		if !r[v] {
			t.Errorf("%q should be reachable", v)
		}
	}
	if r["isolated1"] || r["isolated2"] {
		t.Error("isolated vertices should be unreachable from in")
	}
	if len(g.Reachable("nope")) != 0 {
		t.Error("unknown start should reach nothing")
	}
}

func TestPathsDiamond(t *testing.T) {
	g := buildDiamond(t)
	paths, err := g.Paths("in", "out", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"in", "a", "out"}, {"in", "b", "out"}}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("Paths = %v, want %v", paths, want)
	}
}

func TestPathsNoRoute(t *testing.T) {
	g := New()
	_ = g.AddEdge("a", "b")
	g.AddVertex("c")
	paths, err := g.Paths("a", "c", 0)
	if err != nil || len(paths) != 0 {
		t.Fatalf("Paths = %v err=%v, want empty", paths, err)
	}
	paths, err = g.Paths("nope", "c", 0)
	if err != nil || paths != nil {
		t.Fatalf("unknown vertex should give nil, got %v err=%v", paths, err)
	}
}

func TestPathsLimit(t *testing.T) {
	// Chain of diamonds: 2^5 = 32 paths.
	g := New()
	prev := "v0"
	for i := 0; i < 5; i++ {
		hi := fmt.Sprintf("h%d", i)
		lo := fmt.Sprintf("l%d", i)
		next := fmt.Sprintf("v%d", i+1)
		_ = g.AddEdge(prev, hi)
		_ = g.AddEdge(prev, lo)
		_ = g.AddEdge(hi, next)
		_ = g.AddEdge(lo, next)
		prev = next
	}
	paths, err := g.Paths("v0", "v5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 32 {
		t.Fatalf("got %d paths, want 32", len(paths))
	}
	if _, err := g.Paths("v0", "v5", 10); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestPathsSkipCycles(t *testing.T) {
	g := New()
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("b", "a") // 2-cycle
	_ = g.AddEdge("b", "c")
	paths, err := g.Paths("a", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !reflect.DeepEqual(paths[0], []string{"a", "b", "c"}) {
		t.Fatalf("Paths = %v", paths)
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	if !reflect.DeepEqual(g.Vertices(), c.Vertices()) {
		t.Fatal("clone vertices differ")
	}
	if !reflect.DeepEqual(g.Edges(), c.Edges()) {
		t.Fatal("clone edges differ")
	}
	_ = c.AddEdge("out", "new")
	if g.HasVertex("new") {
		t.Fatal("clone is not independent")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New()
	_ = g.AddEdge("b", "c")
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("a", "c")
	want := []Edge{{"b", "c"}, {"a", "b"}, {"a", "c"}}
	for i := 0; i < 10; i++ {
		if got := g.Edges(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Edges = %v, want %v", got, want)
		}
	}
}

// randomDAG builds a DAG by only adding forward edges over a shuffled label
// ordering.
func randomDAG(seed int64, n, m int) *Directed {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("n%02d", i)
		g.AddVertex(labels[i])
	}
	for i := 0; i < m; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		_ = g.AddEdge(labels[a], labels[b])
	}
	return g
}

func TestTopoSortRandomDAGProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 20, 40)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsEndpointsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 12, 24)
		paths, err := g.Paths("n00", "n11", 10000)
		if err != nil {
			return false
		}
		for _, p := range paths {
			if p[0] != "n00" || p[len(p)-1] != "n11" {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
