package numopt

import (
	"errors"
	"math"
	"testing"
)

// An objective that is +Inf everywhere must surface ErrNoFeasibleStart
// rather than the old silent Result{F: +Inf, X: nil}.
func TestMultiStartAllInfeasible(t *testing.T) {
	inf := func(x []float64) float64 { return math.Inf(1) }
	starts := [][]float64{{0, 0}, {1, 1}, {-3, 2}}
	res, err := MultiStart(inf, starts, NelderMeadOptions{MaxIter: 50})
	if !errors.Is(err, ErrNoFeasibleStart) {
		t.Fatalf("err = %v, want ErrNoFeasibleStart", err)
	}
	if !math.IsInf(res.F, 1) {
		t.Fatalf("res.F = %v, want +Inf", res.F)
	}
	if res.X != nil {
		t.Fatalf("res.X = %v, want nil", res.X)
	}
}

// NaN objectives are never "better" than +Inf under <, so an all-NaN
// objective is also infeasible.
func TestMultiStartAllNaN(t *testing.T) {
	nan := func(x []float64) float64 { return math.NaN() }
	_, err := MultiStart(nan, [][]float64{{0}}, NelderMeadOptions{MaxIter: 20})
	if !errors.Is(err, ErrNoFeasibleStart) {
		t.Fatalf("err = %v, want ErrNoFeasibleStart", err)
	}
}

// A single feasible region must still win even when most starts are
// infeasible, and the result must carry convergence diagnostics.
func TestMultiStartPartiallyFeasible(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(1)
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res, err := MultiStart(f, [][]float64{{-5}, {1}}, NelderMeadOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Fatalf("res.X = %v, want ~2", res.X)
	}
	if !res.Converged {
		t.Fatal("expected the quadratic to converge within 500 iterations")
	}
	if res.Iterations <= 0 {
		t.Fatalf("Iterations = %d, want > 0", res.Iterations)
	}
}
