package numopt

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1) + 7
	}
	r, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("expected convergence")
	}
	if !approx(r.X[0], 3, 1e-4) || !approx(r.X[1], -1, 1e-4) {
		t.Fatalf("X = %v, want (3,-1)", r.X)
	}
	if !approx(r.F, 7, 1e-6) {
		t.Fatalf("F = %v, want 7", r.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 1, 1e-3) || !approx(r.X[1], 1, 1e-3) {
		t.Fatalf("X = %v, want (1,1)", r.X)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 42) }
	r, err := NelderMead(f, []float64{0}, NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 42, 1e-3) {
		t.Fatalf("X = %v, want 42", r.X)
	}
}

func TestNelderMeadErrors(t *testing.T) {
	if _, err := NelderMead(nil, []float64{0}, NelderMeadOptions{}); err == nil {
		t.Fatal("nil objective should fail")
	}
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("empty start should fail")
	}
}

func TestNelderMeadMaxIterNotConverged(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	r, err := NelderMead(f, []float64{100}, NelderMeadOptions{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Fatal("2 iterations should not converge from x=100")
	}
	if r.Iterations != 2 {
		t.Fatalf("Iterations = %d", r.Iterations)
	}
}

func TestPenalizedConstraint(t *testing.T) {
	// Minimize x² subject to x >= 2 (g(x) = 2 - x <= 0).
	f := func(x []float64) float64 { return x[0] * x[0] }
	g := func(x []float64) float64 { return 2 - x[0] }
	pf := Penalized(f, nil, 1e8, g)
	r, err := NelderMead(pf, []float64{5}, NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 2, 1e-2) {
		t.Fatalf("X = %v, want 2", r.X)
	}
}

func TestPenalizedBounds(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // wants x → +inf
	b := Bounds{Lo: []float64{0}, Hi: []float64{3}}
	pf := Penalized(f, &b, 1e8)
	r, err := NelderMead(pf, []float64{1}, NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 3, 1e-2) {
		t.Fatalf("X = %v, want 3 (upper bound)", r.X)
	}
}

func TestPenalizedDefaultWeight(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	g := func(x []float64) float64 { return 1.0 } // always violated by 1
	pf := Penalized(f, nil, 0, g)
	if got := pf([]float64{0}); got != 1e9 {
		t.Fatalf("default weight: got %v, want 1e9", got)
	}
}

func TestBoundsClampAndValidate(t *testing.T) {
	b := Bounds{Lo: []float64{0, -1}, Hi: []float64{1, 1}}
	if err := b.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(3); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	bad := Bounds{Lo: []float64{2}, Hi: []float64{1}}
	if err := bad.Validate(1); err == nil {
		t.Fatal("inverted bounds should fail")
	}
	x := b.Clamp([]float64{5, -7})
	if x[0] != 1 || x[1] != -1 {
		t.Fatalf("Clamp = %v", x)
	}
}

func TestMultiStartFindsGlobal(t *testing.T) {
	// Two wells: a shallow one at x=0 (f=1), deep at x=10 (f=0).
	f := func(x []float64) float64 {
		d0 := x[0]
		d1 := x[0] - 10
		return math.Min(d0*d0+1, d1*d1)
	}
	b := Bounds{Lo: []float64{-5}, Hi: []float64{15}}
	r, err := MultiStart(f, GridStarts(b, 4), NelderMeadOptions{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r.X[0], 10, 1e-2) {
		t.Fatalf("X = %v, want global minimum at 10", r.X)
	}
	if _, err := MultiStart(f, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("no starts should fail")
	}
}

func TestGridStarts(t *testing.T) {
	b := Bounds{Lo: []float64{0, 0}, Hi: []float64{10, 2}}
	starts := GridStarts(b, 2)
	if len(starts) != 1+2*2 {
		t.Fatalf("got %d starts", len(starts))
	}
	if starts[0][0] != 5 || starts[0][1] != 1 {
		t.Fatalf("center = %v", starts[0])
	}
	if GridStarts(Bounds{}, 2) != nil {
		t.Fatal("empty bounds should yield nil")
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx, err := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, 2.5, 1e-6) || fx > 1e-12 {
		t.Fatalf("x = %v fx = %v", x, fx)
	}
	// Swapped bounds work too.
	x, _, err = GoldenSection(func(x float64) float64 { return math.Abs(x - 7) }, 10, 0, 0)
	if err != nil || !approx(x, 7, 1e-6) {
		t.Fatalf("x = %v err = %v", x, err)
	}
	if _, _, err := GoldenSection(nil, 0, 1, 1e-9); err == nil {
		t.Fatal("nil objective should fail")
	}
}

func TestIntExhaustive(t *testing.T) {
	f := func(x []int) float64 {
		return float64((x[0]-3)*(x[0]-3) + (x[1]-1)*(x[1]-1))
	}
	r, err := IntExhaustive(f, []IntRange{{1, 8}, {0, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 3 || r.X[1] != 1 || r.F != 0 {
		t.Fatalf("r = %+v", r)
	}
	if r.Evaluated != 8*5 {
		t.Fatalf("Evaluated = %d, want 40", r.Evaluated)
	}
	if !r.Exhaustive {
		t.Fatal("should report exhaustive")
	}
}

func TestIntExhaustiveErrors(t *testing.T) {
	f := func(x []int) float64 { return 0 }
	if _, err := IntExhaustive(nil, []IntRange{{0, 1}}, 0); err == nil {
		t.Fatal("nil objective should fail")
	}
	if _, err := IntExhaustive(f, nil, 0); err == nil {
		t.Fatal("no ranges should fail")
	}
	if _, err := IntExhaustive(f, []IntRange{{2, 1}}, 0); err == nil {
		t.Fatal("empty range should fail")
	}
	if _, err := IntExhaustive(f, []IntRange{{1, 100}, {1, 100}, {1, 100}}, 1000); err == nil {
		t.Fatal("budget overflow should fail")
	}
}

func TestIntCoordinateDescent(t *testing.T) {
	f := func(x []int) float64 {
		return float64((x[0]-5)*(x[0]-5)) + float64((x[1]+2)*(x[1]+2))
	}
	r, err := IntCoordinateDescent(f, []IntRange{{-10, 10}, {-10, 10}}, []int{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 5 || r.X[1] != -2 {
		t.Fatalf("X = %v", r.X)
	}
	// Start clamping.
	r, err = IntCoordinateDescent(f, []IntRange{{0, 3}, {0, 3}}, []int{99, -99}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] != 3 || r.X[1] != 0 {
		t.Fatalf("clamped X = %v", r.X)
	}
	if _, err := IntCoordinateDescent(f, []IntRange{{0, 1}}, []int{0, 0}, 0); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestIntSearchPicksStrategy(t *testing.T) {
	f := func(x []int) float64 { return float64(x[0] * x[0]) }
	r, err := IntSearch(f, []IntRange{{-4, 4}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhaustive || r.X[0] != 0 {
		t.Fatalf("r = %+v", r)
	}
	// Big space → coordinate descent.
	big := []IntRange{{0, 1000}, {0, 1000}, {0, 1000}}
	f3 := func(x []int) float64 {
		return float64((x[0]-7)*(x[0]-7) + (x[1]-9)*(x[1]-9) + (x[2]-11)*(x[2]-11))
	}
	r, err = IntSearch(f3, big, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhaustive {
		t.Fatal("big space should not be exhaustive")
	}
	if r.X[0] != 7 || r.X[1] != 9 || r.X[2] != 11 {
		t.Fatalf("X = %v", r.X)
	}
}

func TestIntExhaustiveFindsTrueMinProperty(t *testing.T) {
	f := func(a, b int8) bool {
		ta := int(a%5) + 5 // target in [0..9]
		tb := int(b%5) + 5
		obj := func(x []int) float64 {
			return math.Abs(float64(x[0]-ta)) + math.Abs(float64(x[1]-tb))
		}
		r, err := IntExhaustive(obj, []IntRange{{0, 9}, {0, 9}}, 0)
		if err != nil {
			return false
		}
		return r.X[0] == ta && r.X[1] == tb && r.F == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
