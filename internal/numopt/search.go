package numopt

import (
	"errors"
	"math"
)

// GoldenSection minimizes a unimodal 1-D function on [lo, hi] to the given
// x tolerance. Used for 1-D knobs like the traffic-steering fraction of
// case study #5.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (x, fx float64, err error) {
	if f == nil {
		return 0, 0, errors.New("numopt: nil objective")
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x), nil
}

// IntObjective is an objective over integer-valued knobs.
type IntObjective func(x []int) float64

// IntResult is the best integer point found.
type IntResult struct {
	X          []int
	F          float64
	Evaluated  int
	Exhaustive bool
}

// IntRange is an inclusive integer interval for one knob.
type IntRange struct{ Lo, Hi int }

func (r IntRange) size() int { return r.Hi - r.Lo + 1 }

// spaceSize returns the product of range sizes, saturating at max.
func spaceSize(ranges []IntRange, max int) int {
	total := 1
	for _, r := range ranges {
		if r.size() <= 0 {
			return 0
		}
		total *= r.size()
		if total > max {
			return max + 1
		}
	}
	return total
}

// IntExhaustive enumerates the full cross product of the ranges and returns
// the minimum. It refuses spaces larger than maxEvals to keep misuse loud.
func IntExhaustive(f IntObjective, ranges []IntRange, maxEvals int) (IntResult, error) {
	if f == nil {
		return IntResult{}, errors.New("numopt: nil objective")
	}
	if len(ranges) == 0 {
		return IntResult{}, errors.New("numopt: no ranges")
	}
	if maxEvals <= 0 {
		maxEvals = 1 << 20
	}
	if n := spaceSize(ranges, maxEvals); n == 0 {
		return IntResult{}, errors.New("numopt: empty range")
	} else if n > maxEvals {
		return IntResult{}, errors.New("numopt: search space exceeds eval budget")
	}
	x := make([]int, len(ranges))
	for i, r := range ranges {
		x[i] = r.Lo
	}
	best := IntResult{F: math.Inf(1), Exhaustive: true}
	for {
		v := f(x)
		best.Evaluated++
		if v < best.F {
			best.F = v
			best.X = append([]int(nil), x...)
		}
		// Odometer increment.
		i := 0
		for ; i < len(x); i++ {
			x[i]++
			if x[i] <= ranges[i].Hi {
				break
			}
			x[i] = ranges[i].Lo
		}
		if i == len(x) {
			return best, nil
		}
	}
}

// IntCoordinateDescent performs cyclic coordinate descent over integer
// knobs starting from start, moving each coordinate to its best value in
// its range while others stay fixed, until a full sweep makes no progress.
// It handles spaces too large for IntExhaustive; the result is a local
// optimum.
func IntCoordinateDescent(f IntObjective, ranges []IntRange, start []int, maxSweeps int) (IntResult, error) {
	if f == nil {
		return IntResult{}, errors.New("numopt: nil objective")
	}
	if len(ranges) == 0 || len(start) != len(ranges) {
		return IntResult{}, errors.New("numopt: bad ranges/start")
	}
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	x := append([]int(nil), start...)
	for i, r := range ranges {
		if r.size() <= 0 {
			return IntResult{}, errors.New("numopt: empty range")
		}
		if x[i] < r.Lo {
			x[i] = r.Lo
		}
		if x[i] > r.Hi {
			x[i] = r.Hi
		}
	}
	best := IntResult{X: append([]int(nil), x...), F: f(x), Evaluated: 1}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := false
		for i, r := range ranges {
			for v := r.Lo; v <= r.Hi; v++ {
				if v == best.X[i] {
					continue
				}
				cand := append([]int(nil), best.X...)
				cand[i] = v
				fv := f(cand)
				best.Evaluated++
				if fv < best.F {
					best.F = fv
					best.X = cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// IntSearch picks a strategy: exhaustive when the space fits the budget,
// coordinate descent from the range midpoints otherwise.
func IntSearch(f IntObjective, ranges []IntRange, maxEvals int) (IntResult, error) {
	if maxEvals <= 0 {
		maxEvals = 1 << 16
	}
	if n := spaceSize(ranges, maxEvals); n > 0 && n <= maxEvals {
		return IntExhaustive(f, ranges, maxEvals)
	}
	start := make([]int, len(ranges))
	for i, r := range ranges {
		start[i] = (r.Lo + r.Hi) / 2
	}
	return IntCoordinateDescent(f, ranges, start, 0)
}
