// Package numopt provides the numerical optimization machinery behind the
// LogNIC optimizer (paper §3.8). The paper's Python implementation uses
// SciPy's SLSQP; this stdlib-only port combines a Nelder–Mead simplex
// search with exterior penalty functions for constraints, multi-start to
// escape poor local minima, golden-section search for one-dimensional
// problems, and exhaustive/coordinate integer search for the small discrete
// knobs (parallelism degrees, queue credits) the evaluation explores. The
// paper itself notes that a local method such as Nelder–Mead is an
// acceptable solver choice.
package numopt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Objective is a function to minimize.
type Objective func(x []float64) float64

// Result carries the best point found and diagnostics.
type Result struct {
	X          []float64
	F          float64
	Iterations int
	Converged  bool
}

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations (default 2000).
	MaxIter int
	// TolF stops when the simplex's objective spread falls below this
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex collapses spatially (default 1e-10).
	TolX float64
	// Step is the initial simplex size per dimension (default 5% of the
	// start value, or 0.1 when the start coordinate is zero).
	Step float64
}

func (o NelderMeadOptions) withDefaults() NelderMeadOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.TolF <= 0 {
		o.TolF = 1e-10
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	return o
}

// NelderMead minimizes f starting from x0 using the standard
// reflection/expansion/contraction/shrink simplex method.
func NelderMead(f Objective, x0 []float64, opts NelderMeadOptions) (Result, error) {
	if f == nil {
		return Result{}, errors.New("numopt: nil objective")
	}
	n := len(x0)
	if n == 0 {
		return Result{}, errors.New("numopt: empty start point")
	}
	opts = opts.withDefaults()

	// Build the initial simplex.
	simplex := make([][]float64, n+1)
	fv := make([]float64, n+1)
	simplex[0] = append([]float64(nil), x0...)
	for i := 1; i <= n; i++ {
		p := append([]float64(nil), x0...)
		step := opts.Step
		if step == 0 {
			if p[i-1] != 0 {
				step = 0.05 * math.Abs(p[i-1])
			} else {
				step = 0.1
			}
		}
		p[i-1] += step
		simplex[i] = p
	}
	for i := range simplex {
		fv[i] = f(simplex[i])
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	order := func() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return fv[idx[a]] < fv[idx[b]] })
		ns := make([][]float64, n+1)
		nf := make([]float64, n+1)
		for i, j := range idx {
			ns[i], nf[i] = simplex[j], fv[j]
		}
		simplex, fv = ns, nf
	}

	var it int
	for it = 0; it < opts.MaxIter; it++ {
		order()
		// Convergence tests.
		spreadF := math.Abs(fv[n] - fv[0])
		spreadX := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				spreadX = math.Max(spreadX, math.Abs(simplex[i][j]-simplex[0][j]))
			}
		}
		if spreadF < opts.TolF && spreadX < opts.TolX {
			return Result{X: simplex[0], F: fv[0], Iterations: it, Converged: true}, nil
		}

		// Centroid of all but worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i][j] / float64(n)
			}
		}
		combine := func(c float64) []float64 {
			p := make([]float64, n)
			for j := 0; j < n; j++ {
				p[j] = centroid[j] + c*(simplex[n][j]-centroid[j])
			}
			return p
		}

		refl := combine(-alpha)
		fr := f(refl)
		switch {
		case fr < fv[0]:
			exp := combine(-alpha * gamma)
			fe := f(exp)
			if fe < fr {
				simplex[n], fv[n] = exp, fe
			} else {
				simplex[n], fv[n] = refl, fr
			}
		case fr < fv[n-1]:
			simplex[n], fv[n] = refl, fr
		default:
			// Contraction (outside if reflection helped at all).
			var contr []float64
			if fr < fv[n] {
				contr = combine(-alpha * rho)
			} else {
				contr = combine(rho)
			}
			fc := f(contr)
			if fc < math.Min(fr, fv[n]) {
				simplex[n], fv[n] = contr, fc
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[0][j] + sigma*(simplex[i][j]-simplex[0][j])
					}
					fv[i] = f(simplex[i])
				}
			}
		}
	}
	order()
	return Result{X: simplex[0], F: fv[0], Iterations: it, Converged: false}, nil
}

// Bounds restricts each coordinate to [Lo, Hi].
type Bounds struct {
	Lo, Hi []float64
}

// Clamp projects x into the bounds in place and returns it.
func (b Bounds) Clamp(x []float64) []float64 {
	for i := range x {
		if i < len(b.Lo) && x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if i < len(b.Hi) && x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Validate checks bound consistency against a dimension.
func (b Bounds) Validate(dim int) error {
	if len(b.Lo) != dim || len(b.Hi) != dim {
		return fmt.Errorf("numopt: bounds dimension %d/%d, want %d", len(b.Lo), len(b.Hi), dim)
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return fmt.Errorf("numopt: bound %d inverted: [%v, %v]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Constraint g(x) <= 0 for the penalty wrapper.
type Constraint func(x []float64) float64

// Penalized wraps an objective with exterior quadratic penalties for the
// constraints and box bounds: f(x) + w·Σ max(0, g_i(x))² (+ bound
// violations). The LogNIC optimizer uses it to encode device bus speeds,
// parallelism caps and latency bounds (Figure 4-b).
func Penalized(f Objective, bounds *Bounds, weight float64, constraints ...Constraint) Objective {
	if weight <= 0 {
		weight = 1e9
	}
	return func(x []float64) float64 {
		p := 0.0
		if bounds != nil {
			for i := range x {
				if i < len(bounds.Lo) && x[i] < bounds.Lo[i] {
					d := bounds.Lo[i] - x[i]
					p += d * d
				}
				if i < len(bounds.Hi) && x[i] > bounds.Hi[i] {
					d := x[i] - bounds.Hi[i]
					p += d * d
				}
			}
		}
		for _, g := range constraints {
			if v := g(x); v > 0 {
				p += v * v
			}
		}
		return f(x) + weight*p
	}
}

// ErrNoFeasibleStart reports that every MultiStart start point evaluated
// to +Inf (or NaN) — the objective rejected the entire searched region, so
// there is no best point to return. Callers that build a model from the
// winning X can branch on this with errors.Is instead of discovering a nil
// parameter vector downstream.
var ErrNoFeasibleStart = errors.New("numopt: no feasible start point (objective is +Inf everywhere searched)")

// MultiStart runs Nelder–Mead from several start points (the grid corners
// plus midpoints of the bounds) and returns the best result. Starts must be
// non-empty. When every start converges to an infeasible (+Inf) value it
// returns ErrNoFeasibleStart rather than a silent Result{F: +Inf, X: nil}.
func MultiStart(f Objective, starts [][]float64, opts NelderMeadOptions) (Result, error) {
	if len(starts) == 0 {
		return Result{}, errors.New("numopt: no start points")
	}
	best := Result{F: math.Inf(1)}
	for _, s := range starts {
		r, err := NelderMead(f, s, opts)
		if err != nil {
			return Result{}, err
		}
		if r.F < best.F {
			best = r
		}
	}
	if best.X == nil {
		return Result{F: math.Inf(1)}, ErrNoFeasibleStart
	}
	return best, nil
}

// GridStarts builds start points for MultiStart: the center of the bounds
// plus per-dimension perturbed corners, n per dimension.
func GridStarts(b Bounds, perDim int) [][]float64 {
	dim := len(b.Lo)
	if dim == 0 {
		return nil
	}
	if perDim < 1 {
		perDim = 1
	}
	center := make([]float64, dim)
	for i := range center {
		center[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	out := [][]float64{center}
	for i := 0; i < dim; i++ {
		for k := 0; k < perDim; k++ {
			frac := (float64(k) + 0.5) / float64(perDim)
			p := append([]float64(nil), center...)
			p[i] = b.Lo[i] + frac*(b.Hi[i]-b.Lo[i])
			out = append(out, p)
		}
	}
	return out
}
