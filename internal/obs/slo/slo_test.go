package slo

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lognic/internal/obs"
)

// fakeFeed drives a Monitor deterministically: a settable clock plus a
// settable cumulative sample.
type fakeFeed struct {
	now    atomic.Int64 // unix nanos
	sample atomic.Value // Sample
}

func newFakeFeed() *fakeFeed {
	f := &fakeFeed{}
	f.now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	f.sample.Store(Sample{})
	return f
}

func (f *fakeFeed) clock() time.Time        { return time.Unix(0, f.now.Load()) }
func (f *fakeFeed) source() Sample          { return f.sample.Load().(Sample) }
func (f *fakeFeed) advance(d time.Duration) { f.now.Add(int64(d)) }

func (f *fakeFeed) add(total, errors, slow uint64) {
	s := f.sample.Load().(Sample)
	s.Total += total
	s.Errors += errors
	s.Slow += slow
	f.sample.Store(s)
}

func testConfig(f *fakeFeed, reg *obs.Registry) Config {
	return Config{
		AvailabilityTarget: 0.999,
		LatencyTarget:      0.99,
		LatencyThreshold:   500 * time.Millisecond,
		ShortWindow:        5 * time.Minute,
		LongWindow:         time.Hour,
		Source:             f.source,
		Now:                f.clock,
		Registry:           reg,
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	cfg := Config{AvailabilityTarget: 0.999, LatencyTarget: 0.99}
	// 1000 requests, 10 errors: availability 0.99, budget 0.001 → burn 10.
	w := Evaluate("run", time.Minute, 1000, 10, 0, cfg)
	if w.Availability != 0.99 {
		t.Fatalf("availability = %v", w.Availability)
	}
	if got := w.AvailabilityBurn; got < 9.99 || got > 10.01 {
		t.Fatalf("availability burn = %v, want ~10", got)
	}
	// 990 successes, 99 slow: compliance 0.9, budget 0.01 → burn 10.
	if got := w.LatencyBurn; got != 0 {
		t.Fatalf("latency burn with zero slow = %v", got)
	}
	w = Evaluate("run", time.Minute, 1000, 10, 99, cfg)
	if got := w.LatencyBurn; got < 9.99 || got > 10.01 {
		t.Fatalf("latency burn = %v, want ~10", got)
	}
}

func TestEvaluateIdleWindowBurnsNothing(t *testing.T) {
	w := Evaluate("5m", 0, 0, 0, 0, Config{AvailabilityTarget: 0.999, LatencyTarget: 0.99})
	if w.Availability != 1 || w.LatencyCompliance != 1 || w.AvailabilityBurn != 0 || w.LatencyBurn != 0 {
		t.Fatalf("idle window should be perfectly compliant: %+v", w)
	}
}

func TestVerdictNeedsBothWindows(t *testing.T) {
	cfg := Config{}.withDefaults()
	hot := WindowStatus{AvailabilityBurn: 20}
	cold := WindowStatus{AvailabilityBurn: 0.5}
	warm := WindowStatus{AvailabilityBurn: 5}
	if v := Verdict([]WindowStatus{hot, hot}, cfg); v != "critical" {
		t.Fatalf("both windows hot → %q, want critical", v)
	}
	if v := Verdict([]WindowStatus{hot, cold}, cfg); v != "ok" {
		t.Fatalf("one stale window should suppress the page: got %q", v)
	}
	if v := Verdict([]WindowStatus{warm, warm}, cfg); v != "warning" {
		t.Fatalf("both windows warm → %q, want warning", v)
	}
	if v := Verdict(nil, cfg); v != "ok" {
		t.Fatalf("no windows → %q, want ok", v)
	}
}

func TestMonitorWindowsAndRecovery(t *testing.T) {
	f := newFakeFeed()
	m := NewMonitor(testConfig(f, nil))

	// An hour of clean traffic: 100 req / 10s tick.
	for i := 0; i < 360; i++ {
		f.add(100, 0, 0)
		m.Poll()
		f.advance(10 * time.Second)
	}
	st := m.Status()
	if st.Verdict != "ok" {
		t.Fatalf("clean hour verdict = %q", st.Verdict)
	}
	if len(st.Windows) != 2 || st.Windows[0].Window != "5m" || st.Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v", st.Windows)
	}

	// Five bad minutes: 20% errors → burn 200 in both windows' budget math?
	// Short window sees 20% errors (burn 200); the hour window dilutes it
	// to ~1.6% (burn ~16) — still past critical in both.
	for i := 0; i < 30; i++ {
		f.add(100, 20, 0)
		m.Poll()
		f.advance(10 * time.Second)
	}
	st = m.Status()
	if st.Verdict != "critical" {
		t.Fatalf("outage verdict = %q: %+v", st.Verdict, st.Windows)
	}
	short := st.Windows[0]
	if short.AvailabilityBurn < 150 {
		t.Fatalf("short-window burn = %v, want ~200", short.AvailabilityBurn)
	}

	// Ten clean minutes: the short window clears, the long window still
	// remembers — verdict must de-escalate (no stale page).
	for i := 0; i < 60; i++ {
		f.add(100, 0, 0)
		m.Poll()
		f.advance(10 * time.Second)
	}
	st = m.Status()
	if st.Verdict != "ok" {
		t.Fatalf("post-recovery verdict = %q: %+v", st.Verdict, st.Windows)
	}
	if st.Windows[1].Errors == 0 {
		t.Fatalf("long window should still contain the outage: %+v", st.Windows[1])
	}
}

func TestMonitorTrimsHistory(t *testing.T) {
	f := newFakeFeed()
	m := NewMonitor(testConfig(f, nil))
	for i := 0; i < 2000; i++ {
		f.add(1, 0, 0)
		m.Poll()
		f.advance(10 * time.Second)
	}
	m.mu.Lock()
	n := len(m.ring)
	m.mu.Unlock()
	// 1h window at 10s cadence needs ~360 samples; 2000 polls must not
	// accumulate unboundedly.
	if n > 400 {
		t.Fatalf("ring grew to %d samples", n)
	}
}

func TestMonitorExportsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFakeFeed()
	m := NewMonitor(testConfig(f, reg))
	f.add(100, 50, 0)
	m.Poll()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lognic_slo_burn_rate{objective="availability",window="5m"}`,
		`lognic_slo_burn_rate{objective="latency",window="1h"}`,
		`lognic_slo_compliance{objective="availability",window="5m"}`,
		`lognic_slo_target{objective="availability"} 0.999`,
		"lognic_slo_verdict",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := obs.LintExposition([]byte(out)); errs != nil {
		t.Fatalf("slo exposition fails lint: %v", errs)
	}
}

func TestMonitorStartClose(t *testing.T) {
	f := newFakeFeed()
	cfg := testConfig(f, nil)
	cfg.SampleEvery = time.Millisecond
	m := NewMonitor(cfg)
	m.Start()
	time.Sleep(5 * time.Millisecond)
	m.Close()
	m.mu.Lock()
	n := len(m.ring)
	m.mu.Unlock()
	if n == 0 {
		t.Fatal("background loop never polled")
	}
}
