// Package slo turns raw request counters into service-level-objective
// judgements: windowed availability and latency compliance, multi-window
// burn rates, and an ok/warning/critical verdict.
//
// The model is the standard error-budget one. An objective like "99.9%
// of requests succeed" leaves a budget of 0.1%; the burn rate is how
// fast the service is spending that budget (burn 1.0 = exactly on
// target, burn 14.4 = a 30-day budget gone in ~2 days). Following the
// multi-window pattern from the SRE workbook, a verdict only escalates
// when BOTH the short window (is it happening now?) and the long window
// (is it material?) are burning, which suppresses both stale pages and
// one-sample blips.
//
// The package is deliberately source-agnostic: a Monitor polls a
// cumulative-counter snapshot function on a fixed cadence and keeps a
// time-stamped ring of samples, so it works identically over
// lognic-serve's live request counters and lognic-storm's run totals.
package slo

import (
	"strings"
	"sync"
	"time"

	"lognic/internal/obs"
)

// Sample is a cumulative-counter snapshot: totals since process start,
// monotonically non-decreasing.
type Sample struct {
	// Total counts requests that consumed error budget when they failed —
	// admitted requests, typically excluding load-shed (429) responses.
	Total uint64
	// Errors counts requests that failed (5xx).
	Errors uint64
	// Slow counts successful requests that exceeded the latency
	// threshold.
	Slow uint64
}

// Config describes the objectives and sampling cadence.
type Config struct {
	// AvailabilityTarget is the fraction of requests that must succeed,
	// e.g. 0.999. Zero disables the availability objective.
	AvailabilityTarget float64
	// LatencyTarget is the fraction of successful requests that must
	// finish under LatencyThreshold, e.g. 0.99. Zero disables it.
	LatencyTarget float64
	// LatencyThreshold is the latency objective's cutoff.
	LatencyThreshold time.Duration
	// ShortWindow and LongWindow are the burn-rate windows
	// (default 5m / 1h).
	ShortWindow, LongWindow time.Duration
	// SampleEvery is the polling cadence (default 10s).
	SampleEvery time.Duration
	// CriticalBurn and WarningBurn are the verdict thresholds applied to
	// both windows (defaults 14.4 and 3).
	CriticalBurn, WarningBurn float64
	// Source returns the current cumulative counters.
	Source func() Sample
	// Registry, when set, receives lognic_slo_* gauges refreshed on
	// every poll.
	Registry *obs.Registry
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = time.Hour
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	if c.CriticalBurn <= 0 {
		c.CriticalBurn = 14.4
	}
	if c.WarningBurn <= 0 {
		c.WarningBurn = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// WindowStatus is one objective evaluated over one window.
type WindowStatus struct {
	// Window is the human label ("5m", "1h", "run").
	Window string `json:"window"`
	// Seconds is the window's actual span (shorter than nominal until
	// enough history accumulates).
	Seconds float64 `json:"seconds"`
	// Total/Errors/Slow are the deltas observed inside the window.
	Total  uint64 `json:"total"`
	Errors uint64 `json:"errors"`
	Slow   uint64 `json:"slow"`
	// Availability is the fraction of requests that succeeded (1 when
	// the window saw no traffic: an idle service burns no budget).
	Availability float64 `json:"availability"`
	// LatencyCompliance is the fraction of successes under threshold.
	LatencyCompliance float64 `json:"latency_compliance"`
	// AvailabilityBurn and LatencyBurn are budget burn rates
	// (1.0 = exactly on target).
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// Status is the full SLO judgement served at /v1/slo.
type Status struct {
	AvailabilityTarget      float64        `json:"availability_target"`
	LatencyTarget           float64        `json:"latency_target"`
	LatencyThresholdSeconds float64        `json:"latency_threshold_seconds"`
	Windows                 []WindowStatus `json:"windows"`
	// Verdict is "ok", "warning" or "critical": the worst level at which
	// every window's burn rate clears that level's threshold.
	Verdict string `json:"verdict"`
}

// Evaluate scores one window's deltas against the objectives. Exposed so
// lognic-storm can grade a whole run with the same arithmetic the serve
// monitor applies to its 5m/1h windows.
func Evaluate(label string, span time.Duration, total, errors, slow uint64, cfg Config) WindowStatus {
	cfg = cfg.withDefaults()
	w := WindowStatus{
		Window: label, Seconds: span.Seconds(),
		Total: total, Errors: errors, Slow: slow,
		Availability: 1, LatencyCompliance: 1,
	}
	if total > 0 {
		w.Availability = 1 - float64(errors)/float64(total)
	}
	if ok := total - errors; ok > 0 {
		w.LatencyCompliance = 1 - float64(slow)/float64(ok)
	}
	if cfg.AvailabilityTarget > 0 && cfg.AvailabilityTarget < 1 {
		w.AvailabilityBurn = (1 - w.Availability) / (1 - cfg.AvailabilityTarget)
	}
	if cfg.LatencyTarget > 0 && cfg.LatencyTarget < 1 {
		w.LatencyBurn = (1 - w.LatencyCompliance) / (1 - cfg.LatencyTarget)
	}
	return w
}

// Verdict applies the multi-window rule: critical when every window
// burns at or above CriticalBurn on some objective, warning when every
// window reaches WarningBurn, ok otherwise.
func Verdict(windows []WindowStatus, cfg Config) string {
	cfg = cfg.withDefaults()
	if len(windows) == 0 {
		return "ok"
	}
	atLeast := func(burn float64) bool {
		for _, w := range windows {
			if w.AvailabilityBurn < burn && w.LatencyBurn < burn {
				return false
			}
		}
		return true
	}
	switch {
	case atLeast(cfg.CriticalBurn):
		return "critical"
	case atLeast(cfg.WarningBurn):
		return "warning"
	default:
		return "ok"
	}
}

// sample is one timestamped counter snapshot in the ring.
type sample struct {
	t time.Time
	s Sample
}

// Monitor polls a counter source and serves windowed SLO status. Safe
// for concurrent use.
type Monitor struct {
	cfg Config

	mu   sync.Mutex
	ring []sample

	stop chan struct{}
	done chan struct{}

	// metric handles, nil when no registry was supplied
	burnGauge       func(objective, window string) *obs.Gauge
	complianceGauge func(objective, window string) *obs.Gauge
	verdictGauge    *obs.Gauge
}

// NewMonitor builds a monitor. Call Start to begin background polling,
// or drive it manually with Poll (tests, one-shot tools).
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		m.burnGauge = func(objective, window string) *obs.Gauge {
			return reg.Gauge("lognic_slo_burn_rate",
				"error-budget burn rate per objective and window (1 = exactly on target)",
				obs.Labels{"objective": objective, "window": window})
		}
		m.complianceGauge = func(objective, window string) *obs.Gauge {
			return reg.Gauge("lognic_slo_compliance",
				"fraction of requests meeting the objective, per window",
				obs.Labels{"objective": objective, "window": window})
		}
		m.verdictGauge = reg.Gauge("lognic_slo_verdict",
			"current SLO verdict as a number: 0 ok, 1 warning, 2 critical", nil)
		reg.Gauge("lognic_slo_target",
			"configured objective target fraction",
			obs.Labels{"objective": "availability"}).Set(cfg.AvailabilityTarget)
		reg.Gauge("lognic_slo_target",
			"configured objective target fraction",
			obs.Labels{"objective": "latency"}).Set(cfg.LatencyTarget)
	}
	return m
}

// Start launches the background polling loop.
func (m *Monitor) Start() {
	go func() {
		defer close(m.done)
		tick := time.NewTicker(m.cfg.SampleEvery)
		defer tick.Stop()
		m.Poll()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				m.Poll()
			}
		}
	}()
}

// Close stops the polling loop (idempotent is not required; call once).
func (m *Monitor) Close() {
	close(m.stop)
	<-m.done
}

// Poll takes one sample now and refreshes the exported gauges.
func (m *Monitor) Poll() {
	if m.cfg.Source == nil {
		return
	}
	now := m.cfg.Now()
	s := m.cfg.Source()
	m.mu.Lock()
	m.ring = append(m.ring, sample{t: now, s: s})
	// Trim history beyond the long window (keep one extra sample so the
	// window's left edge interpolates to a real snapshot).
	cutoff := now.Add(-m.cfg.LongWindow)
	firstKept := 0
	for i, smp := range m.ring {
		if !smp.t.Before(cutoff) {
			firstKept = i
			break
		}
		firstKept = i
	}
	if firstKept > 0 {
		m.ring = append(m.ring[:0], m.ring[firstKept:]...)
	}
	m.mu.Unlock()
	st := m.Status()
	m.export(st)
}

// windowDelta finds the deltas across the trailing window ending at the
// newest sample.
func (m *Monitor) windowDelta(window time.Duration) (span time.Duration, total, errors, slow uint64) {
	if len(m.ring) == 0 {
		return 0, 0, 0, 0
	}
	newest := m.ring[len(m.ring)-1]
	base := m.ring[0]
	cutoff := newest.t.Add(-window)
	for _, smp := range m.ring {
		if smp.t.After(cutoff) {
			break
		}
		base = smp
	}
	span = newest.t.Sub(base.t)
	sub := func(a, b uint64) uint64 { // counters are monotone; guard anyway
		if a < b {
			return 0
		}
		return a - b
	}
	return span, sub(newest.s.Total, base.s.Total), sub(newest.s.Errors, base.s.Errors), sub(newest.s.Slow, base.s.Slow)
}

// Status evaluates both windows from the current ring.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	shortSpan, st, se, ss := m.windowDelta(m.cfg.ShortWindow)
	longSpan, lt, le, ls := m.windowDelta(m.cfg.LongWindow)
	m.mu.Unlock()
	windows := []WindowStatus{
		Evaluate(windowLabel(m.cfg.ShortWindow), shortSpan, st, se, ss, m.cfg),
		Evaluate(windowLabel(m.cfg.LongWindow), longSpan, lt, le, ls, m.cfg),
	}
	return Status{
		AvailabilityTarget:      m.cfg.AvailabilityTarget,
		LatencyTarget:           m.cfg.LatencyTarget,
		LatencyThresholdSeconds: m.cfg.LatencyThreshold.Seconds(),
		Windows:                 windows,
		Verdict:                 Verdict(windows, m.cfg),
	}
}

func (m *Monitor) export(st Status) {
	if m.verdictGauge == nil {
		return
	}
	level := map[string]float64{"ok": 0, "warning": 1, "critical": 2}
	m.verdictGauge.Set(level[st.Verdict])
	for _, w := range st.Windows {
		m.burnGauge("availability", w.Window).Set(w.AvailabilityBurn)
		m.burnGauge("latency", w.Window).Set(w.LatencyBurn)
		m.complianceGauge("availability", w.Window).Set(w.Availability)
		m.complianceGauge("latency", w.Window).Set(w.LatencyCompliance)
	}
}

// windowLabel renders a duration compactly: "5m", "1h", "90s".
func windowLabel(d time.Duration) string {
	s := d.String()
	for _, suffix := range []string{"0s", "0m"} {
		s = strings.TrimSuffix(s, suffix)
	}
	if s == "" {
		s = d.String()
	}
	return s
}
