package obs

import (
	"strings"
	"testing"
)

// fullRegistry builds a registry exercising every metric kind and the
// label-escaping corners, mirroring what the real binaries register.
func fullRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("lognic_requests_total", "requests served", Labels{"endpoint": "simulate", "code": "200"}).Add(12)
	reg.Counter("lognic_requests_total", "requests served", Labels{"endpoint": "estimate", "code": "500"}).Add(1)
	reg.Gauge("lognic_queue_depth", "instantaneous queue depth", nil).Set(3)
	reg.Gauge("lognic_weird_labels", "label escaping", Labels{"path": `a\b"c` + "\nd"}).Set(1)
	h := reg.Histogram("lognic_latency_seconds", "request latency", ExpBuckets(1e-4, 2, 12), nil)
	for _, v := range []float64{0.0001, 0.001, 0.01, 0.1, 1, 10} {
		h.Observe(v)
	}
	RegisterBuildInfo(reg)
	return reg
}

// TestWritePrometheusPassesLint is the exposition-format regression gate:
// everything Registry.WritePrometheus produces must satisfy the text
// 0.0.4 grammar and the histogram invariants promtool checks.
func TestWritePrometheusPassesLint(t *testing.T) {
	var sb strings.Builder
	if err := fullRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if errs := LintExposition([]byte(out)); errs != nil {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("exposition output failed lint:\n%s", out)
	}
}

func TestLintAcceptsCanonicalPayload(t *testing.T) {
	good := `# HELP http_requests_total total requests
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027
http_requests_total{method="post",code="200"} 3

# TYPE rpc_duration_seconds histogram
rpc_duration_seconds_bucket{le="0.05"} 24054
rpc_duration_seconds_bucket{le="0.1"} 33444
rpc_duration_seconds_bucket{le="+Inf"} 34444
rpc_duration_seconds_sum 53423
rpc_duration_seconds_count 34444
# HELP temp_celsius a gauge with odd values
# TYPE temp_celsius gauge
temp_celsius{site="lab\n2",note="say \"hi\" \\ bye"} -40.5
`
	if errs := LintExposition([]byte(good)); errs != nil {
		t.Fatalf("canonical payload rejected: %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		want    string
	}{
		{
			"sample without TYPE",
			"mystery_metric 1\n",
			"without a preceding TYPE",
		},
		{
			"HELP after TYPE",
			"# TYPE m counter\n# HELP m late help\nm 1\n",
			"after its TYPE",
		},
		{
			"TYPE after samples",
			"# HELP m h\nm 1\n# TYPE m counter\n",
			"without a preceding TYPE",
		},
		{
			"interleaved families",
			"# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
			"reopened",
		},
		{
			"duplicate TYPE",
			"# TYPE m counter\n# TYPE m counter\nm 1\n",
			"duplicate TYPE",
		},
		{
			"unknown type keyword",
			"# TYPE m enum\nm 1\n",
			"unknown TYPE",
		},
		{
			"negative counter",
			"# TYPE m counter\nm -1\n",
			"non-negative",
		},
		{
			"invalid metric name",
			"# TYPE 9bad counter\n9bad 1\n",
			"invalid metric name",
		},
		{
			"invalid label name",
			"# TYPE m gauge\nm{9bad=\"x\"} 1\n",
			"invalid label name",
		},
		{
			"unquoted label value",
			"# TYPE m gauge\nm{l=raw} 1\n",
			"unquoted label value",
		},
		{
			"illegal escape",
			"# TYPE m gauge\nm{l=\"a\\tb\"} 1\n",
			"illegal escape",
		},
		{
			"unterminated label set",
			"# TYPE m gauge\nm{l=\"x\" 1\n",
			"malformed label",
		},
		{
			"unparseable value",
			"# TYPE m gauge\nm{} one\n",
			"unparseable value",
		},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n",
			"missing le=+Inf",
		},
		{
			"histogram non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 2\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram +Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 2\nh_count 7\n",
			"!= _count",
		},
		{
			"histogram missing _sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"histogram bucket without le",
			"# TYPE h histogram\nh_bucket 5\nh_sum 1\nh_count 5\n",
			"missing le label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintExposition([]byte(tc.payload))
			if errs == nil {
				t.Fatalf("lint accepted bad payload:\n%s", tc.payload)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error matching %q in %v", tc.want, errs)
			}
		})
	}
}
