// Package obs is the repository's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text-format and JSON export, a bounded packet-span tracer
// with Chrome trace_event export (loadable in Perfetto or
// chrome://tracing), and a bottleneck attribution report that ranks which
// hardware component saturates first — cross-checking the analytical
// model's Equation 4 constraints against simulator-measured utilization.
//
// The package deliberately imports nothing from the rest of the
// repository, so the simulator, the experiments sweep engine, the report
// renderer and the CLIs can all register into one registry without import
// cycles. All types are safe for concurrent use: a parallel sweep's
// replications share one Registry and one Tracer.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Labels attaches dimension values to one metric series ("vertex" →
// "md5"). Series of one family differ only by label values.
type Labels map[string]string

// MetricType distinguishes the metric families.
type MetricType int

// Metric families.
const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a fixed-bucket distribution.
	TypeHistogram
)

// String names the metric type in Prometheus TYPE-line vocabulary.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metrictype(%d)", int(t))
	}
}

// family is one named metric with all its labeled series.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64 // histogram upper bounds, ascending
	series  map[string]*series
}

// series is one (family, label set) time series.
type series struct {
	mu     sync.Mutex
	labels Labels
	key    string
	value  float64   // counter/gauge
	counts []uint64  // histogram per-bucket counts (cumulative on export)
	sum    float64   // histogram sum
	count  uint64    // histogram observation count
	bounds []float64 // histogram bounds (shared with family)
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// validName matches the Prometheus metric-name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey renders a label set canonically (sorted by name) so equal sets
// map to one series.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// getSeries finds or creates the series for (name, labels) with the given
// type. Registration is get-or-create so callers that attach repeatedly
// (each simulator replication of a sweep) share one series. Mismatched
// re-registration (same name, different type or buckets) panics: it is a
// programming error that would corrupt the exposition.
func (r *Registry) getSeries(name, help string, typ MetricType, buckets []float64, labels Labels) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for k := range labels {
		if !validName(k) || strings.Contains(k, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", k, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	} else if f.typ != typ || !slices.Equal(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, f.typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		cp := Labels{}
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp, key: key, bounds: f.buckets}
		if typ == TypeHistogram {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric.
type Counter struct{ s *series }

// Counter finds or creates a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return &Counter{r.getSeries(name, help, TypeCounter, nil, labels)}
}

// Add increases the counter; negative deltas are ignored (counters only
// go up).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a metric that can rise and fall.
type Gauge struct{ s *series }

// Gauge finds or creates a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return &Gauge{r.getSeries(name, help, TypeGauge, nil, labels)}
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add moves the value by a delta.
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram is a fixed-bucket distribution.
type Histogram struct{ s *series }

// Histogram finds or creates a histogram series with the given ascending
// bucket upper bounds (the +Inf bucket is implicit). Bounds must be
// strictly increasing and non-empty.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return &Histogram{r.getSeries(name, help, TypeHistogram, append([]float64(nil), buckets...), labels)}
}

// ExpBuckets returns n bounds growing geometrically from start by factor —
// the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.s.mu.Lock()
	// Per-bucket (non-cumulative) counts internally; export accumulates.
	i := sort.SearchFloat64s(h.s.bounds, v)
	if i < len(h.s.counts) {
		h.s.counts[i]++
	}
	h.s.count++
	h.s.sum += v
	h.s.mu.Unlock()
}

// Count is the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum is the total of all observations so far.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// Snapshot is one exported series.
type Snapshot struct {
	// Name is the family name.
	Name string `json:"name"`
	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`
	// Help is the family description.
	Help string `json:"help,omitempty"`
	// Labels are the series dimensions.
	Labels Labels `json:"labels,omitempty"`
	// Value holds a counter/gauge reading.
	Value float64 `json:"value"`
	// Sum/Count/Buckets describe a histogram; Buckets maps upper bound to
	// cumulative count.
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	// UpperBound is the bucket's inclusive upper bound ("le").
	UpperBound float64 `json:"le"`
	// CumulativeCount counts observations at or below the bound.
	CumulativeCount uint64 `json:"count"`
}

// Gather snapshots every series, sorted by family name then label key, so
// output is deterministic.
func (r *Registry) Gather() []Snapshot {
	// family.series maps are only mutated by getSeries under r.mu, so the
	// series pointers must be copied out under the same lock: a live
	// /metrics scrape racing a sweep's series registration would otherwise
	// read the maps while they grow.
	type famSnap struct {
		f      *family
		series []*series
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for _, f := range r.families {
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		fams = append(fams, famSnap{f: f, series: ss})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].f.name < fams[j].f.name })
	var out []Snapshot
	for _, fs := range fams {
		f := fs.f
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].key < fs.series[j].key })
		for _, s := range fs.series {
			s.mu.Lock()
			snap := Snapshot{Name: f.name, Type: f.typ.String(), Help: f.help, Labels: s.labels}
			if f.typ == TypeHistogram {
				snap.Sum = s.sum
				snap.Count = s.count
				var cum uint64
				for i, b := range f.buckets {
					cum += s.counts[i]
					snap.Buckets = append(snap.Buckets, BucketSnapshot{UpperBound: b, CumulativeCount: cum})
				}
			} else {
				snap.Value = s.value
			}
			s.mu.Unlock()
			out = append(out, snap)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per family, one sample
// line per series, histograms expanded into _bucket/_sum/_count with a
// trailing +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Gather()
	var last string
	for _, s := range snaps {
		if s.Name != last {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			last = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, "le", formatFloat(b.UpperBound)), b.CumulativeCount); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, "le", "+Inf"), s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the registry as a JSON array of series snapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Gather())
}

// ServeHTTP exposes the registry as a Prometheus scrape endpoint; mount it
// at /metrics. Appending ?format=json switches to the JSON export.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// promLabels renders a label set, optionally with one extra pair (the
// histogram "le" bound), as {k="v",...} or "" when empty.
func promLabels(l Labels, extraKey, extraVal string) string {
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var parts []string
	for _, k := range names {
		parts = append(parts, fmt.Sprintf("%s=%q", k, escapeLabel(l[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q already escapes backslash, quote and newline; the label value is
	// passed through fmt.Sprintf("%q") by the caller, so nothing to do —
	// kept as a seam for future non-%q rendering.
	return s
}
