package obs

import (
	"testing"
	"time"
)

func TestTimerObservesElapsedSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "op latency", ExpBuckets(1e-6, 10, 8), nil)

	tm := h.StartTimer()
	time.Sleep(2 * time.Millisecond)
	d := tm.ObserveDuration()
	if d < 2*time.Millisecond {
		t.Fatalf("measured %v, want >= 2ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got < 0.002 || got > 10 {
		t.Fatalf("Sum = %v seconds, want ~elapsed", got)
	}

	// Repeated observation records the running total again.
	tm.ObserveDuration()
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
}

func TestTimeDeferForm(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("defer_seconds", "defer latency", ExpBuckets(1e-6, 10, 8), nil)
	func() {
		defer h.Time()()
		time.Sleep(time.Millisecond)
	}()
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.001 {
		t.Fatalf("Sum = %v, want >= 1ms", h.Sum())
	}
}
