package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo reports the running binary's identity from the build metadata
// the Go linker embeds: module version, toolchain version and VCS
// revision. Fields that the build did not record (e.g. `go run` without
// VCS stamping) come back as "unknown".
func BuildInfo() (version, goVersion, revision string) {
	version, goVersion, revision = "unknown", runtime.Version(), "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion, revision
	}
	if v := bi.Main.Version; v != "" {
		version = v
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && revision != "unknown" {
		revision += "-dirty"
	}
	return version, goVersion, revision
}

// RegisterBuildInfo registers the lognic_build_info gauge: constant 1,
// with the binary's identity as labels — the standard Prometheus idiom
// for joining version metadata onto any other series. Every binary's
// debug server and lognic-serve's registry call this once at startup.
func RegisterBuildInfo(reg *Registry) {
	version, goVersion, revision := BuildInfo()
	reg.Gauge("lognic_build_info",
		"build identity of the running binary; the value is always 1",
		Labels{"version": version, "go_version": goVersion, "revision": revision}).Set(1)
}
