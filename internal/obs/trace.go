package obs

// Packet-span tracing. The simulator's flat TraceEvent stream is upgraded
// here into hierarchical spans: one span per vertex visit, with child
// spans for its queue-wait, service and link-transfer phases. Spans are
// retained in a bounded ring buffer (oldest evicted first) so tracing a
// long run holds memory constant, and export to the Chrome trace_event
// JSON format makes every run loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing.

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Span categories. A vertex visit is the parent span; phases nest inside
// it on the same track.
const (
	// CatVertex is one full visit of a packet to a vertex (arrival to
	// departure or drop).
	CatVertex = "vertex"
	// CatQueue is the time a packet waited in the vertex's input queue.
	CatQueue = "queue"
	// CatService is the time an engine spent serving the packet.
	CatService = "service"
	// CatTransfer is the time between departing one vertex and arriving at
	// the next: computation-transfer overhead plus interface/memory/
	// dedicated-link occupancy.
	CatTransfer = "transfer"
)

// Span is one timed interval in a packet's life.
type Span struct {
	// Name labels the span: the vertex name for CatVertex, the phase name
	// ("queue-wait", "service") or "→next" for transfers.
	Name string `json:"name"`
	// Cat is the span category (CatVertex, CatQueue, ...).
	Cat string `json:"cat"`
	// Track groups spans onto one timeline — the simulator uses the packet
	// id, so each packet renders as its own row with vertex visits in
	// sequence and phases nested inside.
	Track uint64 `json:"track"`
	// Start is the span's start time in simulated seconds.
	Start float64 `json:"start"`
	// Dur is the span's duration in simulated seconds.
	Dur float64 `json:"dur"`
	// Args carries extra key/value detail (packet size, drop reason, the
	// downstream vertex of a transfer).
	Args map[string]any `json:"args,omitempty"`
	// TraceID, SpanID and ParentID place the span in a distributed trace
	// (W3C Trace Context identifiers; see traceparent.go). They are
	// optional: single-process simulator runs leave them empty, while the
	// serving fleet stamps them so a merged export links client, server,
	// job and simulation spans into one tree.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
}

// Tracer retains spans in a fixed-capacity ring buffer. The zero value is
// unusable; call NewTracer. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	full    bool
	dropped uint64
}

// DefaultSpanCapacity is the ring size NewTracer(0) uses: enough for the
// full lifecycle of tens of thousands of packets while staying a few MB.
const DefaultSpanCapacity = 1 << 16

// NewTracer returns a tracer retaining at most capacity spans (the newest
// are kept). capacity <= 0 selects DefaultSpanCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// Emit records one span, evicting the oldest if the ring is full.
func (t *Tracer) Emit(s Span) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % cap(t.buf)
		t.full = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Len is the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped counts spans evicted to keep the ring bounded.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// chromeEvent is one trace_event record. Timestamps and durations are in
// microseconds per the format; simulated seconds scale by 1e6.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the retained spans as Chrome trace_event JSON.
// Every span becomes a complete ("X") event; the track id becomes the tid,
// so a packet's spans share one row and nest by time containment. The file
// loads directly in Perfetto or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer, processName string) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	trace := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]chromeEvent, 0, len(spans)+1),
	}
	if processName != "" {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: 1,
			Args: map[string]any{"name": processName},
		})
	}
	if t.Dropped() > 0 {
		trace.OtherData = map[string]any{"dropped_spans": t.Dropped()}
	}
	for _, s := range spans {
		args := s.Args
		// Distributed-trace identity rides in args so Perfetto shows it on
		// span click and jq can group a merged export by trace id.
		if s.TraceID != "" || s.SpanID != "" || s.ParentID != "" {
			args = make(map[string]any, len(s.Args)+3)
			for k, v := range s.Args {
				args[k] = v
			}
			if s.TraceID != "" {
				args["trace_id"] = s.TraceID
			}
			if s.SpanID != "" {
				args["span_id"] = s.SpanID
			}
			if s.ParentID != "" {
				args["parent_span_id"] = s.ParentID
			}
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start * 1e6, Dur: s.Dur * 1e6,
			PID: 1, TID: s.Track, Args: args,
		})
	}
	return json.NewEncoder(w).Encode(trace)
}
