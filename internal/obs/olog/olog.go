// Package olog is the fleet's structured logging layer: a thin,
// opinionated wrapper over log/slog shared by every lognic binary.
//
// All binaries take the same two flags (-log-level, -log-format), emit
// either logfmt-style text (human terminals) or one-JSON-object-per-line
// (log shippers), and tag request-scoped records with a fixed attribute
// vocabulary — request_id, job_id, trace_id, endpoint, tenant — so one
// grep or one jq filter follows a request across lognic-storm,
// lognic-serve and the job runner.
package olog

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Attribute keys shared by every binary. Using the constants (not string
// literals) keeps the cross-process log schema greppable and consistent.
const (
	KeyRequestID = "request_id"
	KeyJobID     = "job_id"
	KeyTraceID   = "trace_id"
	KeyEndpoint  = "endpoint"
	KeyTenant    = "tenant"
	KeyComponent = "component"
)

// Options selects level and output encoding. The zero value means
// info-level text.
type Options struct {
	// Level is one of debug, info, warn, error.
	Level string
	// Format is "text" (logfmt-ish, for terminals) or "json" (one object
	// per line, for shippers).
	Format string
}

// RegisterFlags installs -log-level and -log-format on fs and returns
// the Options they populate. Every lognic binary calls this so the
// flags are spelled identically fleet-wide.
func RegisterFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&o.Format, "log-format", "text", "log encoding: text or json")
	return o
}

// Logger builds a slog.Logger writing to w per the options. Unknown
// levels or formats are errors — binaries surface them through their
// usual flag-error path instead of silently logging at the wrong level.
func (o *Options) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(o.Format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("olog: unknown log format %q (want text or json)", o.Format)
	}
}

// ParseLevel maps the flag spelling to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("olog: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Discard returns a logger that drops everything — the default wherever
// a logger is optional, so call sites never nil-check.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// WithRequest tags l with the request-scoped attribute set. Empty
// values are omitted so text output stays tight.
func WithRequest(l *slog.Logger, requestID, traceID, endpoint, tenant string) *slog.Logger {
	args := make([]any, 0, 8)
	if requestID != "" {
		args = append(args, KeyRequestID, requestID)
	}
	if traceID != "" {
		args = append(args, KeyTraceID, traceID)
	}
	if endpoint != "" {
		args = append(args, KeyEndpoint, endpoint)
	}
	if tenant != "" {
		args = append(args, KeyTenant, tenant)
	}
	if len(args) == 0 {
		return l
	}
	return l.With(args...)
}

// WithJob tags l with a job id.
func WithJob(l *slog.Logger, jobID string) *slog.Logger {
	if jobID == "" {
		return l
	}
	return l.With(KeyJobID, jobID)
}

// logCtxKey keys a logger in a context.Context.
type logCtxKey struct{}

// NewContext attaches a (typically request-scoped) logger to ctx.
func NewContext(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, logCtxKey{}, l)
}

// FromContext returns the logger attached to ctx, or a discard logger —
// never nil, so deep layers log unconditionally.
func FromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(logCtxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}

// Fail is the single fatal-path helper for binaries using the
// run(...) int pattern: log the error as a structured record and return
// the process exit code. Keeping exit itself out makes mains testable.
func Fail(l *slog.Logger, msg string, args ...any) int {
	l.Error(msg, args...)
	return 1
}

// Fatal logs and exits for call sites with no exit-code plumbing.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}
