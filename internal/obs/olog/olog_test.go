package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"strings"
	"testing"
)

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if o.Level != "debug" || o.Format != "json" {
		t.Fatalf("flags not applied: %+v", o)
	}
}

func TestJSONLoggerSchema(t *testing.T) {
	var buf bytes.Buffer
	l, err := (&Options{Level: "info", Format: "json"}).Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l = WithRequest(l, "req-7", "0af7651916cd43dd8448eb211c80319c", "simulate", "acme")
	l = WithJob(l, "job-3")
	l.Info("request done", "code", 200)
	l.Debug("suppressed")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 record (debug suppressed), got %d:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, lines[0])
	}
	for key, want := range map[string]any{
		KeyRequestID: "req-7",
		KeyTraceID:   "0af7651916cd43dd8448eb211c80319c",
		KeyEndpoint:  "simulate",
		KeyTenant:    "acme",
		KeyJobID:     "job-3",
		"msg":        "request done",
		"code":       float64(200),
	} {
		if rec[key] != want {
			t.Errorf("record[%q] = %v, want %v", key, rec[key], want)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l, err := (&Options{Level: "error", Format: "text"}).Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Warn("dropped")
	l.Error("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Fatalf("level filter broken:\n%s", buf.String())
	}
}

func TestBadOptionsRejected(t *testing.T) {
	if _, err := (&Options{Level: "loud"}).Logger(io.Discard); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (&Options{Format: "xml"}).Logger(io.Discard); err == nil {
		t.Error("bad format accepted")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got == nil {
		t.Fatal("FromContext returned nil")
	}
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	ctx := NewContext(context.Background(), l)
	FromContext(ctx).Info("hello")
	if !strings.Contains(buf.String(), "hello") {
		t.Fatalf("context logger not used:\n%s", buf.String())
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	// Must not panic and must not write anywhere observable.
	l := Discard()
	l.Error("nothing")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

func TestFailLogsAndReturnsOne(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	if code := Fail(l, "boom", "cause", "test"); code != 1 {
		t.Fatalf("Fail returned %d", code)
	}
	if !strings.Contains(buf.String(), "boom") || !strings.Contains(buf.String(), "cause=test") {
		t.Fatalf("Fail did not log:\n%s", buf.String())
	}
}
