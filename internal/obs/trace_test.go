package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func span(name string, track uint64, start float64) Span {
	return Span{Name: name, Cat: CatVertex, Track: track, Start: start, Dur: 0.5}
}

func TestTracerRingBufferBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(span("s", 1, float64(i)))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := float64(6 + i); s.Start != want {
			t.Fatalf("span %d start = %v, want %v (newest retained, oldest first)", i, s.Start, want)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.buf) != DefaultSpanCapacity {
		t.Fatalf("cap = %d, want %d", cap(tr.buf), DefaultSpanCapacity)
	}
}

func TestWriteChromeTraceLoadsAsJSON(t *testing.T) {
	tr := NewTracer(16)
	// A two-vertex packet lifecycle: parent vertex spans with nested
	// phases, as the simulator emits them.
	tr.Emit(Span{Name: "ip1", Cat: CatVertex, Track: 7, Start: 0.001, Dur: 0.004,
		Args: map[string]any{"size": 1024.0}})
	tr.Emit(Span{Name: "queue-wait", Cat: CatQueue, Track: 7, Start: 0.001, Dur: 0.001})
	tr.Emit(Span{Name: "service", Cat: CatService, Track: 7, Start: 0.002, Dur: 0.003})
	tr.Emit(Span{Name: "->ip2", Cat: CatTransfer, Track: 7, Start: 0.005, Dur: 0.002,
		Args: map[string]any{"to": "ip2"}})

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b, "lognic-sim"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 { // 4 spans + process_name metadata
		t.Fatalf("events = %d, want 5", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" {
		t.Fatalf("first event must be process metadata, got %+v", meta)
	}
	// Events are sorted by start time; timestamps are microseconds.
	parent := doc.TraceEvents[1]
	if parent.Ph != "X" || parent.Name != "ip1" || parent.TS != 1000 || parent.Dur != 4000 {
		t.Fatalf("parent span = %+v", parent)
	}
	if parent.TID != 7 {
		t.Fatalf("tid = %d, want track 7", parent.TID)
	}
	// Child spans must nest within the parent interval on the same tid.
	for _, e := range doc.TraceEvents[2:4] {
		if e.TID != parent.TID {
			t.Errorf("child %q on tid %d, want %d", e.Name, e.TID, parent.TID)
		}
		if e.TS < parent.TS || e.TS+e.Dur > parent.TS+parent.Dur+1e-9 {
			t.Errorf("child %q [%v, %v] escapes parent [%v, %v]",
				e.Name, e.TS, e.TS+e.Dur, parent.TS, parent.TS+parent.Dur)
		}
	}
}

func TestWriteChromeTraceRecordsEvictions(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(span("s", 1, float64(i)))
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"dropped_spans":3`) {
		t.Fatalf("output must record evicted span count:\n%s", b.String())
	}
}
