package obs

import (
	"strings"
	"testing"
)

func TestBuildReportRanksAndAgrees(t *testing.T) {
	model := []Component{
		{Name: "interface", Kind: KindInterface, Utilization: 0.4, SaturationLoad: 25e9},
		{Name: "md5", Kind: KindCompute, Utilization: 0.9, SaturationLoad: 11e9},
		{Name: "zero", Kind: KindCompute, SaturationLoad: 0}, // dropped
	}
	sim := []Component{
		{Name: "md5", Kind: KindCompute, Utilization: 0.88, SaturationLoad: 11.4e9},
		{Name: "interface", Kind: KindInterface, Utilization: 0.41, SaturationLoad: 24.4e9},
	}
	r := BuildReport(10e9, model, sim)
	if len(r.Model) != 2 {
		t.Fatalf("model components = %d, want 2 (zero-load dropped)", len(r.Model))
	}
	if r.Model[0].Name != "md5" || r.Sim[0].Name != "md5" {
		t.Fatalf("ranking wrong: model[0]=%s sim[0]=%s", r.Model[0].Name, r.Sim[0].Name)
	}
	if !r.Agree {
		t.Fatal("sources name the same bottleneck; Agree must be true")
	}
	top, ok := Bottleneck(r.Model)
	if !ok || top.Name != "md5" {
		t.Fatalf("Bottleneck = %+v, %v", top, ok)
	}
}

func TestBuildReportDisagreement(t *testing.T) {
	model := []Component{{Name: "a", Kind: KindCompute, SaturationLoad: 1e9}}
	sim := []Component{
		{Name: "b", Kind: KindCompute, SaturationLoad: 0.9e9},
		{Name: "a", Kind: KindCompute, SaturationLoad: 1.1e9},
	}
	r := BuildReport(0.5e9, model, sim)
	if r.Agree {
		t.Fatal("different top components must not agree")
	}
	out := r.Format()
	if !strings.Contains(out, "sim disagrees") {
		t.Fatalf("disagreement must be called out:\n%s", out)
	}
}

func TestBuildReportDeterministicTieBreak(t *testing.T) {
	model := []Component{
		{Name: "b", Kind: KindCompute, SaturationLoad: 1e9},
		{Name: "a", Kind: KindCompute, SaturationLoad: 1e9},
	}
	r := BuildReport(1e9, model, nil)
	if r.Model[0].Name != "a" || r.Model[1].Name != "b" {
		t.Fatalf("ties must break by name: %s, %s", r.Model[0].Name, r.Model[1].Name)
	}
}

func TestReportFormat(t *testing.T) {
	r := BuildReport(10e9,
		[]Component{
			{Name: "md5", Kind: KindCompute, Utilization: 0.9, SaturationLoad: 11e9},
			{Name: "interface", Kind: KindInterface, Utilization: 0.4, SaturationLoad: 25e9},
		},
		[]Component{
			{Name: "md5", Kind: KindCompute, Utilization: 0.88, SaturationLoad: 11.4e9},
			{Name: "sim-only", Kind: KindCompute, Utilization: 0.1, SaturationLoad: 100e9},
		})
	out := r.Format()
	for _, want := range []string{
		"bottleneck attribution", "md5", "interface", "sim-only",
		"<- bottleneck (model+sim agree)", "11GB/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	// The model-absent, sim-only component renders dashes in model columns.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "sim-only") && !strings.Contains(line, "-") {
			t.Errorf("sim-only row must dash out model cells: %q", line)
		}
	}
}

func TestFormatBW(t *testing.T) {
	cases := map[float64]string{
		5e9:    "5GB/s",
		2e6:    "2MB/s",
		3e3:    "3KB/s",
		42:     "42B/s",
		11.4e9: "11.4GB/s",
	}
	for in, want := range cases {
		if got := formatBW(in); got != want {
			t.Errorf("formatBW(%v) = %q, want %q", in, got, want)
		}
	}
}
