package obs

// Cross-process trace identity, carried between lognic-storm, lognic-serve
// and the simulator as a W3C Trace Context "traceparent" header
// (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// The client (lognic-storm, or any curl) originates a trace id; each hop
// mints a child span id under the same trace id and records the hop it
// came from as the parent. Because every span carries the trace id, a
// merged Chrome trace export renders client request, server request, job
// attempt and simulator vertex spans as one causally-linked tree.
//
// Identifiers come from crypto/rand, never from simulator RNG streams:
// trace propagation must not perturb simulation results.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is one position in a distributed trace: the trace the
// request belongs to and the span identifying this hop.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, non-zero.
	TraceID string
	// SpanID is 16 lowercase hex characters, non-zero: the id of the
	// current hop's span (the parent-id field when rendered as a
	// traceparent header for the next hop).
	SpanID string
	// Sampled mirrors the header's sampled flag bit.
	Sampled bool
}

// Valid reports whether both identifiers are well-formed and non-zero.
func (tc TraceContext) Valid() bool {
	return validHexID(tc.TraceID, 32) && validHexID(tc.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent header
// value.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// Child returns a context in the same trace with a freshly minted span
// id — the span the receiving hop owns, parented (by the caller) on
// tc.SpanID.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: NewSpanID(), Sampled: tc.Sampled}
}

// NewTraceContext mints a fresh sampled trace root: new trace id, new
// span id.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newHexID(16), SpanID: NewSpanID(), Sampled: true}
}

// NewSpanID mints a random 16-hex-char span id.
func NewSpanID() string { return newHexID(8) }

// ParseTraceparent parses a traceparent header value. Unknown versions
// are accepted if the version-00 fields parse (per spec, forward
// compatibility); malformed or all-zero ids are errors.
func ParseTraceparent(h string) (TraceContext, error) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-parentid-flags", h)
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad version", h)
	}
	if version == "ff" {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: forbidden version ff", h)
	}
	if !validHexID(traceID, 32) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad trace-id", h)
	}
	if !validHexID(spanID, 16) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad parent-id", h)
	}
	if len(flags) != 2 || !isHex(flags) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad flags", h)
	}
	var b byte
	fmt.Sscanf(flags, "%02x", &b)
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: b&1 == 1}, nil
}

// newHexID returns 2n lowercase hex chars of crypto/rand entropy,
// guaranteed non-zero.
func newHexID(n int) string {
	buf := make([]byte, n)
	for {
		if _, err := rand.Read(buf); err != nil {
			// crypto/rand never fails on supported platforms; if it somehow
			// does, a constant non-zero id keeps tracing functional.
			for i := range buf {
				buf[i] = 0xab
			}
		}
		for _, c := range buf {
			if c != 0 {
				return hex.EncodeToString(buf)
			}
		}
	}
}

func isHex(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// validHexID reports whether s is exactly n lowercase hex chars and not
// all zeros.
func validHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

// traceCtxKey keys a TraceContext in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx; downstream layers
// (the simulator's span emission, the job evaluator) read it back with
// TraceFromContext to stamp their spans.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the attached trace context, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
