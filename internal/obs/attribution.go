package obs

// Bottleneck attribution. LogNIC's core promise is explaining *which*
// component binds first — a NIC core group, an accelerator, a shared
// interconnect, the memory subsystem, or a characterized link. This file
// turns per-component saturation estimates from two independent sources
// (the analytical model's Equation 4 constraints and the simulator's
// measured utilizations) into one ranked "who saturates first and at what
// offered load" report, cross-checked against each other.

import (
	"fmt"
	"sort"
	"strings"
)

// Component kinds, mirroring the model's constraint vocabulary.
const (
	// KindCompute is an IP/vertex compute ceiling.
	KindCompute = "compute"
	// KindInterface is the shared SoC interface (BW_INTF).
	KindInterface = "interface"
	// KindMemory is the shared memory subsystem (BW_MEM).
	KindMemory = "memory"
	// KindEdge is a characterized vertex-to-vertex link.
	KindEdge = "edge"
)

// Component is one hardware entity's saturation estimate from one source.
type Component struct {
	// Name identifies the entity: a vertex name, "interface", "memory", or
	// "from->to" for dedicated links.
	Name string `json:"name"`
	// Kind classifies it (KindCompute, KindInterface, ...).
	Kind string `json:"kind"`
	// Utilization is the busy fraction at the report's offered load:
	// measured for the simulator, offered/saturation for the model.
	Utilization float64 `json:"utilization"`
	// SaturationLoad is the offered ingress load (bytes/second) at which
	// this component is estimated to saturate. For the model it is the
	// constraint's Equation 4 limit; for the simulator it extrapolates
	// offered/utilization — the same linear-scaling assumption the model's
	// min() makes.
	SaturationLoad float64 `json:"saturation_load"`
}

// key is the canonical identity used to match model and simulator entries.
func (c Component) key() string { return c.Kind + ":" + c.Name }

// Report ranks components by saturation order from both sources.
type Report struct {
	// OfferedLoad is the ingress load (bytes/second) both sources were
	// evaluated at.
	OfferedLoad float64 `json:"offered_load"`
	// Model ranks the analytical model's components, tightest first.
	Model []Component `json:"model"`
	// Sim ranks the simulator's components, tightest first.
	Sim []Component `json:"sim"`
	// Agree reports whether the simulator confirms the model's
	// first-saturating component: the model's bottleneck appears among the
	// simulator components whose saturation load is within AgreeTolerance
	// of the simulator's tightest. The tolerance keeps designed exact ties
	// (e.g. a γ-partitioned core pool, where every slice saturates at the
	// same load) from flipping the verdict on measurement noise.
	Agree bool `json:"agree"`
}

// AgreeTolerance is the relative saturation-load slack within which
// simulator components count as tied for first place when cross-checking
// the model's bottleneck.
const AgreeTolerance = 0.02

// BuildReport ranks both component lists (ascending saturation load,
// ties broken by name for determinism) and cross-checks their verdicts.
// Components with no meaningful estimate (zero or negative saturation
// load) are dropped.
func BuildReport(offered float64, model, sim []Component) Report {
	r := Report{OfferedLoad: offered, Model: RankComponents(model), Sim: RankComponents(sim)}
	if len(r.Model) > 0 && len(r.Sim) > 0 {
		top := r.Model[0].key()
		tieCeil := r.Sim[0].SaturationLoad * (1 + AgreeTolerance)
		for _, c := range r.Sim {
			if c.SaturationLoad > tieCeil {
				break
			}
			if c.key() == top {
				r.Agree = true
				break
			}
		}
	}
	return r
}

// RankComponents orders one source's components by ascending saturation
// load (tightest constraint first), dropping entries with no meaningful
// estimate and breaking ties by key for determinism.
func RankComponents(in []Component) []Component {
	out := make([]Component, 0, len(in))
	for _, c := range in {
		if c.SaturationLoad > 0 {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SaturationLoad != out[j].SaturationLoad {
			return out[i].SaturationLoad < out[j].SaturationLoad
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// Bottleneck returns the first-saturating component of the given source
// ranking, or false when the ranking is empty.
func Bottleneck(ranked []Component) (Component, bool) {
	if len(ranked) == 0 {
		return Component{}, false
	}
	return ranked[0], true
}

// Format renders the report as an aligned text table: one row per
// component present in either source, ranked by the model's saturation
// order (simulator-only components follow), with both sources'
// utilization and saturation-load estimates side by side.
func (r Report) Format() string {
	type row struct {
		key   string
		name  string
		kind  string
		model *Component
		sim   *Component
	}
	var rows []row
	index := map[string]int{}
	for i := range r.Model {
		c := &r.Model[i]
		index[c.key()] = len(rows)
		rows = append(rows, row{key: c.key(), name: c.Name, kind: c.Kind, model: c})
	}
	for i := range r.Sim {
		c := &r.Sim[i]
		if j, ok := index[c.key()]; ok {
			rows[j].sim = c
		} else {
			rows = append(rows, row{key: c.key(), name: c.Name, kind: c.Kind, sim: c})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# bottleneck attribution at offered %s\n", formatBW(r.OfferedLoad))
	fmt.Fprintf(&b, "%-4s %-22s %-10s %12s %14s %12s %14s\n",
		"rank", "component", "kind", "model-util", "model-sat", "sim-util", "sim-sat")
	cell := func(c *Component, util bool) string {
		if c == nil {
			return "-"
		}
		if util {
			return fmt.Sprintf("%.3f", c.Utilization)
		}
		return formatBW(c.SaturationLoad)
	}
	for i, rw := range rows {
		mark := ""
		if i == 0 {
			if r.Agree {
				mark = "  <- bottleneck (model+sim agree)"
			} else {
				mark = "  <- model bottleneck"
			}
		}
		fmt.Fprintf(&b, "%-4d %-22s %-10s %12s %14s %12s %14s%s\n",
			i+1, rw.name, rw.kind,
			cell(rw.model, true), cell(rw.model, false),
			cell(rw.sim, true), cell(rw.sim, false), mark)
	}
	if !r.Agree {
		if top, ok := Bottleneck(r.Sim); ok {
			fmt.Fprintf(&b, "# sim disagrees: measured first-saturating component is %s (%s)\n", top.Name, top.Kind)
		}
	}
	return b.String()
}

// formatBW renders bytes/second compactly without importing internal/unit
// (obs stays dependency-free).
func formatBW(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.3gGB/s", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gMB/s", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gKB/s", v/1e3)
	default:
		return fmt.Sprintf("%.3gB/s", v)
	}
}
