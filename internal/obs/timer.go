package obs

import "time"

// Timer measures one wall-clock interval into a Histogram of seconds.
// lognic-serve uses it per request:
//
//	defer latency.Time()()
//
// or, when the observation point is conditional:
//
//	t := latency.StartTimer()
//	...
//	t.ObserveDuration()
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts a timer against the histogram.
func (h *Histogram) StartTimer() *Timer {
	return &Timer{h: h, start: time.Now()}
}

// ObserveDuration records the seconds elapsed since the timer started and
// returns the measured duration. It may be called multiple times; each
// call observes the total elapsed time so far.
func (t *Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// Time returns a function that, when called, records the seconds elapsed
// since Time was called — built for defer.
func (h *Histogram) Time() func() {
	t := h.StartTimer()
	return func() { t.ObserveDuration() }
}
