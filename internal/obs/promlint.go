package obs

// A self-contained linter for the Prometheus text exposition format
// (version 0.0.4) — the checks promtool would run, without the
// dependency. The exposition-format regression test scrapes
// Registry.WritePrometheus through this, so a change that breaks
// HELP/TYPE ordering, label escaping or histogram invariants fails the
// build instead of a production scrape.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// lintFamily accumulates what the linter learned about one family.
type lintFamily struct {
	typ      string
	helpSeen bool
	typeSeen bool
	samples  bool
	closed   bool // a different family started after this one
	// histogram bookkeeping, keyed by the series' labels minus "le"
	buckets map[string][]bucketSample
	sums    map[string]bool
	counts  map[string]float64
}

type bucketSample struct {
	le    float64
	value float64
}

// LintExposition validates a Prometheus text-format payload and returns
// every violation found. It checks:
//
//   - line grammar: HELP/TYPE comments, samples `name{labels} value`
//   - metric and label names against the Prometheus charset
//   - label values quoted with only \\, \" and \n escapes
//   - HELP before TYPE, TYPE before samples, one contiguous block per
//     family (no interleaving, no re-opening)
//   - counter samples are non-negative and never NaN
//   - histogram families expand to _bucket/_sum/_count, bucket counts
//     are cumulative (non-decreasing in le), an le="+Inf" bucket exists
//     and equals _count
//
// A nil return means the payload is clean.
func LintExposition(data []byte) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	fams := map[string]*lintFamily{}
	current := ""
	open := func(line int, name string) *lintFamily {
		f := fams[name]
		if f == nil {
			f = &lintFamily{buckets: map[string][]bucketSample{}, sums: map[string]bool{}, counts: map[string]float64{}}
			fams[name] = f
		}
		if name != current {
			if f.closed {
				fail(line, "family %q reopened: all of a family's lines must be contiguous", name)
			}
			if cf := fams[current]; cf != nil {
				cf.closed = true
			}
			current = name
		}
		return f
	}

	for i, raw := range strings.Split(string(data), "\n") {
		line := i + 1
		if raw == "" {
			continue
		}
		switch {
		case strings.HasPrefix(raw, "# HELP "):
			rest := raw[len("# HELP "):]
			name, _, _ := strings.Cut(rest, " ")
			if !validName(name) {
				fail(line, "HELP for invalid metric name %q", name)
				continue
			}
			f := open(line, name)
			if f.helpSeen {
				fail(line, "duplicate HELP for %q", name)
			}
			if f.typeSeen || f.samples {
				fail(line, "HELP for %q after its TYPE or samples", name)
			}
			f.helpSeen = true
		case strings.HasPrefix(raw, "# TYPE "):
			fields := strings.Fields(raw[len("# TYPE "):])
			if len(fields) != 2 {
				fail(line, "malformed TYPE line %q", raw)
				continue
			}
			name, typ := fields[0], fields[1]
			if !validName(name) {
				fail(line, "TYPE for invalid metric name %q", name)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(line, "unknown TYPE %q for %q", typ, name)
			}
			f := open(line, name)
			if f.typeSeen {
				fail(line, "duplicate TYPE for %q", name)
			}
			if f.samples {
				fail(line, "TYPE for %q after its samples", name)
			}
			f.typeSeen = true
			f.typ = typ
		case strings.HasPrefix(raw, "#"):
			// Free-form comment: legal anywhere.
		default:
			name, labels, value, err := parseSample(raw)
			if err != nil {
				fail(line, "%v", err)
				continue
			}
			famName, sub := sampleFamily(name, fams)
			f := fams[famName]
			if f == nil || !f.typeSeen {
				fail(line, "sample %q without a preceding TYPE", name)
				continue
			}
			open(line, famName)
			f.samples = true
			switch f.typ {
			case "counter":
				if math.IsNaN(value) || value < 0 {
					fail(line, "counter %q sample %v (must be a non-negative number)", name, value)
				}
				if sub != "" {
					fail(line, "counter family %q has suffixed sample %q", famName, name)
				}
			case "histogram":
				key := labelKeyWithout(labels, "le")
				switch sub {
				case "_bucket":
					le, ok := labels["le"]
					if !ok {
						fail(line, "histogram bucket %q missing le label", name)
						continue
					}
					b, err := parseFloatProm(le)
					if err != nil {
						fail(line, "histogram bucket %q has unparseable le=%q", name, le)
						continue
					}
					f.buckets[key] = append(f.buckets[key], bucketSample{le: b, value: value})
				case "_sum":
					f.sums[key] = true
				case "_count":
					f.counts[key] = value
				default:
					fail(line, "histogram family %q has non-histogram sample %q", famName, name)
				}
			default:
				if sub != "" {
					fail(line, "family %q has suffixed sample %q", famName, name)
				}
			}
		}
	}

	// Per-series histogram invariants.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typ != "histogram" || !f.samples {
			continue
		}
		for key, buckets := range f.buckets {
			loc := fmt.Sprintf("histogram %s{%s}", n, key)
			last := math.Inf(-1)
			lastCount := -1.0
			hasInf := false
			for _, b := range buckets {
				if b.le <= last {
					errs = append(errs, fmt.Errorf("%s: bucket bounds not strictly increasing at le=%v", loc, b.le))
				}
				last = b.le
				if b.value < lastCount {
					errs = append(errs, fmt.Errorf("%s: bucket counts not cumulative at le=%v", loc, b.le))
				}
				lastCount = b.value
				if math.IsInf(b.le, 1) {
					hasInf = true
					if c, ok := f.counts[key]; ok && b.value != c {
						errs = append(errs, fmt.Errorf("%s: le=+Inf bucket %v != _count %v", loc, b.value, c))
					}
				}
			}
			if !hasInf {
				errs = append(errs, fmt.Errorf("%s: missing le=+Inf bucket", loc))
			}
			if !f.sums[key] {
				errs = append(errs, fmt.Errorf("%s: missing _sum", loc))
			}
			if _, ok := f.counts[key]; !ok {
				errs = append(errs, fmt.Errorf("%s: missing _count", loc))
			}
		}
	}
	return errs
}

// sampleFamily resolves a sample name to its family: either an exact
// family name, or a histogram family plus a _bucket/_sum/_count suffix.
func sampleFamily(name string, fams map[string]*lintFamily) (family, suffix string) {
	if f, ok := fams[name]; ok && f.typ != "" {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
			return base, suf
		}
	}
	return name, ""
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (name string, labels Labels, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = Labels{}
	rest = rest[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validName(lname) || strings.Contains(lname, ":") {
				return "", nil, 0, fmt.Errorf("invalid label name %q in %q", lname, line)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			val, remainder, verr := parseQuoted(rest)
			if verr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", verr, line)
			}
			labels[lname] = val
			rest = remainder
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parseFloatProm(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted label value allowing exactly the
// exposition format's escapes: \\, \" and \n.
func parseQuoted(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\', '"':
				b.WriteByte(s[i+1])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("illegal escape \\%c", s[i+1])
			}
			i++
		case '"':
			return b.String(), s[i+1:], nil
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// parseFloatProm parses a sample or le value, accepting the exposition
// spellings of the non-finite values.
func parseFloatProm(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// labelKeyWithout renders labels canonically, excluding one name —
// histogram series identity ignores "le".
func labelKeyWithout(l Labels, drop string) string {
	if len(l) == 0 {
		return ""
	}
	cp := Labels{}
	for k, v := range l {
		if k != drop {
			cp[k] = v
		}
	}
	return labelKey(cp)
}
