package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("packets_total", "packets seen", Labels{"vertex": "md5"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	c.Add(math.NaN())
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("queue_len", "waiting requests", nil)
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestGetOrCreateSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", Labels{"k": "v"})
	b := r.Counter("c_total", "", Labels{"k": "v"})
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatalf("same (name, labels) must share a series: %v %v", a.Value(), b.Value())
	}
	other := r.Counter("c_total", "", Labels{"k": "w"})
	if other.Value() != 0 {
		t.Fatal("distinct label values must not share a series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "e2e latency", []float64{0.001, 0.01, 0.1}, nil)
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	snaps := r.Gather()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	s := snaps[0]
	wantCum := []uint64{1, 3, 4} // cumulative per bound; +Inf (=5) is implicit
	for i, b := range s.Buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket le=%v cum=%d, want %d", b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if s.Sum != 0.0005+0.005+0.005+0.05+5 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

// promLine matches one valid Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestPrometheusFormatLint renders a representative registry and checks
// every line against the exposition-format grammar: HELP/TYPE comments
// first per family, valid sample lines, histogram series complete with a
// +Inf bucket whose count equals _count.
func TestPrometheusFormatLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_packets_delivered_total", "packets delivered", nil).Add(42)
	r.Counter("sim_packets_dropped_total", `drops with "quotes" and \slash`, Labels{"vertex": `v"1\x`}).Inc()
	r.Gauge("sim_link_utilization", "busy fraction", Labels{"link": "interface"}).Set(0.73)
	h := r.Histogram("sweep_point_seconds", "per-point wall time", ExpBuckets(0.001, 10, 4), Labels{"fig": "fig9"})
	h.Observe(0.02)
	h.Observe(3)
	h.Observe(1e9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	seenType := map[string]string{}
	var lastFamily string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# HELP ") {
			parts := strings.SplitN(ln, " ", 4)
			if len(parts) < 3 {
				t.Fatalf("malformed HELP line: %q", ln)
			}
			lastFamily = parts[2]
			continue
		}
		if strings.HasPrefix(ln, "# TYPE ") {
			parts := strings.SplitN(ln, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", ln)
			}
			name, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("invalid TYPE %q in %q", typ, ln)
			}
			if _, dup := seenType[name]; dup {
				t.Fatalf("duplicate TYPE line for %s", name)
			}
			seenType[name] = typ
			lastFamily = name
			continue
		}
		if strings.HasPrefix(ln, "#") {
			t.Fatalf("unexpected comment line %q", ln)
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("sample line fails format lint: %q", ln)
		}
		name := ln[:strings.IndexAny(ln, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := seenType[name]; !ok {
			if _, ok := seenType[base]; !ok {
				t.Fatalf("sample %q precedes its TYPE line (family %q)", ln, lastFamily)
			}
		}
	}
	// Histogram completeness: +Inf bucket count == _count value.
	if !strings.Contains(out, `sweep_point_seconds_bucket{fig="fig9",le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `sweep_point_seconds_count{fig="fig9"} 3`) {
		t.Errorf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "sim_link_utilization{link=\"interface\"} 0.73") {
		t.Errorf("missing gauge sample:\n%s", out)
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help", Labels{"x": "1"}).Add(7)
	r.Histogram("h", "", []float64{1, 2}, nil).Observe(1.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snaps); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snaps) != 2 || snaps[0].Name != "a_total" || snaps[0].Value != 7 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if snaps[1].Count != 1 || len(snaps[1].Buckets) != 2 {
		t.Fatalf("histogram snapshot = %+v", snaps[1])
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "", nil).Inc()
	srv := httptest.NewServer(r)
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fscan(res.Body, &b); err != nil {
		// Fscan stops at whitespace; just check content type and status.
		_ = err
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	resJSON, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resJSON.Body.Close()
	if ct := resJSON.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("races_total", "", nil)
			h := r.Histogram("rh", "", []float64{1}, nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 2))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("races_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

// TestGatherRacesRegistration scrapes the registry while other goroutines
// keep registering fresh series into existing families — the live
// /metrics-during-sweep pattern. Run under -race this is a regression
// test for Gather reading family.series maps without the registry lock.
func TestGatherRacesRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrape_races_total", "", Labels{"vertex": "seed"})
	done := make(chan struct{})
	var registered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				r.Counter("scrape_races_total", "", Labels{"vertex": fmt.Sprintf("v%d_%d", w, i)}).Inc()
				r.Histogram("scrape_races_hist", "", []float64{1, 2}, Labels{"vertex": fmt.Sprintf("v%d_%d", w, i)}).Observe(1)
				registered.Add(1)
			}
		}(w)
	}
	// Scrape until the writers have demonstrably inserted series while
	// scrapes were in flight — just N iterations could finish before the
	// goroutines are even scheduled, missing the interleaving entirely.
	for registered.Load() < 5000 {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
	}
	close(done)
	wg.Wait()
	snaps := r.Gather()
	if len(snaps) == 0 {
		t.Fatal("no snapshots after concurrent registration")
	}
}

// TestHistogramBucketValueMismatchPanics re-registers a histogram with the
// same number of buckets but different bounds — this must panic, not
// silently bucket against the first registrant's bounds.
func TestHistogramBucketValueMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("hb", "", []float64{1, 2, 3}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different equal-length bounds must panic")
		}
	}()
	r.Histogram("hb", "", []float64{1, 2, 4}, nil)
}

func TestMetricTypeString(t *testing.T) {
	for typ, want := range map[MetricType]string{
		TypeCounter: "counter", TypeGauge: "gauge", TypeHistogram: "histogram",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
