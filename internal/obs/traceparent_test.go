package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("NewTraceContext not valid: %+v", tc)
	}
	if !tc.Sampled {
		t.Fatalf("fresh root should be sampled")
	}
	got, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tc.Traceparent(), err)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, tc)
	}
}

func TestChildSharesTrace(t *testing.T) {
	root := NewTraceContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace id: %q != %q", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatalf("child reused parent span id %q", root.SpanID)
	}
	if !child.Valid() {
		t.Fatalf("child not valid: %+v", child)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tc, err := ParseTraceparent(valid)
	if err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	if tc.TraceID != "0af7651916cd43dd8448eb211c80319c" || tc.SpanID != "b7ad6b7169203331" || !tc.Sampled {
		t.Fatalf("bad parse: %+v", tc)
	}
	if tc.Traceparent() != valid {
		t.Fatalf("re-render mismatch: %q", tc.Traceparent())
	}

	unsampled, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if err != nil || unsampled.Sampled {
		t.Fatalf("unsampled parse: %+v, %v", unsampled, err)
	}

	// Future versions with extra fields must parse (forward compat).
	if _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Fatalf("future version rejected: %v", err)
	}

	bad := []string{
		"",
		"garbage",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-short-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g",
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
}

func TestContextCarriesTrace(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatalf("empty context should carry no trace")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v; want %+v", got, ok, tc)
	}
}

func TestNewHexIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewSpanID()
		if !validHexID(id, 16) {
			t.Fatalf("NewSpanID produced %q", id)
		}
		if seen[id] {
			t.Fatalf("NewSpanID repeated %q", id)
		}
		seen[id] = true
	}
	if id := newHexID(16); !validHexID(id, 32) || strings.ToLower(id) != id {
		t.Fatalf("newHexID(16) produced %q", id)
	}
}

func TestBuildInfoNeverEmpty(t *testing.T) {
	version, goVersion, revision := BuildInfo()
	if version == "" || goVersion == "" || revision == "" {
		t.Fatalf("BuildInfo returned empty field: %q %q %q", version, goVersion, revision)
	}
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lognic_build_info{") {
		t.Fatalf("lognic_build_info not exposed:\n%s", sb.String())
	}
	if errs := LintExposition([]byte(sb.String())); errs != nil {
		t.Fatalf("build info exposition fails lint: %v", errs)
	}
}
