package devices

import (
	"math"
	"testing"

	"lognic/internal/unit"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLiquidIOCatalogAnchors(t *testing.T) {
	d := LiquidIO2CN2360()
	if d.Cores != 16 {
		t.Fatalf("Cores = %d, want 16", d.Cores)
	}
	if !approx(d.LineRate.GbpsValue(), 25, 1e-9) {
		t.Fatalf("LineRate = %v Gbps", d.LineRate.GbpsValue())
	}
	// Figure 5 anchor: at 16KB granularity the interconnect ceiling gives
	// CRC/3DES/MD5/HFA = 13.6/17.3/21.2/25.8% of each engine's max.
	cases := map[string]float64{"crc": 0.136, "3des": 0.173, "md5": 0.212, "hfa": 0.258}
	for name, wantFrac := range cases {
		a, err := d.Accel(name)
		if err != nil {
			t.Fatal(err)
		}
		ceiling := d.PathBW(a).BytesPerSecond()
		atMax := ceiling / 16384 // ops/s at 16KB granularity
		frac := atMax / a.PacketRate
		if !approx(frac, wantFrac, 0.02) {
			t.Errorf("%s: 16KB fraction = %.3f, want %.3f", name, frac, wantFrac)
		}
	}
}

func TestLiquidIOFigure9Anchors(t *testing.T) {
	d := LiquidIO2CN2360()
	// Figure 9 anchor: cores needed to saturate each engine at MTU line
	// rate: MD5 9, KASUMI 8, HFA 11. Saturation = min(engine rate, line
	// pps); cores = ceil(plateau × per-core packet time).
	linePPS := d.LineRate.BytesPerSecond() / 1500
	cases := map[string]int{"md5": 9, "kasumi": 8, "hfa": 11}
	for name, wantCores := range cases {
		a, _ := d.Accel(name)
		plateau := math.Min(a.PacketRate, linePPS)
		cores := int(math.Ceil(plateau * d.CorePacketTime(a)))
		if cores != wantCores {
			t.Errorf("%s: cores to saturate = %d, want %d", name, cores, wantCores)
		}
	}
}

func TestLiquidIOAccelLookup(t *testing.T) {
	d := LiquidIO2CN2360()
	if _, err := d.Accel("nope"); err == nil {
		t.Fatal("unknown accel should fail")
	}
	names := d.AccelNames()
	if len(names) != len(d.Accels) {
		t.Fatalf("AccelNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestLiquidIOPaths(t *testing.T) {
	d := LiquidIO2CN2360()
	crc, _ := d.Accel("crc")
	hfa, _ := d.Accel("hfa")
	if crc.Path != PathCMI || hfa.Path != PathIO {
		t.Fatal("path assignment wrong")
	}
	if d.PathBW(crc) != d.CMIBW || d.PathBW(hfa) != d.IOBW {
		t.Fatal("PathBW wrong")
	}
	if PathCMI.String() != "cmi" || PathIO.String() != "io" {
		t.Fatal("path names wrong")
	}
	// Off-chip engines pay more invocation overhead.
	if hfa.CallOverhead <= crc.CallOverhead {
		t.Fatal("off-chip overhead should exceed on-chip")
	}
}

func TestLiquidIOCoreThroughput(t *testing.T) {
	d := LiquidIO2CN2360()
	md5, _ := d.Accel("md5")
	p1 := d.CoreThroughput(md5, 1500, 1)
	p8 := d.CoreThroughput(md5, 1500, 8)
	if !approx(p8, 8*p1, 1e-12) {
		t.Fatal("core throughput should scale linearly with cores")
	}
	if d.CoreThroughput(md5, 1500, 0) != p1 {
		t.Fatal("cores < 1 should clamp to 1")
	}
}

func TestLiquidIORoofline(t *testing.T) {
	d := LiquidIO2CN2360()
	crc, _ := d.Accel("crc")
	rl := d.AccelRoofline(crc)
	if err := rl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Small granularity: compute bound at the engine's packet rate.
	b, err := rl.Attainable(512)
	if err != nil {
		t.Fatal(err)
	}
	if b.LimitedBy != "compute" || !approx(b.PacketsPerSecond, crc.PacketRate, 1e-9) {
		t.Fatalf("512B bound = %+v", b)
	}
	// Huge granularity: ceiling bound.
	b, err = rl.Attainable(16384)
	if err != nil {
		t.Fatal(err)
	}
	if b.LimitedBy != "cmi" {
		t.Fatalf("16KB bound = %+v", b)
	}
}

func TestLiquidIOHardware(t *testing.T) {
	d := LiquidIO2CN2360()
	hw := d.Hardware()
	if hw.InterfaceBW != d.CMIBW.BytesPerSecond() || hw.MemoryBW != d.MemoryBW.BytesPerSecond() {
		t.Fatal("Hardware mapping wrong")
	}
}

func TestBlueField2Catalog(t *testing.T) {
	d := BlueField2DPU()
	if d.Cores != 8 || !approx(d.LineRate.GbpsValue(), 100, 1e-9) {
		t.Fatalf("catalog = %+v", d)
	}
	for _, name := range []string{"conntrack", "hash", "regex", "crypto"} {
		e, err := d.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.ServiceTime(1500) <= 0 {
			t.Fatalf("%s: non-positive service time", name)
		}
		// Per-byte engines slow down with size.
		if e.PerByte > 0 && e.ServiceTime(1500) <= e.ServiceTime(64) {
			t.Fatalf("%s: size scaling wrong", name)
		}
		if e.TransferOverhead <= 0 {
			t.Fatalf("%s: transfer overhead must be positive", name)
		}
	}
	if _, err := d.Engine("dpi"); err == nil {
		t.Fatal("DPI has no engine (paper §4.5)")
	}
	if d.Hardware().InterfaceBW != d.InterfaceBW.BytesPerSecond() {
		t.Fatal("Hardware mapping wrong")
	}
}

func TestStingrayCatalog(t *testing.T) {
	d := StingrayPS1100R()
	if d.Cores != 8 {
		t.Fatalf("Cores = %d", d.Cores)
	}
	if d.SubmissionCost <= 0 || d.CompletionCost <= 0 {
		t.Fatal("IO path costs must be positive")
	}
	hw := d.Hardware()
	if hw.MemoryBW <= 0 || hw.InterfaceBW <= 0 {
		t.Fatal("hardware bandwidths must be positive")
	}
	// DDR4-2400 ≈ 19.2 GB/s.
	if !approx(hw.MemoryBW, 19.2e9, 1e-9) {
		t.Fatalf("MemoryBW = %v", hw.MemoryBW)
	}
}

func TestPANICCatalog(t *testing.T) {
	d := PANICPrototype()
	if d.DefaultCredits != 8 {
		t.Fatalf("DefaultCredits = %d, want 8 (PANIC paper default)", d.DefaultCredits)
	}
	// §4.6 scenario #2 requires A1:A2:A3 throughput ratio 4:7:3.
	a1, _ := d.Unit("a1")
	a2, _ := d.Unit("a2")
	a3, _ := d.Unit("a3")
	if !approx(a1.PacketRate/a3.PacketRate, 4.0/3.0, 1e-9) {
		t.Fatalf("A1:A3 = %v", a1.PacketRate/a3.PacketRate)
	}
	if !approx(a2.PacketRate/a3.PacketRate, 7.0/3.0, 1e-9) {
		t.Fatalf("A2:A3 = %v", a2.PacketRate/a3.PacketRate)
	}
	if _, err := d.Unit("nope"); err == nil {
		t.Fatal("unknown unit should fail")
	}
	u, _ := d.Unit("a1")
	if u.ServiceTime(1500) <= u.ServiceTime(64) {
		t.Fatal("per-byte scaling wrong")
	}
	if d.Hardware().InterfaceBW != d.SwitchBW.BytesPerSecond() {
		t.Fatal("Hardware mapping wrong")
	}
	// A unit saturates in the tens of Gbps at MTU.
	gbps := unit.Bandwidth(1500 / u.ServiceTime(1500)).GbpsValue()
	if gbps < 10 || gbps > 60 {
		t.Fatalf("a1 MTU capacity = %v Gbps, outside plausible range", gbps)
	}
}
