// Package devices holds the hardware-model catalogs for the four platforms
// of the paper's evaluation (§4.1): the Marvell LiquidIO-II CN2360, the
// NVIDIA BlueField-2 DPU, the Broadcom Stingray PS1100R, and the PANIC
// academic prototype. A catalog entry supplies the fixed LogNIC hardware
// parameters (interface/memory bandwidths, per-IP compute rates, transfer
// overheads) that the paper obtains from datasheets ("SPEC") and offline
// microbenchmark characterization ("CHAR").
//
// Parameter provenance: we do not have the physical cards, so CHAR-sourced
// values are synthetic, chosen so that the published anchor points
// reproduce: the LiquidIO accelerator maxima are fixed by the paper's own
// Figure 5 ratios (at 16KB granularity CRC/3DES/MD5/HFA reach
// 13.6/17.3/21.2/25.8% of their maxima against the 50 Gbps CMI and 40 Gbps
// I/O interconnect ceilings), and NIC-core costs are fixed by Figure 9's
// saturation parallelism (MD5/KASUMI/HFA max out at 9/8/11 cores at 25 GbE
// line rate). DESIGN.md discusses the substitution in full.
package devices

import (
	"fmt"
	"sort"

	"lognic/internal/core"
	"lognic/internal/roofline"
	"lognic/internal/unit"
)

// AccelPath tells which interconnect an accelerator's data fetches
// traverse on the LiquidIO-II (Figure 8).
type AccelPath int

// Accelerator data paths.
const (
	// PathCMI is the coherent memory interconnect used by the on-chip
	// crypto units.
	PathCMI AccelPath = iota
	// PathIO is the I/O interconnect used by the off-chip engines (ZIP,
	// HFA).
	PathIO
)

// String names the path.
func (p AccelPath) String() string {
	if p == PathCMI {
		return "cmi"
	}
	return "io"
}

// Accelerator describes one domain-specific engine.
type Accelerator struct {
	// Name identifies the engine ("md5", "hfa", ...).
	Name string
	// PacketRate is the engine's peak invocation rate in packets
	// (requests) per second, aggregated across its internal lanes.
	PacketRate float64
	// CallOverhead is O_IP1 for this engine: the NIC-core seconds spent
	// preparing an invocation (parameter passing, submission/completion
	// signals). Off-chip engines pay more.
	CallOverhead float64
	// Path selects the interconnect its data fetches traverse.
	Path AccelPath
}

// LiquidIO2 is the catalog for the Marvell LiquidIO-II CN2360 (25 GbE,
// 16×1.5 GHz cnMIPS, 4 GB DRAM; Figure 8).
type LiquidIO2 struct {
	// LineRate is the 25 GbE wire rate.
	LineRate unit.Bandwidth
	// Cores is the cnMIPS core count.
	Cores int
	// CoreBase is the per-packet NIC-core cost of the base UDP echo +
	// L3/L4 processing, excluding accelerator invocation (seconds).
	CoreBase float64
	// CMIBW is the coherent-memory-interconnect bandwidth feeding the
	// on-chip crypto engines.
	CMIBW unit.Bandwidth
	// IOBW is the I/O-interconnect bandwidth feeding the off-chip
	// engines.
	IOBW unit.Bandwidth
	// MemoryBW is the DRAM bandwidth (model BW_MEM).
	MemoryBW unit.Bandwidth
	// Accels maps engine name to its description.
	Accels map[string]Accelerator
}

// LiquidIO2CN2360 returns the CN2360 catalog.
func LiquidIO2CN2360() LiquidIO2 {
	mk := func(name string, rate, overhead float64, path AccelPath) Accelerator {
		return Accelerator{Name: name, PacketRate: rate, CallOverhead: overhead, Path: path}
	}
	return LiquidIO2{
		LineRate: unit.Gbps(25),
		Cores:    16,
		CoreBase: 3.0e-6,
		CMIBW:    unit.Gbps(50),
		IOBW:     unit.Gbps(40),
		MemoryBW: unit.Gbps(160), // 4GB DDR3 aggregate
		Accels: map[string]Accelerator{
			// On-chip crypto units (CMI path). Rates anchored to the
			// Figure 5 ratios; overheads anchored to Figure 9 saturation
			// parallelism (see package comment).
			"crc":    mk("crc", 2.80e6, 0.4e-6, PathCMI),
			"3des":   mk("3des", 2.20e6, 0.9e-6, PathCMI),
			"aes":    mk("aes", 2.40e6, 0.8e-6, PathCMI),
			"md5":    mk("md5", 1.80e6, 1.7e-6, PathCMI),
			"sha1":   mk("sha1", 1.50e6, 1.4e-6, PathCMI),
			"sms4":   mk("sms4", 1.20e6, 1.1e-6, PathCMI),
			"kasumi": mk("kasumi", 2.00e6, 0.8e-6, PathCMI),
			// Off-chip engines (I/O interconnect path): costlier setup.
			"hfa": mk("hfa", 1.18e6, 5.9e-6, PathIO),
			"zip": mk("zip", 0.80e6, 6.5e-6, PathIO),
		},
	}
}

// AccelNames returns the catalog's engine names, sorted.
func (d LiquidIO2) AccelNames() []string {
	names := make([]string, 0, len(d.Accels))
	for n := range d.Accels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Accel returns the named engine.
func (d LiquidIO2) Accel(name string) (Accelerator, error) {
	a, ok := d.Accels[name]
	if !ok {
		return Accelerator{}, fmt.Errorf("devices: liquidio has no accelerator %q", name)
	}
	return a, nil
}

// PathBW returns the bandwidth of an accelerator's data path.
func (d LiquidIO2) PathBW(a Accelerator) unit.Bandwidth {
	if a.Path == PathIO {
		return d.IOBW
	}
	return d.CMIBW
}

// CorePacketTime is the per-packet NIC-core service time when driving the
// given engine: base processing plus the engine's invocation overhead
// (submission and completion are handled by the same core, §4.2).
func (d LiquidIO2) CorePacketTime(a Accelerator) float64 {
	return d.CoreBase + a.CallOverhead
}

// CoreThroughput is P_IP1 for a given packet size and core parallelism:
// bytes/second the core group can push toward the engine.
func (d LiquidIO2) CoreThroughput(a Accelerator, packetBytes float64, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	return float64(cores) * packetBytes / d.CorePacketTime(a)
}

// AccelRoofline returns the engine's extended Roofline: invocation-rate
// compute roof plus its interconnect ceiling. The granularity of a call is
// the data chunk fetched per invocation (Figure 5's x axis).
func (d LiquidIO2) AccelRoofline(a Accelerator) roofline.IP {
	return roofline.IP{
		Name:      a.Name,
		OpRate:    a.PacketRate,
		Intensity: roofline.PerPacket(1),
		Ceilings: []roofline.Ceiling{
			{Name: a.Path.String(), Bandwidth: d.PathBW(a).BytesPerSecond()},
		},
	}
}

// Hardware returns the LogNIC hardware parameters for this device: the SoC
// interconnect as BW_INTF and DRAM as BW_MEM.
func (d LiquidIO2) Hardware() core.Hardware {
	return core.Hardware{
		InterfaceBW: d.CMIBW.BytesPerSecond(),
		MemoryBW:    d.MemoryBW.BytesPerSecond(),
	}
}

// NFEngine describes one BlueField-2 hardware offload engine usable by a
// network function.
type NFEngine struct {
	// Name identifies the engine ("crypto", "regex", "hash", "conntrack").
	Name string
	// PacketBase is the fixed per-packet engine time (seconds).
	PacketBase float64
	// PerByte is the additional engine time per payload byte (seconds).
	PerByte float64
	// TransferOverhead is the ARM-side cost of handing a packet to the
	// engine and collecting the result (seconds) — the O_i that makes
	// off-loading small packets a bad deal (§4.5).
	TransferOverhead float64
}

// ServiceTime is the engine time for one packet of the given size.
func (e NFEngine) ServiceTime(packetBytes float64) float64 {
	return e.PacketBase + e.PerByte*packetBytes
}

// BlueField2 is the catalog for the NVIDIA BlueField-2 DPU (100 GbE,
// 8×2.5 GHz ARM A72, 16 GB DRAM).
type BlueField2 struct {
	// LineRate is the 100 GbE wire rate.
	LineRate unit.Bandwidth
	// Cores is the ARM core count.
	Cores int
	// InterfaceBW is the SoC interconnect bandwidth between ARM cores and
	// the hardware engines.
	InterfaceBW unit.Bandwidth
	// MemoryBW is the DRAM bandwidth.
	MemoryBW unit.Bandwidth
	// Engines maps engine name to its description.
	Engines map[string]NFEngine
}

// BlueField2DPU returns the BlueField-2 catalog. Engine timings are
// synthetic CHAR values: hardware engines beat ARM software by 3–10× on
// their target computation but charge a fixed transfer overhead, creating
// the packet-size-dependent placement trade-off of Figures 13–14.
func BlueField2DPU() BlueField2 {
	return BlueField2{
		LineRate:    unit.Gbps(100),
		Cores:       8,
		InterfaceBW: unit.Gbps(200),
		MemoryBW:    unit.Gbps(200),
		Engines: map[string]NFEngine{
			"conntrack": {Name: "conntrack", PacketBase: 0.10e-6, PerByte: 0, TransferOverhead: 0.5e-6},
			"hash":      {Name: "hash", PacketBase: 0.08e-6, PerByte: 0.06e-9, TransferOverhead: 0.5e-6},
			"regex":     {Name: "regex", PacketBase: 0.20e-6, PerByte: 0.35e-9, TransferOverhead: 0.8e-6},
			"crypto":    {Name: "crypto", PacketBase: 0.15e-6, PerByte: 0.25e-9, TransferOverhead: 0.6e-6},
		},
	}
}

// Hardware returns the LogNIC hardware parameters for the BlueField-2.
func (d BlueField2) Hardware() core.Hardware {
	return core.Hardware{
		InterfaceBW: d.InterfaceBW.BytesPerSecond(),
		MemoryBW:    d.MemoryBW.BytesPerSecond(),
	}
}

// Engine returns the named engine.
func (d BlueField2) Engine(name string) (NFEngine, error) {
	e, ok := d.Engines[name]
	if !ok {
		return NFEngine{}, fmt.Errorf("devices: bluefield2 has no engine %q", name)
	}
	return e, nil
}

// Stingray is the catalog for the Broadcom Stingray PS1100R (100 GbE
// NetXtreme, 8×3.0 GHz ARM A72, 8 GB DDR4-2400).
type Stingray struct {
	// LineRate is the 100 GbE wire rate.
	LineRate unit.Bandwidth
	// Cores is the ARM core count.
	Cores int
	// SubmissionCost is the per-IO NIC-core cost of RDMA receive + NVMe
	// command fabrication + doorbell (seconds) — the IP1 of Figure 2(c).
	SubmissionCost float64
	// CompletionCost is the per-IO NIC-core cost of completion handling +
	// NVMe-oF response construction (seconds) — the IP3 of Figure 2(c).
	CompletionCost float64
	// InterfaceBW is the SoC interconnect bandwidth (model BW_INTF).
	InterfaceBW unit.Bandwidth
	// MemoryBW is the DDR4-2400 bandwidth (model BW_MEM).
	MemoryBW unit.Bandwidth
}

// StingrayPS1100R returns the PS1100R catalog.
func StingrayPS1100R() Stingray {
	return Stingray{
		LineRate:       unit.Gbps(100),
		Cores:          8,
		SubmissionCost: 2.4e-6,
		CompletionCost: 1.8e-6,
		InterfaceBW:    unit.Gbps(256),
		MemoryBW:       unit.Bandwidth(19.2e9), // DDR4-2400 single channel
	}
}

// Hardware returns the LogNIC hardware parameters for the Stingray.
func (d Stingray) Hardware() core.Hardware {
	return core.Hardware{
		InterfaceBW: d.InterfaceBW.BytesPerSecond(),
		MemoryBW:    d.MemoryBW.BytesPerSecond(),
	}
}

// PANICUnit is one compute unit of the PANIC prototype.
type PANICUnit struct {
	// Name identifies the unit.
	Name string
	// PacketRate is the unit's peak packet rate at one engine
	// (packets/second).
	PacketRate float64
	// PerByte is additional service time per payload byte (seconds).
	PerByte float64
}

// ServiceTime is the per-packet service time of one engine lane.
func (u PANICUnit) ServiceTime(packetBytes float64) float64 {
	return 1/u.PacketRate + u.PerByte*packetBytes
}

// PANIC is the catalog for the PANIC multi-tenant programmable NIC
// prototype (§4.6): an RMT pipeline, a switching fabric, a central
// credit-based scheduler, and a pool of compute units.
type PANIC struct {
	// LineRate is the prototype's 100 GbE port rate.
	LineRate unit.Bandwidth
	// RMTRate is the RMT parser/offload-descriptor pipeline rate
	// (packets/second); effectively never the bottleneck.
	RMTRate float64
	// SwitchBW is the crossbar switching-fabric bandwidth (model
	// BW_INTF).
	SwitchBW unit.Bandwidth
	// SchedulerRate is the central scheduler's decision rate
	// (packets/second).
	SchedulerRate float64
	// DefaultCredits is the per-unit credit (queue) provisioning the
	// PANIC paper suggests.
	DefaultCredits int
	// Units maps compute-unit name to its description.
	Units map[string]PANICUnit
}

// PANICPrototype returns the PANIC catalog. Unit rates are synthetic CHAR
// values sized so a single unit saturates around 20–40 Gbps at MTU,
// matching the scale of Figures 15–19.
func PANICPrototype() PANIC {
	return PANIC{
		LineRate:       unit.Gbps(100),
		RMTRate:        150e6,
		SwitchBW:       unit.Gbps(400),
		SchedulerRate:  120e6,
		DefaultCredits: 8,
		Units: map[string]PANICUnit{
			"a1": {Name: "a1", PacketRate: 4.0e6, PerByte: 0.18e-9},
			"a2": {Name: "a2", PacketRate: 7.0e6, PerByte: 0.10e-9},
			"a3": {Name: "a3", PacketRate: 3.0e6, PerByte: 0.24e-9},
			// a4 is the slow stateful unit the Model-3 parallelism sweep
			// (Figures 18/19) scales out; one lane is deliberately far
			// below line rate.
			"a4": {Name: "a4", PacketRate: 0.4e6, PerByte: 0.05e-9},
		},
	}
}

// Hardware returns the LogNIC hardware parameters for PANIC.
func (d PANIC) Hardware() core.Hardware {
	return core.Hardware{InterfaceBW: d.SwitchBW.BytesPerSecond()}
}

// Unit returns the named compute unit.
func (d PANIC) Unit(name string) (PANICUnit, error) {
	u, ok := d.Units[name]
	if !ok {
		return PANICUnit{}, fmt.Errorf("devices: panic has no unit %q", name)
	}
	return u, nil
}
