package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func cryptoIP() IP {
	// 2e9 "block ops"/s, one op per 64 bytes of payload, fed by a 50 Gbps
	// interconnect.
	return IP{
		Name:      "crypto",
		OpRate:    2e9,
		Intensity: PerByte(0, 1.0/64),
		Ceilings:  []Ceiling{{Name: "cmi", Bandwidth: 50e9 / 8}},
	}
}

func TestValidate(t *testing.T) {
	if err := cryptoIP().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []IP{
		{Name: "x", OpRate: 0, Intensity: PerPacket(1)},
		{Name: "x", OpRate: math.NaN(), Intensity: PerPacket(1)},
		{Name: "x", OpRate: 1},
		{Name: "x", OpRate: 1, Intensity: PerPacket(1), Ceilings: []Ceiling{{Name: "c", Bandwidth: 0}}},
		{Name: "x", OpRate: 1, Intensity: PerPacket(1), Ceilings: []Ceiling{{Name: "c", Bandwidth: math.Inf(1)}}},
	}
	for i, ip := range bad {
		if err := ip.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestComputeBoundSmallPackets(t *testing.T) {
	ip := cryptoIP()
	// 64B packet: intensity 1 op → 2e9 packets/s from compute;
	// ceiling admits 6.25e9/64 ≈ 9.77e7 packets/s → ceiling binds? No:
	// 6.25e9/64 = 9.77e7 < 2e9 → ceiling binds even at 64B here.
	b, err := ip.Attainable(64)
	if err != nil {
		t.Fatal(err)
	}
	if b.LimitedBy != "cmi" {
		t.Fatalf("LimitedBy = %q", b.LimitedBy)
	}
	if !approx(b.PacketsPerSecond, 50e9/8/64, 1e-12) {
		t.Fatalf("pps = %v", b.PacketsPerSecond)
	}
	if !approx(b.BytesPerSecond, 50e9/8, 1e-12) {
		t.Fatalf("Bps = %v", b.BytesPerSecond)
	}
}

func TestComputeBoundWhenCeilingHigh(t *testing.T) {
	ip := cryptoIP()
	ip.Ceilings[0].Bandwidth = 1e15
	b, err := ip.Attainable(128)
	if err != nil {
		t.Fatal(err)
	}
	if b.LimitedBy != "compute" {
		t.Fatalf("LimitedBy = %q", b.LimitedBy)
	}
	// intensity(128) = 2 ops → 1e9 packets/s.
	if !approx(b.PacketsPerSecond, 1e9, 1e-12) {
		t.Fatalf("pps = %v", b.PacketsPerSecond)
	}
	if !approx(b.OpsPerSecond, 2e9, 1e-12) {
		t.Fatalf("ops = %v", b.OpsPerSecond)
	}
}

func TestAttainableErrors(t *testing.T) {
	ip := cryptoIP()
	if _, err := ip.Attainable(0); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := ip.Attainable(-4); err == nil {
		t.Fatal("negative size should fail")
	}
	ipBad := IP{Name: "x", OpRate: 1, Intensity: func(float64) float64 { return 0 }}
	if _, err := ipBad.Attainable(64); err == nil {
		t.Fatal("zero intensity should fail")
	}
}

func TestSweepSortedAndMonotoneBytes(t *testing.T) {
	ip := cryptoIP()
	bounds, err := ip.Sweep([]float64{1500, 64, 512, 256, 128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 6 {
		t.Fatalf("bounds = %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i].PacketBytes < bounds[i-1].PacketBytes {
			t.Fatal("sweep not sorted")
		}
		// For a per-byte engine, byte throughput is non-decreasing in size.
		if bounds[i].BytesPerSecond < bounds[i-1].BytesPerSecond-1e-6 {
			t.Fatalf("byte throughput decreased: %v -> %v", bounds[i-1], bounds[i])
		}
	}
}

func TestKneeCrossover(t *testing.T) {
	// Per-packet engine: compute admits OpRate packets/s regardless of
	// size; ceiling admits BW/size. Knee at size = BW/OpRate.
	ip := IP{
		Name:      "rmt",
		OpRate:    10e6,
		Intensity: PerPacket(1),
		Ceilings:  []Ceiling{{Name: "io", Bandwidth: 12.5e9}},
	}
	knee, ok := ip.Knee(ip.Ceilings[0], 1, 1e6)
	if !ok {
		t.Fatal("expected a knee")
	}
	if !approx(knee, 12.5e9/10e6, 1e-6) {
		t.Fatalf("knee = %v, want 1250", knee)
	}
	// Below the knee the ceiling binds? compute = 1e7 pps; ceiling at
	// 64B = 1.95e8 pps → compute binds below the knee.
	b, _ := ip.Attainable(64)
	if b.LimitedBy != "compute" {
		t.Fatalf("below knee LimitedBy = %q", b.LimitedBy)
	}
	b, _ = ip.Attainable(4096)
	if b.LimitedBy != "io" {
		t.Fatalf("above knee LimitedBy = %q", b.LimitedBy)
	}
}

func TestKneeNoCrossover(t *testing.T) {
	ip := IP{
		Name:      "fast",
		OpRate:    1e12,
		Intensity: PerPacket(1),
		Ceilings:  []Ceiling{{Name: "io", Bandwidth: 1}},
	}
	if _, ok := ip.Knee(ip.Ceilings[0], 64, 1500); ok {
		t.Fatal("no crossover expected when ceiling always binds")
	}
}

func TestAttainableMinProperty(t *testing.T) {
	// The attainable packet rate never exceeds the compute roof or any
	// ceiling.
	f := func(opRaw, bwRaw, sizeRaw uint16) bool {
		ip := IP{
			Name:      "p",
			OpRate:    float64(opRaw%1000+1) * 1e6,
			Intensity: PerByte(1, 0.01),
			Ceilings: []Ceiling{
				{Name: "a", Bandwidth: float64(bwRaw%1000+1) * 1e7},
				{Name: "b", Bandwidth: 3e9},
			},
		}
		size := float64(sizeRaw%1436) + 64
		b, err := ip.Attainable(size)
		if err != nil {
			return false
		}
		if b.PacketsPerSecond > ip.OpRate/ip.Intensity(size)+1e-6 {
			return false
		}
		for _, c := range ip.Ceilings {
			if b.PacketsPerSecond > c.Bandwidth/size+1e-6 {
				return false
			}
		}
		return b.BytesPerSecond > 0 && b.OpsPerSecond > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntensityHelpers(t *testing.T) {
	pp := PerPacket(3)
	if pp(64) != 3 || pp(1500) != 3 {
		t.Fatal("PerPacket should be size independent")
	}
	pb := PerByte(2, 0.5)
	if pb(100) != 52 {
		t.Fatalf("PerByte(100) = %v, want 52", pb(100))
	}
}
