// Package roofline implements the extended Roofline model of a SmartNIC IP
// (paper §3.2): the conventional Roofline's single arithmetic-intensity /
// DRAM-bandwidth pair is replaced by a packet intensity (IP-specific
// operations per packet transmission, size dependent) and multiple
// bandwidth ceilings, one per data source feeding the IP (SoC interconnect,
// memory hierarchy, ...). The attainable throughput of the IP for a given
// packet size is the minimum of its compute roof and every ceiling.
package roofline

import (
	"fmt"
	"math"
	"sort"
)

// Ceiling is one bandwidth roof: the data delivery rate of one source
// feeding the IP.
type Ceiling struct {
	// Name identifies the source ("interconnect", "memory", "cmi", ...).
	Name string
	// Bandwidth is the source's delivery rate in bytes/second.
	Bandwidth float64
}

// IP is the extended Roofline description of one execution engine.
type IP struct {
	// Name identifies the engine.
	Name string
	// OpRate is the engine's peak execution rate in IP-specific
	// operations/second (hash blocks for a crypto unit, matches for an
	// RMT stage, instructions for a core) aggregated across its
	// parallelism.
	OpRate float64
	// Intensity maps a packet size (bytes) to the packet intensity:
	// operations required per packet of that size. Required.
	Intensity func(packetBytes float64) float64
	// Ceilings are the bandwidth roofs of the data sources feeding the
	// engine.
	Ceilings []Ceiling
}

// Validate checks the description.
func (ip IP) Validate() error {
	if ip.OpRate <= 0 || math.IsNaN(ip.OpRate) || math.IsInf(ip.OpRate, 0) {
		return fmt.Errorf("roofline: %s: invalid op rate %v", ip.Name, ip.OpRate)
	}
	if ip.Intensity == nil {
		return fmt.Errorf("roofline: %s: missing intensity function", ip.Name)
	}
	for _, c := range ip.Ceilings {
		if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) || math.IsInf(c.Bandwidth, 0) {
			return fmt.Errorf("roofline: %s: ceiling %q has invalid bandwidth %v", ip.Name, c.Name, c.Bandwidth)
		}
	}
	return nil
}

// Bound is the attainable performance of the IP at one packet size, with
// the component that binds it.
type Bound struct {
	// PacketBytes is the evaluated packet size.
	PacketBytes float64
	// OpsPerSecond is the attainable operation rate.
	OpsPerSecond float64
	// BytesPerSecond is the corresponding data throughput
	// (packets/second × packet size), assuming one "operation batch" per
	// packet as packet intensity defines.
	BytesPerSecond float64
	// PacketsPerSecond is the attainable packet rate.
	PacketsPerSecond float64
	// LimitedBy names the binding component: "compute" or a ceiling name.
	LimitedBy string
}

// Attainable evaluates the roofline at a packet size. The compute roof
// admits OpRate/intensity packets/second; each ceiling admits
// Bandwidth/packetBytes packets/second. The minimum wins.
func (ip IP) Attainable(packetBytes float64) (Bound, error) {
	if err := ip.Validate(); err != nil {
		return Bound{}, err
	}
	if packetBytes <= 0 {
		return Bound{}, fmt.Errorf("roofline: %s: invalid packet size %v", ip.Name, packetBytes)
	}
	intensity := ip.Intensity(packetBytes)
	if intensity <= 0 || math.IsNaN(intensity) {
		return Bound{}, fmt.Errorf("roofline: %s: intensity(%v) = %v", ip.Name, packetBytes, intensity)
	}
	best := Bound{
		PacketBytes:      packetBytes,
		PacketsPerSecond: ip.OpRate / intensity,
		LimitedBy:        "compute",
	}
	for _, c := range ip.Ceilings {
		pps := c.Bandwidth / packetBytes
		if pps < best.PacketsPerSecond {
			best.PacketsPerSecond = pps
			best.LimitedBy = c.Name
		}
	}
	best.OpsPerSecond = best.PacketsPerSecond * intensity
	best.BytesPerSecond = best.PacketsPerSecond * packetBytes
	return best, nil
}

// Sweep evaluates the roofline over a set of packet sizes, sorted
// ascending.
func (ip IP) Sweep(sizes []float64) ([]Bound, error) {
	out := make([]Bound, 0, len(sizes))
	sorted := append([]float64(nil), sizes...)
	sort.Float64s(sorted)
	for _, s := range sorted {
		b, err := ip.Attainable(s)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Knee returns the packet size at which the IP transitions from
// compute-bound to bound by the given ceiling: the size where
// OpRate/intensity(size) = ceiling/size. It searches the bracket [lo, hi]
// by bisection on the sign of the difference and reports whether a
// crossover exists in the bracket.
func (ip IP) Knee(ceiling Ceiling, lo, hi float64) (float64, bool) {
	diff := func(s float64) float64 {
		return ip.OpRate/ip.Intensity(s) - ceiling.Bandwidth/s
	}
	dlo, dhi := diff(lo), diff(hi)
	if dlo == 0 {
		return lo, true
	}
	if dhi == 0 {
		return hi, true
	}
	if (dlo > 0) == (dhi > 0) {
		return 0, false
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		dm := diff(mid)
		if dm == 0 || (hi-lo)/mid < 1e-12 {
			return mid, true
		}
		if (dm > 0) == (dlo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// PerPacket returns an intensity function for engines whose work is
// constant per packet (header manipulation, checksums over fixed fields).
func PerPacket(ops float64) func(float64) float64 {
	return func(float64) float64 { return ops }
}

// PerByte returns an intensity function for engines whose work scales with
// the payload (hashing, encryption, compression): base + perByte·size.
func PerByte(base, perByte float64) func(float64) float64 {
	return func(s float64) float64 { return base + perByte*s }
}
