package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"lognic/internal/core"
)

// Scenario is the JSON form of a fault scenario: which vertices lost
// engines and which links run below nominal bandwidth. It is the file
// format behind `lognic faults`, converting into a core.Degradation for
// the analytical model and (via sim.PermanentFaults) into a simulator
// fault schedule.
//
//	{
//	  "name": "one engine group down",
//	  "engines_down": {"cores": 12},
//	  "link_factors": {"interface": 0.5, "a->b": 0.25}
//	}
type Scenario struct {
	// Name labels the scenario in output.
	Name string `json:"name,omitempty"`
	// EnginesDown maps vertex name → engines lost.
	EnginesDown map[string]int `json:"engines_down,omitempty"`
	// LinkFactors maps "interface", "memory" or "from->to" → bandwidth
	// scale factor.
	LinkFactors map[string]float64 `json:"link_factors,omitempty"`
}

// Degradation converts the scenario into the model-facing form. Semantic
// validation happens against a concrete model in core.Degradation.Validate.
func (s Scenario) Degradation() core.Degradation {
	return core.Degradation{
		EnginesDown: s.EnginesDown,
		LinkFactors: s.LinkFactors,
	}
}

// ParseScenario decodes a JSON scenario, rejecting unknown fields.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("spec: scenario: %w", err)
	}
	if len(s.EnginesDown) == 0 && len(s.LinkFactors) == 0 {
		return Scenario{}, fmt.Errorf("spec: scenario %q declares no faults", s.Name)
	}
	return s, nil
}

// LoadScenario reads and decodes a JSON scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return ParseScenario(data)
}
