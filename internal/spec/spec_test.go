package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"lognic/internal/core"
)

const sample = `{
  "name": "echo",
  "hardware": {"interface_bw": "50Gbps", "memory_bw": 160e9},
  "graph": {
    "vertices": [
      {"name": "rx", "kind": "ingress"},
      {"name": "cores", "throughput": "10Gbps", "parallelism": 8, "queue_capacity": 64, "overhead": 3e-7},
      {"name": "ssd", "throughput": 7e8, "parallelism": 16, "queue_capacity": 256, "queue_model": "mmck"},
      {"name": "tx", "kind": "egress"}
    ],
    "edges": [
      {"from": "rx", "to": "cores", "delta": 1, "alpha": 1},
      {"from": "cores", "to": "ssd", "delta": 1, "alpha": 1, "beta": 1},
      {"from": "ssd", "to": "tx", "delta": 1, "bandwidth": "100Gbps"}
    ]
  },
  "traffic": {"ingress_bw": "8Gbps", "granularity": "4KB"}
}`

func TestParseAndModel(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hardware.InterfaceBW != 50e9/8 {
		t.Fatalf("InterfaceBW = %v", m.Hardware.InterfaceBW)
	}
	if m.Hardware.MemoryBW != 160e9 {
		t.Fatalf("MemoryBW = %v", m.Hardware.MemoryBW)
	}
	if m.Traffic.Granularity != 4096 {
		t.Fatalf("Granularity = %v", m.Traffic.Granularity)
	}
	v, ok := m.Graph.Vertex("cores")
	if !ok || v.Parallelism != 8 || v.Overhead != 3e-7 {
		t.Fatalf("cores vertex = %+v", v)
	}
	ssd, _ := m.Graph.Vertex("ssd")
	if ssd.QueueModel != core.QueueMMcK {
		t.Fatalf("queue model = %v", ssd.QueueModel)
	}
	e, ok := m.Graph.Edge("ssd", "tx")
	if !ok || e.Bandwidth != 100e9/8 {
		t.Fatalf("edge = %+v", e)
	}
	// The parsed model estimates successfully.
	if _, err := m.Estimate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(sample, `"name": "echo"`, `"nam": "echo"`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatal("unknown field should fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"hardware": {"interface_bw": true}}`,
		`{"hardware": {"interface_bw": "fastest"}}`,
		`{"traffic": {"granularity": "4XB"}}`,
		`{"traffic": {"granularity": []}}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestModelErrors(t *testing.T) {
	// Unknown vertex kind.
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	f.Graph.Vertices[0].Kind = "teleport"
	if _, err := f.Model(); err == nil {
		t.Fatal("unknown kind should fail")
	}
	f.Graph.Vertices[0].Kind = "ingress"
	f.Graph.Vertices[1].QueueModel = "mm17"
	if _, err := f.Model(); err == nil {
		t.Fatal("unknown queue model should fail")
	}
	f.Graph.Vertices[1].QueueModel = ""
	f.Traffic.Granularity = 0
	if _, err := f.Model(); err == nil {
		t.Fatal("invalid traffic should fail")
	}
	// Graph-level validation surfaces too.
	f2, _ := Parse([]byte(sample))
	f2.Graph.Edges = f2.Graph.Edges[:1]
	if _, err := f2.Model(); err == nil {
		t.Fatal("dangling graph should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Model()
	if err != nil {
		t.Fatal(err)
	}
	back := FromModel(m)
	data, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, data)
	}
	m2, err := f2.Model()
	if err != nil {
		t.Fatal(err)
	}
	// Same estimates after the round trip.
	e1, err := m.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m2.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Throughput.Attainable != e2.Throughput.Attainable {
		t.Fatalf("throughput changed: %v vs %v", e1.Throughput.Attainable, e2.Throughput.Attainable)
	}
	if e1.Latency.Attainable != e2.Latency.Attainable {
		t.Fatalf("latency changed: %v vs %v", e1.Latency.Attainable, e2.Latency.Attainable)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestBandwidthSizeMarshal(t *testing.T) {
	b, err := json.Marshal(Bandwidth(1000))
	if err != nil || string(b) != "1000" {
		t.Fatalf("bandwidth marshal = %s err=%v", b, err)
	}
	s, err := json.Marshal(Size(64))
	if err != nil || string(s) != "64" {
		t.Fatalf("size marshal = %s err=%v", s, err)
	}
}

const mixSample = `{
  "name": "mixed",
  "graph": {
    "vertices": [
      {"name": "in", "kind": "ingress"},
      {"name": "ip", "throughput": "16Gbps", "parallelism": 4, "queue_capacity": 32},
      {"name": "out", "kind": "egress"}
    ],
    "edges": [
      {"from": "in", "to": "ip", "delta": 1},
      {"from": "ip", "to": "out", "delta": 1}
    ]
  },
  "traffic": {
    "ingress_bw": "10Gbps",
    "mix": [
      {"weight": 0.8, "granularity": "64B"},
      {"weight": 0.2, "granularity": 1500}
    ]
  }
}`

func TestMixComponents(t *testing.T) {
	f, err := Parse([]byte(mixSample))
	if err != nil {
		t.Fatal(err)
	}
	comps, err := f.MixComponents()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	// Per-packet weights normalized.
	if comps[0].Weight != 0.8 || comps[1].Weight != 0.2 {
		t.Fatalf("weights = %v, %v", comps[0].Weight, comps[1].Weight)
	}
	// Byte shares sum to the total offer.
	total := comps[0].Model.Traffic.IngressBW + comps[1].Model.Traffic.IngressBW
	if total < 10e9/8*0.999 || total > 10e9/8*1.001 {
		t.Fatalf("byte shares sum to %v", total)
	}
	// Large packets carry most of the bytes despite the smaller weight:
	// 0.2*1500 vs 0.8*64.
	if !(comps[1].Model.Traffic.IngressBW > comps[0].Model.Traffic.IngressBW) {
		t.Fatal("byte shares inverted")
	}
	// The mix estimates end to end.
	if _, err := core.EstimateMix(comps); err != nil {
		t.Fatal(err)
	}
	// A Model() call works too, using the mean size.
	m, err := f.Model()
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.8*64 + 0.2*1500
	if m.Traffic.Granularity != wantMean {
		t.Fatalf("mean granularity = %v, want %v", m.Traffic.Granularity, wantMean)
	}
}

func TestMixComponentsErrors(t *testing.T) {
	f, _ := Parse([]byte(sample))
	if _, err := f.MixComponents(); err == nil {
		t.Fatal("no mix should fail")
	}
	fm, _ := Parse([]byte(mixSample))
	fm.Traffic.Mix[0].Weight = 0
	if _, err := fm.MixComponents(); err == nil {
		t.Fatal("zero weight should fail")
	}
	fm2, _ := Parse([]byte(mixSample))
	fm2.Traffic.Mix[0].Granularity = 0
	if _, err := fm2.MixComponents(); err == nil {
		t.Fatal("zero granularity should fail")
	}
}
