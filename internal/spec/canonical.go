package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Canonical renders the spec in a canonical byte form suitable for
// content-addressed caching: compact JSON with fields in struct order,
// units already normalized to numbers (bytes, bytes/second) by the
// Bandwidth/Size unmarshalers. Two parses of the same document — or of
// documents differing only in whitespace, key order within an object, or
// unit spelling ("50Gbps" vs 6.25e9) — produce identical bytes.
//
// Canonicalization is structural, not semantic: spellings that decode to
// different field values the model treats identically (e.g. kind "" vs
// "ip") hash differently. That costs cache sharing, never correctness.
func (f File) Canonical() ([]byte, error) {
	return json.Marshal(f)
}

// Hash returns the hex SHA-256 of the canonical form — the cache key used
// by lognic-serve's result cache.
func (f File) Hash() (string, error) {
	b, err := f.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
