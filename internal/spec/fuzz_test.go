package spec

import (
	"testing"
)

// FuzzParse checks that arbitrary byte inputs never panic the spec parser
// and that anything that parses and converts to a model yields a model
// that estimates without panicking. The seed corpus runs as part of plain
// `go test`; use `go test -fuzz=FuzzParse ./internal/spec` to explore.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte(mixSample))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"graph":{}}`))
	f.Add([]byte(`{"hardware":{"interface_bw":"25Gbps"}}`))
	f.Add([]byte(`{"traffic":{"ingress_bw":1e9,"granularity":"64B"}}`))
	f.Add([]byte(`{"graph":{"vertices":[{"name":"in","kind":"ingress"},{"name":"out","kind":"egress"}],"edges":[{"from":"in","to":"out","delta":1}]},"traffic":{"ingress_bw":1,"granularity":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		m, err := file.Model()
		if err != nil {
			return
		}
		if _, err := m.Estimate(); err != nil {
			t.Fatalf("parsed+validated model failed to estimate: %v", err)
		}
		// Round-trip stability: a model that estimates must re-encode and
		// re-parse.
		back := FromModel(m)
		data2, err := back.Encode()
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		if _, err := Parse(data2); err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, data2)
		}
	})
}
