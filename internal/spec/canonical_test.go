package spec

import (
	"regexp"
	"strings"
	"testing"
)

func TestCanonicalInvariantToSpelling(t *testing.T) {
	base, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Same document, different whitespace, unit spellings, and key order
	// within an object.
	variant := strings.NewReplacer(
		`"50Gbps"`, `6.25e9`,
		`"8Gbps"`, `1e9`,
		`"4KB"`, `4096`,
		`"from": "rx", "to": "cores"`, `"to": "cores", "from": "rx"`,
		"\n", "", "  ", " ",
	).Replace(sample)
	alt, err := Parse([]byte(variant))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	ca, err := alt.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(cb) != string(ca) {
		t.Fatalf("canonical forms differ:\n%s\n%s", cb, ca)
	}
	hb, _ := base.Hash()
	ha, _ := alt.Hash()
	if hb != ha {
		t.Fatalf("hashes differ: %s vs %s", hb, ha)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(hb) {
		t.Fatalf("hash %q is not hex sha256", hb)
	}
}

func TestHashDistinguishesSpecs(t *testing.T) {
	a, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Traffic.IngressBW *= 2
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("distinct specs must hash differently")
	}
}

func TestCanonicalStableAcrossRoundTrip(t *testing.T) {
	f, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// Re-parsing the canonical bytes must be a fixed point.
	f2, err := Parse(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := f2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Fatal("canonical form is not a fixed point under re-parse")
	}
}
