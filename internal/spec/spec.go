// Package spec defines the JSON representation of LogNIC inputs — the
// "predefined formats" of §3.1 — so models can be described in files and
// fed to the cmd/lognic and cmd/lognic-sim tools: a hardware block,
// an execution graph (vertices with Table 2's software parameters, edges
// with δ/α/β and optional characterized bandwidth) and a traffic profile.
// Bandwidths accept either plain numbers (bytes/second) or strings like
// "25Gbps"; sizes accept numbers (bytes) or strings like "4KB".
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"lognic/internal/core"
	"lognic/internal/unit"
)

// File is the top-level JSON document.
type File struct {
	// Name labels the spec.
	Name string `json:"name,omitempty"`
	// Hardware is the device block (BW_INTF / BW_MEM).
	Hardware Hardware `json:"hardware"`
	// Graph is the execution graph.
	Graph GraphSpec `json:"graph"`
	// Traffic is the offered profile.
	Traffic TrafficSpec `json:"traffic"`
}

// Hardware mirrors core.Hardware.
type Hardware struct {
	InterfaceBW Bandwidth `json:"interface_bw,omitempty"`
	MemoryBW    Bandwidth `json:"memory_bw,omitempty"`
}

// GraphSpec mirrors core.Graph construction inputs.
type GraphSpec struct {
	Vertices []VertexSpec `json:"vertices"`
	Edges    []EdgeSpec   `json:"edges"`
}

// VertexSpec mirrors core.Vertex.
type VertexSpec struct {
	Name string `json:"name"`
	// Kind is "ip" (default), "ingress", "egress" or "ratelimiter".
	Kind          string    `json:"kind,omitempty"`
	Throughput    Bandwidth `json:"throughput,omitempty"`
	Parallelism   int       `json:"parallelism,omitempty"`
	QueueCapacity int       `json:"queue_capacity,omitempty"`
	// Overhead is O_i in seconds.
	Overhead     float64 `json:"overhead,omitempty"`
	Acceleration float64 `json:"acceleration,omitempty"`
	Partition    float64 `json:"partition,omitempty"`
	// QueueModel is "mm1n" (default) or "mmck".
	QueueModel string `json:"queue_model,omitempty"`
}

// EdgeSpec mirrors core.Edge.
type EdgeSpec struct {
	From      string    `json:"from"`
	To        string    `json:"to"`
	Delta     float64   `json:"delta"`
	Alpha     float64   `json:"alpha,omitempty"`
	Beta      float64   `json:"beta,omitempty"`
	Bandwidth Bandwidth `json:"bandwidth,omitempty"`
}

// TrafficSpec mirrors core.Traffic; the optional Mix expresses
// Extension #2 profiles (per-size components evaluated with the same
// graph and combined by weight).
type TrafficSpec struct {
	IngressBW   Bandwidth `json:"ingress_bw"`
	Granularity Size      `json:"granularity"`
	// Mix optionally splits the traffic across packet sizes. When set,
	// IngressBW is the total offer, Granularity may be omitted, and each
	// component receives its byte share of the rate.
	Mix []MixComponentSpec `json:"mix,omitempty"`
}

// MixComponentSpec is one slice of a mixed profile.
type MixComponentSpec struct {
	// Weight is the dist_size per-packet probability weight (normalized
	// across the mix).
	Weight float64 `json:"weight"`
	// Granularity is the component's packet size.
	Granularity Size `json:"granularity"`
}

// Bandwidth unmarshals from either a JSON number (bytes/second) or a
// string such as "25Gbps" or "400MB/s".
type Bandwidth float64

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bandwidth) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*b = Bandwidth(num)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("spec: bandwidth must be a number or string: %s", data)
	}
	v, err := unit.ParseBandwidth(s)
	if err != nil {
		return err
	}
	*b = Bandwidth(v.BytesPerSecond())
	return nil
}

// MarshalJSON implements json.Marshaler (always bytes/second).
func (b Bandwidth) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(b))
}

// Size unmarshals from either a JSON number (bytes) or a string such as
// "4KB".
type Size float64

// UnmarshalJSON implements json.Unmarshaler.
func (s *Size) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*s = Size(num)
		return nil
	}
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return fmt.Errorf("spec: size must be a number or string: %s", data)
	}
	v, err := unit.ParseSize(str)
	if err != nil {
		return err
	}
	*s = Size(v.Bytes())
	return nil
}

// MarshalJSON implements json.Marshaler (always bytes).
func (s Size) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(s))
}

// parseKind maps the JSON kind string.
func parseKind(s string) (core.VertexKind, error) {
	switch s {
	case "", "ip":
		return core.KindIP, nil
	case "ingress":
		return core.KindIngress, nil
	case "egress":
		return core.KindEgress, nil
	case "ratelimiter":
		return core.KindRateLimiter, nil
	default:
		return 0, fmt.Errorf("spec: unknown vertex kind %q", s)
	}
}

// parseQueueModel maps the JSON queue-model string.
func parseQueueModel(s string) (core.QueueModel, error) {
	switch s {
	case "", "mm1n":
		return core.QueueMM1N, nil
	case "mmck":
		return core.QueueMMcK, nil
	default:
		return 0, fmt.Errorf("spec: unknown queue model %q", s)
	}
}

// Model converts the spec into a validated core.Model.
func (f File) Model() (core.Model, error) {
	vertices := make([]core.Vertex, 0, len(f.Graph.Vertices))
	for _, vs := range f.Graph.Vertices {
		kind, err := parseKind(vs.Kind)
		if err != nil {
			return core.Model{}, err
		}
		qm, err := parseQueueModel(vs.QueueModel)
		if err != nil {
			return core.Model{}, err
		}
		vertices = append(vertices, core.Vertex{
			Name:          vs.Name,
			Kind:          kind,
			Throughput:    float64(vs.Throughput),
			Parallelism:   vs.Parallelism,
			QueueCapacity: vs.QueueCapacity,
			Overhead:      vs.Overhead,
			Acceleration:  vs.Acceleration,
			Partition:     vs.Partition,
			QueueModel:    qm,
		})
	}
	edges := make([]core.Edge, 0, len(f.Graph.Edges))
	for _, es := range f.Graph.Edges {
		edges = append(edges, core.Edge{
			From:      es.From,
			To:        es.To,
			Delta:     es.Delta,
			Alpha:     es.Alpha,
			Beta:      es.Beta,
			Bandwidth: float64(es.Bandwidth),
		})
	}
	g, err := core.NewGraph(f.Name, vertices, edges)
	if err != nil {
		return core.Model{}, err
	}
	gran := float64(f.Traffic.Granularity)
	if gran == 0 && len(f.Traffic.Mix) > 0 {
		// A pure-mix spec: validate the base model at the mean size.
		var wsum, msum float64
		for _, c := range f.Traffic.Mix {
			wsum += c.Weight
			msum += c.Weight * float64(c.Granularity)
		}
		if wsum > 0 {
			gran = msum / wsum
		}
	}
	m := core.Model{
		Hardware: core.Hardware{
			InterfaceBW: float64(f.Hardware.InterfaceBW),
			MemoryBW:    float64(f.Hardware.MemoryBW),
		},
		Graph: g,
		Traffic: core.Traffic{
			IngressBW:   float64(f.Traffic.IngressBW),
			Granularity: gran,
		},
	}
	if err := m.Validate(); err != nil {
		return core.Model{}, err
	}
	return m, nil
}

// MixComponents expands the spec's traffic mix into Extension #2
// components sharing the spec's graph: each slice gets its packet size and
// its byte share of the total ingress rate. Returns an error when the spec
// declares no mix.
func (f File) MixComponents() ([]core.MixComponent, error) {
	if len(f.Traffic.Mix) == 0 {
		return nil, fmt.Errorf("spec: %q declares no traffic mix", f.Name)
	}
	base, err := f.Model()
	if err != nil {
		return nil, err
	}
	var wsum, bytesum float64
	for _, c := range f.Traffic.Mix {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("spec: mix weight %v must be positive", c.Weight)
		}
		if c.Granularity <= 0 {
			return nil, fmt.Errorf("spec: mix granularity %v must be positive", float64(c.Granularity))
		}
		wsum += c.Weight
		bytesum += c.Weight * float64(c.Granularity)
	}
	out := make([]core.MixComponent, 0, len(f.Traffic.Mix))
	for _, c := range f.Traffic.Mix {
		m := base
		m.Traffic.Granularity = float64(c.Granularity)
		// Byte share: weight·size / Σ(weight·size) of the total rate.
		m.Traffic.IngressBW = base.Traffic.IngressBW * (c.Weight * float64(c.Granularity) / bytesum)
		out = append(out, core.MixComponent{Weight: c.Weight / wsum, Model: m})
	}
	return out, nil
}

// Parse decodes a JSON document, rejecting unknown fields so typos in
// parameter names fail loudly.
func Parse(data []byte) (File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("spec: %w", err)
	}
	return f, nil
}

// Load reads and decodes a JSON file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	return Parse(data)
}

// FromModel converts a core.Model back into its spec form (for round
// tripping and for emitting example specs).
func FromModel(m core.Model) File {
	f := File{
		Name: m.Graph.Name(),
		Hardware: Hardware{
			InterfaceBW: Bandwidth(m.Hardware.InterfaceBW),
			MemoryBW:    Bandwidth(m.Hardware.MemoryBW),
		},
		Traffic: TrafficSpec{
			IngressBW:   Bandwidth(m.Traffic.IngressBW),
			Granularity: Size(m.Traffic.Granularity),
		},
	}
	for _, v := range m.Graph.Vertices() {
		f.Graph.Vertices = append(f.Graph.Vertices, VertexSpec{
			Name:          v.Name,
			Kind:          v.Kind.String(),
			Throughput:    Bandwidth(v.Throughput),
			Parallelism:   v.Parallelism,
			QueueCapacity: v.QueueCapacity,
			Overhead:      v.Overhead,
			Acceleration:  v.Acceleration,
			Partition:     v.Partition,
			QueueModel:    v.QueueModel.String(),
		})
	}
	for _, e := range m.Graph.Edges() {
		f.Graph.Edges = append(f.Graph.Edges, EdgeSpec{
			From:      e.From,
			To:        e.To,
			Delta:     e.Delta,
			Alpha:     e.Alpha,
			Beta:      e.Beta,
			Bandwidth: Bandwidth(e.Bandwidth),
		})
	}
	return f
}

// Encode renders the spec as indented JSON.
func (f File) Encode() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
