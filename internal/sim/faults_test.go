package sim

import (
	"math"
	"strings"
	"testing"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// faultChain builds in -> ip(D engines, aggregate rate P B/s, queue cap) -> out
// over the interface medium.
func faultChain(t *testing.T, engines, queueCap int, rate float64) *core.Graph {
	t.Helper()
	g, err := core.NewBuilder("fault-chain").
		AddIngress("in").
		AddIP("ip", rate, engines, queueCap).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Losing half the engines at t=0 halves the delivered throughput of an
// overloaded chain.
func TestEngineDownReducesCapacity(t *testing.T) {
	g := faultChain(t, 4, 32, 2e9)
	base := Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(3e9), 1000), // 1.5x capacity
		Seed:     7,
		Duration: 0.05,
	}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = FaultSchedule{{Kind: EngineDown, Vertex: "ip", Count: 2}}
	res, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.EngineDownEvents != 1 {
		t.Fatalf("EngineDownEvents = %d", res.Faults.EngineDownEvents)
	}
	if math.Abs(res.Throughput-1e9) > 0.1e9 {
		t.Errorf("degraded throughput %v, want ~1e9", res.Throughput)
	}
	if math.Abs(healthy.Throughput-2e9) > 0.2e9 {
		t.Errorf("healthy throughput %v, want ~2e9", healthy.Throughput)
	}
	// The lost capacity integral covers the whole run: 2 engines * 0.05s.
	if dt := res.Faults.EngineDownTime["ip"]; math.Abs(dt-0.1) > 0.005 {
		t.Errorf("EngineDownTime = %v, want ~0.1 engine-seconds", dt)
	}
}

// An EngineUp fault restores capacity and drains the queued backlog; the
// run's delivery sits between permanently-degraded and healthy.
func TestEngineDownUpWindow(t *testing.T) {
	g := faultChain(t, 4, 256, 2e9)
	base := Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1.8e9), 1000), // 90% load
		Seed:     3,
		Duration: 0.08,
		Warmup:   0.004,
	}
	windowed := base
	windowed.Faults = FaultSchedule{
		{Kind: EngineDown, Vertex: "ip", Count: 3, Time: 0.02},
		{Kind: EngineUp, Vertex: "ip", Count: 3, Time: 0.05},
	}
	res, err := Run(windowed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.EngineDownEvents != 1 || res.Faults.EngineUpEvents != 1 {
		t.Fatalf("fault counters = %+v", res.Faults)
	}
	// 3 engines down for 0.03s = 0.09 engine-seconds.
	if dt := res.Faults.EngineDownTime["ip"]; math.Abs(dt-0.09) > 0.005 {
		t.Errorf("EngineDownTime = %v, want ~0.09", dt)
	}
	degraded := base
	degraded.Faults = FaultSchedule{{Kind: EngineDown, Vertex: "ip", Count: 3}}
	perm, err := Run(degraded)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !(perm.Throughput < res.Throughput && res.Throughput < healthy.Throughput*1.01) {
		t.Errorf("throughputs: permanent %v < windowed %v < healthy %v violated",
			perm.Throughput, res.Throughput, healthy.Throughput)
	}
}

// Degrading the interface for a window throttles delivery while it lasts
// and fires a restore.
func TestLinkDegradeWindow(t *testing.T) {
	g := faultChain(t, 4, 64, 50e9) // compute never binds
	base := Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 4e9}, // Σα=2 → capacity 2e9
		Profile:  traffic.Fixed("t", unit.Bandwidth(1.5e9), 1000),
		Seed:     11,
		Duration: 0.06,
	}
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = FaultSchedule{
		{Kind: LinkDegrade, Link: "interface", Factor: 0.25, Time: 0.02, Duration: 0.02},
	}
	res, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.LinkDegradeEvents != 1 || res.Faults.LinkRestores != 1 {
		t.Fatalf("fault counters = %+v", res.Faults)
	}
	// During the window the capacity is 0.5e9 against a 1.5e9 offer, so
	// overall delivery must drop measurably below healthy.
	if res.Throughput >= healthy.Throughput*0.95 {
		t.Errorf("degraded %v not below healthy %v", res.Throughput, healthy.Throughput)
	}
}

// A permanent LinkDegrade with no Duration never restores. Offered load
// sits just above the degraded capacity: the shared link has no drop
// point, so deep overload only grows its FIFO backlog — near capacity,
// delivered must match the degraded ceiling.
func TestLinkDegradePermanent(t *testing.T) {
	g := faultChain(t, 4, 64, 50e9)
	res, err := Run(Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 4e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(0.525e9), 1000), // 1.05x degraded capacity
		Seed:     11,
		Duration: 0.05,
		Faults:   FaultSchedule{{Kind: LinkDegrade, Link: "interface", Factor: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.LinkRestores != 0 {
		t.Fatalf("LinkRestores = %d for a permanent degrade", res.Faults.LinkRestores)
	}
	// Capacity 4e9*0.25/Σα=2 → 0.5e9.
	if math.Abs(res.Throughput-0.5e9) > 0.05e9 {
		t.Errorf("throughput %v, want ~0.5e9", res.Throughput)
	}
	if res.InterfaceUtil < 0.95 {
		t.Errorf("degraded interface utilization %v, want ~1", res.InterfaceUtil)
	}
}

// A stalled vertex serves nothing inside the window and recovers after it.
func TestVertexStall(t *testing.T) {
	g := faultChain(t, 2, 8, 2e9)
	var stallSeen, recoverSeen bool
	servedInWindow := 0
	res, err := Run(Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e9), 1000),
		Seed:     5,
		Duration: 0.06,
		Faults:   FaultSchedule{{Kind: VertexStall, Vertex: "ip", Time: 0.02, Duration: 0.02}},
		Trace: func(ev TraceEvent) {
			switch ev.Kind {
			case TraceFaultInject:
				stallSeen = true
			case TraceFaultRecover:
				recoverSeen = true
			case TraceServiceStart:
				// No service may begin strictly inside the stall window
				// (the boundary itself belongs to the recovery).
				if ev.Vertex == "ip" && ev.Time > 0.02 && ev.Time < 0.04 {
					servedInWindow++
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stallSeen || !recoverSeen {
		t.Fatalf("trace: inject %v recover %v", stallSeen, recoverSeen)
	}
	if res.Faults.VertexStallEvents != 1 || res.Faults.StallRecoveries != 1 {
		t.Fatalf("fault counters = %+v", res.Faults)
	}
	if servedInWindow != 0 {
		t.Errorf("%d services started inside the stall window", servedInWindow)
	}
	// The 8-deep queue must overflow during a 20ms stall at ~1e6 pkt/s.
	if res.DropRate == 0 {
		t.Error("expected drops while stalled")
	}
}

// Retry-on-drop re-issues rejected packets: with enough backoff and
// budget the post-warmup drop rate collapses versus the no-retry run.
func TestRetryOnDrop(t *testing.T) {
	g := faultChain(t, 1, 2, 2e9)
	base := Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1.6e9), 1000), // 80% load, tiny queue
		Seed:     9,
		Duration: 0.05,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.DropRate == 0 {
		t.Fatal("baseline config must drop for the retry comparison to mean anything")
	}
	retried := base
	retried.Retry = map[string]RetryPolicy{"ip": {MaxRetries: 20, Backoff: 5e-6}}
	res, err := Run(retried)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if res.DropRate >= plain.DropRate/2 {
		t.Errorf("retry drop rate %v vs plain %v: retries should absorb most drops",
			res.DropRate, plain.DropRate)
	}
	// Exhausted budgets surface in RetryDrops and still count as drops.
	exhausted := base
	exhausted.Profile = traffic.Fixed("t", unit.Bandwidth(4e9), 1000) // 2x overload
	exhausted.Retry = map[string]RetryPolicy{"ip": {MaxRetries: 2, Backoff: 1e-6}}
	over, err := Run(exhausted)
	if err != nil {
		t.Fatal(err)
	}
	if over.Faults.RetryDrops == 0 {
		t.Error("2x overload with 2 retries must exhaust some budgets")
	}
	if over.DropRate == 0 {
		t.Error("exhausted retries must still drop")
	}
}

// Malformed schedules and policies are rejected at New.
func TestFaultValidation(t *testing.T) {
	g := faultChain(t, 2, 8, 1e9)
	base := Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e8), 1000),
		Duration: 0.01,
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown vertex", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: EngineDown, Vertex: "ghost"}}
		}, "unknown vertex"},
		{"negative time", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: EngineDown, Vertex: "ip", Time: -1}}
		}, "invalid time"},
		{"nan time", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: EngineDown, Vertex: "ip", Time: math.NaN()}}
		}, "invalid time"},
		{"negative count", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: EngineUp, Vertex: "ip", Count: -2}}
		}, "negative engine count"},
		{"unknown link", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: LinkDegrade, Link: "pcie", Factor: 0.5}}
		}, "unknown link"},
		{"memory link unset", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: LinkDegrade, Link: "memory", Factor: 0.5}}
		}, "unknown link"},
		{"zero factor", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: LinkDegrade, Link: "interface", Factor: 0}}
		}, "invalid factor"},
		{"inf factor", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: LinkDegrade, Link: "interface", Factor: math.Inf(1)}}
		}, "invalid factor"},
		{"stall without duration", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: VertexStall, Vertex: "ip"}}
		}, "positive duration"},
		{"bad kind", func(c *Config) {
			c.Faults = FaultSchedule{{Kind: FaultKind(42), Vertex: "ip"}}
		}, "unknown kind"},
		{"retry unknown vertex", func(c *Config) {
			c.Retry = map[string]RetryPolicy{"ghost": {MaxRetries: 1, Backoff: 1e-6}}
		}, "unknown vertex"},
		{"retry negative budget", func(c *Config) {
			c.Retry = map[string]RetryPolicy{"ip": {MaxRetries: -1}}
		}, "negative MaxRetries"},
		{"retry nan backoff", func(c *Config) {
			c.Retry = map[string]RetryPolicy{"ip": {MaxRetries: 1, Backoff: math.NaN()}}
		}, "invalid backoff"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Errorf("%s: New accepted a malformed config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// The new trace kinds and fault kinds render by name.
func TestFaultKindStrings(t *testing.T) {
	for kind, want := range map[FaultKind]string{
		EngineDown:    "engine-down",
		EngineUp:      "engine-up",
		LinkDegrade:   "link-degrade",
		VertexStall:   "vertex-stall",
		FaultKind(99): "fault(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
	for kind, want := range map[TraceKind]string{
		TraceFaultInject:  "fault-inject",
		TraceFaultRecover: "fault-recover",
		TraceRetry:        "retry",
	} {
		if got := kind.String(); got != want {
			t.Errorf("TraceKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

// PermanentFaults mirrors a core.Degradation as time-zero faults.
func TestPermanentFaults(t *testing.T) {
	fs := PermanentFaults(core.Degradation{
		EnginesDown: map[string]int{"b": 2, "a": 1},
		LinkFactors: map[string]float64{"interface": 0.5},
	})
	if len(fs) != 3 {
		t.Fatalf("len = %d", len(fs))
	}
	// Deterministic order: sorted vertices, then sorted links.
	if fs[0].Vertex != "a" || fs[1].Vertex != "b" || fs[2].Link != "interface" {
		t.Fatalf("order = %+v", fs)
	}
	for _, f := range fs {
		if f.Time != 0 {
			t.Errorf("fault %+v not at time zero", f)
		}
	}
}
