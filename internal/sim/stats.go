package sim

import (
	"math"
	"sort"
)

// sampleSet accumulates scalar observations and reports moments and
// quantiles. It keeps all samples; evaluation runs are bounded well below
// memory limits, and exact quantiles keep validation against the analytical
// model honest. values stays in insertion (chronological) order; quantile
// sorts a cached copy so observers reading the raw series see it intact.
type sampleSet struct {
	values []float64
	sum    float64
	sorted []float64
}

func (s *sampleSet) add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = nil
}

func (s *sampleSet) count() int { return len(s.values) }

func (s *sampleSet) mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// quantile returns the q-quantile (0..1) by linear interpolation.
func (s *sampleSet) quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append(make([]float64, 0, n), s.values...)
		sort.Float64s(s.sorted)
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// timeWeighted integrates a step function of time (queue length, busy
// engines) to report its time average over the observed window.
type timeWeighted struct {
	firstTime float64
	lastTime  float64
	lastValue float64
	integral  float64
	started   bool
}

func (t *timeWeighted) set(now, value float64) {
	if t.started {
		t.integral += t.lastValue * (now - t.lastTime)
	} else {
		t.firstTime = now
	}
	t.lastTime = now
	t.lastValue = value
	t.started = true
}

// average is the time average over the observed window [firstTime, now].
// Dividing by the window — not by absolute now — keeps the statistic
// unbiased for observers that start mid-run (after a warmup, or at the
// first fault event): the unobserved prefix contributes neither to the
// integral nor to the denominator.
func (t *timeWeighted) average(now float64) float64 {
	if !t.started || now <= t.firstTime {
		return 0
	}
	total := t.integral + t.lastValue*(now-t.lastTime)
	return total / (now - t.firstTime)
}

// rebase restarts the observation window at now, discarding everything
// integrated so far but keeping the current value. The simulator calls it
// at the end of warmup so reported averages cover only the measurement
// window, consistent with throughput and link utilization.
func (t *timeWeighted) rebase(now float64) {
	if !t.started {
		return
	}
	t.integral = 0
	t.firstTime = now
	t.lastTime = now
}

// total is the raw integral up to now (e.g. engine-seconds of downtime),
// independent of when observation started.
func (t *timeWeighted) total(now float64) float64 {
	if !t.started || now <= t.firstTime {
		return 0
	}
	return t.integral + t.lastValue*(now-t.lastTime)
}
