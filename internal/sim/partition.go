package sim

// Execution-graph partitioning for the sharded event engine (shard.go).
//
// The partitioner splits the graph's vertices into domains that can run
// independent event loops, synchronized only at cross-domain edges. It is
// constraint-first: correctness constraints force vertices into the same
// domain (union-find closure), and only the resulting atoms are balanced
// across shards. The constraints encode exactly the state two vertices may
// share on the serial engine's hot path:
//
//   - RNG consumers: every vertex whose events draw from the engine RNG
//     stream (exponential service, ServiceTimer hooks, δ-routing with a
//     real choice) must share one domain, plus the arrival pump when it
//     draws (multiple ingresses). One domain then replays the serial
//     draw sequence exactly.
//   - The arrival pump and all ingresses: arriveAt runs inline from the
//     pump, so ingress vertices live with it (the "root" domain).
//   - Shared-interface users and shared-memory users: the FIFO busy-until
//     state of a shared link is mutable state every α- (resp. β-) edge
//     source touches on depart.
//   - JSQ routers and their out-neighbors: pickRoute probes the
//     downstream nodes' live queue lengths.
//   - Zero-lookahead edges: an edge whose source has no computation-
//     transfer overhead can deliver a packet at the current instant, so
//     its endpoints merge instead of synchronizing (the conservative
//     horizon needs strictly positive cross-edge lookahead).
//
// Atoms are then assigned to min(Shards, atoms) domains by largest-first
// greedy balancing on expected event weight (visit probability), with an
// affinity tie-break that keeps heavily-trafficked edges intra-domain —
// the "min-cut-ish" part. The whole procedure is deterministic: equal
// configs partition identically on every run and platform.

import (
	"fmt"
	"math"
	"strings"
)

// eventsPerVisit scales a vertex's visit probability into an approximate
// event count (arrive + service-start + done); the arrival pump itself
// costs about one event per packet.
const eventsPerVisit = 3.0

// shardPlan is the output of buildPlan: the domain layout one sharded run
// executes. A plan always has at least two domains — when the constraint
// closure collapses to one, New keeps the serial engine instead.
type shardPlan struct {
	// domains lists each domain's vertices in graph order.
	domains [][]string
	// owner maps vertex name → domain index.
	owner map[string]int
	// rootDom runs the arrival pump (and owns every ingress).
	rootDom int
	// intfDom / memDom own the shared interface / memory link state.
	intfDom, memDom int
	// lookahead is the minimum computation-transfer overhead over all
	// cross-domain edges: the conservative synchronization horizon.
	// +Inf when no edge crosses domains.
	lookahead float64
	// crossEdges counts edges whose endpoints live in different domains.
	crossEdges int
}

// unionFind is a deterministic disjoint-set over vertex indices.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges two sets; the smaller root index wins, keeping the
// representative (and everything derived from it) deterministic.
func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// consumesRNG reports whether events at this vertex draw from the engine
// RNG stream.
func (s *Simulator) consumesRNG(n *node) bool {
	if n.timer != nil {
		return true // ServiceTimer hooks receive the rng
	}
	if n.meanWork > 0 && !s.cfg.DeterministicService {
		return true // exponential service draw
	}
	// δ-routing draws only when there is a real choice.
	return len(n.outEdges) > 1 && n.policy != RouteJSQ && n.policy != RouteFlowHash
}

// buildPlan partitions the simulator's graph into at most shards domains.
// It never fails on a mergeable graph: constraints collapse domains instead
// of erroring, and a fully-collapsed graph yields a one-domain plan the
// caller treats as "stay serial".
func buildPlan(s *Simulator, shards int) (*shardPlan, error) {
	n := len(s.order)
	idx := make(map[string]int, n)
	for i, name := range s.order {
		idx[name] = i
	}
	pump := n // virtual atom for the arrival pump
	uf := newUnionFind(n + 1)

	// RNG consumers form one clique (with the pump when it draws).
	first := -1
	for i, name := range s.order {
		if s.consumesRNG(s.nodes[name]) {
			if first < 0 {
				first = i
			} else {
				uf.union(first, i)
			}
		}
	}
	if len(s.ingressPk) > 1 && first >= 0 {
		uf.union(first, pump)
	}

	// The pump owns every ingress: arrivals are delivered inline.
	for _, is := range s.ingressPk {
		uf.union(pump, idx[is.n.v.Name])
	}

	// Shared-link users: every α-edge (β-edge) source shares the
	// interface (memory) FIFO state.
	intfFirst, memFirst := -1, -1
	for i, name := range s.order {
		nd := s.nodes[name]
		usesIntf, usesMem := false, false
		for _, rc := range nd.outEdges {
			usesIntf = usesIntf || (s.intf != nil && rc.intfPerByte > 0)
			usesMem = usesMem || (s.mem != nil && rc.memPerByte > 0)
		}
		if usesIntf {
			if intfFirst < 0 {
				intfFirst = i
			} else {
				uf.union(intfFirst, i)
			}
		}
		if usesMem {
			if memFirst < 0 {
				memFirst = i
			} else {
				uf.union(memFirst, i)
			}
		}
	}

	// JSQ routers probe downstream queue lengths; zero-overhead edges have
	// no lookahead to synchronize on. Both merge endpoints.
	for i, name := range s.order {
		nd := s.nodes[name]
		jsq := nd.policy == RouteJSQ && len(nd.outEdges) > 1
		for _, rc := range nd.outEdges {
			if jsq || rc.overhead <= 0 {
				uf.union(i, idx[rc.to])
			}
		}
	}

	// Collect atoms in deterministic order and weight them by expected
	// event volume (visit probability × events per visit).
	visitP, edgeP, err := s.visitWeights()
	if err != nil {
		return nil, err
	}
	atomOf := make([]int, n+1)
	var atomMembers [][]int // vertex indices; pump is index n
	var atomWeight []float64
	rootToAtom := map[int]int{}
	for i := 0; i <= n; i++ {
		r := uf.find(i)
		a, ok := rootToAtom[r]
		if !ok {
			a = len(atomMembers)
			rootToAtom[r] = a
			atomMembers = append(atomMembers, nil)
			atomWeight = append(atomWeight, 0)
		}
		atomOf[i] = a
		atomMembers[a] = append(atomMembers[a], i)
		if i == pump {
			atomWeight[a] += 1.0
		} else {
			atomWeight[a] += eventsPerVisit * visitP[s.order[i]]
		}
	}

	k := shards
	if k > len(atomMembers) {
		k = len(atomMembers)
	}
	assign := assignAtoms(atomMembers, atomWeight, atomOf, edgeP, s, idx, k)

	// Compact to non-empty domains (affinity can leave trailing shards
	// unused) and materialize the plan.
	compact := make([]int, k)
	for i := range compact {
		compact[i] = -1
	}
	pl := &shardPlan{owner: make(map[string]int, n), lookahead: math.Inf(1)}
	domOf := func(atom int) int {
		d := assign[atom]
		if compact[d] < 0 {
			compact[d] = len(pl.domains)
			pl.domains = append(pl.domains, nil)
		}
		return compact[d]
	}
	for i, name := range s.order {
		d := domOf(atomOf[i])
		pl.owner[name] = d
		pl.domains[d] = append(pl.domains[d], name)
	}
	pl.rootDom = domOf(atomOf[pump])
	pl.intfDom, pl.memDom = pl.rootDom, pl.rootDom
	if intfFirst >= 0 {
		pl.intfDom = domOf(atomOf[intfFirst])
	}
	if memFirst >= 0 {
		pl.memDom = domOf(atomOf[memFirst])
	}

	for _, name := range s.order {
		from := pl.owner[name]
		for _, rc := range s.nodes[name].outEdges {
			if pl.owner[rc.to] == from {
				continue
			}
			pl.crossEdges++
			if rc.overhead <= 0 {
				return nil, fmt.Errorf("sim: internal: cross-domain edge %s->%s has no lookahead", name, rc.to)
			}
			if rc.overhead < pl.lookahead {
				pl.lookahead = rc.overhead
			}
		}
	}
	return pl, nil
}

// visitWeights recomputes per-vertex visit probabilities and per-edge
// traversal probabilities from the path decomposition (the same weights
// New uses for mean service times).
func (s *Simulator) visitWeights() (map[string]float64, map[[2]string]float64, error) {
	paths, err := s.cfg.Graph.Paths()
	if err != nil {
		return nil, nil, err
	}
	visitP := map[string]float64{}
	edgeP := map[[2]string]float64{}
	for _, p := range paths {
		seen := map[string]bool{}
		for i, v := range p.Vertices {
			if !seen[v] {
				visitP[v] += p.Weight
				seen[v] = true
			}
			if i+1 < len(p.Vertices) {
				edgeP[[2]string{v, p.Vertices[i+1]}] += p.Weight
			}
		}
	}
	return visitP, edgeP, nil
}

// assignAtoms places atoms onto k shards: largest-first greedy balancing,
// breaking near-ties (within a quarter of the atom's own weight) toward
// the shard with the most edge traffic to the atom — a cheap min-cut bias.
func assignAtoms(members [][]int, weight []float64, atomOf []int, edgeP map[[2]string]float64, s *Simulator, idx map[string]int, k int) []int {
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by weight descending, atom id ascending on ties:
	// deterministic and tiny (atom counts are graph-sized).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j], order[j-1]
			if weight[a] > weight[b] || (weight[a] == weight[b] && a < b) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}

	// affinity[atom][shard] accumulates traversal weight between the atom
	// and already-placed atoms on that shard. A shard is a candidate for
	// an atom while taking it keeps the shard within ~105% of the
	// balanced average — so a service chain can keep stacking onto the
	// shard that already holds its neighbors until that shard is full,
	// instead of being round-robined apart by strict load order.
	total := 0.0
	for _, w := range weight {
		total += w
	}
	target := 1.05 * total / float64(k)
	load := make([]float64, k)
	assign := make([]int, len(members))
	for i := range assign {
		assign[i] = -1
	}
	affinity := make([][]float64, len(members))
	for _, a := range order {
		best, bestScore := -1, math.Inf(-1)
		for d := 0; d < k; d++ {
			if load[d]+weight[a] > target {
				continue
			}
			score := 0.0
			if affinity[a] != nil {
				score = affinity[a][d]
			}
			// Prefer affinity, then lighter load, then lower index.
			if score > bestScore || (score == bestScore && load[d] < load[best]) {
				best, bestScore = d, score
			}
		}
		if best < 0 {
			// No shard has room under the target (an oversized constraint
			// clique, or the tail of a tight packing): fall back to pure
			// balance.
			best = 0
			for d := 1; d < k; d++ {
				if load[d] < load[best] {
					best = d
				}
			}
		}
		assign[a] = best
		load[best] += weight[a]
		// Update neighbor affinities toward the chosen shard.
		for _, vi := range members[a] {
			if vi >= len(s.order) {
				continue // pump atom has no graph edges
			}
			name := s.order[vi]
			for _, rc := range s.nodes[name].outEdges {
				touch(&affinity[atomOf[idx[rc.to]]], k, best, edgeP[[2]string{name, rc.to}])
			}
		}
		for _, name := range s.order {
			for _, rc := range s.nodes[name].outEdges {
				if atomOf[idx[rc.to]] == a {
					touch(&affinity[atomOf[idx[name]]], k, best, edgeP[[2]string{name, rc.to}])
				}
			}
		}
	}
	return assign
}

// touch lazily allocates an affinity row and adds w to one shard's cell.
func touch(row *[]float64, k, shard int, w float64) {
	if w <= 0 {
		return
	}
	if *row == nil {
		*row = make([]float64, k)
	}
	(*row)[shard] += w
}

// faultDomain returns the domain that must execute one scheduled fault:
// the target vertex's owner, or the owner of the degraded link's state.
func (pl *shardPlan) faultDomain(f *Fault) int {
	if f.Kind == LinkDegrade {
		return pl.linkDomain(f.Link)
	}
	return pl.owner[f.Vertex]
}

// linkDomain returns the domain owning a named transmission resource.
func (pl *shardPlan) linkDomain(name string) int {
	switch name {
	case "interface":
		return pl.intfDom
	case "memory":
		return pl.memDom
	}
	if i := strings.Index(name, "->"); i >= 0 {
		return pl.owner[name[:i]]
	}
	return pl.rootDom
}
