package sim

// This file cross-validates degraded-mode modeling (core.Degrade) against
// faulted simulation runs: on two device catalogs, a model with a fault
// scenario folded into its parameters must predict the throughput a
// simulation with the equivalent PermanentFaults schedule actually
// delivers. Engine-loss scenarios are driven at 1.5× the degraded
// capacity — the bottleneck vertex sheds the excess through its finite
// queue. Link-degrade scenarios are driven at 1.05×: shared links have no
// drop point (overload only grows their FIFO backlog), so the capacity
// comparison needs an offer near the ceiling.

import (
	"math"
	"testing"

	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

const crossvalPkt = 1500.0

// liquidIOModel is a LiquidIO-II CN2360 MD5 offload chain: NIC cores
// prepare each packet and invoke the on-chip MD5 engine. Ingress DMA
// crosses the CMI (α); the accelerator fetch crosses DRAM (β).
func liquidIOModel(t *testing.T) core.Model {
	t.Helper()
	d := devices.LiquidIO2CN2360()
	md5, err := d.Accel("md5")
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBuilder("liquidio-md5")
	b.AddIngress("in")
	b.AddVertex(core.Vertex{
		Name: "cores", Kind: core.KindIP,
		Throughput:  d.CoreThroughput(md5, crossvalPkt, d.Cores),
		Parallelism: d.Cores, QueueCapacity: 64,
	})
	b.AddVertex(core.Vertex{
		Name: "md5", Kind: core.KindIP,
		Throughput:  md5.PacketRate * crossvalPkt,
		Parallelism: 4, QueueCapacity: 64,
	})
	b.AddEgress("out")
	b.AddEdge(core.Edge{From: "in", To: "cores", Delta: 1, Alpha: 1})
	b.AddEdge(core.Edge{From: "cores", To: "md5", Delta: 1, Beta: 1})
	b.AddEdge(core.Edge{From: "md5", To: "out", Delta: 1})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{Granularity: crossvalPkt},
	}
}

// blueFieldModel is a BlueField-2 inline-crypto chain: ARM cores classify,
// the crypto engine transforms. Ingress crosses the SoC interconnect (α);
// the engine handoff crosses DRAM (β).
func blueFieldModel(t *testing.T) core.Model {
	t.Helper()
	d := devices.BlueField2DPU()
	crypto, err := d.Engine("crypto")
	if err != nil {
		t.Fatal(err)
	}
	const cryptoLanes = 4
	armPerPacket := 0.8e-6 // synthetic per-core classification cost
	b := core.NewBuilder("bluefield2-crypto")
	b.AddIngress("in")
	b.AddVertex(core.Vertex{
		Name: "arm", Kind: core.KindIP,
		Throughput:  float64(d.Cores) * crossvalPkt / armPerPacket,
		Parallelism: d.Cores, QueueCapacity: 64,
	})
	b.AddVertex(core.Vertex{
		Name: "crypto", Kind: core.KindIP,
		Throughput:  cryptoLanes * crossvalPkt / crypto.ServiceTime(crossvalPkt),
		Parallelism: cryptoLanes, QueueCapacity: 64,
	})
	b.AddEgress("out")
	b.AddEdge(core.Edge{From: "in", To: "arm", Delta: 1, Alpha: 1})
	b.AddEdge(core.Edge{From: "arm", To: "crypto", Delta: 1, Beta: 1})
	b.AddEdge(core.Edge{From: "crypto", To: "out", Delta: 1})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return core.Model{
		Hardware: d.Hardware(),
		Graph:    g,
		Traffic:  core.Traffic{Granularity: crossvalPkt},
	}
}

// Model-vs-sim agreement within 15% under single-engine-group loss and
// link degradation, on both catalogs (the ISSUE acceptance criterion).
func TestDegradedCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulation runs")
	}
	cases := []struct {
		name     string
		model    func(*testing.T) core.Model
		scenario core.Degradation
		overload float64 // offer as a multiple of the degraded capacity
	}{
		{
			name:     "liquidio2/engine-loss",
			model:    liquidIOModel,
			scenario: core.Degradation{EnginesDown: map[string]int{"cores": 12}},
			overload: 1.5,
		},
		{
			name:     "liquidio2/link-degrade",
			model:    liquidIOModel,
			scenario: core.Degradation{LinkFactors: map[string]float64{core.LinkInterface: 0.3}},
			overload: 1.05,
		},
		{
			name:     "bluefield2/engine-loss",
			model:    blueFieldModel,
			scenario: core.Degradation{EnginesDown: map[string]int{"crypto": 2}},
			overload: 1.5,
		},
		{
			name:     "bluefield2/link-degrade",
			model:    blueFieldModel,
			scenario: core.Degradation{LinkFactors: map[string]float64{core.LinkMemory: 0.15}},
			overload: 1.05,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.model(t)
			healthy, err := m.SaturationThroughput()
			if err != nil {
				t.Fatal(err)
			}
			dm, err := core.Degrade(m, tc.scenario)
			if err != nil {
				t.Fatal(err)
			}
			sat, err := dm.SaturationThroughput()
			if err != nil {
				t.Fatal(err)
			}
			if sat.Attainable >= healthy.Attainable {
				t.Fatalf("scenario did not reduce capacity: %v vs healthy %v",
					sat.Attainable, healthy.Attainable)
			}
			res, err := Run(Config{
				Graph:    m.Graph,
				Hardware: m.Hardware,
				Profile:  traffic.Fixed("x", unit.Bandwidth(tc.overload*sat.Attainable), unit.Size(crossvalPkt)),
				Seed:     42,
				Duration: 0.03,
				Faults:   PermanentFaults(tc.scenario),
			})
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(res.Throughput-sat.Attainable) / sat.Attainable
			if rel > 0.15 {
				t.Errorf("sim delivered %.4g B/s vs degraded model capacity %.4g B/s (%.1f%% off, bottleneck %v)",
					res.Throughput, sat.Attainable, 100*rel, sat.Bottleneck)
			}
		})
	}
}
