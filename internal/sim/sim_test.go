package sim

import (
	"math"
	"math/rand"
	"testing"

	"lognic/internal/core"
	"lognic/internal/queueing"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// pipeline builds in -> ip -> out with the given IP throughput (B/s),
// parallelism and queue capacity.
func pipeline(t *testing.T, p float64, par, qcap int) *core.Graph {
	t.Helper()
	g, err := core.NewBuilder("pipe").
		AddIngress("in").
		AddIP("ip", p, par, qcap).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := pipeline(t, 1e9, 1, 0)
	prof := traffic.Fixed("t", unit.Gbps(1), 1024)
	cases := []Config{
		{Graph: nil, Profile: prof, Duration: 1},
		{Graph: g, Profile: traffic.Profile{}, Duration: 1},
		{Graph: g, Profile: prof, Duration: 0},
		{Graph: g, Profile: prof, Duration: math.NaN()},
		{Graph: g, Profile: prof, Duration: 1, Warmup: 2},
		{Graph: g, Profile: prof, Duration: 1, Warmup: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLowLoadDelivery(t *testing.T) {
	// 10% load, big queue: everything offered should be delivered and
	// throughput should track the offered rate.
	g := pipeline(t, 1e9, 1, 64)
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e8), 1000),
		Seed:     1,
		Duration: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("nothing delivered")
	}
	if res.DropRate != 0 {
		t.Fatalf("DropRate = %v at 10%% load", res.DropRate)
	}
	if !approx(res.Throughput, 1e8, 0.05) {
		t.Fatalf("Throughput = %v, want ~1e8", res.Throughput)
	}
	// Mean latency at 10% load ≈ service time 1µs + small queueing.
	if res.MeanLatency < 0.9e-6 || res.MeanLatency > 3e-6 {
		t.Fatalf("MeanLatency = %v", res.MeanLatency)
	}
	ip := res.Vertices["ip"]
	if !approx(ip.Utilization, 0.1, 0.2) {
		t.Fatalf("Utilization = %v, want ~0.1", ip.Utilization)
	}
}

func TestOverloadSaturatesAndDrops(t *testing.T) {
	// Offered 3× capacity with a finite queue: throughput pins at the IP
	// rate and drops appear.
	g := pipeline(t, 1e9, 1, 16)
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(3e9), 1000),
		Seed:     2,
		Duration: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Throughput, 1e9, 0.05) {
		t.Fatalf("Throughput = %v, want ~1e9", res.Throughput)
	}
	if res.DropRate < 0.5 {
		t.Fatalf("DropRate = %v, want ≥ 0.5 at 3× overload", res.DropRate)
	}
	ip := res.Vertices["ip"]
	if ip.Utilization < 0.95 {
		t.Fatalf("Utilization = %v, want ~1", ip.Utilization)
	}
	if ip.Dropped == 0 {
		t.Fatal("expected vertex drops")
	}
}

// The headline validation: the simulator's queueing behavior must match the
// M/M/1/N formulas the analytical model uses (paper Equations 9–12).
func TestSimMatchesMM1N(t *testing.T) {
	if testing.Short() {
		t.Skip("long statistical run")
	}
	for _, rho := range []float64{0.5, 0.8} {
		g := pipeline(t, 1e9, 1, 16)
		res, err := Run(Config{
			Graph:    g,
			Profile:  traffic.Fixed("t", unit.Bandwidth(rho*1e9), 1000),
			Seed:     3,
			Duration: 2.0,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := queueing.MM1N{
			Lambda:   rho * 1e9 / 1000,
			Mu:       1e9 / 1000,
			Capacity: 17, // N counts system occupancy: 16 waiting + 1 in service
		}
		wantQ := q.QueueingDelay()
		ip := res.Vertices["ip"]
		if !approx(ip.MeanWait, wantQ, 0.12) {
			t.Errorf("rho=%v: sim wait %v vs M/M/1/N %v", rho, ip.MeanWait, wantQ)
		}
		if !approx(ip.Utilization, rho*(1-q.BlockingProb()), 0.05) {
			t.Errorf("rho=%v: utilization %v", rho, ip.Utilization)
		}
	}
}

func TestSimMatchesModelLatencyLowLoad(t *testing.T) {
	// At low load, sim mean latency ≈ model path latency (compute +
	// movement, negligible queueing).
	g, err := core.NewBuilder("chain").
		AddIngress("in").
		AddIP("a", 2e9, 1, 64).
		AddIP("b", 1e9, 1, 64).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "a", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "a", To: "b", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "b", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	hw := core.Hardware{InterfaceBW: 50e9}
	m := core.Model{
		Hardware: hw,
		Graph:    g,
		Traffic:  core.Traffic{IngressBW: 5e7, Granularity: 1000},
	}
	lr, err := m.Latency()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    g,
		Hardware: hw,
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e7), 1000),
		Seed:     4,
		Duration: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.MeanLatency, lr.Attainable, 0.15) {
		t.Fatalf("sim %v vs model %v", res.MeanLatency, lr.Attainable)
	}
}

func TestFanOutRouting(t *testing.T) {
	// 70/30 split: arrival counts should follow the δ fractions.
	g, err := core.NewBuilder("fan").
		AddIngress("in").
		AddIP("a", 10e9, 1, 0).
		AddIP("b", 10e9, 1, 0).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "a", Delta: 0.7}).
		AddEdge(core.Edge{From: "in", To: "b", Delta: 0.3}).
		AddEdge(core.Edge{From: "a", To: "out", Delta: 0.7}).
		AddEdge(core.Edge{From: "b", To: "out", Delta: 0.3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e9), 1000),
		Seed:     5,
		Duration: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := float64(res.Vertices["a"].Arrivals)
	b := float64(res.Vertices["b"].Arrivals)
	if a+b == 0 {
		t.Fatal("no arrivals")
	}
	if !approx(a/(a+b), 0.7, 0.05) {
		t.Fatalf("split = %v, want 0.7", a/(a+b))
	}
}

func TestSharedLinkBottleneck(t *testing.T) {
	// Interface slower than offered: delivery capped by BW_INTF/Σα = 1e9/2.
	g, err := core.NewBuilder("link").
		AddIngress("in").
		AddIP("ip", 100e9, 4, 0).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "ip", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 1e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e9), 1500),
		Seed:     6,
		Duration: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 0.6e9 {
		t.Fatalf("Throughput = %v, want ≤ ~5e8 (interface bound)", res.Throughput)
	}
}

func TestDeterministicSeed(t *testing.T) {
	g := pipeline(t, 1e9, 2, 32)
	cfg := Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     42,
		Duration: 0.1,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeliveredPackets != r2.DeliveredPackets || r1.MeanLatency != r2.MeanLatency {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 43
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DeliveredPackets == r3.DeliveredPackets && r1.MeanLatency == r3.MeanLatency {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestDeterministicServiceReducesVariance(t *testing.T) {
	g := pipeline(t, 1e9, 1, 64)
	base := Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     7,
		Duration: 0.5,
	}
	exp, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	det := base
	det.DeterministicService = true
	detRes, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	// M/D/1 waits are half of M/M/1: deterministic service must cut the
	// mean latency.
	if detRes.MeanLatency >= exp.MeanLatency {
		t.Fatalf("deterministic %v >= exponential %v", detRes.MeanLatency, exp.MeanLatency)
	}
}

func TestServiceTimerOverride(t *testing.T) {
	g := pipeline(t, 1e9, 1, 0)
	fixed := 5e-6
	var sawOutstanding bool
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e8), 1000),
		Seed:     8,
		Duration: 0.2,
		ServiceTime: map[string]ServiceTimer{
			"ip": func(size float64, outstanding int, rng *rand.Rand) float64 {
				if outstanding > 0 {
					sawOutstanding = true
				}
				return fixed
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latency ≈ fixed service (plus queueing ~ small at 50% load... rate
	// 1e8/1000 = 1e5 pps × 5µs = 0.5 utilization).
	if res.MeanLatency < fixed {
		t.Fatalf("MeanLatency = %v < service %v", res.MeanLatency, fixed)
	}
	if res.MeanLatency > 5*fixed {
		t.Fatalf("MeanLatency = %v implausibly high", res.MeanLatency)
	}
	_ = sawOutstanding // may or may not queue; just exercising the hook
}

func TestOverheadAddsLatency(t *testing.T) {
	g := pipeline(t, 1e9, 1, 0)
	v, _ := g.Vertex("ip")
	v.Overhead = 20e-6
	g2, err := g.WithVertex(v)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{
		Graph: g, Profile: traffic.Fixed("t", unit.Bandwidth(1e8), 1000),
		Seed: 9, Duration: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	withO, err := Run(Config{
		Graph: g2, Profile: traffic.Fixed("t", unit.Bandwidth(1e8), 1000),
		Seed: 9, Duration: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := withO.MeanLatency - base.MeanLatency
	if !approx(diff, 20e-6, 0.2) {
		t.Fatalf("overhead added %v, want ~20µs", diff)
	}
}

func TestParallelEnginesIncreaseCapacity(t *testing.T) {
	// Same P split across D engines has the same aggregate rate; but
	// P per engine fixed with more engines raises capacity. Here we keep
	// vertex P and raise D: model semantics say capacity stays P (engines
	// share it), so throughput should NOT rise.
	for _, d := range []int{1, 4} {
		g := pipeline(t, 1e9, d, 16)
		res, err := Run(Config{
			Graph:    g,
			Profile:  traffic.Fixed("t", unit.Bandwidth(3e9), 1000),
			Seed:     10,
			Duration: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !approx(res.Throughput, 1e9, 0.08) {
			t.Fatalf("D=%d: Throughput = %v, want ~1e9 (P is aggregate)", d, res.Throughput)
		}
	}
}

func TestPercentilesOrdered(t *testing.T) {
	g := pipeline(t, 1e9, 1, 64)
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(8e8), 1000),
		Seed:     11,
		Duration: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Fatalf("quantiles out of order: %v %v %v", res.P50, res.P95, res.P99)
	}
	if res.MeanLatency <= 0 {
		t.Fatal("mean latency must be positive")
	}
}

func TestSampleSetQuantiles(t *testing.T) {
	var s sampleSet
	for i := 1; i <= 100; i++ {
		s.add(float64(i))
	}
	if s.count() != 100 {
		t.Fatalf("count = %d", s.count())
	}
	if !approx(s.mean(), 50.5, 1e-12) {
		t.Fatalf("mean = %v", s.mean())
	}
	if got := s.quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.quantile(0.5); !approx(got, 50.5, 1e-9) {
		t.Fatalf("q50 = %v", got)
	}
	var empty sampleSet
	if empty.mean() != 0 || empty.quantile(0.5) != 0 {
		t.Fatal("empty set should report zeros")
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw timeWeighted
	tw.set(0, 0)
	tw.set(1, 10) // value 0 for [0,1)
	tw.set(3, 0)  // value 10 for [1,3)
	if got := tw.average(4); !approx(got, (0*1+10*2+0*1)/4.0, 1e-12) {
		t.Fatalf("average = %v, want 5", got)
	}
	if got := tw.total(4); !approx(got, 20, 1e-12) {
		t.Fatalf("total = %v, want 20", got)
	}
	var fresh timeWeighted
	if fresh.average(10) != 0 {
		t.Fatal("unstarted average should be 0")
	}
}

// TestTimeWeightedMidRunObserver is the regression for the window bug:
// an observer whose first sample lands mid-run (after a warmup or a fault
// event) must average over its observed window [first, now], not over
// absolute time — dividing by now biased such averages toward zero.
func TestTimeWeightedMidRunObserver(t *testing.T) {
	var tw timeWeighted
	tw.set(5, 2) // observation starts at t=5
	tw.set(9, 0) // value 2 for [5,9)
	if got := tw.average(10); !approx(got, 2*4/5.0, 1e-12) {
		t.Fatalf("windowed average = %v, want 1.6 (integral 8 over [5,10])", got)
	}
	if got := tw.total(10); !approx(got, 8, 1e-12) {
		t.Fatalf("total = %v, want 8", got)
	}
	// A constant observer reports its constant, regardless of start time.
	var c timeWeighted
	c.set(7, 3)
	if got := c.average(12); !approx(got, 3, 1e-12) {
		t.Fatalf("constant mid-run observer average = %v, want 3", got)
	}
	// Zero-width window: nothing observed yet.
	if got := c.average(7); got != 0 {
		t.Fatalf("zero-window average = %v, want 0", got)
	}
}

func TestBurstinessInflatesLatency(t *testing.T) {
	// Same offered load, higher burst degree: deeper queues, higher mean
	// latency — the traffic-profile dimension the paper's §2.4 calls out.
	g := pipeline(t, 1e9, 1, 256)
	run := func(burst float64) Result {
		prof := traffic.Fixed("t", unit.Bandwidth(0.6e9), 1000)
		prof.BurstDegree = burst
		res, err := Run(Config{
			Graph:    g,
			Profile:  prof,
			Seed:     13,
			Duration: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	bursty := run(8)
	if !(bursty.MeanLatency > 1.5*plain.MeanLatency) {
		t.Fatalf("burstiness should inflate latency: %v vs %v",
			plain.MeanLatency, bursty.MeanLatency)
	}
	// Throughput unchanged (no drops at this load with a deep queue).
	if !approx(bursty.Throughput, plain.Throughput, 0.05) {
		t.Fatalf("throughput moved: %v vs %v", plain.Throughput, bursty.Throughput)
	}
}

// The Pollaczek–Khinchine M/G/1 formula predicts the deterministic-service
// mode: M/D/1 waits are half of M/M/1 at the same load.
func TestDeterministicServiceMatchesMD1(t *testing.T) {
	if testing.Short() {
		t.Skip("long statistical run")
	}
	g := pipeline(t, 1e9, 1, 0) // unbounded queue: compare to infinite-queue formula
	res, err := Run(Config{
		Graph:                g,
		Profile:              traffic.Fixed("t", unit.Bandwidth(0.7e9), 1000),
		Seed:                 19,
		Duration:             2.0,
		DeterministicService: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	md1 := queueing.MG1{Lambda: 0.7e6, Mu: 1e6, CV2: 0}
	ip := res.Vertices["ip"]
	if !approx(ip.MeanWait, md1.QueueingDelay(), 0.1) {
		t.Fatalf("sim wait %v vs M/D/1 %v", ip.MeanWait, md1.QueueingDelay())
	}
}

func TestLinkUtilizationReported(t *testing.T) {
	// Σα = 2 at 50% of the interface: utilization ≈ offered·Σα/BW.
	g, err := core.NewBuilder("util").
		AddIngress("in").
		AddIP("ip", 100e9, 4, 0).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "ip", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 4e9, MemoryBW: 100e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e9), 1500),
		Seed:     31,
		Duration: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.InterfaceUtil, 0.5, 0.1) {
		t.Fatalf("InterfaceUtil = %v, want ~0.5", res.InterfaceUtil)
	}
	if res.MemoryUtil != 0 {
		t.Fatalf("MemoryUtil = %v, want 0 (no β edges)", res.MemoryUtil)
	}
}
