package sim

// This file is the fast-path event engine (ISSUE 4 tentpole): a typed,
// allocation-free replacement for the original container/heap scheduler.
//
// The original engine paid three per-event costs at multi-million-event
// figure budgets: one *event heap allocation, one or two closure
// allocations capturing the event's operands, and container/heap's
// interface dispatch (Less/Swap/Push/Pop through `any` boxing) on every
// sift. This engine removes all three:
//
//   - events are plain values in a flat slice, ordered by an index-typed
//     4-ary min-heap specialized to the event struct — no boxing, no
//     interface calls, shallower sift paths than a binary heap (log₄ vs
//     log₂ levels) with better cache behavior (4 children share a line);
//   - the event's action is a small kind tag plus typed operands
//     dispatched through one switch, replacing per-event closures;
//   - packet records recycle through a free list (sim.go), and per-vertex
//     queue storage is preallocated ring buffers sized from the vertex's
//     configured queue capacity (queues.go).
//
// Determinism contract: the heap orders events by (time, seq) where seq is
// the strictly increasing schedule counter, exactly the total order the
// seed engine used — ties cannot exist, so any heap shape dequeues the
// identical sequence and results stay byte-identical (enforced by the
// golden-digest suite and FuzzEventQueue's container/heap oracle).

// eventKind discriminates the scheduled actions.
type eventKind uint8

const (
	// evArrival injects the pending generated packet and pumps the next
	// arrival from the traffic generator.
	evArrival eventKind = iota
	// evArriveAt lands a packet at a vertex: a finished transfer, or a
	// retry re-issue after backoff.
	evArriveAt
	// evServiceDone completes one engine's service of a packet.
	evServiceDone
	// evFault applies cfg.Faults[idx].
	evFault
	// evLinkRestore ends a timed LinkDegrade.
	evLinkRestore
	// evStallRecover ends a VertexStall window.
	evStallRecover
	// evWarmup rebases every observation window at the warmup cutoff.
	evWarmup
)

// event is one scheduled action, stored by value in the queue. The operand
// fields are kind-specific:
//
//	evArrival:      a = packet size, flow = flow id (time is the arrival)
//	evArriveAt:     node = destination, from = upstream name, pkt
//	evServiceDone:  node = server, pkt, a = queueing wait, b = service start
//	evFault:        idx into cfg.Faults
//	evLinkRestore:  link, from = link name (for the trace event), idx
//	evStallRecover: node = stalled vertex, idx = originating fault
//	evWarmup:       no operands
type event struct {
	time float64
	seq  uint64
	node *node
	pkt  *packet
	link *link
	from string
	a, b float64
	flow uint64
	idx  int32
	kind eventKind
}

// before is the scheduling order: time, then schedule sequence. seq is
// unique per event, so this is a total order.
func (e *event) before(o *event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of event values. Children of slot i live
// at 4i+1..4i+4; the root is the next event to fire.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts one event, sifting the hole up instead of swapping so each
// level costs one copy.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&q.ev[p]) {
			break
		}
		q.ev[i] = q.ev[p]
		i = p
	}
	q.ev[i] = e
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so packet/node pointers don't outlive their events in the
// backing array.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{}
	q.ev = q.ev[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q.ev[j].before(&q.ev[m]) {
					m = j
				}
			}
			if !q.ev[m].before(&last) {
				break
			}
			q.ev[i] = q.ev[m]
			i = m
		}
		q.ev[i] = last
	}
	return top
}

// schedule stamps the event with the fire time and the next sequence
// number and inserts it. The sequence counter is the determinism anchor:
// equal-time events fire in schedule order, exactly like the seed engine.
// Sharded domains stamp an intrinsic partition-invariant key instead (see
// shard.go), so the (time, seq) order is identical at every shard count.
func (s *Simulator) schedule(t float64, e event) {
	if s.sh != nil {
		e.time = t
		e.seq = s.intrinsicKey(&e)
		s.events.push(e)
		return
	}
	s.seq++
	e.time = t
	e.seq = s.seq
	s.events.push(e)
}

// dispatch executes one popped event. s.now has already been advanced to
// the event's timestamp.
func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evArriveAt:
		s.arriveAt(e.node, e.from, e.pkt)
	case evServiceDone:
		s.serviceDone(e.node, e.pkt, e.a, e.b)
	case evArrival:
		s.arrivalPump(e.a, e.flow)
	case evFault:
		s.applyFault(s.cfg.Faults[e.idx], e.idx)
	case evLinkRestore:
		s.restoreLink(e.link, e.from)
	case evStallRecover:
		s.recoverStall(e.node)
	case evWarmup:
		s.rebaseWindows()
	}
}
