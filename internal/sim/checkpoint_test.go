package sim_test

// Checkpoint/resume correctness: a run interrupted at an arbitrary
// checkpoint and resumed from the serialized snapshot must produce a
// Result byte-identical (golden digest) to the same run uninterrupted.
// The scenarios reuse the golden suite's configs, so every scheduling
// path — shared and per-edge queues, all routing policies, faults,
// retries, bursty flows, deterministic service — is exercised.

import (
	"errors"
	"testing"

	"lognic/internal/sim"
	"lognic/internal/simtest"
)

// captureCheckpoints runs cfg with a sink collecting an encoded snapshot
// every `every` events, returning the result and the serialized
// checkpoints in capture order.
func captureCheckpoints(t *testing.T, cfg sim.Config, every uint64) (sim.Result, [][]byte) {
	t.Helper()
	var cks [][]byte
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = func(c *sim.Checkpoint) error {
		b, err := c.Encode()
		if err != nil {
			return err
		}
		cks = append(cks, b)
		return nil
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cks
}

// resumeFrom decodes one serialized checkpoint and runs the rest of the
// simulation from it.
func resumeFrom(t *testing.T, cfg sim.Config, encoded []byte) sim.Result {
	t.Helper()
	cfg.CheckpointEvery = 0
	cfg.CheckpointSink = nil
	ck, err := sim.DecodeCheckpoint(encoded)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Resume(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every golden scenario, interrupted mid-run and resumed from a
// serialized checkpoint, digests identically to the uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	d := goldenDevices(t)[0]
	for _, seed := range []int64{1, 2} {
		for name, cfg := range goldenScenarios(t, d, seed) {
			base, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, seed, err)
			}
			want := simtest.ResultDigest(base)

			_, cks := captureCheckpoints(t, cfg, 5000)
			if len(cks) == 0 {
				t.Fatalf("%s/seed%d: run too short for any checkpoint", name, seed)
			}
			// Resume from the middle checkpoint (deepest interesting state)
			// and from the last (shortest remaining run).
			for _, i := range []int{len(cks) / 2, len(cks) - 1} {
				got := simtest.ResultDigest(resumeFrom(t, cfg, cks[i]))
				if got != want {
					t.Errorf("%s/seed%d: resume from checkpoint %d/%d digests %s, uninterrupted %s",
						name, seed, i+1, len(cks), got, want)
				}
			}
		}
	}
}

// Resuming from every checkpoint of one scenario — including the first,
// taken inside warmup — reproduces the uninterrupted digest.
func TestCheckpointResumeEveryPoint(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 3)["faults-retry"]
	base, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := simtest.ResultDigest(base)
	_, cks := captureCheckpoints(t, cfg, 3000)
	for i, b := range cks {
		if got := simtest.ResultDigest(resumeFrom(t, cfg, b)); got != want {
			t.Fatalf("resume from checkpoint %d/%d digests %s, want %s", i+1, len(cks), got, want)
		}
	}
}

// The checkpointing run itself (sink enabled) must not perturb the
// simulation: its result digests identically to a bare run.
func TestCheckpointSinkIsObserverOnly(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 1)["wrr"]
	base, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withSink, _ := captureCheckpoints(t, cfg, 2000)
	if simtest.ResultDigest(base) != simtest.ResultDigest(withSink) {
		t.Fatal("enabling checkpoints changed the run result")
	}
}

// Resume validates the checkpoint against the config.
func TestResumeValidation(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 1)["delta"]
	_, cks := captureCheckpoints(t, cfg, 5000)
	ck, err := sim.DecodeCheckpoint(cks[0])
	if err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Seed = cfg.Seed + 7
	if _, err := sim.Resume(bad, ck); err == nil {
		t.Error("seed mismatch accepted")
	}
	bad = cfg
	bad.Duration = cfg.Duration * 2
	if _, err := sim.Resume(bad, ck); err == nil {
		t.Error("duration mismatch accepted")
	}
	bad = cfg
	bad.PerEdgeQueues = true
	if _, err := sim.Resume(bad, ck); err == nil {
		t.Error("queue-organization mismatch accepted")
	}
	if _, err := sim.Resume(cfg, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	if _, err := sim.DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Error("garbage bytes decoded")
	}
}

// A sink error aborts the run with that error.
func TestCheckpointSinkErrorAborts(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 1)["delta"]
	sinkErr := errors.New("disk on fire")
	cfg.CheckpointEvery = 1000
	cfg.CheckpointSink = func(*sim.Checkpoint) error { return sinkErr }
	if _, err := sim.Run(cfg); !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}

// CheckpointEvery without a sink is a config error.
func TestCheckpointEveryNeedsSink(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 1)["delta"]
	cfg.CheckpointEvery = 1000
	if _, err := sim.New(cfg); err == nil {
		t.Fatal("CheckpointEvery without CheckpointSink accepted")
	}
}

// The MaxEvents budget spans the logical run: a resumed simulator counts
// the pre-interrupt events against the budget.
func TestResumeBudgetSpansLogicalRun(t *testing.T) {
	cfg := goldenScenarios(t, goldenDevices(t)[0], 1)["delta"]
	_, cks := captureCheckpoints(t, cfg, 5000)
	ck, err := sim.DecodeCheckpoint(cks[len(cks)-1])
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxEvents = ck.Processed // already spent at the checkpoint
	s, err := sim.Resume(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); !errors.Is(err, sim.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
