package sim

// White-box tests for the sharded engine's control surface and its
// determinism contract: mid-run cancellation, the typed checkpoint
// refusal, invariance under domain relabeling (a metamorphic probe of
// the merge logic), and serial/sharded agreement at saturation, where
// queue overflow makes event ordering consequential.

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// meshCfg builds the 64-tenant mesh the sharded engine is pinned on.
func meshCfg(t *testing.T, load float64, seed int64, shards int) Config {
	t.Helper()
	cfg, err := MeshConfig(64, load, seed, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = shards
	return cfg
}

func TestShardsValidation(t *testing.T) {
	cfg := meshCfg(t, 0.7, 1, -1)
	if _, err := New(cfg); err == nil {
		t.Fatal("negative Shards accepted")
	}
}

// TestShardedCancelMidRun cancels from the Progress hook — i.e. between
// synchronization rounds, while every domain still holds pending events —
// and expects the typed abort the serial engine produces.
func TestShardedCancelMidRun(t *testing.T) {
	cfg := meshCfg(t, 0.7, 1, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	cfg.Progress = func(Progress) {
		if rounds++; rounds == 3 {
			cancel()
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Domains() < 2 {
		t.Fatalf("mesh collapsed to %d domains", s.Domains())
	}
	_, err = s.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled sharded run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if rounds < 3 {
		t.Fatalf("run ended after %d rounds, before the cancel fired", rounds)
	}
}

// TestShardedCheckpointRefusal covers every door into checkpointing a
// sharded run: configuring periodic snapshots, asking a built simulator,
// and resuming a serial snapshot onto a sharded config. All must fail
// with ErrShardedCheckpoint, not corrupt state.
func TestShardedCheckpointRefusal(t *testing.T) {
	cfg := meshCfg(t, 0.7, 1, 8)
	cfg.CheckpointEvery = 4096
	cfg.CheckpointSink = func(*Checkpoint) error { return nil }
	if _, err := New(cfg); !errors.Is(err, ErrShardedCheckpoint) {
		t.Fatalf("New with Shards+CheckpointEvery: %v", err)
	}

	cfg.CheckpointEvery = 0
	cfg.CheckpointSink = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrShardedCheckpoint) {
		t.Fatalf("Checkpoint on a sharded simulator: %v", err)
	}

	// A serial run of the same scenario can checkpoint; that snapshot must
	// not resume onto a sharded config.
	serial := cfg
	serial.Shards = 0
	var ck *Checkpoint
	serial.CheckpointEvery = 4096
	serial.CheckpointSink = func(c *Checkpoint) error { ck = c; return nil }
	if _, err := Run(serial); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("serial run took no checkpoint; lower CheckpointEvery")
	}
	if _, err := Resume(cfg, ck); !errors.Is(err, ErrShardedCheckpoint) {
		t.Fatalf("Resume onto a sharded config: %v", err)
	}
}

// rotatePlan relabels every domain d → (d+by) mod k. A domain label is an
// arbitrary name: the run's observable behavior must not depend on it.
func rotatePlan(pl *shardPlan, by int) {
	k := len(pl.domains)
	relabel := func(d int) int { return (d + by) % k }
	domains := make([][]string, k)
	for d, vs := range pl.domains {
		domains[relabel(d)] = vs
	}
	pl.domains = domains
	for v, d := range pl.owner {
		pl.owner[v] = relabel(d)
	}
	pl.rootDom = relabel(pl.rootDom)
	pl.intfDom = relabel(pl.intfDom)
	pl.memDom = relabel(pl.memDom)
}

// TestShardedRelabelInvariance is the metamorphic twin of the differential
// suite: permuting domain indices permutes goroutines, outbox slots and
// merge input order, but must not change one bit of the Result or the
// replayed trace.
func TestShardedRelabelInvariance(t *testing.T) {
	run := func(rotate int) (Result, []TraceEvent) {
		cfg := meshCfg(t, 0.7, 2, 8)
		var trace []TraceEvent
		cfg.Trace = func(ev TraceEvent) { trace = append(trace, ev) }
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.Domains() < 2 {
			t.Fatalf("mesh collapsed to %d domains", s.Domains())
		}
		if rotate > 0 {
			rotatePlan(s.plan, rotate)
		}
		res, err := s.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, trace
	}
	baseRes, baseTrace := run(0)
	for _, by := range []int{1, 3} {
		res, trace := run(by)
		if !reflect.DeepEqual(res, baseRes) {
			t.Fatalf("rotate %d changed the Result:\nbase    %+v\nrotated %+v", by, baseRes, res)
		}
		if !reflect.DeepEqual(trace, baseTrace) {
			t.Fatalf("rotate %d changed the trace (%d vs %d events)", by, len(baseTrace), len(trace))
		}
	}
}

// TestShardedSaturationConsistency overdrives the mesh (offered load 1.5×
// aggregate stage capacity) so queues overflow and drop decisions depend
// on exact event order — then requires serial and sharded runs to agree
// field-for-field, and the scenario to actually saturate.
func TestShardedSaturationConsistency(t *testing.T) {
	cfg := meshCfg(t, 1.5, 3, 0)
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.DropRate == 0 {
		t.Fatal("saturation scenario dropped nothing; raise the load")
	}
	maxUtil := 0.0
	for _, vs := range serial.Vertices {
		if vs.Utilization > maxUtil {
			maxUtil = vs.Utilization
		}
	}
	if maxUtil < 0.9 {
		t.Fatalf("saturation scenario peaked at utilization %v; raise the load", maxUtil)
	}
	for _, shards := range []int{2, 8} {
		c := cfg
		c.Shards = shards
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, serial) {
			t.Fatalf("shards=%d diverged at saturation:\nserial  %+v\nsharded %+v", shards, serial, res)
		}
	}
}
