package sim

// Observability wiring: packet-span emission and metric registration.
// Everything here is gated on Config.Spans / Config.Metrics being set, so
// a run with observability disabled pays only nil checks on the hot path
// (budgeted at <5% overhead; see BenchmarkTracingDisabled at the repo
// root). Spans and metrics observe the run — they never consume simulator
// randomness or alter event order, so instrumented and bare runs produce
// identical Results for equal seeds.

import (
	"lognic/internal/obs"
)

// simMetrics holds the resolved metric handles one run reports into.
// Handles are resolved once in New, so the hot path never touches the
// registry's maps. Counters cover the whole run (including warmup):
// metrics are operational telemetry, unlike Result's measurement-window
// statistics.
type simMetrics struct {
	offered   *obs.Counter
	delivered *obs.Counter
	latency   *obs.Histogram
	events    *obs.Counter
	retries   *obs.Counter
}

// latencyBuckets spans 1µs..±16s geometrically — wide enough for every
// catalog in the repo.
func latencyBuckets() []float64 { return obs.ExpBuckets(1e-6, 4, 13) }

// initObs registers this run's metric families and resolves per-vertex
// handles. Registration is get-or-create, so concurrent replications of a
// sweep sharing one registry aggregate into the same series.
func (s *Simulator) initObs() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	s.metrics = &simMetrics{
		offered:   reg.Counter("lognic_sim_packets_offered_total", "packets injected at ingress", nil),
		delivered: reg.Counter("lognic_sim_packets_delivered_total", "packets completed at an egress engine", nil),
		latency:   reg.Histogram("lognic_sim_latency_seconds", "end-to-end packet latency", latencyBuckets(), nil),
		events:    reg.Counter("lognic_sim_events_total", "discrete events processed", nil),
		retries:   reg.Counter("lognic_sim_retries_total", "packets re-issued under a retry policy", nil),
	}
	for _, name := range s.order {
		s.nodes[name].droppedC = reg.Counter("lognic_sim_packets_dropped_total",
			"arrivals rejected by a full queue", obs.Labels{"vertex": name})
	}
}

// finishObs publishes end-of-run gauges: per-link and per-vertex
// utilization over the measurement window, and the event count.
func (s *Simulator) finishObs(res Result) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	s.metrics.events.Add(float64(s.processed))
	for name, u := range res.Links {
		reg.Gauge("lognic_sim_link_utilization",
			"link busy fraction over the measurement window", obs.Labels{"link": name}).Set(u)
	}
	for name, vs := range res.Vertices {
		reg.Gauge("lognic_sim_vertex_utilization",
			"time-average busy-engine fraction over the measurement window",
			obs.Labels{"vertex": name}).Set(vs.Utilization)
		reg.Gauge("lognic_sim_vertex_queue_len",
			"time-average waiting requests over the measurement window",
			obs.Labels{"vertex": name}).Set(vs.MeanQueueLen)
	}
}

// span emits one span when tracing is enabled. The packet id is the
// span's track, so one packet's lifecycle renders as a single timeline
// row in Perfetto with phases nested inside vertex visits.
func (s *Simulator) span(name, cat string, p *packet, start, dur float64, args map[string]any) {
	if s.cfg.Spans == nil {
		return
	}
	s.cfg.Spans.Emit(obs.Span{
		Name: name, Cat: cat, Track: p.id, Start: start, Dur: dur, Args: args,
		TraceID: s.cfg.TraceID, ParentID: s.cfg.ParentSpanID,
	})
}

// spanVertex closes the parent span of one vertex visit: arrival to now.
func (s *Simulator) spanVertex(n *node, p *packet, args map[string]any) {
	if s.cfg.Spans == nil {
		return
	}
	s.span(n.v.Name, obs.CatVertex, p, p.arrived, s.now-p.arrived, args)
}

// AttributionComponents converts the run's measured utilizations into
// per-component saturation estimates for obs.BuildReport: each component
// is extrapolated to saturate at offered/utilization — the same linear
// scaling Equation 4's min() assumes. Components that stayed idle carry
// no signal and are omitted.
func (r Result) AttributionComponents() []obs.Component {
	offered := r.OfferedRate()
	if offered <= 0 {
		return nil
	}
	var out []obs.Component
	for name, u := range r.Links {
		if u <= 0 {
			continue
		}
		kind := obs.KindEdge
		switch name {
		case "interface":
			kind = obs.KindInterface
		case "memory":
			kind = obs.KindMemory
		}
		out = append(out, obs.Component{
			Name: name, Kind: kind, Utilization: u, SaturationLoad: offered / u,
		})
	}
	for name, vs := range r.Vertices {
		if vs.Utilization <= 0 {
			continue
		}
		out = append(out, obs.Component{
			Name: name, Kind: obs.KindCompute,
			Utilization:    vs.Utilization,
			SaturationLoad: offered / vs.Utilization,
		})
	}
	return out
}

// OfferedRate is the offered ingress load over the measurement window
// (bytes/second).
func (r Result) OfferedRate() float64 {
	if r.Window <= 0 {
		return 0
	}
	return r.OfferedBytes / r.Window
}
