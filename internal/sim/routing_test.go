package sim

import (
	"math"
	"testing"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// steeringGraph builds a scheduler fanning out to a fast and a slow unit
// with the given static δ split toward the fast one.
func steeringGraph(t *testing.T, fastShare float64) *core.Graph {
	t.Helper()
	g, err := core.NewBuilder("steer").
		AddIngress("in").
		AddIP("sched", 100e9, 1, 0).
		AddVertex(core.Vertex{Name: "fast", Kind: core.KindIP, Throughput: 2e9, Parallelism: 1, QueueCapacity: 64}).
		AddVertex(core.Vertex{Name: "slow", Kind: core.KindIP, Throughput: 1e9, Parallelism: 1, QueueCapacity: 64}).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "sched", Delta: 1}).
		AddEdge(core.Edge{From: "sched", To: "fast", Delta: fastShare}).
		AddEdge(core.Edge{From: "sched", To: "slow", Delta: 1 - fastShare}).
		AddEdge(core.Edge{From: "fast", To: "out", Delta: fastShare}).
		AddEdge(core.Edge{From: "slow", To: "out", Delta: 1 - fastShare}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runSteering(t *testing.T, g *core.Graph, policy map[string]RoutePolicy, flowPkts float64) Result {
	t.Helper()
	prof := traffic.Fixed("t", unit.Bandwidth(2.4e9), 1000) // 80% of joint capacity
	prof.MeanFlowPackets = flowPkts
	res, err := Run(Config{
		Graph:       g,
		Profile:     prof,
		Seed:        17,
		Duration:    0.3,
		RoutePolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// PANIC's load-aware scheduler (JSQ) must beat a badly mis-steered static
// split and roughly match the capability-proportional one — the dynamic
// counterpart of §4.6 scenario #2.
func TestJSQBeatsBadStaticSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("long statistical run")
	}
	jsq := runSteering(t, steeringGraph(t, 0.5), map[string]RoutePolicy{"sched": RouteJSQ}, 0)
	badStatic := runSteering(t, steeringGraph(t, 0.3), nil, 0) // slow unit overloaded
	goodStatic := runSteering(t, steeringGraph(t, 2.0/3), nil, 0)
	if !(jsq.MeanLatency < 0.7*badStatic.MeanLatency) {
		t.Fatalf("JSQ %v should clearly beat the mis-steered split %v",
			jsq.MeanLatency, badStatic.MeanLatency)
	}
	// The LogNIC-style capability-proportional static split is within 2×
	// of the fully dynamic scheduler.
	if !(goodStatic.MeanLatency < 2*jsq.MeanLatency) {
		t.Fatalf("capability-proportional static %v should approach JSQ %v",
			goodStatic.MeanLatency, jsq.MeanLatency)
	}
	// JSQ drops nothing at 80% load.
	if jsq.DropRate > 0.001 {
		t.Fatalf("JSQ drop rate %v", jsq.DropRate)
	}
}

// Flow-hash routing is deterministic per flow: equal flow id, equal route.
func TestFlowHashConsistency(t *testing.T) {
	// End-to-end: a flow-hashed run completes and delivers.
	g := steeringGraph(t, 0.5)
	prof := traffic.Fixed("t", unit.Bandwidth(1e9), 1000)
	prof.MeanFlowPackets = 16
	res, err := Run(Config{
		Graph:       g,
		Profile:     prof,
		Seed:        7,
		Duration:    0.05,
		RoutePolicy: map[string]RoutePolicy{"sched": RouteFlowHash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("nothing delivered under flow-hash routing")
	}
	// The routing decision is a pure function of the flow id.
	for flow := uint64(0); flow < 1000; flow++ {
		a := splitmix(flow)
		b := splitmix(flow)
		if a != b {
			t.Fatal("flow hash is not deterministic")
		}
		if a < 0 || a >= 1 {
			t.Fatalf("hash out of range: %v", a)
		}
	}
}

// Flow hashing across many flows approximates the δ split; with few large
// flows the split gets lumpy — the granularity effect that makes
// flow-level steering harder than packet-level steering.
func TestFlowHashApproximatesSplitWithManyFlows(t *testing.T) {
	g := steeringGraph(t, 0.7)
	prof := traffic.Fixed("t", unit.Bandwidth(1e9), 1000)
	prof.MeanFlowPackets = 4 // many small flows
	res, err := Run(Config{
		Graph:       g,
		Profile:     prof,
		Seed:        23,
		Duration:    0.2,
		RoutePolicy: map[string]RoutePolicy{"sched": RouteFlowHash},
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := float64(res.Vertices["fast"].Arrivals)
	slow := float64(res.Vertices["slow"].Arrivals)
	share := fast / (fast + slow)
	if math.Abs(share-0.7) > 0.06 {
		t.Fatalf("flow-hash share = %v, want ~0.7", share)
	}
}

func TestRoutePolicyString(t *testing.T) {
	names := map[RoutePolicy]string{
		RouteDelta:     "delta",
		RouteJSQ:       "jsq",
		RouteFlowHash:  "flowhash",
		RoutePolicy(9): "route(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestSplitmixUniformity(t *testing.T) {
	// Rough uniformity over 16 buckets.
	const n = 1 << 16
	buckets := make([]int, 16)
	for i := uint64(0); i < n; i++ {
		buckets[int(splitmix(i)*16)]++
	}
	for b, c := range buckets {
		if math.Abs(float64(c)-n/16) > 0.05*n/16 {
			t.Fatalf("bucket %d = %d, want ~%d", b, c, n/16)
		}
	}
}
