package sim

// This file builds the multi-tenant microservice-mesh scenario the sharded
// engine (shard.go) is benchmarked and differentially tested on. The shape
// is the one conservative parallel DES rewards: a load balancer fans whole
// flows out to per-tenant service chains that barely interact, every
// vertex pays a real computation-transfer overhead (so cross-domain edges
// carry a useful lookahead window), and the few tenant-to-tenant calls are
// sparse enough that domains spend their windows computing, not
// synchronizing.
//
// The scenario is deliberately RNG-free outside the traffic generator —
// deterministic service, flow-hash routing at every fan-out — so the
// partitioner (partition.go) is not forced to collapse it into a single
// domain, and tie-free — every tenant's throughputs, overheads and link
// bandwidths carry a small index-dependent jitter, so no two unrelated
// events share a float64 timestamp and serial and sharded runs order
// events identically.

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// Mesh scenario parameters. Stage rates and overheads are jittered per
// tenant and per stage so every event timestamp in the run is unique
// (tie-freeness is what makes serial and sharded executions comparable
// event-for-event, not just statistically).
const (
	meshStages    = 5       // service chain depth per tenant
	meshStageRate = 2e9     // base per-stage compute rate, bytes/second
	meshLinkBW    = 12.5e9  // base dedicated inter-stage link, bytes/second
	meshOverhead  = 8e-6    // base computation-transfer overhead, seconds
	meshQueueCap  = 64      // per-stage logical input queue
	meshFlowLen   = 8       // mean packets per flow (flow-hash granularity)
	meshCrossFrac = 0.1     // flow fraction a calling tenant sends across
)

// meshSizes is the request-size mix. Prime sizes matter: with deterministic
// service, a single fixed size makes busy-period completion times constant
// offsets from earlier arrivals, and two unrelated packets can then land on
// the same float64 timestamp (the serial engine breaks such ties by
// schedule order, the sharded engine by packet id — a digest divergence).
// Distinct prime sizes give every packet its own service and transfer
// times, so timestamps collide only by 2^-52 accident, not by structure.
var meshSizes = []unit.Size{941, 1021, 1103, 1187}

// meshJitter breaks throughput/overhead/bandwidth symmetry between tenants
// and stages. The offsets are small enough not to change the scenario's
// capacity story and large enough that equal-size packets on different
// tenants never collide on a timestamp.
func meshJitter(tenant, stage int) float64 {
	return 1 + 0.002*float64(tenant) + 0.0005*float64(stage)
}

// MeshConfig builds the tenants-way microservice-mesh scenario: one
// flow-hash load balancer, a meshStages-deep dedicated service chain per
// tenant, and a sparse tenant-to-tenant call edge from every eighth tenant
// to the tenant four slots later. load is the offered fraction of
// aggregate stage capacity (values above 1 saturate the mesh); duration is
// the simulated time. The returned config runs serially as-is; set
// Shards to parallelize it.
func MeshConfig(tenants int, load float64, seed int64, duration float64) (Config, error) {
	if tenants < 1 {
		return Config{}, fmt.Errorf("sim: mesh needs at least one tenant, got %d", tenants)
	}
	if load <= 0 {
		return Config{}, fmt.Errorf("sim: mesh load must be positive, got %v", load)
	}
	b := core.NewBuilder(fmt.Sprintf("mesh-%dt", tenants)).
		AddVertex(core.Vertex{Name: "lb", Kind: core.KindIngress, Overhead: meshOverhead})
	policy := map[string]RoutePolicy{"lb": RouteFlowHash}
	share := 1 / float64(tenants)

	stage := func(t, s int) string { return fmt.Sprintf("t%02d.s%d", t, s) }
	egress := func(t int) string { return fmt.Sprintf("t%02d.out", t) }
	// calls reports whether tenant t makes a cross-tenant call (and so
	// splits its chain after stage 1), and callee is its target.
	calls := func(t int) bool { return t%8 == 0 && t+4 < tenants }
	callee := func(t int) int { return t + 4 }

	for t := 0; t < tenants; t++ {
		for s := 0; s < meshStages; s++ {
			b.AddVertex(core.Vertex{
				Name:          stage(t, s),
				Kind:          core.KindIP,
				Throughput:    meshStageRate * meshJitter(t, s),
				Parallelism:   2,
				QueueCapacity: meshQueueCap,
				Overhead:      meshOverhead * meshJitter(t, s),
			})
		}
		b.AddVertex(core.Vertex{Name: egress(t), Kind: core.KindEgress})
		b.AddEdge(core.Edge{From: "lb", To: stage(t, 0), Delta: share,
			Bandwidth: meshLinkBW * meshJitter(t, 0)})

		// The chain. A calling tenant diverts meshCrossFrac of its flows
		// at stage 1; a called tenant's stage 2 receives its caller's
		// diverted flows, so edges downstream of the merge carry them too.
		isCallee := t >= 4 && calls(t-4)
		for s := 0; s < meshStages; s++ {
			d := share
			if calls(t) && s >= 1 {
				d -= share * meshCrossFrac // diverted at stage 1
			}
			if isCallee && s >= 2 {
				d += share * meshCrossFrac // caller's flows merged at stage 2
			}
			to := egress(t)
			if s+1 < meshStages {
				to = stage(t, s+1)
			}
			b.AddEdge(core.Edge{From: stage(t, s), To: to, Delta: d,
				Bandwidth: meshLinkBW * meshJitter(t, s+1)})
		}

		if calls(t) {
			b.AddEdge(core.Edge{
				From: stage(t, 1), To: stage(callee(t), 2),
				Delta:     share * meshCrossFrac,
				Bandwidth: meshLinkBW * meshJitter(t, meshStages+1),
			})
			policy[stage(t, 1)] = RouteFlowHash
		}
	}
	g, err := b.Build()
	if err != nil {
		return Config{}, err
	}
	prof, err := traffic.EqualSplit("mesh-rpc",
		unit.Bandwidth(load*float64(tenants)*meshStageRate), meshSizes...)
	if err != nil {
		return Config{}, err
	}
	prof.MeanFlowPackets = meshFlowLen
	return Config{
		Graph:                g,
		Hardware:             core.Hardware{}, // dedicated links only
		Profile:              prof,
		Seed:                 seed,
		Duration:             duration,
		DeterministicService: true,
		RoutePolicy:          policy,
	}, nil
}
