package sim

import (
	"reflect"
	"testing"

	"lognic/internal/obs"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// TestProgressHookObserves verifies the Progress hook fires on the
// context-poll cadence with monotone snapshots, and — the determinism
// contract every observability hook shares — that wiring it changes
// nothing about the run's Result.
func TestProgressHookObserves(t *testing.T) {
	g := pipeline(t, 1e9, 2, 32)
	base := Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     7,
		Duration: 0.02,
	}
	bare, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []Progress
	observed := base
	observed.Progress = func(p Progress) { snaps = append(snaps, p) }
	got, err := Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, got) {
		t.Fatalf("Progress hook perturbed the run:\nbare: %+v\nobs:  %+v", bare, got)
	}
	if len(snaps) == 0 {
		t.Fatal("progress hook never fired")
	}
	var prev Progress
	for i, p := range snaps {
		if i > 0 && (p.Events < prev.Events || p.SimTime < prev.SimTime || p.Checkpoints < prev.Checkpoints) {
			t.Fatalf("progress not monotone at %d: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	if prev.Events == 0 {
		t.Fatalf("final progress shows no events: %+v", prev)
	}
}

// TestProgressReportsCheckpoints checks the Checkpoints field counts the
// snapshots the run actually took.
func TestProgressReportsCheckpoints(t *testing.T) {
	g := pipeline(t, 1e9, 2, 32)
	taken := 0
	var last Progress
	cfg := Config{
		Graph:           g,
		Profile:         traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:            7,
		Duration:        0.02,
		CheckpointEvery: 2048,
		CheckpointSink:  func(*Checkpoint) error { taken++; return nil },
		Progress:        func(p Progress) { last = p },
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if taken == 0 {
		t.Fatal("run took no checkpoints; lower CheckpointEvery")
	}
	// The final progress poll may trail the last checkpoint by less than
	// one poll interval, so allow one of slack.
	if last.Checkpoints < uint64(taken-1) {
		t.Fatalf("progress saw %d checkpoints, run took %d", last.Checkpoints, taken)
	}
}

// TestSpansCarryTraceIdentity checks that a run launched with trace
// identity stamps it on every emitted span.
func TestSpansCarryTraceIdentity(t *testing.T) {
	g := pipeline(t, 1e9, 2, 32)
	tracer := obs.NewTracer(1024)
	cfg := Config{
		Graph:        g,
		Profile:      traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:         7,
		Duration:     0.005,
		Spans:        tracer,
		TraceID:      "0af7651916cd43dd8448eb211c80319c",
		ParentSpanID: "b7ad6b7169203331",
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	for _, s := range spans {
		if s.TraceID != cfg.TraceID || s.ParentID != cfg.ParentSpanID {
			t.Fatalf("span %q missing trace identity: %+v", s.Name, s)
		}
	}
}
