package sim_test

// Mid-run cancellation (ISSUE 4 satellite): the engine polls the context
// every ctxCheckInterval events. Cancelling from inside a trace hook —
// i.e. mid-dispatch, the worst case — must surface a typed error that
// wraps context.Canceled, and the simulator must keep the fault activity
// it had already applied, so a harness can attribute the aborted run.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"lognic/internal/sim"
)

func TestCancelMidRunKeepsPartialFaultStats(t *testing.T) {
	d := goldenDevices(t)[0]
	cfg := goldenScenarios(t, d, 1)["faults-retry"]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel the moment the first fault injects (the EngineDown at 25% of
	// the horizon). The VertexStall at 80% must then never fire: the
	// context poll lands within ctxCheckInterval events, a tiny fraction
	// of the remaining run.
	cfg.Trace = func(ev sim.TraceEvent) {
		if ev.Kind == sim.TraceFaultInject {
			cancel()
		}
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunContext(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("error lacks abort context for logs: %v", err)
	}
	fs := s.FaultStats()
	if fs.EngineDownEvents == 0 {
		t.Fatal("partial FaultStats lost the EngineDown that triggered the cancel")
	}
	if fs.VertexStallEvents != 0 {
		t.Fatalf("run kept going long after cancellation: %+v", fs)
	}
	if fs.EngineDownTime == nil || fs.EngineDownTime["ip"] == 0 {
		t.Fatalf("EngineDownTime not accounted up to the abort: %+v", fs.EngineDownTime)
	}
}
