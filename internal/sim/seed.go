package sim

import "hash/fnv"

// This file is the seed-stream derivation the sweep engine in
// internal/experiments builds on. Every independent RNG consumer — the
// simulator core, the traffic generator, each replication of each figure
// point — gets its seed by *hashing* the base seed together with its
// stream coordinates, never by seed arithmetic. Arithmetic derivations
// (seed+1, seed*k) collide across nearby base seeds: run N's derived
// stream equals run N+1's base stream, which silently correlates
// replications that a sweep treats as independent.

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix whose
// outputs are decorrelated even for sequential inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamTag hashes a textual stream name (a figure id, a subsystem name)
// into a coordinate for SeedStream. FNV-1a keeps distinct names on
// distinct coordinates without any registry of constants.
func StreamTag(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// SeedStream derives an independent RNG seed from a base seed and a
// sequence of stream coordinates (e.g. figure tag, point index,
// replication index) by chaining SplitMix64 mixes. Equal inputs give
// equal seeds — the derivation is pure — and any change to the base seed
// or any coordinate decorrelates the whole stream, so consecutive base
// seeds or adjacent replication indices never collide the way additive
// derivations do.
func SeedStream(base int64, coords ...uint64) int64 {
	h := mix64(uint64(base) ^ 0x6c62272e07bb0142)
	for _, c := range coords {
		h = mix64(h ^ c)
	}
	return int64(h)
}

// Stream tags of the simulator's own RNG consumers: the event engine's
// draws (routing, service times) and the traffic generator's arrival
// process run on separate hashed streams of Config.Seed.
var (
	engineStreamTag  = StreamTag("sim.engine")
	trafficStreamTag = StreamTag("sim.traffic")
)
