package sim_test

// Golden-digest regression suite for the event engine (ISSUE 4 satellite).
// Each scenario below runs the simulator on a graph parameterized by a
// real device catalog (LiquidIO-II CN2360 and BlueField-2) and digests the
// full Result plus the complete packet trace stream. The digests committed
// in testdata/golden_digests.json were recorded from the seed
// container/heap engine; the specialized 4-ary value-heap engine must
// reproduce every one bit-for-bit at every seed — the byte-identical
// contract of docs/SIM.md. Refresh intentionally changed goldens with:
//
//	go test ./internal/sim -run TestGoldenDigests -update
//
// The scenarios deliberately cover every scheduling path: shared and
// per-edge WRR queues, all three routing policies, bursty and
// deterministic arrivals, flow grouping, dedicated links, overheads,
// retries, and the full fault-injection event set.

import (
	"testing"

	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/sim"
	"lognic/internal/simtest"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// goldenDevice carries the catalog-derived parameters the scenario graphs
// are built from.
type goldenDevice struct {
	name      string
	hw        core.Hardware
	lineRate  float64 // wire rate, bytes/second
	frontRate float64 // front (core-complex) vertex compute rate, B/s
	accelRate float64 // accelerator vertex compute rate, B/s
	engines   int     // front vertex parallelism
}

const goldenPkt = 1500.0

func goldenDevices(t *testing.T) []goldenDevice {
	t.Helper()
	lio := devices.LiquidIO2CN2360()
	md5, err := lio.Accel("md5")
	if err != nil {
		t.Fatal(err)
	}
	bf := devices.BlueField2DPU()
	crypto, err := bf.Engine("crypto")
	if err != nil {
		t.Fatal(err)
	}
	return []goldenDevice{
		{
			name:      "liquidio2",
			hw:        lio.Hardware(),
			lineRate:  lio.LineRate.BytesPerSecond(),
			frontRate: lio.CoreThroughput(md5, goldenPkt, lio.Cores),
			accelRate: md5.PacketRate * goldenPkt,
			engines:   lio.Cores,
		},
		{
			name:      "bluefield2",
			hw:        bf.Hardware(),
			lineRate:  bf.LineRate.BytesPerSecond(),
			frontRate: float64(bf.Cores) * goldenPkt / 0.8e-6,
			accelRate: 4 * goldenPkt / crypto.ServiceTime(goldenPkt),
			engines:   bf.Cores,
		},
	}
}

// fanoutGraph is in → front → {a, b} → sink → out: a probabilistic split
// (δ 0.6/0.4) over shared-interface and memory media, a dedicated
// characterized link on b→sink, a computation-transfer overhead at front,
// and a two-input merge at sink (the WRR scenario's scheduler input).
func fanoutGraph(t *testing.T, d goldenDevice) *core.Graph {
	t.Helper()
	g, err := core.NewBuilder("golden-fanout-" + d.name).
		AddIngress("in").
		AddVertex(core.Vertex{
			Name: "front", Kind: core.KindIP, Throughput: d.frontRate,
			Parallelism: d.engines, QueueCapacity: 64, Overhead: 1e-6,
		}).
		AddVertex(core.Vertex{
			Name: "a", Kind: core.KindIP, Throughput: 0.7 * d.accelRate,
			Parallelism: 4, QueueCapacity: 32,
		}).
		AddVertex(core.Vertex{
			Name: "b", Kind: core.KindIP, Throughput: 0.5 * d.accelRate,
			Parallelism: 2, QueueCapacity: 32,
		}).
		AddVertex(core.Vertex{
			Name: "sink", Kind: core.KindIP, Throughput: 2 * d.frontRate,
			Parallelism: 2, QueueCapacity: 32,
		}).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "front", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "front", To: "a", Delta: 0.6, Alpha: 0.3}).
		AddEdge(core.Edge{From: "front", To: "b", Delta: 0.4, Beta: 0.4, Bandwidth: 0.25 * d.lineRate}).
		AddEdge(core.Edge{From: "a", To: "sink", Delta: 0.6, Beta: 0.2}).
		AddEdge(core.Edge{From: "b", To: "sink", Delta: 0.4}).
		AddEdge(core.Edge{From: "sink", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// chainGraph is in → ip → out with a finite queue, the fault/retry and
// deterministic scenarios' shape.
func chainGraph(t *testing.T, d goldenDevice, engines, queueCap int) *core.Graph {
	t.Helper()
	g, err := core.NewBuilder("golden-chain-"+d.name).
		AddIngress("in").
		AddIP("ip", d.accelRate, engines, queueCap).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// goldenDuration sizes the run so roughly targetBytes of traffic are
// offered regardless of the device's wire speed, keeping per-scenario
// event counts comparable across catalogs.
func goldenDuration(offeredBW float64) float64 {
	const targetBytes = 6e6
	return targetBytes / offeredBW
}

// goldenScenarios returns the named configs for one device at one seed.
func goldenScenarios(t *testing.T, d goldenDevice, seed int64) map[string]sim.Config {
	t.Helper()
	offered := 0.6 * d.lineRate
	dur := goldenDuration(offered)
	mixed, err := traffic.EqualSplit("mixed", unit.Bandwidth(0.5*d.lineRate),
		unit.Size(512), unit.Size(1500), unit.Size(4096))
	if err != nil {
		t.Fatal(err)
	}
	chainOffered := 0.8 * d.accelRate
	chainDur := goldenDuration(chainOffered)
	return map[string]sim.Config{
		"delta": {
			Graph:    fanoutGraph(t, d),
			Hardware: d.hw,
			Profile:  traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt),
			Seed:     seed,
			Duration: dur,
		},
		"wrr": {
			Graph:         fanoutGraph(t, d),
			Hardware:      d.hw,
			Profile:       mixed,
			Seed:          seed,
			Duration:      goldenDuration(0.5 * d.lineRate),
			PerEdgeQueues: true,
			WRRWeights:    map[string]map[string]int{"sink": {"a": 2, "b": 1}},
		},
		"jsq": {
			Graph:       fanoutGraph(t, d),
			Hardware:    d.hw,
			Profile:     traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt),
			Seed:        seed,
			Duration:    dur,
			RoutePolicy: map[string]sim.RoutePolicy{"front": sim.RouteJSQ},
		},
		"flowhash-bursty": {
			Graph:    fanoutGraph(t, d),
			Hardware: d.hw,
			Profile: traffic.Profile{
				Name: "bursty", Rate: unit.Bandwidth(offered),
				Sizes:           traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt).Sizes,
				BurstDegree:     4,
				MeanFlowPackets: 8,
			},
			Seed:        seed,
			Duration:    dur,
			RoutePolicy: map[string]sim.RoutePolicy{"front": sim.RouteFlowHash},
		},
		"faults-retry": {
			Graph:    chainGraph(t, d, 4, 8),
			Hardware: d.hw,
			Profile:  traffic.Fixed("fixed", unit.Bandwidth(chainOffered), goldenPkt),
			Seed:     seed,
			Duration: chainDur,
			Faults: sim.FaultSchedule{
				{Kind: sim.EngineDown, Time: 0.25 * chainDur, Vertex: "ip", Count: 3},
				{Kind: sim.EngineUp, Time: 0.55 * chainDur, Vertex: "ip", Count: 3},
				{Kind: sim.LinkDegrade, Time: 0.3 * chainDur, Link: "interface", Factor: 0.5, Duration: 0.2 * chainDur},
				{Kind: sim.VertexStall, Time: 0.8 * chainDur, Vertex: "ip", Duration: 0.05 * chainDur},
			},
			Retry: map[string]sim.RetryPolicy{"ip": {MaxRetries: 3, Backoff: 2e-6}},
		},
		"deterministic": {
			Graph:    chainGraph(t, d, 4, 32),
			Hardware: d.hw,
			Profile: traffic.Profile{
				Name: "cbr", Rate: unit.Bandwidth(0.7 * d.accelRate),
				Sizes:   traffic.Fixed("cbr", unit.Bandwidth(0.7*d.accelRate), goldenPkt).Sizes,
				Arrival: traffic.ArrivalDeterministic,
			},
			Seed:                 seed,
			Duration:             goldenDuration(0.7 * d.accelRate),
			DeterministicService: true,
		},
	}
}

// TestGoldenDigests pins the engine's exact behavior: full Result and
// trace-stream digests for every (device, scenario, seed) against the
// committed goldens recorded from the seed engine.
func TestGoldenDigests(t *testing.T) {
	g := simtest.LoadGolden(t, "testdata/golden_digests.json")
	defer g.Save(t)
	for _, d := range goldenDevices(t) {
		for _, seed := range []int64{1, 2, 3} {
			for name, cfg := range goldenScenarios(t, d, seed) {
				th := simtest.NewTraceHasher()
				cfg.Trace = th.Hook
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s/seed%d: %v", d.name, name, seed, err)
				}
				if res.DeliveredPackets == 0 {
					t.Fatalf("%s/%s/seed%d: delivered no packets — scenario carries no signal", d.name, name, seed)
				}
				if th.Events() == 0 {
					t.Fatalf("%s/%s/seed%d: empty trace stream", d.name, name, seed)
				}
				g.Check(t, simtest.Key(d.name, name, "seed", seed, "result"), simtest.ResultDigest(res))
				g.Check(t, simtest.Key(d.name, name, "seed", seed, "trace"), th.Sum())
			}
		}
	}
}

// TestGoldenRunIsRerunnable guards the digest harness itself: two runs of
// the same config must digest identically (the simulator is deterministic
// for equal seeds), otherwise golden mismatches would be noise.
func TestGoldenRunIsRerunnable(t *testing.T) {
	d := goldenDevices(t)[0]
	cfg := goldenScenarios(t, d, 1)["delta"]
	r1, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if simtest.ResultDigest(r1) != simtest.ResultDigest(r2) {
		t.Fatal("equal seeds digested differently — harness or simulator is nondeterministic")
	}
}
