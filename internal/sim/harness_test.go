package sim

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func harnessConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Graph:    faultChain(t, 2, 4, 1e9),
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(0.8e9), 1000),
		Seed:     1,
		Duration: 0.05,
	}
}

// A cancelled context aborts the run with context.Canceled.
func TestRunContextCancelled(t *testing.T) {
	s, err := New(harnessConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// An expired deadline aborts the run with context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	s, err := New(harnessConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// Exceeding MaxEvents returns ErrBudgetExceeded instead of running on.
func TestMaxEventsBudget(t *testing.T) {
	cfg := harnessConfig(t)
	cfg.MaxEvents = 200 // a 0.05s run at ~1e6 pkt/s needs far more
	if _, err := Run(cfg); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// A generous budget does not interfere.
	cfg.MaxEvents = 100_000_000
	if _, err := Run(cfg); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

// A zero-backoff retry policy against a permanently full queue loops the
// event heap at one timestamp forever; the progress watchdog must convert
// that runaway config into ErrStalled instead of hanging.
func TestWatchdogCatchesStall(t *testing.T) {
	cfg := Config{
		Graph:    faultChain(t, 1, 1, 1e6), // 1ms/packet, queue of 1
		Hardware: core.Hardware{InterfaceBW: 50e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(1e9), 1000), // massive overload
		Seed:     2,
		Duration: 1,
		Retry:    map[string]RetryPolicy{"ip": {MaxRetries: 1 << 30, Backoff: 0}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("err = %v, want ErrStalled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runaway config hung instead of aborting")
	}
}

// MaxEvents also bounds the same runaway config, whichever limit is hit
// first wins.
func TestBudgetBoundsRunaway(t *testing.T) {
	cfg := Config{
		Graph:     faultChain(t, 1, 1, 1e6),
		Hardware:  core.Hardware{InterfaceBW: 50e9},
		Profile:   traffic.Fixed("t", unit.Bandwidth(1e9), 1000),
		Seed:      2,
		Duration:  1,
		MaxEvents: 5000,
		Retry:     map[string]RetryPolicy{"ip": {MaxRetries: 1 << 30, Backoff: 0}},
	}
	_, err := Run(cfg)
	if !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want a typed abort", err)
	}
}

// Config validation rejects the numeric pathologies sim.New must not
// accept (satellite: mirror core/types.go's finiteness checks).
func TestConfigValidation(t *testing.T) {
	base := harnessConfig(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative duration", func(c *Config) { c.Duration = -1 }},
		{"nan duration", func(c *Config) { c.Duration = math.NaN() }},
		{"inf duration", func(c *Config) { c.Duration = math.Inf(1) }},
		{"negative warmup", func(c *Config) { c.Warmup = -0.01 }},
		{"warmup at duration", func(c *Config) { c.Warmup = c.Duration }},
		{"warmup past duration", func(c *Config) { c.Warmup = 2 * c.Duration }},
		{"nan warmup", func(c *Config) { c.Warmup = math.NaN() }},
		{"zero WRR weight", func(c *Config) {
			c.WRRWeights = map[string]map[string]int{"ip": {"in": 0}}
		}},
		{"negative WRR weight", func(c *Config) {
			c.WRRWeights = map[string]map[string]int{"ip": {"in": -3}}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
	// The defaults still work.
	if _, err := New(base); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}
