package sim

import (
	"math"
	"testing"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func TestSharedQueueFIFO(t *testing.T) {
	q := newSharedQueue(2)
	a, b, c := queued{enqueued: 1}, queued{enqueued: 2}, queued{enqueued: 3}
	if !q.push("x", a) || !q.push("y", b) {
		t.Fatal("pushes within capacity should succeed")
	}
	if q.push("z", c) {
		t.Fatal("push beyond capacity should fail")
	}
	if q.length() != 2 {
		t.Fatalf("length = %d", q.length())
	}
	if got, ok := q.pop(); !ok || got != a {
		t.Fatal("FIFO order violated")
	}
	if got, ok := q.pop(); !ok || got != b {
		t.Fatal("FIFO order violated")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty pop should report false")
	}
}

func TestSharedQueueUnbounded(t *testing.T) {
	q := newSharedQueue(0)
	for i := 0; i < 1000; i++ {
		if !q.push("", queued{enqueued: float64(i)}) {
			t.Fatal("unbounded queue rejected a push")
		}
	}
	if q.length() != 1000 {
		t.Fatalf("length = %d", q.length())
	}
	// The ring grew past its preallocation; FIFO order must survive the
	// copies.
	for i := 0; i < 1000; i++ {
		got, ok := q.pop()
		if !ok || got.enqueued != float64(i) {
			t.Fatalf("pop %d = %+v, ok=%v", i, got, ok)
		}
	}
}

func TestWRRRoundRobinFairness(t *testing.T) {
	q := newWRRQueues([]string{"a", "b"}, 0, nil)
	for i := 0; i < 4; i++ {
		q.push("a", queued{enqueued: float64(i)})
		q.push("b", queued{enqueued: float64(i) + 100})
	}
	// Equal weights: strict alternation.
	var order []float64
	for q.length() > 0 {
		got, ok := q.pop()
		if !ok {
			t.Fatal("pop reported empty with length > 0")
		}
		order = append(order, got.enqueued)
	}
	if len(order) != 8 {
		t.Fatalf("popped %d", len(order))
	}
	seenA, seenB := 0, 0
	for i, v := range order {
		fromA := v < 100
		if fromA {
			seenA++
		} else {
			seenB++
		}
		if i%2 == 0 && !fromA && seenA < 4 {
			// Pointer starts at a; even pops come from a until it drains.
			t.Fatalf("pop %d came from b: %v", i, order)
		}
	}
	if seenA != 4 || seenB != 4 {
		t.Fatalf("unfair: a=%d b=%d", seenA, seenB)
	}
}

func TestWRRWeights(t *testing.T) {
	q := newWRRQueues([]string{"a", "b"}, 0, map[string]int{"a": 3, "b": 1})
	for i := 0; i < 6; i++ {
		q.push("a", queued{enqueued: 1})
	}
	for i := 0; i < 2; i++ {
		q.push("b", queued{enqueued: 2})
	}
	// First four pops: 3 from a, then 1 from b.
	var first4 []float64
	for i := 0; i < 4; i++ {
		got, ok := q.pop()
		if !ok {
			t.Fatal("pop reported empty")
		}
		first4 = append(first4, got.enqueued)
	}
	want := []float64{1, 1, 1, 2}
	for i := range want {
		if first4[i] != want[i] {
			t.Fatalf("WRR pattern = %v, want %v", first4, want)
		}
	}
}

func TestWRRPerQueueCapacity(t *testing.T) {
	q := newWRRQueues([]string{"a", "b"}, 2, nil)
	if !q.push("a", queued{}) || !q.push("a", queued{}) {
		t.Fatal("capacity pushes should succeed")
	}
	if q.push("a", queued{}) {
		t.Fatal("per-queue capacity exceeded")
	}
	// The other queue still has room.
	if !q.push("b", queued{}) {
		t.Fatal("queue b should accept")
	}
	// Unknown upstream lands in the first queue (full).
	if q.push("ghost", queued{}) {
		t.Fatal("unknown upstream should map to the (full) first queue")
	}
}

func TestWRRSkipsEmptyQueues(t *testing.T) {
	q := newWRRQueues([]string{"a", "b", "c"}, 0, nil)
	q.push("c", queued{enqueued: 3})
	if got, ok := q.pop(); !ok || got.enqueued != 3 {
		t.Fatalf("pop = %+v, ok=%v", got, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty pop should report false")
	}
}

// The paper's §3.6 modeling trick: per-edge queues drained round-robin
// behave like one concatenated virtual shared queue (for symmetric load,
// same mean wait). This validates the abstraction the latency model is
// built on.
func TestVirtualSharedQueueAbstraction(t *testing.T) {
	if testing.Short() {
		t.Skip("long statistical run")
	}
	g, err := core.NewBuilder("vsq").
		AddIngress("in").
		AddIP("fan1", 100e9, 1, 0).
		AddIP("fan2", 100e9, 1, 0).
		AddIP("join", 1e9, 1, 64).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "fan1", Delta: 0.5}).
		AddEdge(core.Edge{From: "in", To: "fan2", Delta: 0.5}).
		AddEdge(core.Edge{From: "fan1", To: "join", Delta: 0.5}).
		AddEdge(core.Edge{From: "fan2", To: "join", Delta: 0.5}).
		AddEdge(core.Edge{From: "join", To: "out", Delta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(perEdge bool) Result {
		res, err := Run(Config{
			Graph:         g,
			Profile:       traffic.Fixed("t", unit.Bandwidth(0.75e9), 1000),
			Seed:          11,
			Duration:      1.0,
			PerEdgeQueues: perEdge,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(false)
	wrr := run(true)
	if math.Abs(shared.MeanLatency-wrr.MeanLatency) > 0.1*shared.MeanLatency {
		t.Fatalf("virtual-shared-queue abstraction broken: shared %v vs WRR %v",
			shared.MeanLatency, wrr.MeanLatency)
	}
	if math.Abs(shared.Throughput-wrr.Throughput) > 0.05*shared.Throughput {
		t.Fatalf("throughput diverged: %v vs %v", shared.Throughput, wrr.Throughput)
	}
}

func TestTraceEvents(t *testing.T) {
	g, err := core.NewBuilder("trace").
		AddIngress("in").
		AddIP("ip", 1e9, 1, 4).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[TraceKind]int{}
	prevTime := 0.0
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(2e9), 1000), // 2x overload
		Seed:     5,
		Duration: 0.02,
		Trace: func(ev TraceEvent) {
			counts[ev.Kind]++
			if ev.Time < prevTime {
				t.Fatal("trace time went backwards")
			}
			prevTime = ev.Time
			if ev.Vertex == "" {
				t.Fatal("trace missing vertex")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[TraceArrive] == 0 || counts[TraceServiceStart] == 0 ||
		counts[TraceDepart] == 0 || counts[TraceDeliver] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	if counts[TraceDrop] == 0 {
		t.Fatal("expected drops at 2x overload")
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("nothing delivered")
	}
	// Trace counts cover the full run (warmup included), so deliveries in
	// the trace are at least the measured ones.
	if counts[TraceDeliver] < res.DeliveredPackets {
		t.Fatalf("trace deliveries %d < measured %d", counts[TraceDeliver], res.DeliveredPackets)
	}
	for kind, want := range map[TraceKind]string{
		TraceArrive: "arrive", TraceServiceStart: "service-start",
		TraceDepart: "depart", TraceDrop: "drop", TraceDeliver: "deliver",
		TraceKind(42): "trace(42)",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), kind.String(), want)
		}
	}
}

func TestWRRWeightsEndToEnd(t *testing.T) {
	// A join vertex with weighted inputs still serves everything; the
	// weights shape ordering, not admission.
	g, err := core.NewBuilder("wrr").
		AddIngress("in").
		AddIP("a", 100e9, 1, 0).
		AddIP("b", 100e9, 1, 0).
		AddIP("join", 1e9, 1, 64).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "a", Delta: 0.5}).
		AddEdge(core.Edge{From: "in", To: "b", Delta: 0.5}).
		AddEdge(core.Edge{From: "a", To: "join", Delta: 0.5}).
		AddEdge(core.Edge{From: "b", To: "join", Delta: 0.5}).
		AddEdge(core.Edge{From: "join", To: "out", Delta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:         g,
		Profile:       traffic.Fixed("t", unit.Bandwidth(0.5e9), 1000),
		Seed:          3,
		Duration:      0.1,
		PerEdgeQueues: true,
		WRRWeights:    map[string]map[string]int{"join": {"a": 4, "b": 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DropRate != 0 {
		t.Fatalf("drops at 50%% load: %v", res.DropRate)
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("nothing delivered")
	}
}
