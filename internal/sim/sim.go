// Package sim is a packet-level discrete-event simulator of a SmartNIC
// executing a LogNIC execution graph. It is this repository's substitute
// for the physical SmartNICs the paper measures (LiquidIO-II, BlueField-2,
// Stingray, PANIC): every "Measured" series in the evaluation is produced
// by this simulator, and the analytical model in internal/core is validated
// against it.
//
// The simulator realizes the same physical structure the model abstracts:
// IP blocks with a finite logical input queue and D parallel engines,
// shared interface/memory bandwidth modeled as FIFO transmission resources,
// per-edge characterized links, computation-transfer overheads, and
// ingress/egress engines. Service times default to exponential
// (matching the paper's M/M/1/N assumption) around the mean the execution
// graph implies, and can be overridden per vertex — internal/nvme uses that
// hook to model an SSD with IO-depth-dependent behavior and background GC.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/traffic"
)

// Typed run-harness errors. RunContext returns these (wrapped with run
// detail) instead of hanging on pathological configs.
var (
	// ErrBudgetExceeded reports that the run processed more events than
	// Config.MaxEvents allows.
	ErrBudgetExceeded = errors.New("sim: event budget exceeded")
	// ErrStalled reports that the progress watchdog saw the simulation
	// clock stop advancing — an event storm at one timestamp, such as a
	// zero-backoff retry loop against a permanently full queue.
	ErrStalled = errors.New("sim: simulation clock stalled")
)

// ServiceTimer computes the service time (seconds) for one request at one
// vertex. size is the packet/request size in bytes; outstanding is the
// number of requests currently queued or in service at the vertex before
// this one starts (an IO-depth proxy for opaque IPs like SSDs).
type ServiceTimer func(size float64, outstanding int, rng *rand.Rand) float64

// Config describes one simulation run.
type Config struct {
	// Graph is the execution graph to run.
	Graph *core.Graph
	// Hardware supplies the shared interface/memory bandwidths.
	Hardware core.Hardware
	// Profile is the offered traffic.
	Profile traffic.Profile
	// Seed drives all randomness; equal seeds give equal runs.
	Seed int64
	// Duration is the simulated time to run (seconds). Required.
	Duration float64
	// Warmup is the initial simulated time excluded from statistics
	// (default 10% of Duration).
	Warmup float64
	// DeterministicService uses the mean service time instead of an
	// exponential draw, for ablation runs.
	DeterministicService bool
	// ServiceTime overrides the service-time process of named vertices.
	ServiceTime map[string]ServiceTimer
	// PerEdgeQueues switches every IP from the model's virtual shared
	// queue to the hardware organization of Figure 2(b): one FIFO per
	// input edge (each with QueueCapacity entries) drained by a weighted
	// round-robin scheduler. Weights come from WRRWeights (default 1).
	PerEdgeQueues bool
	// WRRWeights sets per-vertex scheduler weights: vertex name → map of
	// upstream vertex name → weight. Only used with PerEdgeQueues.
	WRRWeights map[string]map[string]int
	// Trace, when set, receives every packet lifecycle event. Tracing is
	// for debugging and tests; it observes, never alters, the run.
	Trace func(TraceEvent)
	// Spans, when set, receives hierarchical packet spans (one per vertex
	// visit, with queue-wait/service/link-transfer children) into a
	// bounded ring buffer, exportable as a Chrome trace_event file. Nil
	// disables span tracing at the cost of one nil check per event.
	Spans *obs.Tracer
	// Metrics, when set, is the registry this run reports counters,
	// utilization gauges and the latency histogram into. Unlike Result's
	// measurement-window statistics, metric counters cover the whole run
	// including warmup. Concurrent runs may share one registry; series
	// aggregate.
	Metrics *obs.Registry
	// RoutePolicy overrides how named vertices pick among their outgoing
	// edges. The default (RouteDelta) draws per packet from the δ
	// fractions — the stochastic split the analytical model assumes.
	RoutePolicy map[string]RoutePolicy
	// Faults schedules timed hardware degradations (engine loss, link
	// degradation, vertex stalls) applied as first-class events during
	// the run. See FaultSchedule.
	Faults FaultSchedule
	// Retry sets per-vertex retry-on-drop policies, modelling a host
	// re-issuing rejected requests with bounded exponential backoff.
	Retry map[string]RetryPolicy
	// MaxEvents bounds the number of events the run may process; zero
	// means unbounded. Exceeding it aborts with ErrBudgetExceeded.
	MaxEvents uint64
	// CheckpointEvery, when positive, snapshots the run every that many
	// processed events and hands the snapshot to CheckpointSink. A
	// snapshot taken between events captures the complete run state —
	// event heap, in-flight packets, queue contents, RNG stream positions,
	// windowed statistics — so Resume can continue the run byte-identical
	// to one that was never interrupted (see checkpoint.go).
	CheckpointEvery uint64
	// CheckpointSink receives periodic snapshots when CheckpointEvery is
	// set. A non-nil error aborts the run with that error; sinks that
	// persist on a best-effort basis (degraded mode) should swallow their
	// own write failures and return nil.
	CheckpointSink func(*Checkpoint) error
	// Progress, when set, receives in-run progress snapshots on the
	// context-poll cadence (every ctxCheckInterval events). Like Trace and
	// Spans it observes without perturbing the run: it consumes no
	// simulator randomness, and disabled it costs one nil check per poll,
	// not per event. lognic-serve feeds these to the live job-event
	// stream.
	Progress ProgressFunc
	// TraceID and ParentSpanID, when set, stamp every span this run emits
	// with distributed-trace identity (W3C Trace Context; see
	// internal/obs/traceparent.go), parenting the simulation under the
	// serving request or job attempt that launched it.
	TraceID      string
	ParentSpanID string
	// Shards, when above 1, partitions the execution graph into vertex
	// domains and runs one event loop per domain with conservative
	// lookahead synchronization on cross-domain edges (see shard.go and
	// docs/SIM.md). 0 and 1 keep the serial engine, as does any graph
	// whose correctness constraints collapse the partition to one domain.
	// Sharded runs cannot checkpoint: combining Shards > 1 with
	// CheckpointEvery fails with ErrShardedCheckpoint.
	Shards int
}

// ProgressFunc observes in-run progress.
type ProgressFunc func(Progress)

// Progress is one in-run snapshot handed to Config.Progress.
type Progress struct {
	// Events is the number of discrete events processed so far.
	Events uint64
	// SimTime is the current simulation clock (seconds).
	SimTime float64
	// Checkpoints counts snapshots taken by this run (resumed runs
	// restart the count at zero for their own attempt).
	Checkpoints uint64
}

// RoutePolicy selects a vertex's fan-out discipline.
type RoutePolicy int

// Routing policies.
const (
	// RouteDelta draws the next edge per packet with probability δ/Σδ —
	// the model's assumption.
	RouteDelta RoutePolicy = iota
	// RouteJSQ joins the shortest downstream queue (waiting + in
	// service), breaking ties by δ order — PANIC's load-aware central
	// scheduler.
	RouteJSQ
	// RouteFlowHash hashes the packet's flow id over the δ fractions so
	// all packets of a flow take the same path — the flow-granularity
	// steering a stateful offload requires.
	RouteFlowHash

	// numRoutePolicies counts the declared policies. Keep it last: the
	// String exhaustiveness test iterates up to it, so an unlabeled new
	// policy fails tests instead of printing the fallback.
	numRoutePolicies
)

// String names the policy.
func (r RoutePolicy) String() string {
	switch r {
	case RouteDelta:
		return "delta"
	case RouteJSQ:
		return "jsq"
	case RouteFlowHash:
		return "flowhash"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	// TraceArrive fires when a packet reaches a vertex.
	TraceArrive TraceKind = iota
	// TraceServiceStart fires when an engine begins serving a packet.
	TraceServiceStart
	// TraceDepart fires when a packet leaves a vertex toward the next.
	TraceDepart
	// TraceDrop fires when a full queue rejects a packet.
	TraceDrop
	// TraceDeliver fires when a packet completes at an egress engine.
	TraceDeliver
	// TraceFaultInject fires when a scheduled fault takes effect; Vertex
	// carries the vertex or link name and the packet fields are zero.
	TraceFaultInject
	// TraceFaultRecover fires when a fault's recovery takes effect.
	TraceFaultRecover
	// TraceRetry fires when a rejected packet is re-issued under a
	// RetryPolicy instead of being dropped.
	TraceRetry

	// numTraceKinds counts the declared kinds. Keep it last: the String
	// exhaustiveness test iterates up to it, so an unlabeled new kind
	// fails tests instead of printing the fallback.
	numTraceKinds
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceArrive:
		return "arrive"
	case TraceServiceStart:
		return "service-start"
	case TraceDepart:
		return "depart"
	case TraceDrop:
		return "drop"
	case TraceDeliver:
		return "deliver"
	case TraceFaultInject:
		return "fault-inject"
	case TraceFaultRecover:
		return "fault-recover"
	case TraceRetry:
		return "retry"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// TraceEvent is one packet lifecycle observation.
type TraceEvent struct {
	// Kind classifies the event.
	Kind TraceKind
	// Time is the simulation timestamp (seconds).
	Time float64
	// Vertex is where the event happened.
	Vertex string
	// Size is the packet size in bytes.
	Size float64
	// Born is the packet's arrival timestamp.
	Born float64
}

// VertexStats reports one vertex's behavior over the measurement window.
type VertexStats struct {
	// Arrivals counts requests reaching the vertex.
	Arrivals int
	// Served counts completed services.
	Served int
	// Dropped counts arrivals rejected by a full queue.
	Dropped int
	// Utilization is the time-average fraction of busy engines.
	Utilization float64
	// MeanQueueLen is the time-average number of waiting requests.
	MeanQueueLen float64
	// MeanWait is the mean time a served request spent waiting before
	// service (seconds).
	MeanWait float64
}

// Result is the outcome of a run.
type Result struct {
	// SimTime is the simulated duration (seconds).
	SimTime float64
	// OfferedPackets/OfferedBytes count generated arrivals in the
	// measurement window.
	OfferedPackets int
	OfferedBytes   float64
	// DeliveredPackets/DeliveredBytes count packets that reached an
	// egress engine in the measurement window.
	DeliveredPackets int
	DeliveredBytes   float64
	// Throughput is delivered bytes/second over the measurement window.
	Throughput float64
	// MeanLatency, P50, P95 and P99 are end-to-end latencies (seconds) of
	// delivered packets.
	MeanLatency float64
	P50, P95    float64
	P99         float64
	// DropRate is dropped/(dropped+delivered) over the window.
	DropRate float64
	// InterfaceUtil and MemoryUtil are the shared links' busy fractions
	// over the measurement window (Equation 4's BW_INTF/BW_MEM
	// resources). Like every windowed statistic they exclude warmup, so
	// utilization composes consistently with Throughput and VertexStats.
	InterfaceUtil, MemoryUtil float64
	// Links maps every transmission resource — "interface", "memory" and
	// dedicated "from->to" links — to its busy fraction over the
	// measurement window.
	Links map[string]float64
	// Window is the measurement window length (seconds): Duration minus
	// warmup. Rates in this Result are per-Window-second.
	Window float64
	// Vertices maps vertex name to its stats.
	Vertices map[string]VertexStats
	// Faults counts fault-injection activity over the whole run.
	Faults FaultStats
}

// link is a shared transmission resource with FIFO busy-until semantics:
// each transfer starts when the link frees up and occupies it for
// bytes/bandwidth seconds.
type link struct {
	bandwidth float64
	healthy   float64 // nominal bandwidth, restored after a LinkDegrade
	busyUntil float64
	busySum   float64 // accumulated transmission time
	bytesSum  float64 // accumulated bytes carried
	// Observation window: utilization is reported over [winStart, now]
	// with the busy time accumulated before winStart subtracted out, so
	// an observer that attaches mid-run (the warmup cutoff, or a fault
	// injected at t>0) is not biased by the unobserved prefix — the same
	// windowing timeWeighted.average applies to vertex statistics.
	winStart  float64
	busyAtWin float64
}

func newLink(bandwidth float64) *link {
	return &link{bandwidth: bandwidth, healthy: bandwidth}
}

// transfer returns the completion time of moving the given bytes starting
// no earlier than now.
func (l *link) transfer(now, bytes float64) float64 {
	if l == nil || l.bandwidth <= 0 || bytes <= 0 {
		return now
	}
	start := math.Max(now, l.busyUntil)
	hold := bytes / l.bandwidth
	done := start + hold
	l.busyUntil = done
	l.busySum += hold
	l.bytesSum += bytes
	return done
}

// window restarts the link's observation window at t: utilization
// reported afterwards covers [t, now] only. Transfers scheduled before t
// whose occupancy extends past it stay attributed to the old window (the
// hold time is booked when the transfer is scheduled).
func (l *link) window(t float64) {
	if l == nil {
		return
	}
	l.winStart = t
	l.busyAtWin = l.busySum
}

// utilization is the fraction of the observation window [winStart, now]
// the link spent transmitting.
func (l *link) utilization(now float64) float64 {
	if l == nil || now <= l.winStart {
		return 0
	}
	u := (l.busySum - l.busyAtWin) / (now - l.winStart)
	if u > 1 {
		u = 1
	}
	return u
}

// packet is an in-flight request.
type packet struct {
	id      uint64 // span track id, assigned at injection
	size    float64
	born    float64
	arrived float64 // arrival time at the current vertex (span parent start)
	flow    uint64
	measure bool // arrived after warmup
	retries int  // re-issues consumed under a RetryPolicy
}

// node is the runtime state of one vertex.
type node struct {
	v        core.Vertex
	kind     core.VertexKind
	engines  int
	busy     int
	queueCap int // 0 = unbounded
	queue    queueOrg
	meanWork float64 // mean service seconds per byte (× size = mean svc)
	timer    ServiceTimer
	outEdges []routeChoice
	policy   RoutePolicy
	// fault state
	down         int     // engines currently removed by EngineDown
	stalledUntil float64 // VertexStall freeze horizon
	// stats
	arrivals, served, dropped int
	waitSum                   float64
	busyTW, queueTW, downTW   timeWeighted
	// droppedC is the per-vertex drop counter, resolved when Config.Metrics
	// is set (nil otherwise).
	droppedC *obs.Counter
}

// queued is one waiting request, stored by value in the preallocated ring
// buffers of queues.go.
type queued struct {
	p        *packet
	enqueued float64
}

// routeChoice is one outgoing edge with its cumulative routing probability
// and precomputed transfer byte counts per packet byte. toNode is resolved
// once in New so the hot path never touches the name→node map.
type routeChoice struct {
	to          string
	toNode      *node
	cum         float64
	intfPerByte float64 // bytes over interface per packet byte
	memPerByte  float64 // bytes over memory per packet byte
	dedPerByte  float64 // bytes over the dedicated link per packet byte
	dedicated   *link
	overhead    float64 // O of the source vertex
	// remote marks a cross-domain edge on a sharded run: depart hands the
	// packet to the domain remoteDom instead of scheduling locally.
	remote    bool
	remoteDom int32
}

// Simulator executes a Config.
type Simulator struct {
	cfg    Config
	rng    *rand.Rand
	rngSrc *countingSource // s.rng's source, counted for checkpointing
	events eventQueue
	seq    uint64
	now    float64
	gen    *traffic.Generator // arrival stream, set by RunContext
	// resumed marks a simulator rebuilt by Resume: its heap, statistics
	// and RNG positions were restored from a Checkpoint, so RunContext
	// must not re-seed the arrival pump or the fault schedule.
	resumed  bool
	lastCkpt uint64 // processed count at the last snapshot
	ckpts    uint64 // snapshots taken by this run, reported via Progress

	nodes     map[string]*node
	order     []string
	intf      *link
	mem       *link
	links     map[string]*link // by name: "interface", "memory", "from->to"
	ingressPk []ingressShare
	faults    FaultStats
	metrics   *simMetrics // nil unless Config.Metrics is set
	packetSeq uint64      // span track ids
	processed uint64      // events executed, for the events counter
	free      []*packet   // packet record free list

	// plan, when non-nil, is the multi-domain partition a sharded run
	// executes (Config.Shards > 1 and the graph actually splits). sh is
	// set only on the per-domain executors a sharded run builds: its
	// presence switches schedule/depart/complete/trace onto the sharded
	// paths.
	plan *shardPlan
	sh   *shardCtx

	warmEnd float64
	// measurement accumulators
	offeredPackets   int
	offeredBytes     float64
	deliveredPackets int
	deliveredBytes   float64
	droppedMeasured  int
	latencies        sampleSet
}

type ingressShare struct {
	n   *node
	cum float64
}

// New validates the config and precomputes the runtime structure.
func New(cfg Config) (*Simulator, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: nil graph")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Duration <= 0 || math.IsNaN(cfg.Duration) || math.IsInf(cfg.Duration, 0) {
		return nil, fmt.Errorf("sim: invalid duration %v", cfg.Duration)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("sim: invalid shard count %d", cfg.Shards)
	}
	switch {
	case cfg.Warmup == 0:
		cfg.Warmup = 0.1 * cfg.Duration
	case math.IsNaN(cfg.Warmup) || cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration:
		return nil, fmt.Errorf("sim: warmup %v outside [0, duration %v)", cfg.Warmup, cfg.Duration)
	}
	for vertex, weights := range cfg.WRRWeights {
		for upstream, w := range weights {
			if w <= 0 {
				return nil, fmt.Errorf("sim: WRR weight %s<-%s must be positive, got %d", vertex, upstream, w)
			}
		}
	}

	g := cfg.Graph
	paths, err := g.Paths()
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, errors.New("sim: graph has no ingress→egress path")
	}
	// Visit probability per vertex and traversal probability per edge.
	visitP := map[string]float64{}
	edgeP := map[[2]string]float64{}
	for _, p := range paths {
		seen := map[string]bool{}
		for i, v := range p.Vertices {
			if !seen[v] {
				visitP[v] += p.Weight
				seen[v] = true
			}
			if i+1 < len(p.Vertices) {
				edgeP[[2]string{v, p.Vertices[i+1]}] += p.Weight
			}
		}
	}

	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink == nil {
		return nil, errors.New("sim: CheckpointEvery set without a CheckpointSink")
	}
	src := newCountingSource(SeedStream(cfg.Seed, engineStreamTag))
	s := &Simulator{
		cfg:    cfg,
		rng:    rand.New(src),
		rngSrc: src,
		nodes:  map[string]*node{},
		links:  map[string]*link{},
	}
	if cfg.Hardware.InterfaceBW > 0 {
		s.intf = newLink(cfg.Hardware.InterfaceBW)
		s.links["interface"] = s.intf
	}
	if cfg.Hardware.MemoryBW > 0 {
		s.mem = newLink(cfg.Hardware.MemoryBW)
		s.links["memory"] = s.mem
	}

	for _, v := range g.Vertices() {
		n := &node{
			v:        v,
			kind:     v.Kind,
			engines:  v.Parallelism,
			queueCap: v.QueueCapacity,
		}
		if n.engines < 1 {
			n.engines = 1
		}
		// Mean service seconds per packet byte:
		// s(B) = D·B·Σδ_in/(P_eff·p_v), so per byte = D·Σδ/(P_eff·p_v).
		pEff := v.Partition * v.Acceleration * v.Throughput
		if pEff > 0 {
			deltaIn := g.DeltaIn(v.Name)
			pv := visitP[v.Name]
			if pv > 0 && deltaIn > 0 {
				n.meanWork = float64(n.engines) * deltaIn / (pEff * pv)
			}
		}
		if cfg.ServiceTime != nil {
			if t, ok := cfg.ServiceTime[v.Name]; ok {
				n.timer = t
			}
		}
		if cfg.RoutePolicy != nil {
			n.policy = cfg.RoutePolicy[v.Name]
		}
		if cfg.PerEdgeQueues {
			var weights map[string]int
			if cfg.WRRWeights != nil {
				weights = cfg.WRRWeights[v.Name]
			}
			ups := make([]string, 0, len(g.InEdges(v.Name)))
			for _, e := range g.InEdges(v.Name) {
				ups = append(ups, e.From)
			}
			if len(ups) == 0 {
				ups = []string{""}
			}
			n.queue = newWRRQueues(ups, n.queueCap, weights)
		} else {
			n.queue = newSharedQueue(n.queueCap)
		}
		// Routing table with cumulative probabilities.
		out := g.OutEdges(v.Name)
		total := 0.0
		for _, e := range out {
			total += e.Delta
		}
		cum := 0.0
		for i, e := range out {
			var p float64
			if total > 0 {
				p = e.Delta / total
			} else {
				p = 1 / float64(len(out))
			}
			cum += p
			if i == len(out)-1 {
				cum = 1 // guard drift
			}
			rc := routeChoice{to: e.To, cum: cum, overhead: v.Overhead}
			ep := edgeP[[2]string{e.From, e.To}]
			if ep > 0 {
				rc.intfPerByte = e.Alpha / ep
				rc.memPerByte = e.Beta / ep
				if e.Bandwidth > 0 {
					rc.dedPerByte = e.Delta / ep
					rc.dedicated = newLink(e.Bandwidth)
					s.links[e.From+"->"+e.To] = rc.dedicated
				}
			}
			n.outEdges = append(n.outEdges, rc)
		}
		s.nodes[v.Name] = n
		s.order = append(s.order, v.Name)
	}
	// Second pass: resolve edge targets to node pointers so routing and
	// JSQ probing never touch the name map on the hot path.
	for _, name := range s.order {
		n := s.nodes[name]
		for i := range n.outEdges {
			n.outEdges[i].toNode = s.nodes[n.outEdges[i].to]
		}
	}
	// Preallocate the event queue: pending events at any instant are
	// bounded by in-flight work (one per busy engine, transfer, retry and
	// scheduled fault), which starts well under this and grows amortized.
	s.events.ev = make([]event, 0, 256+len(cfg.Faults))

	// Ingress selection probabilities: share of path weight starting at
	// each ingress.
	inW := map[string]float64{}
	for _, p := range paths {
		inW[p.Vertices[0]] += p.Weight
	}
	cum := 0.0
	ings := g.Ingresses()
	for i, name := range ings {
		cum += inW[name]
		if i == len(ings)-1 {
			cum = 1
		}
		s.ingressPk = append(s.ingressPk, ingressShare{n: s.nodes[name], cum: cum})
	}
	s.warmEnd = cfg.Warmup
	if err := cfg.Faults.validate(s); err != nil {
		return nil, err
	}
	for vertex, rp := range cfg.Retry {
		if _, ok := s.nodes[vertex]; !ok {
			return nil, fmt.Errorf("sim: retry policy for unknown vertex %q", vertex)
		}
		if err := rp.validate(vertex); err != nil {
			return nil, err
		}
	}
	s.initObs()
	if cfg.Shards > 1 {
		pl, err := buildPlan(s, cfg.Shards)
		if err != nil {
			return nil, err
		}
		// A one-domain partition (the constraint closure swallowed the
		// graph) stays on the serial engine — trivially byte-identical.
		if len(pl.domains) > 1 {
			if cfg.CheckpointEvery > 0 {
				return nil, fmt.Errorf("sim: CheckpointEvery with %d domains: %w", len(pl.domains), ErrShardedCheckpoint)
			}
			s.plan = pl
		}
	}
	return s, nil
}

// ctxCheckInterval is how many events pass between context polls: cheap
// enough to be invisible, frequent enough that cancellation lands fast.
const ctxCheckInterval = 1024

// stallWindow is the progress watchdog's patience: this many consecutive
// events without the simulation clock advancing aborts the run. Legitimate
// same-timestamp bursts (back-to-back burst arrivals, zero-overhead
// forwarding chains) sit orders of magnitude below it.
const stallWindow = 1 << 17

// Run executes the simulation and returns its Result. It delegates to
// RunContext with a background context.
func (s *Simulator) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// Domains reports how many event-loop domains this simulator will run: 1
// for the serial engine (including sharded configs whose correctness
// constraints collapsed the partition), or the domain count of the sharded
// plan. Callers use it to tell whether Config.Shards actually took effect.
func (s *Simulator) Domains() int {
	if s.plan == nil {
		return 1
	}
	return len(s.plan.domains)
}

// RunContext executes the simulation under a context: cancellation or
// deadline expiry aborts the run with the context's error. The run also
// aborts with ErrBudgetExceeded once it processes more than
// Config.MaxEvents events (when set), and with ErrStalled when the
// progress watchdog sees the simulated clock pinned at one timestamp —
// both turn a pathological config into a typed error instead of a hang.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	if s.plan != nil {
		return s.runSharded(ctx)
	}
	if !s.resumed {
		// The traffic stream is a hashed derivation of the base seed, not
		// seed arithmetic: with the old cfg.Seed+1 scheme, run N's traffic
		// stream was identical to run N+1's engine stream, correlating
		// replications that sweeps treat as independent.
		gen, err := traffic.NewGenerator(s.cfg.Profile, SeedStream(s.cfg.Seed, trafficStreamTag))
		if err != nil {
			return Result{}, err
		}
		s.gen = gen
		// Seed the arrival pump, then the fault schedule.
		first := gen.Next()
		s.schedule(first.Time, event{kind: evArrival, a: first.Size, flow: first.Flow})
		s.scheduleFaults()
		// Restart every utilization window at the warmup cutoff, so link and
		// vertex statistics cover the same measurement window as throughput
		// and latency instead of averaging over the absolute elapsed time.
		s.schedule(s.warmEnd, event{kind: evWarmup})
	}
	// A resumed simulator skips the seeding above: its heap (pending
	// arrival pump, fault schedule, warmup rebase included), generator
	// position and statistics were all restored from the snapshot, and
	// s.processed continues the interrupted run's event count so the
	// MaxEvents budget spans the whole logical run.

	var stalled int
	for s.events.len() > 0 {
		if s.processed%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: run aborted at t=%v after %d events: %w", s.now, s.processed, err)
			}
			if s.cfg.Progress != nil {
				s.cfg.Progress(Progress{Events: s.processed, SimTime: s.now, Checkpoints: s.ckpts})
			}
		}
		if s.cfg.MaxEvents > 0 && s.processed >= s.cfg.MaxEvents {
			return Result{}, fmt.Errorf("%w: budget %d at t=%v", ErrBudgetExceeded, s.cfg.MaxEvents, s.now)
		}
		if s.cfg.CheckpointEvery > 0 && s.processed > s.lastCkpt &&
			s.processed%s.cfg.CheckpointEvery == 0 {
			// Snapshot between events: the heap holds every future event,
			// so the captured state is exactly the state an uninterrupted
			// run passes through here.
			s.lastCkpt = s.processed
			s.ckpts++
			if err := s.cfg.CheckpointSink(s.snapshot()); err != nil {
				return Result{}, fmt.Errorf("sim: checkpoint sink at t=%v: %w", s.now, err)
			}
		}
		e := s.events.pop()
		if e.time > s.cfg.Duration {
			break
		}
		if e.time > s.now {
			stalled = 0
		} else if stalled++; stalled > stallWindow {
			return Result{}, fmt.Errorf("%w: %d events at t=%v", ErrStalled, stalled, s.now)
		}
		s.now = e.time
		s.dispatch(&e)
		s.processed++
	}
	s.now = s.cfg.Duration
	return s.collect(), nil
}

// rebaseWindows restarts every utilization window at the current time —
// the warmup-cutoff event's action.
func (s *Simulator) rebaseWindows() {
	for _, l := range s.links {
		l.window(s.now)
	}
	for _, n := range s.nodes {
		n.busyTW.rebase(s.now)
		n.queueTW.rebase(s.now)
	}
}

// newPacket takes a record off the free list (or allocates one) and
// initializes it as a fresh arrival. Records recycle only after their
// terminal event (delivery or final drop), so a packet pointer is unique
// among all in-flight packets.
func (s *Simulator) newPacket(size float64, flow uint64) *packet {
	s.packetSeq++
	var p *packet
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		p = new(packet)
	}
	*p = packet{id: s.packetSeq, size: size, born: s.now, flow: flow, measure: s.now >= s.warmEnd}
	return p
}

// freePacket returns a terminal packet's record to the free list.
func (s *Simulator) freePacket(p *packet) {
	s.free = append(s.free, p)
}

// arrivalPump injects the pending packet and schedules the next arrival.
func (s *Simulator) arrivalPump(size float64, flow uint64) {
	p := s.newPacket(size, flow)
	if p.measure {
		s.offeredPackets++
		s.offeredBytes += p.size
	}
	if s.metrics != nil {
		s.metrics.offered.Inc()
	}
	ing := s.pickIngress()
	s.arriveAt(ing, "", p)

	next := s.gen.Next()
	if next.Time <= s.cfg.Duration {
		s.schedule(next.Time, event{kind: evArrival, a: next.Size, flow: next.Flow})
	}
}

func (s *Simulator) pickIngress() *node {
	if len(s.ingressPk) == 1 {
		return s.ingressPk[0].n
	}
	u := s.rng.Float64()
	for _, is := range s.ingressPk {
		if u <= is.cum {
			return is.n
		}
	}
	return s.ingressPk[len(s.ingressPk)-1].n
}

// arriveAt delivers a packet to a vertex; from names the upstream vertex
// (empty for fresh ingress arrivals).
func (s *Simulator) arriveAt(n *node, from string, p *packet) {
	name := n.v.Name
	p.arrived = s.now
	if p.measure {
		n.arrivals++
	}
	s.trace(TraceArrive, name, p)
	if n.kind == core.KindEgress {
		s.complete(n, p)
		return
	}
	if n.meanWork <= 0 && n.timer == nil {
		// Pure forwarding vertex (ingress or zero-cost IP).
		s.depart(n, p)
		return
	}
	if s.canStart(n) {
		s.startService(n, p, 0)
		return
	}
	if !n.queue.push(from, queued{p: p, enqueued: s.now}) {
		// Full queue: re-issue under the vertex's retry policy, if any
		// budget remains — modelling a host retrying a rejected DMA or
		// doorbell — otherwise drop.
		if rp, ok := s.cfg.Retry[name]; ok && rp.MaxRetries > 0 {
			if p.retries < rp.MaxRetries {
				p.retries++
				s.faults.Retries++
				if s.metrics != nil {
					s.metrics.retries.Inc()
				}
				s.trace(TraceRetry, name, p)
				// Cap the exponent: beyond 2^30 the doubling only
				// overflows (0·Inf would poison the clock with NaN).
				exp := p.retries - 1
				if exp > 30 {
					exp = 30
				}
				backoff := rp.Backoff * math.Pow(2, float64(exp))
				s.schedule(s.now+backoff, event{kind: evArriveAt, node: n, from: from, pkt: p})
				return
			}
			s.faults.RetryDrops++
		}
		if p.measure {
			n.dropped++
			s.droppedMeasured++
		}
		if n.droppedC != nil {
			n.droppedC.Inc()
		}
		s.spanVertex(n, p, map[string]any{"drop": true, "size": p.size})
		s.trace(TraceDrop, name, p)
		s.freePacket(p)
		return
	}
	n.queueTW.set(s.now, float64(n.queue.length()))
}

// trace emits an event to the configured hook, if any. Sharded domains
// buffer instead: the hook replays the merged stream in deterministic
// order after the run.
func (s *Simulator) trace(kind TraceKind, vertex string, p *packet) {
	if s.sh != nil {
		if s.sh.traceOn {
			s.sh.addTrace(kind, s.now, vertex, p.size, p.born)
		}
		return
	}
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(TraceEvent{
		Kind: kind, Time: s.now, Vertex: vertex, Size: p.size, Born: p.born,
	})
}

// startService begins serving a packet at a node; wait is its queueing
// delay so far.
func (s *Simulator) startService(n *node, p *packet, wait float64) {
	n.busy++
	n.busyTW.set(s.now, float64(n.busy)/float64(n.engines))
	s.trace(TraceServiceStart, n.v.Name, p)
	if wait > 0 {
		s.span("queue-wait", obs.CatQueue, p, s.now-wait, wait, nil)
	}
	svcStart := s.now
	outstanding := n.busy - 1 + n.queue.length()
	var svc float64
	switch {
	case n.timer != nil:
		svc = n.timer(p.size, outstanding, s.rng)
	case s.cfg.DeterministicService:
		svc = n.meanWork * p.size
	default:
		svc = s.rng.ExpFloat64() * n.meanWork * p.size
	}
	if svc < 0 {
		svc = 0
	}
	s.schedule(s.now+svc, event{kind: evServiceDone, node: n, pkt: p, a: wait, b: svcStart})
}

// serviceDone completes one engine's service: book the stats, route the
// packet onward, and pull the next request per the queue discipline —
// unless the engine was lost or the vertex stalled while this service ran.
func (s *Simulator) serviceDone(n *node, p *packet, wait, svcStart float64) {
	if p.measure {
		n.served++
		n.waitSum += wait
	}
	n.busy--
	n.busyTW.set(s.now, float64(n.busy)/float64(n.engines))
	s.span("service", obs.CatService, p, svcStart, s.now-svcStart, nil)
	s.depart(n, p)
	if s.canStart(n) {
		if q, ok := n.queue.pop(); ok {
			n.queueTW.set(s.now, float64(n.queue.length()))
			s.startService(n, q.p, s.now-q.enqueued)
		}
	}
}

// depart routes a packet out of a node and schedules its arrival at the
// next vertex after overhead and data movement.
func (s *Simulator) depart(n *node, p *packet) {
	if len(n.outEdges) == 0 {
		// Validated graphs only hit this at egress, handled in arriveAt.
		s.complete(n, p)
		return
	}
	s.trace(TraceDepart, n.v.Name, p)
	s.spanVertex(n, p, map[string]any{"size": p.size})
	rc := s.pickRoute(n, p)
	t := s.now + rc.overhead
	if s.intf != nil && rc.intfPerByte > 0 {
		t = s.intf.transfer(t, p.size*rc.intfPerByte)
	}
	if s.mem != nil && rc.memPerByte > 0 {
		t = s.mem.transfer(t, p.size*rc.memPerByte)
	}
	if rc.dedicated != nil && rc.dedPerByte > 0 {
		t = rc.dedicated.transfer(t, p.size*rc.dedPerByte)
	}
	if t > s.now {
		s.span("->"+rc.to, obs.CatTransfer, p, s.now, t-s.now, nil)
	}
	if rc.remote {
		// Cross-domain edge on a sharded run: hand the packet to the
		// owning domain. t ≥ now + overhead ≥ the window horizon, so the
		// receiver can never see a straggler.
		s.sendRemote(&rc, n.v.Name, t, p)
		return
	}
	s.schedule(t, event{kind: evArriveAt, node: rc.toNode, from: n.v.Name, pkt: p})
}

// pickRoute chooses the outgoing edge per the vertex's routing policy.
func (s *Simulator) pickRoute(n *node, p *packet) routeChoice {
	if len(n.outEdges) == 1 {
		return n.outEdges[0]
	}
	switch n.policy {
	case RouteJSQ:
		best := n.outEdges[0]
		bestLoad := best.toNode.load()
		for _, c := range n.outEdges[1:] {
			if l := c.toNode.load(); l < bestLoad {
				best, bestLoad = c, l
			}
		}
		return best
	case RouteFlowHash:
		u := splitmix(p.flow)
		for _, c := range n.outEdges {
			if u <= c.cum {
				return c
			}
		}
		return n.outEdges[len(n.outEdges)-1]
	default:
		u := s.rng.Float64()
		for _, c := range n.outEdges {
			if u <= c.cum {
				return c
			}
		}
		return n.outEdges[len(n.outEdges)-1]
	}
}

// load is the JSQ metric: requests queued or in service at the vertex.
func (n *node) load() int {
	return n.busy + n.queue.length()
}

// splitmix hashes a flow id into [0, 1) (SplitMix64 finalizer).
func splitmix(x uint64) float64 {
	return float64(mix64(x)>>11) / float64(1<<53)
}

func (s *Simulator) complete(n *node, p *packet) {
	s.trace(TraceDeliver, n.v.Name, p)
	s.spanVertex(n, p, map[string]any{"size": p.size, "latency": s.now - p.born})
	if s.metrics != nil {
		s.metrics.delivered.Inc()
		s.metrics.latency.Observe(s.now - p.born)
	}
	if s.sh != nil {
		// Sharded domain: buffer the completion; the merge replays all
		// domains' deliveries in global (time, id) order so the latency
		// accumulators sum in the serial order.
		if p.measure {
			s.sh.deliveries = append(s.sh.deliveries, delivery{t: s.now, id: p.id, born: p.born, size: p.size})
		}
		s.freePacket(p)
		return
	}
	if p.measure {
		s.deliveredPackets++
		s.deliveredBytes += p.size
		s.latencies.add(s.now - p.born)
	}
	s.freePacket(p)
}

func (s *Simulator) collect() Result {
	window := s.cfg.Duration - s.warmEnd
	res := Result{
		SimTime:          s.cfg.Duration,
		OfferedPackets:   s.offeredPackets,
		OfferedBytes:     s.offeredBytes,
		DeliveredPackets: s.deliveredPackets,
		DeliveredBytes:   s.deliveredBytes,
		MeanLatency:      s.latencies.mean(),
		P50:              s.latencies.quantile(0.50),
		P95:              s.latencies.quantile(0.95),
		P99:              s.latencies.quantile(0.99),
		Window:           window,
		Vertices:         map[string]VertexStats{},
		Links:            map[string]float64{},
	}
	if window > 0 {
		res.Throughput = s.deliveredBytes / window
	}
	if s.deliveredPackets+s.droppedMeasured > 0 {
		res.DropRate = float64(s.droppedMeasured) / float64(s.deliveredPackets+s.droppedMeasured)
	}
	res.InterfaceUtil = s.intf.utilization(s.now)
	res.MemoryUtil = s.mem.utilization(s.now)
	for name, l := range s.links {
		res.Links[name] = l.utilization(s.now)
	}
	res.Faults = s.FaultStats()
	for _, name := range s.order {
		n := s.nodes[name]
		vs := VertexStats{
			Arrivals:     n.arrivals,
			Served:       n.served,
			Dropped:      n.dropped,
			Utilization:  n.busyTW.average(s.now),
			MeanQueueLen: n.queueTW.average(s.now),
		}
		if n.served > 0 {
			vs.MeanWait = n.waitSum / float64(n.served)
		}
		res.Vertices[name] = vs
	}
	s.finishObs(res)
	return res
}

// Run is a convenience wrapper: build and execute in one call.
func Run(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}
