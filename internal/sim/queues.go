package sim

// This file implements the input-queue organizations of a LogNIC IP block
// (paper Figure 2(b)): an IP has m input queues feeding a (weighted)
// round-robin scheduler in front of its n engines. The analytical model
// concatenates those queues into one logical "virtual shared queue"
// (§3.6); the simulator supports both organizations so the abstraction can
// be validated — see TestVirtualSharedQueueAbstraction.
//
// Storage is part of the fast-path engine (events.go): waiting requests
// are queued-by-value records in ring buffers whose backing arrays are
// preallocated from the vertex's configured QueueCapacity, so the
// steady-state hot path enqueues and dequeues without allocating or
// shifting slices.

// queueOrg is a vertex's input-queue organization.
type queueOrg interface {
	// push enqueues a request arriving from the named upstream vertex.
	// It reports false when the queue is full (the request is dropped).
	push(from string, q queued) bool
	// pop dequeues the next request according to the discipline; ok is
	// false when nothing waits.
	pop() (q queued, ok bool)
	// length is the total number of waiting requests.
	length() int
}

// ring is a FIFO of queued records over a power-of-two circular buffer.
// Bounded queues never grow past their preallocation; unbounded queues
// double amortized.
type ring struct {
	buf  []queued
	head int // index of the oldest entry
	n    int // occupied entries
}

// ringCapacity rounds a queue-capacity hint to the preallocated buffer
// size: the next power of two ≥ capacity, clamped to [16, 1024] so huge
// configured capacities don't preallocate memory the run may never touch.
func ringCapacity(capacity int) int {
	size := 16
	for size < capacity && size < 1024 {
		size <<= 1
	}
	return size
}

func newRing(capacity int) ring {
	return ring{buf: make([]queued, ringCapacity(capacity))}
}

func (r *ring) push(q queued) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = q
	r.n++
}

func (r *ring) pop() (queued, bool) {
	if r.n == 0 {
		return queued{}, false
	}
	q := r.buf[r.head]
	r.buf[r.head] = queued{} // release the packet pointer
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return q, true
}

func (r *ring) grow() {
	next := make([]queued, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}

// sharedQueue is the paper's virtual shared queue: one FIFO with a global
// capacity (0 = unbounded).
type sharedQueue struct {
	capacity int
	ring
}

func newSharedQueue(capacity int) *sharedQueue {
	return &sharedQueue{capacity: capacity, ring: newRing(capacity)}
}

func (s *sharedQueue) push(_ string, q queued) bool {
	if s.capacity > 0 && s.n >= s.capacity {
		return false
	}
	s.ring.push(q)
	return true
}

func (s *sharedQueue) length() int { return s.n }

// wrrQueues is the hardware organization: one FIFO per input edge, each
// with its own capacity (the paper's k entries per queue), drained by a
// weighted round-robin scheduler. A queue with weight w receives up to w
// consecutive grants before the pointer advances.
type wrrQueues struct {
	order    []string // upstream names, scheduler order
	index    map[string]int
	queues   []ring
	capacity int   // per-queue k
	weights  []int // per-queue WRR weight
	ptr      int   // current queue
	grants   int   // grants consumed at the current queue
	total    int
}

// newWRRQueues builds per-edge queues for the upstream names, with the
// given per-queue capacity (0 = unbounded) and weights (nil = all 1).
func newWRRQueues(upstreams []string, capacity int, weights map[string]int) *wrrQueues {
	w := &wrrQueues{
		order:    append([]string(nil), upstreams...),
		index:    map[string]int{},
		queues:   make([]ring, len(upstreams)),
		capacity: capacity,
		weights:  make([]int, len(upstreams)),
	}
	for i, name := range upstreams {
		w.index[name] = i
		w.queues[i] = newRing(capacity)
		w.weights[i] = 1
		if weights != nil {
			if v, ok := weights[name]; ok && v > 0 {
				w.weights[i] = v
			}
		}
	}
	return w
}

func (w *wrrQueues) push(from string, q queued) bool {
	i, ok := w.index[from]
	if !ok {
		// Unknown upstream (e.g. ingress feeding a single-queue IP):
		// treat as the first queue.
		i = 0
	}
	if w.capacity > 0 && w.queues[i].n >= w.capacity {
		return false
	}
	w.queues[i].push(q)
	w.total++
	return true
}

func (w *wrrQueues) pop() (queued, bool) {
	if w.total == 0 {
		return queued{}, false
	}
	n := len(w.queues)
	for scanned := 0; scanned < n; scanned++ {
		i := w.ptr
		if w.queues[i].n > 0 && w.grants < w.weights[i] {
			q, _ := w.queues[i].pop()
			w.total--
			w.grants++
			if w.grants >= w.weights[i] || w.queues[i].n == 0 {
				w.advance()
			}
			return q, true
		}
		w.advance()
	}
	return queued{}, false
}

func (w *wrrQueues) advance() {
	w.ptr = (w.ptr + 1) % len(w.queues)
	w.grants = 0
}

func (w *wrrQueues) length() int { return w.total }
