package sim

// This file implements the input-queue organizations of a LogNIC IP block
// (paper Figure 2(b)): an IP has m input queues feeding a (weighted)
// round-robin scheduler in front of its n engines. The analytical model
// concatenates those queues into one logical "virtual shared queue"
// (§3.6); the simulator supports both organizations so the abstraction can
// be validated — see TestVirtualSharedQueueAbstraction.

// queueOrg is a vertex's input-queue organization.
type queueOrg interface {
	// push enqueues a request arriving from the named upstream vertex.
	// It reports false when the queue is full (the request is dropped).
	push(from string, q *queued) bool
	// pop dequeues the next request according to the discipline, or nil.
	pop() *queued
	// length is the total number of waiting requests.
	length() int
}

// sharedQueue is the paper's virtual shared queue: one FIFO with a global
// capacity (0 = unbounded).
type sharedQueue struct {
	capacity int
	items    []*queued
}

func newSharedQueue(capacity int) *sharedQueue {
	return &sharedQueue{capacity: capacity}
}

func (s *sharedQueue) push(_ string, q *queued) bool {
	if s.capacity > 0 && len(s.items) >= s.capacity {
		return false
	}
	s.items = append(s.items, q)
	return true
}

func (s *sharedQueue) pop() *queued {
	if len(s.items) == 0 {
		return nil
	}
	q := s.items[0]
	s.items = s.items[1:]
	return q
}

func (s *sharedQueue) length() int { return len(s.items) }

// wrrQueues is the hardware organization: one FIFO per input edge, each
// with its own capacity (the paper's k entries per queue), drained by a
// weighted round-robin scheduler. A queue with weight w receives up to w
// consecutive grants before the pointer advances.
type wrrQueues struct {
	order    []string // upstream names, scheduler order
	index    map[string]int
	queues   [][]*queued
	capacity int   // per-queue k
	weights  []int // per-queue WRR weight
	ptr      int   // current queue
	grants   int   // grants consumed at the current queue
	total    int
}

// newWRRQueues builds per-edge queues for the upstream names, with the
// given per-queue capacity (0 = unbounded) and weights (nil = all 1).
func newWRRQueues(upstreams []string, capacity int, weights map[string]int) *wrrQueues {
	w := &wrrQueues{
		order:    append([]string(nil), upstreams...),
		index:    map[string]int{},
		queues:   make([][]*queued, len(upstreams)),
		capacity: capacity,
		weights:  make([]int, len(upstreams)),
	}
	for i, name := range upstreams {
		w.index[name] = i
		w.weights[i] = 1
		if weights != nil {
			if v, ok := weights[name]; ok && v > 0 {
				w.weights[i] = v
			}
		}
	}
	return w
}

func (w *wrrQueues) push(from string, q *queued) bool {
	i, ok := w.index[from]
	if !ok {
		// Unknown upstream (e.g. ingress feeding a single-queue IP):
		// treat as the first queue.
		i = 0
	}
	if w.capacity > 0 && len(w.queues[i]) >= w.capacity {
		return false
	}
	w.queues[i] = append(w.queues[i], q)
	w.total++
	return true
}

func (w *wrrQueues) pop() *queued {
	if w.total == 0 {
		return nil
	}
	n := len(w.queues)
	for scanned := 0; scanned < n; scanned++ {
		i := w.ptr
		if len(w.queues[i]) > 0 && w.grants < w.weights[i] {
			q := w.queues[i][0]
			w.queues[i] = w.queues[i][1:]
			w.total--
			w.grants++
			if w.grants >= w.weights[i] || len(w.queues[i]) == 0 {
				w.advance()
			}
			return q
		}
		w.advance()
	}
	return nil
}

func (w *wrrQueues) advance() {
	w.ptr = (w.ptr + 1) % len(w.queues)
	w.grants = 0
}

func (w *wrrQueues) length() int { return w.total }
