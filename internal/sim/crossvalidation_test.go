package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// This file cross-validates the analytical model against the simulator on
// randomized execution graphs — beyond the hand-built evaluation
// scenarios, Equation 4's capacity prediction and the low-load latency
// decomposition must hold for arbitrary topologies.

// randomModel builds a random series-parallel execution graph: a chain of
// 1–3 stages, each either a single IP or a 2-way fan-out with a random
// split, with random rates, parallelism and queue sizes.
func randomModel(rng *rand.Rand) (core.Model, error) {
	b := core.NewBuilder("rand")
	b.AddIngress("in")
	prev := "in"
	prevDelta := 1.0
	stages := 1 + rng.Intn(3)
	vid := 0
	newIP := func(deltaIn float64) string {
		vid++
		name := fmt.Sprintf("v%d", vid)
		b.AddVertex(core.Vertex{
			Name:          name,
			Kind:          core.KindIP,
			Throughput:    (0.5 + 4*rng.Float64()) * 1e9,
			Parallelism:   1 + rng.Intn(4),
			QueueCapacity: 16 + rng.Intn(64),
		})
		_ = deltaIn
		return name
	}
	for s := 0; s < stages; s++ {
		if rng.Float64() < 0.4 {
			// Fan-out stage: split prev's traffic across two IPs and
			// rejoin through a zero-cost mux (whole packets rejoin, so
			// the merge point must not be a compute vertex — see the
			// Equation 7 indegree note in internal/core).
			split := 0.2 + 0.6*rng.Float64()
			a := newIP(prevDelta * split)
			c := newIP(prevDelta * (1 - split))
			vid++
			join := fmt.Sprintf("mux%d", vid)
			b.AddVertex(core.Vertex{Name: join, Kind: core.KindIP})
			b.AddEdge(core.Edge{From: prev, To: a, Delta: prevDelta * split, Alpha: prevDelta * split})
			b.AddEdge(core.Edge{From: prev, To: c, Delta: prevDelta * (1 - split), Alpha: prevDelta * (1 - split)})
			b.AddEdge(core.Edge{From: a, To: join, Delta: prevDelta * split})
			b.AddEdge(core.Edge{From: c, To: join, Delta: prevDelta * (1 - split)})
			prev = join
		} else {
			n := newIP(prevDelta)
			b.AddEdge(core.Edge{From: prev, To: n, Delta: prevDelta, Alpha: prevDelta})
			prev = n
		}
	}
	b.AddEgress("out")
	b.AddEdge(core.Edge{From: prev, To: "out", Delta: prevDelta})
	g, err := b.Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Hardware: core.Hardware{InterfaceBW: (20 + 60*rng.Float64()) * 1e9},
		Graph:    g,
		Traffic:  core.Traffic{Granularity: float64(64 + rng.Intn(1400))},
	}, nil
}

// At 2× overload the delivered throughput must approach the model's
// saturation prediction; at 50% load it must track the offer.
func TestCrossValidationRandomGraphThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulation runs")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		m, err := randomModel(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(sat.Attainable, 1) {
			continue
		}
		run := func(offer float64) Result {
			res, err := Run(Config{
				Graph:    m.Graph,
				Hardware: m.Hardware,
				Profile:  traffic.Fixed("x", unit.Bandwidth(offer), unit.Size(m.Traffic.Granularity)),
				Seed:     int64(trial + 1),
				Duration: 0.08,
			})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return res
		}
		// 50% load: delivery tracks the offer.
		low := run(0.5 * sat.Attainable)
		if math.Abs(low.Throughput-0.5*sat.Attainable) > 0.08*0.5*sat.Attainable {
			t.Errorf("trial %d (%s): low-load delivered %v, offered %v",
				trial, m.Graph.Name(), low.Throughput, 0.5*sat.Attainable)
		}
		// Mild overload: delivery reaches at least ~the predicted
		// capacity. (Deep unbalanced overload can deliver MORE than the
		// model's fixed-ratio capacity: the overloaded branch sheds its
		// excess while other paths keep flowing, so only over-optimism is
		// a model error.)
		high := run(1.1 * sat.Attainable)
		if high.Throughput < 0.9*sat.Attainable {
			t.Errorf("trial %d: delivered %v at 1.1x offer, model capacity %v (bottleneck %s)",
				trial, high.Throughput, sat.Attainable, sat.Bottleneck)
		}
		// For single-path chains the fixed-ratio caveat vanishes and the
		// capacity must match in both directions.
		if paths, err := m.Graph.Paths(); err == nil && len(paths) == 1 {
			deep := run(2 * sat.Attainable)
			if math.Abs(deep.Throughput-sat.Attainable) > 0.12*sat.Attainable {
				t.Errorf("trial %d (chain): saturated delivered %v, model capacity %v",
					trial, deep.Throughput, sat.Attainable)
			}
		}
	}
}

// At 30% load, the model's latency (negligible queueing) must track the
// simulator's mean within a loose band across random topologies.
func TestCrossValidationRandomGraphLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulation runs")
	}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 12; trial++ {
		m, err := randomModel(rng)
		if err != nil {
			t.Fatal(err)
		}
		sat, err := m.SaturationThroughput()
		if err != nil || math.IsInf(sat.Attainable, 1) {
			continue
		}
		m.Traffic.IngressBW = 0.3 * sat.Attainable
		lr, err := m.Latency()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Graph:    m.Graph,
			Hardware: m.Hardware,
			Profile:  traffic.Fixed("x", unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity)),
			Seed:     int64(trial + 100),
			Duration: 0.12,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Bands: for chains the model must track the simulator closely
		// from below (folded M/M/1/N may sit above for multi-engine
		// vertices). Fan-out graphs additionally carry Equation 7's
		// δ-scaled-compute approximation, which understates per-branch
		// latency (see internal/core), so only a loose lower bound
		// applies there.
		paths, err := m.Graph.Paths()
		if err != nil {
			t.Fatal(err)
		}
		lower := 0.3
		if len(paths) == 1 {
			lower = 0.8
		}
		if lr.Attainable < lower*res.MeanLatency {
			t.Errorf("trial %d (%d paths): model %v far below sim %v",
				trial, len(paths), lr.Attainable, res.MeanLatency)
		}
		if lr.Attainable > 2.5*res.MeanLatency {
			t.Errorf("trial %d: model %v far above sim %v", trial, lr.Attainable, res.MeanLatency)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no random models were checked")
	}
}
