package sim

// FuzzEventQueue (ISSUE 4 satellite) drives random schedule/pop sequences
// through the specialized 4-ary value heap and a container/heap oracle
// with the seed engine's exact Less, asserting both dequeue the identical
// (time, seq) order. This is the determinism contract the golden digests
// rely on, checked structurally instead of end-to-end.

import (
	"container/heap"
	"testing"
)

// oracleEvent mirrors the seed engine's boxed event: just the ordering key.
type oracleEvent struct {
	time float64
	seq  uint64
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(*oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 2, 4, 1, 1, 6, 8, 1})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1})           // all-equal times: seq order
	f.Add([]byte{254, 128, 64, 32, 16, 8, 4, 2, 0}) // descending inserts
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q eventQueue
		var o oracleHeap
		var seq uint64
		check := func() {
			got := q.pop()
			want := heap.Pop(&o).(*oracleEvent)
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("dequeue order diverged: got (%v, %d), oracle (%v, %d)",
					got.time, got.seq, want.time, want.seq)
			}
		}
		for _, b := range data {
			if b&1 == 1 && o.Len() > 0 {
				check()
				continue
			}
			// Coarse times (b>>4 ∈ [0,15]) force heavy ties so the seq
			// tiebreak — the determinism anchor — is exercised hard.
			seq++
			tm := float64(b>>4) / 4
			q.push(event{time: tm, seq: seq})
			heap.Push(&o, &oracleEvent{time: tm, seq: seq})
		}
		if q.len() != o.Len() {
			t.Fatalf("length diverged: %d vs %d", q.len(), o.Len())
		}
		for o.Len() > 0 {
			check()
		}
		if q.len() != 0 {
			t.Fatalf("queue not drained: %d left", q.len())
		}
	})
}
