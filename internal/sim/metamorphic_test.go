package sim_test

// Metamorphic properties of the simulator (ISSUE 4 satellite): instead of
// pinning absolute numbers, these tests perturb one model parameter and
// assert the direction (or invariance) queueing theory demands of the
// relation between two runs. They hold for any correct event engine, so
// they complement the golden digests: a digest refresh that silently broke
// the physics would still fail here. Table-driven over both device
// catalogs, like the golden scenarios.

import (
	"math"
	"testing"

	"lognic/internal/core"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// metaRun executes one config and fails the test on error or an empty run.
func metaRun(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPackets == 0 {
		t.Fatal("metamorphic run delivered no packets — no signal")
	}
	return res
}

// TestThroughputMonotoneInLinkBandwidth: widening the shared interface
// (all else equal, same seed) can only help — delivered throughput must be
// non-decreasing in BW_INTF when the interface is the binding resource.
func TestThroughputMonotoneInLinkBandwidth(t *testing.T) {
	for _, d := range goldenDevices(t) {
		t.Run(d.name, func(t *testing.T) {
			offered := 0.8 * d.lineRate
			dur := goldenDuration(offered)
			// The fanout graph crosses the interface ~2.3× per packet
			// byte; base chosen so the smallest factor strangles it.
			base := 0.5 * d.lineRate
			factors := []float64{0.25, 0.5, 1, 2}
			prev := -1.0
			for i, factor := range factors {
				hw := d.hw
				hw.InterfaceBW = base * factor
				// A strangled interface may legitimately deliver zero
				// measured packets (throughput 0), so run sim.Run
				// directly instead of metaRun.
				res, err := sim.Run(sim.Config{
					Graph:    fanoutGraph(t, d),
					Hardware: hw,
					Profile:  traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt),
					Seed:     7,
					Duration: dur,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Throughput < prev {
					t.Fatalf("throughput fell from %v to %v when BW_INTF grew to %v×%v",
						prev, res.Throughput, base, factor)
				}
				if i == len(factors)-1 && res.DeliveredPackets == 0 {
					t.Fatal("widest interface still delivered nothing — scenario carries no signal")
				}
				prev = res.Throughput
			}
		})
	}
}

// TestThroughputMonotoneInEngineCount: adding engines of the same
// per-engine rate to the bottleneck IP must not lose throughput.
func TestThroughputMonotoneInEngineCount(t *testing.T) {
	for _, d := range goldenDevices(t) {
		t.Run(d.name, func(t *testing.T) {
			offered := 0.7 * d.accelRate
			dur := goldenDuration(offered)
			perEngine := d.accelRate / 8
			prev := -1.0
			for _, engines := range []int{2, 4, 8} {
				g, err := core.NewBuilder("meta-engines").
					AddIngress("in").
					AddIP("ip", perEngine*float64(engines), engines, 32).
					AddEgress("out").
					Connect("in", "ip", 1).
					Connect("ip", "out", 1).
					Build()
				if err != nil {
					t.Fatal(err)
				}
				res := metaRun(t, sim.Config{
					Graph:    g,
					Hardware: d.hw,
					Profile:  traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt),
					Seed:     7,
					Duration: dur,
				})
				if res.Throughput < prev {
					t.Fatalf("throughput fell from %v to %v when engines grew to %d",
						prev, res.Throughput, engines)
				}
				prev = res.Throughput
			}
		})
	}
}

// TestLatencyMonotoneInOfferedLoad: driving the same graph harder (same
// seed, so the arrival draws are a scaled copy of the same stream) must
// not reduce mean sojourn time. A 1% slack absorbs sampling noise in the
// finite run.
func TestLatencyMonotoneInOfferedLoad(t *testing.T) {
	for _, d := range goldenDevices(t) {
		t.Run(d.name, func(t *testing.T) {
			prev := -1.0
			for _, load := range []float64{0.3, 0.5, 0.7, 0.85} {
				offered := load * d.accelRate
				res := metaRun(t, sim.Config{
					Graph:    chainGraph(t, d, 4, 64),
					Hardware: d.hw,
					Profile:  traffic.Fixed("fixed", unit.Bandwidth(offered), goldenPkt),
					Seed:     7,
					Duration: goldenDuration(offered),
				})
				if res.MeanLatency < prev*0.99 {
					t.Fatalf("mean latency fell from %v to %v when load grew to %v",
						prev, res.MeanLatency, load)
				}
				prev = res.MeanLatency
			}
		})
	}
}

// TestUtilizationScaleInvariance: multiplying every rate (compute, links,
// offered load) by 2 and halving the horizon is a pure rescaling of time —
// doubling is exact in binary floating point, so the event set is
// identical with all timestamps halved, and every dimensionless statistic
// (utilizations, drop rate, packet counts) must come out bit-identical.
func TestUtilizationScaleInvariance(t *testing.T) {
	for _, d := range goldenDevices(t) {
		t.Run(d.name, func(t *testing.T) {
			const k = 2.0
			offered := 0.75 * d.accelRate
			dur := goldenDuration(offered)
			build := func(scale float64) sim.Config {
				g, err := core.NewBuilder("meta-scale").
					AddIngress("in").
					AddIP("ip", scale*d.accelRate, 4, 16).
					AddEgress("out").
					Connect("in", "ip", 1).
					Connect("ip", "out", 1).
					Build()
				if err != nil {
					t.Fatal(err)
				}
				hw := d.hw
				hw.InterfaceBW *= scale
				hw.MemoryBW *= scale
				return sim.Config{
					Graph:    g,
					Hardware: hw,
					Profile:  traffic.Fixed("fixed", unit.Bandwidth(scale*offered), goldenPkt),
					Seed:     7,
					Duration: dur / scale,
				}
			}
			a := metaRun(t, build(1))
			b := metaRun(t, build(k))
			if a.DeliveredPackets != b.DeliveredPackets || a.OfferedPackets != b.OfferedPackets {
				t.Fatalf("packet counts changed under rescaling: %d/%d vs %d/%d",
					a.DeliveredPackets, a.OfferedPackets, b.DeliveredPackets, b.OfferedPackets)
			}
			for name, av := range map[string]float64{
				"interface-util": a.InterfaceUtil,
				"memory-util":    a.MemoryUtil,
				"drop-rate":      a.DropRate,
				"vertex-util":    a.Vertices["ip"].Utilization,
			} {
				bv := map[string]float64{
					"interface-util": b.InterfaceUtil,
					"memory-util":    b.MemoryUtil,
					"drop-rate":      b.DropRate,
					"vertex-util":    b.Vertices["ip"].Utilization,
				}[name]
				if math.Float64bits(av) != math.Float64bits(bv) {
					t.Errorf("%s not scale-invariant: %v vs %v", name, av, bv)
				}
			}
			// Latencies are times: they must halve exactly, not match.
			if math.Float64bits(a.MeanLatency/k) != math.Float64bits(b.MeanLatency) {
				t.Errorf("mean latency did not rescale exactly: %v vs %v", a.MeanLatency, b.MeanLatency)
			}
		})
	}
}
