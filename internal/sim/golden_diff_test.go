package sim_test

// Differential golden suite for the sharded engine (shard.go): the
// byte-identical contract extended across shard counts. Two families:
//
//   - Every (device, scenario, seed) digest from the serial golden suite,
//     re-run at Shards ∈ {2, 3, 8} and checked against the *same* committed
//     goldens — never re-recorded here. The golden scenarios' RNG and
//     shared-link constraints collapse their partitions to one domain, so
//     these runs double as a regression test that the constraint closure
//     correctly refuses to shard a graph it cannot shard safely.
//
//   - The 64-tenant microservice mesh (mesh.go), whose partition genuinely
//     splits: its Result and full trace-stream digests are pinned at
//     Shards = 0 in testdata/mesh_digests.json and every sharded run must
//     reproduce them bit-for-bit (shard-count invariance).

import (
	"testing"

	"lognic/internal/sim"
	"lognic/internal/simtest"
)

// diffShardCounts are the shard counts every differential digest is
// checked at.
var diffShardCounts = []int{2, 3, 8}

// TestShardedGoldenDigests re-runs all committed golden scenarios with
// sharding requested and asserts every digest unchanged. It never saves:
// the goldens belong to the serial suite (golden_test.go), and a sharded
// run that needs them re-recorded is a broken sharded run.
func TestShardedGoldenDigests(t *testing.T) {
	g := simtest.LoadGolden(t, "testdata/golden_digests.json")
	for _, d := range goldenDevices(t) {
		for _, seed := range []int64{1, 2, 3} {
			for name, cfg := range goldenScenarios(t, d, seed) {
				for _, shards := range diffShardCounts {
					cfg := cfg
					cfg.Shards = shards
					th := simtest.NewTraceHasher()
					cfg.Trace = th.Hook
					s, err := sim.New(cfg)
					if err != nil {
						t.Fatalf("%s/%s/seed%d/shards%d: %v", d.name, name, seed, shards, err)
					}
					// The golden graphs are RNG-coupled (exponential
					// service or δ-routing) or share interface/memory
					// links: the constraint closure must collapse them.
					if dom := s.Domains(); dom != 1 {
						t.Fatalf("%s/%s/seed%d/shards%d: %d domains, want collapse to 1 (RNG/shared-link constraints)", d.name, name, seed, shards, dom)
					}
					res, err := s.Run()
					if err != nil {
						t.Fatalf("%s/%s/seed%d/shards%d: %v", d.name, name, seed, shards, err)
					}
					g.Check(t, simtest.Key(d.name, name, "seed", seed, "result"), simtest.ResultDigest(res))
					g.Check(t, simtest.Key(d.name, name, "seed", seed, "trace"), th.Sum())
				}
			}
		}
	}
}

// meshDiffConfig is the differential-test instance of the 64-tenant mesh:
// small enough to run at five shard counts in test time, large enough that
// every domain carries real load.
func meshDiffConfig(t *testing.T, seed int64) sim.Config {
	t.Helper()
	cfg, err := sim.MeshConfig(64, 0.7, seed, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestMeshShardInvariance pins the mesh's serial digests and asserts every
// sharded run — which really does fan out into multiple domains — is
// byte-identical: same Result digest, same full trace stream.
func TestMeshShardInvariance(t *testing.T) {
	g := simtest.LoadGolden(t, "testdata/mesh_digests.json")
	defer g.Save(t)
	for _, seed := range []int64{1, 2} {
		cfg := meshDiffConfig(t, seed)
		th := simtest.NewTraceHasher()
		cfg.Trace = th.Hook
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("seed%d serial: %v", seed, err)
		}
		if res.DeliveredPackets == 0 {
			t.Fatalf("seed%d: mesh delivered no packets", seed)
		}
		resKey := simtest.Key("mesh64", "seed", seed, "result")
		traceKey := simtest.Key("mesh64", "seed", seed, "trace")
		g.Check(t, resKey, simtest.ResultDigest(res))
		g.Check(t, traceKey, th.Sum())

		for _, shards := range append([]int{1}, diffShardCounts...) {
			scfg := cfg
			scfg.Shards = shards
			sth := simtest.NewTraceHasher()
			scfg.Trace = sth.Hook
			s, err := sim.New(scfg)
			if err != nil {
				t.Fatalf("seed%d shards%d: %v", seed, shards, err)
			}
			if shards > 1 && s.Domains() < 2 {
				t.Fatalf("seed%d shards%d: mesh collapsed to %d domains — partitioner lost its parallelism", seed, shards, s.Domains())
			}
			sres, err := s.Run()
			if err != nil {
				t.Fatalf("seed%d shards%d: %v", seed, shards, err)
			}
			g.Check(t, resKey, simtest.ResultDigest(sres))
			g.Check(t, traceKey, sth.Sum())
		}
	}
}
