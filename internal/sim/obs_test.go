package sim

import (
	"reflect"
	"strings"
	"testing"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// Every declared enum value must carry a real name; hitting the numeric
// fallback means someone added a constant without labeling it.

func TestTraceKindStringExhaustive(t *testing.T) {
	seen := map[string]TraceKind{}
	for k := TraceKind(0); k < numTraceKinds; k++ {
		s := k.String()
		if strings.Contains(s, "(") {
			t.Errorf("TraceKind(%d).String() = %q: unlabeled kind", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("TraceKind %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
}

func TestRoutePolicyStringExhaustive(t *testing.T) {
	seen := map[string]RoutePolicy{}
	for r := RoutePolicy(0); r < numRoutePolicies; r++ {
		s := r.String()
		if strings.Contains(s, "(") {
			t.Errorf("RoutePolicy(%d).String() = %q: unlabeled policy", int(r), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("RoutePolicy %d and %d share the name %q", int(prev), int(r), s)
		}
		seen[s] = r
	}
}

// Regression: quantile used to sort values in place, destroying the
// chronological order of the latency series for any later observer.
func TestQuantileLeavesValuesUnsorted(t *testing.T) {
	var s sampleSet
	in := []float64{5, 1, 4, 2, 3}
	for _, v := range in {
		s.add(v)
	}
	if got := s.quantile(0.5); got != 3 {
		t.Fatalf("quantile(0.5) = %v, want 3", got)
	}
	if !reflect.DeepEqual(s.values, in) {
		t.Fatalf("quantile mutated values: %v", s.values)
	}
	// The sorted cache must invalidate on new samples.
	s.add(0)
	if got := s.quantile(0); got != 0 {
		t.Fatalf("quantile(0) after add = %v, want 0", got)
	}
	if got := s.quantile(1); got != 5 {
		t.Fatalf("quantile(1) after add = %v, want 5", got)
	}
}

func TestTimeWeightedRebase(t *testing.T) {
	var tw timeWeighted
	tw.set(0, 1) // busy [0, 10)
	tw.set(10, 0)
	tw.rebase(10) // observer attaches at t=10; prefix discarded
	tw.set(15, 1) // busy [15, 20]
	if got := tw.average(20); got != 0.5 {
		t.Fatalf("average over [10,20] = %v, want 0.5", got)
	}
	// rebase before any sample is a no-op.
	var empty timeWeighted
	empty.rebase(5)
	if got := empty.average(10); got != 0 {
		t.Fatalf("average of empty = %v", got)
	}
}

func TestLinkWindow(t *testing.T) {
	l := newLink(100)   // 100 B/s
	l.transfer(0, 100)  // busy [0, 1)
	l.window(10)        // observer attaches at t=10
	l.transfer(10, 200) // busy [10, 12)
	if got := l.utilization(20); got != 0.2 {
		t.Fatalf("windowed utilization = %v, want 0.2 (2s busy over [10,20])", got)
	}
	// Without a window the whole run counts.
	l2 := newLink(100)
	l2.transfer(0, 100)
	if got := l2.utilization(10); got != 0.1 {
		t.Fatalf("unwindowed utilization = %v, want 0.1", got)
	}
}

// Warmup must rebase vertex statistics: congestion confined to the warmup
// phase (here a vertex stall covering exactly the warmup window) must not
// leak into measurement-window averages.
func TestWarmupExcludedFromVertexStats(t *testing.T) {
	g := pipeline(t, 1e9, 1, 1024)
	res, err := Run(Config{
		Graph:    g,
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     7,
		Duration: 1.2,
		Warmup:   0.2,
		Faults:   FaultSchedule{{Kind: VertexStall, Vertex: "ip", Time: 0, Duration: 0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ip := res.Vertices["ip"]
	// During the stalled warmup the queue pins at capacity (1024). An
	// unwindowed average over the full 1.2s would report ~170; the
	// measurement window sees only the brief drain plus steady ~1.
	if ip.MeanQueueLen > 20 {
		t.Fatalf("ip mean queue len = %v; warmup congestion leaked into the measurement window", ip.MeanQueueLen)
	}
	if res.Window != 1.0 {
		t.Fatalf("Window = %v, want 1.0", res.Window)
	}
}

func obsConfig(t *testing.T) Config {
	t.Helper()
	g, err := core.NewBuilder("obs").
		AddIngress("in").
		AddIP("ip", 1e9, 1, 16).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "ip", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 4e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     11,
		Duration: 0.05,
	}
}

// Attaching a tracer and registry must not perturb the simulation: the
// observability layer never consumes simulator randomness.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	bare, err := Run(obsConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsConfig(t)
	cfg.Spans = obs.NewTracer(0)
	cfg.Metrics = obs.NewRegistry()
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, traced) {
		t.Fatalf("results diverge with observability attached:\nbare:   %+v\ntraced: %+v", bare, traced)
	}
}

func TestSpanEmission(t *testing.T) {
	cfg := obsConfig(t)
	cfg.Spans = obs.NewTracer(0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spans := cfg.Spans.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	byCat := map[string]int{}
	for _, sp := range spans {
		byCat[sp.Cat]++
		if sp.Dur < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
	}
	for _, cat := range []string{obs.CatVertex, obs.CatService, obs.CatTransfer} {
		if byCat[cat] == 0 {
			t.Errorf("no %q spans in a loaded pipeline run", cat)
		}
	}
	// Phase spans nest inside their packet's vertex spans: for each track,
	// every service span must lie within some vertex span of that track.
	vertexByTrack := map[uint64][]obs.Span{}
	for _, sp := range spans {
		if sp.Cat == obs.CatVertex {
			vertexByTrack[sp.Track] = append(vertexByTrack[sp.Track], sp)
		}
	}
	const eps = 1e-12
	checked := 0
	for _, sp := range spans {
		if sp.Cat != obs.CatService {
			continue
		}
		parents, ok := vertexByTrack[sp.Track]
		if !ok {
			continue // parent may have been evicted or the packet dropped
		}
		nested := false
		for _, v := range parents {
			if sp.Start >= v.Start-eps && sp.Start+sp.Dur <= v.Start+v.Dur+eps {
				nested = true
				break
			}
		}
		if !nested {
			t.Fatalf("service span %+v not nested in any vertex span of track %d", sp, sp.Track)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no service spans with vertex parents checked")
	}
	_ = res
}

func TestSimMetrics(t *testing.T) {
	cfg := obsConfig(t)
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := cfg.Metrics.Gather()
	byName := map[string]float64{}
	for _, sn := range snaps {
		byName[sn.Name] += sn.Value
	}
	if byName["lognic_sim_packets_offered_total"] == 0 {
		t.Fatal("offered counter never incremented")
	}
	if byName["lognic_sim_packets_delivered_total"] == 0 {
		t.Fatal("delivered counter never incremented")
	}
	// Counters cover the whole run including warmup, so they bound the
	// measurement-window counts from above.
	if byName["lognic_sim_packets_delivered_total"] < float64(res.DeliveredPackets) {
		t.Fatalf("delivered counter %v < measured %d", byName["lognic_sim_packets_delivered_total"], res.DeliveredPackets)
	}
	if byName["lognic_sim_events_total"] == 0 {
		t.Fatal("events counter never set")
	}
	var foundLinkGauge, foundVertexGauge bool
	for _, sn := range snaps {
		switch sn.Name {
		case "lognic_sim_link_utilization":
			foundLinkGauge = true
		case "lognic_sim_vertex_utilization":
			foundVertexGauge = true
		}
	}
	if !foundVertexGauge {
		t.Error("missing lognic_sim_vertex_utilization gauge")
	}
	_ = foundLinkGauge // pipeline has no shared links; presence depends on graph
}

// Result.Links must report every characterized link over the measurement
// window, consistent with InterfaceUtil/MemoryUtil.
func TestResultLinks(t *testing.T) {
	g, err := core.NewBuilder("link").
		AddIngress("in").
		AddIP("ip", 10e9, 2, 0).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "ip", Delta: 1, Alpha: 1}).
		AddEdge(core.Edge{From: "ip", To: "out", Delta: 1, Alpha: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    g,
		Hardware: core.Hardware{InterfaceBW: 2e9},
		Profile:  traffic.Fixed("t", unit.Bandwidth(5e8), 1000),
		Seed:     3,
		Duration: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := res.Links["interface"]
	if !ok {
		t.Fatalf("Links missing interface: %v", res.Links)
	}
	if u != res.InterfaceUtil {
		t.Fatalf("Links[interface] = %v, InterfaceUtil = %v; must match", u, res.InterfaceUtil)
	}
	comps := res.AttributionComponents()
	if len(comps) == 0 {
		t.Fatal("no attribution components from a loaded run")
	}
	if _, ok := obs.Bottleneck(obs.RankComponents(comps)); !ok {
		t.Fatal("no bottleneck from a loaded run")
	}
}
