package sim

// Checkpoint/resume for long simulations (ISSUE 6 tentpole). A Checkpoint
// is a complete, serializable snapshot of a run taken between two events:
// the event heap (in array order, so the restored heap has the identical
// shape), every in-flight packet, per-vertex queue contents and windowed
// statistics, shared-link occupancy, the measurement accumulators, and —
// the subtle part — the positions of both RNG streams.
//
// math/rand exposes no way to serialize generator state, so the simulator
// counts instead: the engine RNG runs on a countingSource that tallies
// every underlying state advance, and the traffic generator's position is
// its packet sequence number. Resume rebuilds both from the seed and
// fast-forwards — the engine source by replaying N raw draws, the
// generator by replaying N Next() calls — landing on the exact stream
// state the snapshot captured. Every subsequent draw, event ordering and
// statistic is then bit-identical to an uninterrupted run, which the
// golden-digest harness (internal/simtest) enforces in
// TestCheckpointResumeByteIdentical.
//
// Limitations: custom Config.ServiceTime hooks must derive all randomness
// from the *rand.Rand they are handed (stateless otherwise) — private
// generator state inside a hook is invisible to the snapshot. Config.
// Metrics/Spans/Trace observers attached to a resumed run see only the
// post-resume portion; Result statistics are unaffected because they are
// restored from the snapshot's accumulators.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"

	"lognic/internal/traffic"
)

// countingSource wraps math/rand's seeded source and counts state
// advances. It implements rand.Source64, so rand.Rand takes the identical
// code paths (and therefore produces the identical draw sequence) it
// takes over the bare source. Each Int63 or Uint64 call advances the
// underlying generator by exactly one step, so a single counter positions
// the stream.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type has implemented Source64 since Go
	// 1.8; the assertion is load-bearing for draw-for-draw equivalence.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// skip fast-forwards a freshly seeded source by n raw draws.
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.n = n
}

// checkpointVersion guards the gob schema: a checkpoint written by a
// different engine revision fails Resume loudly instead of silently
// restoring mismatched state.
const checkpointVersion = 1

// Checkpoint is a serializable snapshot of a paused simulation. Build one
// with Config.CheckpointEvery/CheckpointSink (periodic) and restore it
// with Resume. All fields are exported for gob; treat the contents as
// opaque.
type Checkpoint struct {
	Version  int
	Seed     int64
	Duration float64

	Now       float64
	Seq       uint64 // event schedule counter (determinism anchor)
	Processed uint64 // events executed so far
	PacketSeq uint64 // span track ids handed out

	RNGDraws   uint64 // engine source advances
	GenPackets uint64 // traffic generator Next() calls

	Packets []PacketState
	Events  []EventState
	Nodes   []NodeState
	Links   []LinkState

	OfferedPackets   int
	OfferedBytes     float64
	DeliveredPackets int
	DeliveredBytes   float64
	DroppedMeasured  int
	LatencyValues    []float64
	LatencySum       float64
	Faults           FaultStats
}

// PacketState is one live packet (queued or in flight between events).
type PacketState struct {
	ID      uint64
	Size    float64
	Born    float64
	Arrived float64
	Flow    uint64
	Measure bool
	Retries int
}

// EventState is one heap entry with pointers replaced by names/indices.
type EventState struct {
	Time float64
	Seq  uint64
	Node string // vertex name, "" when unset
	Pkt  int32  // index into Packets, -1 when unset
	Link string // link name, "" when unset
	From string
	A, B float64
	Flow uint64
	Idx  int32
	Kind uint8
}

// TWState is a timeWeighted integrator's state.
type TWState struct {
	FirstTime float64
	LastTime  float64
	LastValue float64
	Integral  float64
	Started   bool
}

// QueuedState is one waiting request.
type QueuedState struct {
	Pkt      int32
	Enqueued float64
}

// QueueState captures a vertex's input-queue organization contents.
// Shared is set for the virtual-shared-queue organization; PerEdge (one
// FIFO per upstream, aligned with Upstreams) plus the WRR scheduler
// position for the per-edge organization.
type QueueState struct {
	Shared    []QueuedState
	Upstreams []string
	PerEdge   [][]QueuedState
	Ptr       int
	Grants    int
}

// NodeState is one vertex's runtime state.
type NodeState struct {
	Name         string
	Busy         int
	Down         int
	StalledUntil float64
	Arrivals     int
	Served       int
	Dropped      int
	WaitSum      float64
	BusyTW       TWState
	QueueTW      TWState
	DownTW       TWState
	Queue        QueueState
}

// LinkState is one transmission resource's occupancy and window.
type LinkState struct {
	Name      string
	Bandwidth float64
	Healthy   float64
	BusyUntil float64
	BusySum   float64
	BytesSum  float64
	WinStart  float64
	BusyAtWin float64
}

// Encode serializes the checkpoint (gob: float64 bit patterns survive the
// round trip exactly).
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserializes an Encode'd checkpoint.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, engine speaks %d", c.Version, checkpointVersion)
	}
	return &c, nil
}

func twState(t timeWeighted) TWState {
	return TWState{
		FirstTime: t.firstTime, LastTime: t.lastTime,
		LastValue: t.lastValue, Integral: t.integral, Started: t.started,
	}
}

func twRestore(s TWState) timeWeighted {
	return timeWeighted{
		firstTime: s.FirstTime, lastTime: s.LastTime,
		lastValue: s.LastValue, integral: s.Integral, started: s.Started,
	}
}

// snapshot captures the complete run state between two events.
func (s *Simulator) snapshot() *Checkpoint {
	ck := &Checkpoint{
		Version:          checkpointVersion,
		Seed:             s.cfg.Seed,
		Duration:         s.cfg.Duration,
		Now:              s.now,
		Seq:              s.seq,
		Processed:        s.processed,
		PacketSeq:        s.packetSeq,
		RNGDraws:         s.rngSrc.n,
		GenPackets:       s.gen.Seq(),
		OfferedPackets:   s.offeredPackets,
		OfferedBytes:     s.offeredBytes,
		DeliveredPackets: s.deliveredPackets,
		DeliveredBytes:   s.deliveredBytes,
		DroppedMeasured:  s.droppedMeasured,
		LatencyValues:    append([]float64(nil), s.latencies.values...),
		LatencySum:       s.latencies.sum,
		Faults:           s.faults,
	}

	// Packet table: every live packet is reachable from the event heap
	// (in-service and in-transfer packets ride evServiceDone/evArriveAt
	// events) or a vertex queue. The free list holds only dead records.
	index := map[*packet]int32{}
	register := func(p *packet) int32 {
		if p == nil {
			return -1
		}
		if i, ok := index[p]; ok {
			return i
		}
		i := int32(len(ck.Packets))
		index[p] = i
		ck.Packets = append(ck.Packets, PacketState{
			ID: p.id, Size: p.size, Born: p.born, Arrived: p.arrived,
			Flow: p.flow, Measure: p.measure, Retries: p.retries,
		})
		return i
	}

	linkName := make(map[*link]string, len(s.links))
	for name, l := range s.links {
		linkName[l] = name
	}

	ck.Events = make([]EventState, len(s.events.ev))
	for i := range s.events.ev {
		e := &s.events.ev[i]
		es := EventState{
			Time: e.time, Seq: e.seq, Pkt: register(e.pkt),
			From: e.from, A: e.a, B: e.b, Flow: e.flow,
			Idx: e.idx, Kind: uint8(e.kind),
		}
		if e.node != nil {
			es.Node = e.node.v.Name
		}
		if e.link != nil {
			es.Link = linkName[e.link]
		}
		ck.Events[i] = es
	}

	ck.Nodes = make([]NodeState, 0, len(s.order))
	for _, name := range s.order {
		n := s.nodes[name]
		ns := NodeState{
			Name: name, Busy: n.busy, Down: n.down,
			StalledUntil: n.stalledUntil,
			Arrivals:     n.arrivals, Served: n.served, Dropped: n.dropped,
			WaitSum: n.waitSum,
			BusyTW:  twState(n.busyTW), QueueTW: twState(n.queueTW), DownTW: twState(n.downTW),
		}
		switch q := n.queue.(type) {
		case *sharedQueue:
			ns.Queue.Shared = make([]QueuedState, 0, q.n)
			for i := 0; i < q.n; i++ {
				e := q.buf[(q.head+i)&(len(q.buf)-1)]
				ns.Queue.Shared = append(ns.Queue.Shared, QueuedState{Pkt: register(e.p), Enqueued: e.enqueued})
			}
		case *wrrQueues:
			ns.Queue.Upstreams = append([]string(nil), q.order...)
			ns.Queue.PerEdge = make([][]QueuedState, len(q.queues))
			for qi := range q.queues {
				r := &q.queues[qi]
				for i := 0; i < r.n; i++ {
					e := r.buf[(r.head+i)&(len(r.buf)-1)]
					ns.Queue.PerEdge[qi] = append(ns.Queue.PerEdge[qi], QueuedState{Pkt: register(e.p), Enqueued: e.enqueued})
				}
			}
			ns.Queue.Ptr = q.ptr
			ns.Queue.Grants = q.grants
		}
		ck.Nodes = append(ck.Nodes, ns)
	}

	for _, name := range sortedKeys(s.links) {
		l := s.links[name]
		ck.Links = append(ck.Links, LinkState{
			Name: name, Bandwidth: l.bandwidth, Healthy: l.healthy,
			BusyUntil: l.busyUntil, BusySum: l.busySum, BytesSum: l.bytesSum,
			WinStart: l.winStart, BusyAtWin: l.busyAtWin,
		})
	}
	return ck
}

// Checkpoint returns a snapshot of the simulator's current state. It is
// only valid between events — before RunContext starts, or from inside a
// CheckpointSink; calling it from a Trace/Spans hook mid-dispatch
// captures a half-applied event.
func (s *Simulator) Checkpoint() (*Checkpoint, error) {
	if s.plan != nil {
		// A multi-domain run has no serial-equivalent mid-run snapshot:
		// per-domain clocks straddle the synchronization window. Typed
		// error instead of a corrupt snapshot; see ErrShardedCheckpoint.
		return nil, fmt.Errorf("sim: checkpoint of a %d-domain run: %w", len(s.plan.domains), ErrShardedCheckpoint)
	}
	if s.gen == nil {
		return nil, errors.New("sim: checkpoint before the run started")
	}
	return s.snapshot(), nil
}

// Resume rebuilds a simulator from a checkpoint taken by an earlier run
// of the same Config. The caller must pass a Config equivalent to the
// original (same graph, hardware, profile, seed, duration, policies);
// Resume validates what it can — seed, duration, vertex and link names,
// queue organization — and restores the snapshot on top of the freshly
// built structure. RunContext then continues the run and produces a
// Result byte-identical to an uninterrupted run's.
func Resume(cfg Config, ck *Checkpoint) (*Simulator, error) {
	if ck == nil {
		return nil, errors.New("sim: nil checkpoint")
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, engine speaks %d", ck.Version, checkpointVersion)
	}
	if ck.Seed != cfg.Seed {
		return nil, fmt.Errorf("sim: checkpoint seed %d does not match config seed %d", ck.Seed, cfg.Seed)
	}
	if ck.Duration != cfg.Duration {
		return nil, fmt.Errorf("sim: checkpoint duration %v does not match config duration %v", ck.Duration, cfg.Duration)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if s.plan != nil {
		return nil, fmt.Errorf("sim: resume onto a %d-domain run: %w", len(s.plan.domains), ErrShardedCheckpoint)
	}

	// Stream positions: replay the engine source's raw draws and the
	// traffic generator's packets. Both are pure functions of the seed,
	// so the fast-forwarded state equals the snapshotted state exactly.
	s.rngSrc.skip(ck.RNGDraws)
	gen, err := traffic.NewGenerator(cfg.Profile, SeedStream(cfg.Seed, trafficStreamTag))
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ck.GenPackets; i++ {
		gen.Next()
	}
	s.gen = gen

	// Packet table.
	packets := make([]*packet, len(ck.Packets))
	for i, ps := range ck.Packets {
		packets[i] = &packet{
			id: ps.ID, size: ps.Size, born: ps.Born, arrived: ps.Arrived,
			flow: ps.Flow, measure: ps.Measure, retries: ps.Retries,
		}
	}
	pkt := func(i int32) (*packet, error) {
		if i < 0 {
			return nil, nil
		}
		if int(i) >= len(packets) {
			return nil, fmt.Errorf("sim: checkpoint packet index %d out of range", i)
		}
		return packets[i], nil
	}

	// Node state and queue contents.
	for _, ns := range ck.Nodes {
		n, ok := s.nodes[ns.Name]
		if !ok {
			return nil, fmt.Errorf("sim: checkpoint names unknown vertex %q", ns.Name)
		}
		n.busy = ns.Busy
		n.down = ns.Down
		n.stalledUntil = ns.StalledUntil
		n.arrivals = ns.Arrivals
		n.served = ns.Served
		n.dropped = ns.Dropped
		n.waitSum = ns.WaitSum
		n.busyTW = twRestore(ns.BusyTW)
		n.queueTW = twRestore(ns.QueueTW)
		n.downTW = twRestore(ns.DownTW)
		switch q := n.queue.(type) {
		case *sharedQueue:
			if ns.Queue.PerEdge != nil {
				return nil, fmt.Errorf("sim: checkpoint has per-edge queues at %q but config uses the shared organization", ns.Name)
			}
			for _, e := range ns.Queue.Shared {
				p, err := pkt(e.Pkt)
				if err != nil {
					return nil, err
				}
				q.ring.push(queued{p: p, enqueued: e.Enqueued})
			}
		case *wrrQueues:
			if ns.Queue.Shared != nil {
				return nil, fmt.Errorf("sim: checkpoint has a shared queue at %q but config uses per-edge queues", ns.Name)
			}
			if len(ns.Queue.Upstreams) != len(q.order) {
				return nil, fmt.Errorf("sim: checkpoint has %d upstream queues at %q, config builds %d",
					len(ns.Queue.Upstreams), ns.Name, len(q.order))
			}
			for i, up := range ns.Queue.Upstreams {
				if up != q.order[i] {
					return nil, fmt.Errorf("sim: checkpoint upstream %q at %q[%d], config has %q", up, ns.Name, i, q.order[i])
				}
				for _, e := range ns.Queue.PerEdge[i] {
					p, err := pkt(e.Pkt)
					if err != nil {
						return nil, err
					}
					q.queues[i].push(queued{p: p, enqueued: e.Enqueued})
					q.total++
				}
			}
			if ns.Queue.Ptr < 0 || ns.Queue.Ptr >= len(q.queues) {
				return nil, fmt.Errorf("sim: checkpoint WRR pointer %d out of range at %q", ns.Queue.Ptr, ns.Name)
			}
			q.ptr = ns.Queue.Ptr
			q.grants = ns.Queue.Grants
		}
	}

	// Link occupancy.
	for _, ls := range ck.Links {
		l, ok := s.links[ls.Name]
		if !ok {
			return nil, fmt.Errorf("sim: checkpoint names unknown link %q", ls.Name)
		}
		l.bandwidth = ls.Bandwidth
		l.healthy = ls.Healthy
		l.busyUntil = ls.BusyUntil
		l.busySum = ls.BusySum
		l.bytesSum = ls.BytesSum
		l.winStart = ls.WinStart
		l.busyAtWin = ls.BusyAtWin
	}

	// Event heap, restored in array order: the serialized slice was a
	// valid heap, and an identical array replays the identical pop
	// sequence (the (time, seq) order is total either way).
	s.events.ev = make([]event, len(ck.Events))
	for i, es := range ck.Events {
		p, err := pkt(es.Pkt)
		if err != nil {
			return nil, err
		}
		e := event{
			time: es.Time, seq: es.Seq, pkt: p, from: es.From,
			a: es.A, b: es.B, flow: es.Flow, idx: es.Idx, kind: eventKind(es.Kind),
		}
		if es.Node != "" {
			n, ok := s.nodes[es.Node]
			if !ok {
				return nil, fmt.Errorf("sim: checkpoint event %d names unknown vertex %q", i, es.Node)
			}
			e.node = n
		}
		if es.Link != "" {
			l, ok := s.links[es.Link]
			if !ok {
				return nil, fmt.Errorf("sim: checkpoint event %d names unknown link %q", i, es.Link)
			}
			e.link = l
		}
		if e.kind == evFault && (e.idx < 0 || int(e.idx) >= len(cfg.Faults)) {
			return nil, fmt.Errorf("sim: checkpoint event %d fault index %d out of range", i, e.idx)
		}
		s.events.ev[i] = e
	}

	s.now = ck.Now
	s.seq = ck.Seq
	s.processed = ck.Processed
	s.lastCkpt = ck.Processed
	s.packetSeq = ck.PacketSeq
	s.offeredPackets = ck.OfferedPackets
	s.offeredBytes = ck.OfferedBytes
	s.deliveredPackets = ck.DeliveredPackets
	s.deliveredBytes = ck.DeliveredBytes
	s.droppedMeasured = ck.DroppedMeasured
	s.latencies = sampleSet{values: append([]float64(nil), ck.LatencyValues...), sum: ck.LatencySum}
	s.faults = ck.Faults
	s.faults.EngineDownTime = nil // accumulator never aliases a result map
	s.resumed = true
	return s, nil
}
