package sim

import (
	"testing"

	"lognic/internal/traffic"
	"lognic/internal/unit"
)

func TestSeedStreamDeterministic(t *testing.T) {
	a := SeedStream(42, StreamTag("fig9"), 3, 7)
	b := SeedStream(42, StreamTag("fig9"), 3, 7)
	if a != b {
		t.Fatalf("equal inputs gave %d and %d", a, b)
	}
	if SeedStream(42, StreamTag("fig9"), 3, 7) == SeedStream(42, StreamTag("fig9"), 3, 8) {
		t.Fatal("adjacent replication indices collided")
	}
	if SeedStream(42, StreamTag("fig9"), 3, 7) == SeedStream(43, StreamTag("fig9"), 3, 7) {
		t.Fatal("adjacent base seeds collided")
	}
	if SeedStream(0, StreamTag("fig9")) == SeedStream(1, StreamTag("fig9")) {
		t.Fatal("seed 0 and seed 1 collided: zero must be a distinct valid seed")
	}
}

// TestSeedStreamNoCrossStreamCollision is the regression for the old
// cfg.Seed+1 traffic derivation: for consecutive base seeds, run N's
// traffic stream must not equal run N+1's engine stream (or any other
// cross pairing), which the additive scheme guaranteed it would.
func TestSeedStreamNoCrossStreamCollision(t *testing.T) {
	for base := int64(-100); base < 100; base++ {
		tr := SeedStream(base, trafficStreamTag)
		if tr == SeedStream(base+1, engineStreamTag) {
			t.Fatalf("seed %d traffic stream equals seed %d engine stream", base, base+1)
		}
		if tr == SeedStream(base, engineStreamTag) {
			t.Fatalf("seed %d: traffic and engine streams collided", base)
		}
		// The old scheme: traffic(base) == base+1 == engine seed of base+1.
		if tr == base+1 {
			t.Fatalf("seed %d: traffic stream is still additive", base)
		}
	}
}

func TestStreamTagDistinguishesNames(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range []string{"fig5", "fig6", "fig7", "fig9", "fig10",
		"fig1112", "fig1314", "fig15", "fig1617", "fig1819",
		"sim.engine", "sim.traffic"} {
		tag := StreamTag(name)
		if prev, ok := seen[tag]; ok {
			t.Fatalf("tag collision: %q and %q", prev, name)
		}
		seen[tag] = name
	}
}

// TestRunSeedZeroDistinct checks that Seed 0 is a real seed at the
// simulator level: it must produce a different run than Seed 1.
func TestRunSeedZeroDistinct(t *testing.T) {
	run := func(seed int64) Result {
		g := pipeline(t, 2e9, 2, 64)
		res, err := Run(Config{
			Graph:    g,
			Profile:  traffic.Fixed("t", unit.Bandwidth(1.5e9), 1500),
			Seed:     seed,
			Duration: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r0, r1 := run(0), run(1)
	if r0.DeliveredPackets == r1.DeliveredPackets && r0.MeanLatency == r1.MeanLatency {
		t.Fatal("seed 0 and seed 1 produced identical runs")
	}
	again := run(0)
	if r0.DeliveredPackets != again.DeliveredPackets || r0.MeanLatency != again.MeanLatency {
		t.Fatal("seed 0 is not reproducible")
	}
}
