package sim

// FuzzPartition drives buildPlan over generated chain-fanout graphs and
// asserts the partition invariants that make sharded execution safe:
// every vertex owned exactly once, every edge preserved with positive
// cross-domain lookahead, zero-overhead edges merged, RNG consumers and
// shared-link users kept together, and the whole procedure deterministic.
// For cheap inputs it also runs the strongest invariant there is — a tiny
// differential simulation, serial versus sharded, compared field-for-field.

import (
	"math"
	"reflect"
	"testing"

	"lognic/internal/core"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// fuzzPartitionGraph builds a C-chain fan-out graph from fuzz-chosen bits.
// overheadBits selects which vertices get a positive computation-transfer
// overhead (a zero bit forces the partitioner to merge that vertex with
// its downstream neighbors); mediaBits routes chain edges over the shared
// interface or memory medium, coupling their source vertices.
func fuzzPartitionGraph(t *testing.T, chains, depth int, overheadBits, mediaBits uint16) (*core.Graph, bool) {
	t.Helper()
	b := core.NewBuilder("fuzz-partition").AddIngress("in").AddEgress("out")
	share := 1 / float64(chains)
	bit := 0
	name := func(c, d int) string { return "c" + string(rune('a'+c)) + string(rune('0'+d)) }
	for c := 0; c < chains; c++ {
		prev := "in"
		for d := 0; d < depth; d++ {
			ov := 0.0
			if overheadBits&(1<<(bit%16)) != 0 {
				ov = 1e-6 * float64(1+bit)
			}
			b.AddVertex(core.Vertex{
				Name: name(c, d), Kind: core.KindIP,
				Throughput:  1e9 * (1 + 0.01*float64(bit)),
				Parallelism: 1 + c%2, QueueCapacity: 8,
				Overhead: ov,
			})
			e := core.Edge{From: prev, To: name(c, d), Delta: share}
			switch {
			case mediaBits&(1<<(bit%16)) != 0:
				e.Alpha = 0.5 * share
			case mediaBits&(1<<((bit+7)%16)) != 0:
				e.Beta = 0.5 * share
			}
			b.AddEdge(e)
			prev = name(c, d)
			bit++
		}
		b.AddEdge(core.Edge{From: prev, To: "out", Delta: share})
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

func FuzzPartition(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint16(0xffff), uint16(0), uint8(4), false, false)
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), uint8(2), true, false)
	f.Add(uint8(8), uint8(3), uint16(0xaaaa), uint16(0x0f0f), uint8(3), true, true)
	f.Add(uint8(4), uint8(4), uint16(0xf0f0), uint16(0x00ff), uint8(8), false, true)
	f.Fuzz(func(t *testing.T, nc, nd uint8, overheadBits, mediaBits uint16, nk uint8, deterministic, flowHash bool) {
		chains := 1 + int(nc)%8
		depth := 1 + int(nd)%4
		shards := 2 + int(nk)%7
		g, ok := fuzzPartitionGraph(t, chains, depth, overheadBits, mediaBits)
		if !ok {
			t.Skip("graph rejected")
		}
		// Prime packet sizes keep deterministic-service runs tie-free:
		// with one fixed size, busy-period completions land exactly on
		// unrelated arrivals and the serial/sharded engines break the tie
		// differently (see meshSizes).
		prof, perr := traffic.EqualSplit("f", unit.Bandwidth(0.4e9), 941, 1021, 1103, 1187)
		if perr != nil {
			t.Fatal(perr)
		}
		cfg := Config{
			Graph:                g,
			Hardware:             core.Hardware{InterfaceBW: 50e9, MemoryBW: 40e9},
			Profile:              prof,
			Seed:                 int64(overheadBits)<<16 | int64(mediaBits),
			Duration:             5e-5,
			DeterministicService: deterministic,
			MaxEvents:            200_000,
		}
		if flowHash {
			cfg.RoutePolicy = map[string]RoutePolicy{"in": RouteFlowHash}
		}
		s, err := New(cfg)
		if err != nil {
			t.Skip("config rejected")
		}
		pl, err := buildPlan(s, shards)
		if err != nil {
			t.Fatalf("buildPlan: %v", err)
		}

		// Every vertex exactly once, owner table consistent.
		seen := map[string]int{}
		for d, dom := range pl.domains {
			for _, v := range dom {
				if prev, dup := seen[v]; dup {
					t.Fatalf("vertex %s in domains %d and %d", v, prev, d)
				}
				seen[v] = d
				if pl.owner[v] != d {
					t.Fatalf("owner[%s]=%d but listed in domain %d", v, pl.owner[v], d)
				}
			}
		}
		if len(seen) != len(s.order) {
			t.Fatalf("partition covers %d of %d vertices", len(seen), len(s.order))
		}
		if len(pl.domains) > shards {
			t.Fatalf("%d domains from %d shards", len(pl.domains), shards)
		}
		for _, d := range []int{pl.rootDom, pl.intfDom, pl.memDom} {
			if d < 0 || d >= len(pl.domains) {
				t.Fatalf("special domain %d outside [0,%d)", d, len(pl.domains))
			}
		}
		if pl.owner["in"] != pl.rootDom {
			t.Fatalf("ingress owned by %d, root is %d", pl.owner["in"], pl.rootDom)
		}

		// Edge preservation: recompute the cross-edge census and the
		// lookahead from scratch and compare; zero-overhead cross edges are
		// forbidden outright.
		cross, lmin := 0, math.Inf(1)
		intfDom, memDom, rngDom := -1, -1, -1
		for _, name := range s.order {
			n := s.nodes[name]
			for i := range n.outEdges {
				rc := &n.outEdges[i]
				if pl.owner[name] == pl.owner[rc.to] {
					continue
				}
				cross++
				if rc.overhead <= 0 {
					t.Fatalf("zero-lookahead edge %s->%s crosses domains", name, rc.to)
				}
				if rc.overhead < lmin {
					lmin = rc.overhead
				}
			}
			for i := range n.outEdges {
				if n.outEdges[i].intfPerByte > 0 {
					if intfDom >= 0 && intfDom != pl.owner[name] {
						t.Fatalf("interface users split across domains %d and %d", intfDom, pl.owner[name])
					}
					intfDom = pl.owner[name]
				}
				if n.outEdges[i].memPerByte > 0 {
					if memDom >= 0 && memDom != pl.owner[name] {
						t.Fatalf("memory users split across domains %d and %d", memDom, pl.owner[name])
					}
					memDom = pl.owner[name]
				}
			}
			if s.consumesRNG(n) {
				if rngDom >= 0 && rngDom != pl.owner[name] {
					t.Fatalf("RNG consumers split across domains %d and %d", rngDom, pl.owner[name])
				}
				rngDom = pl.owner[name]
			}
		}
		if cross != pl.crossEdges {
			t.Fatalf("crossEdges=%d, recount=%d", pl.crossEdges, cross)
		}
		if cross > 0 && lmin != pl.lookahead {
			t.Fatalf("lookahead=%v, recomputed min overhead=%v", pl.lookahead, lmin)
		}
		if intfDom >= 0 && intfDom != pl.intfDom {
			t.Fatalf("intfDom=%d, interface users in %d", pl.intfDom, intfDom)
		}
		if memDom >= 0 && memDom != pl.memDom {
			t.Fatalf("memDom=%d, memory users in %d", pl.memDom, memDom)
		}

		// Fault routing stays in range for every targetable vertex and link.
		for _, name := range s.order {
			if d := pl.faultDomain(&Fault{Kind: VertexStall, Vertex: name}); d < 0 || d >= len(pl.domains) {
				t.Fatalf("faultDomain(%s)=%d out of range", name, d)
			}
		}
		for name := range s.links {
			if d := pl.linkDomain(name); d < 0 || d >= len(pl.domains) {
				t.Fatalf("linkDomain(%s)=%d out of range", name, d)
			}
		}

		// Determinism: a second build of the same plan is identical.
		s2, err := New(cfg)
		if err != nil {
			t.Fatalf("second New: %v", err)
		}
		pl2, err := buildPlan(s2, shards)
		if err != nil {
			t.Fatalf("second buildPlan: %v", err)
		}
		if !reflect.DeepEqual(pl, pl2) {
			t.Fatalf("plan not deterministic:\n%+v\n%+v", pl, pl2)
		}

		// Stats merge round-trip: a short differential run must agree
		// field-for-field with the serial engine (multi-domain plans only;
		// single-domain plans are the serial engine).
		if len(pl.domains) < 2 {
			return
		}
		serial, serr := Run(cfg)
		scfg := cfg
		scfg.Shards = shards
		sharded, xerr := Run(scfg)
		if (serr == nil) != (xerr == nil) {
			t.Fatalf("serial err=%v, sharded err=%v", serr, xerr)
		}
		if serr == nil && !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("differential mismatch:\nserial  %+v\nsharded %+v", serial, sharded)
		}
	})
}
