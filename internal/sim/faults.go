package sim

// This file implements fault injection for the simulator: timed hardware
// degradations applied as first-class events in the event heap. Real
// SmartNIC deployments lose accelerator engines, see links flap, and
// suffer transient firmware stalls (the partial-failure regimes the
// off-path DPU measurement studies document); a performance model that can
// only answer "which component bottlenecks first" for healthy hardware
// misses the operating points operators care most about. The analytical
// counterpart is core.Degrade, which folds a steady-state fault scenario
// into the model parameters; TestDegradedCrossValidation checks the two
// agree.

import (
	"fmt"
	"math"
	"sort"

	"lognic/internal/core"
)

// FaultKind classifies a fault injection.
type FaultKind int

// Fault kinds.
const (
	// EngineDown removes Count of a vertex's D parallel engines at Time.
	// In-flight services finish, but the lost engines accept no new work
	// until a matching EngineUp restores them.
	EngineDown FaultKind = iota
	// EngineUp restores Count previously-lost engines of a vertex.
	EngineUp
	// LinkDegrade scales a transmission resource's bandwidth by Factor
	// over [Time, Time+Duration) — or permanently when Duration is zero.
	// Link names: "interface", "memory", or "from->to" for an edge with a
	// characterized dedicated bandwidth.
	LinkDegrade
	// VertexStall freezes a vertex's engines over [Time, Time+Duration):
	// no new service starts; arrivals queue (and overflow) as usual.
	VertexStall
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case EngineDown:
		return "engine-down"
	case EngineUp:
		return "engine-up"
	case LinkDegrade:
		return "link-degrade"
	case VertexStall:
		return "vertex-stall"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one timed injection.
type Fault struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Time is the injection timestamp (simulated seconds).
	Time float64
	// Vertex names the target vertex (EngineDown, EngineUp, VertexStall).
	Vertex string
	// Link names the target transmission resource (LinkDegrade):
	// "interface", "memory", or "from->to" for a characterized edge.
	Link string
	// Count is the number of engines affected (EngineDown, EngineUp).
	// Defaults to 1.
	Count int
	// Factor scales the link bandwidth (LinkDegrade). Must be positive;
	// values below 1 degrade, values above 1 would model an upgrade.
	Factor float64
	// Duration bounds the fault window (LinkDegrade, VertexStall).
	// Zero means permanent for LinkDegrade; VertexStall requires a
	// positive window.
	Duration float64
}

// FaultSchedule is a set of timed injections. Order does not matter;
// simultaneous faults apply in schedule order.
type FaultSchedule []Fault

// validate checks the schedule against the simulator's graph and links.
func (fs FaultSchedule) validate(s *Simulator) error {
	for i, f := range fs {
		if f.Time < 0 || math.IsNaN(f.Time) || math.IsInf(f.Time, 0) {
			return fmt.Errorf("sim: fault %d (%s): invalid time %v", i, f.Kind, f.Time)
		}
		switch f.Kind {
		case EngineDown, EngineUp:
			if _, ok := s.nodes[f.Vertex]; !ok {
				return fmt.Errorf("sim: fault %d (%s): unknown vertex %q", i, f.Kind, f.Vertex)
			}
			if f.Count < 0 {
				return fmt.Errorf("sim: fault %d (%s): negative engine count %d", i, f.Kind, f.Count)
			}
		case VertexStall:
			if _, ok := s.nodes[f.Vertex]; !ok {
				return fmt.Errorf("sim: fault %d (%s): unknown vertex %q", i, f.Kind, f.Vertex)
			}
			if f.Duration <= 0 || math.IsNaN(f.Duration) || math.IsInf(f.Duration, 0) {
				return fmt.Errorf("sim: fault %d (%s): stall needs a positive duration, got %v", i, f.Kind, f.Duration)
			}
		case LinkDegrade:
			if _, ok := s.links[f.Link]; !ok {
				return fmt.Errorf("sim: fault %d (%s): unknown link %q (want \"interface\", \"memory\", or a characterized \"from->to\" edge)", i, f.Kind, f.Link)
			}
			if f.Factor <= 0 || math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("sim: fault %d (%s): invalid factor %v", i, f.Kind, f.Factor)
			}
			if f.Duration < 0 || math.IsNaN(f.Duration) || math.IsInf(f.Duration, 0) {
				return fmt.Errorf("sim: fault %d (%s): invalid duration %v", i, f.Kind, f.Duration)
			}
		default:
			return fmt.Errorf("sim: fault %d: unknown kind %v", i, f.Kind)
		}
	}
	return nil
}

// RetryPolicy models a host re-issuing dropped requests (DMA reads,
// doorbells) to one vertex: a rejected arrival is re-presented after an
// exponentially growing backoff instead of being lost, up to MaxRetries
// attempts per packet.
type RetryPolicy struct {
	// MaxRetries bounds the re-issues per packet. Zero disables retrying.
	MaxRetries int
	// Backoff is the first re-issue delay (seconds); attempt k waits
	// Backoff·2^(k-1). A zero backoff re-presents immediately — valid,
	// but an overloaded queue then loops at one timestamp until the
	// packet's budget or the run harness watchdog ends it.
	Backoff float64
}

// validate checks one vertex's retry policy.
func (r RetryPolicy) validate(vertex string) error {
	if r.MaxRetries < 0 {
		return fmt.Errorf("sim: retry policy for %q: negative MaxRetries %d", vertex, r.MaxRetries)
	}
	if r.Backoff < 0 || math.IsNaN(r.Backoff) || math.IsInf(r.Backoff, 0) {
		return fmt.Errorf("sim: retry policy for %q: invalid backoff %v", vertex, r.Backoff)
	}
	return nil
}

// FaultStats counts fault activity over a run. All counters cover the
// whole run, not just the measurement window: faults are hardware events,
// not traffic.
type FaultStats struct {
	// EngineDownEvents .. VertexStallEvents count applied injections by
	// kind (LinkRestores and StallRecoveries count the scheduled
	// recoveries that fired).
	EngineDownEvents  int
	EngineUpEvents    int
	LinkDegradeEvents int
	LinkRestores      int
	VertexStallEvents int
	StallRecoveries   int
	// Retries counts re-issued arrivals under the retry policy;
	// RetryDrops counts packets still rejected after exhausting their
	// retry budget.
	Retries    int
	RetryDrops int
	// EngineDownTime maps vertex name to engine-seconds of lost capacity
	// (the integral of down engines over time). Only vertices that lost
	// engines appear.
	EngineDownTime map[string]float64
}

// FaultStats returns the fault activity accumulated so far, including the
// engine-seconds of capacity lost up to the current simulated time. After
// a completed run it matches Result.Faults; after an aborted run (context
// cancelled, budget or stall) it reports the injections, retries and
// down-time that fired before the abort, which a harness can use to
// attribute the partial run.
func (s *Simulator) FaultStats() FaultStats {
	fs := s.faults
	fs.EngineDownTime = nil // never alias the live accumulator's map
	for _, name := range s.order {
		n := s.nodes[name]
		if n.downTW.started {
			if fs.EngineDownTime == nil {
				fs.EngineDownTime = map[string]float64{}
			}
			fs.EngineDownTime[name] = n.downTW.total(s.now)
		}
	}
	return fs
}

// scheduleFaults inserts the schedule's injections (and their recoveries)
// into the event queue.
func (s *Simulator) scheduleFaults() {
	for i := range s.cfg.Faults {
		s.schedule(s.cfg.Faults[i].Time, event{kind: evFault, idx: int32(i)})
	}
}

// applyFault executes one injection at the current simulation time. idx is
// the fault's index in the schedule: recovery events carry it so their
// heap keys stay partition-invariant under sharding.
func (s *Simulator) applyFault(f Fault, idx int32) {
	switch f.Kind {
	case EngineDown:
		n := s.nodes[f.Vertex]
		count := f.Count
		if count == 0 {
			count = 1
		}
		n.down += count
		if n.down > n.engines {
			n.down = n.engines
		}
		n.downTW.set(s.now, float64(n.down))
		s.faults.EngineDownEvents++
		s.traceFault(TraceFaultInject, f.Vertex)
	case EngineUp:
		n := s.nodes[f.Vertex]
		count := f.Count
		if count == 0 {
			count = 1
		}
		n.down -= count
		if n.down < 0 {
			n.down = 0
		}
		n.downTW.set(s.now, float64(n.down))
		s.faults.EngineUpEvents++
		s.traceFault(TraceFaultRecover, f.Vertex)
		s.drain(n)
	case LinkDegrade:
		l := s.links[f.Link]
		l.bandwidth = l.healthy * f.Factor
		s.faults.LinkDegradeEvents++
		s.traceFault(TraceFaultInject, f.Link)
		if f.Duration > 0 {
			s.schedule(s.now+f.Duration, event{kind: evLinkRestore, link: l, from: f.Link, idx: idx})
		}
	case VertexStall:
		n := s.nodes[f.Vertex]
		until := s.now + f.Duration
		if until > n.stalledUntil {
			n.stalledUntil = until
		}
		s.faults.VertexStallEvents++
		s.traceFault(TraceFaultInject, f.Vertex)
		s.schedule(until, event{kind: evStallRecover, node: n, idx: idx})
	}
}

// restoreLink ends a timed LinkDegrade: the evLinkRestore action.
func (s *Simulator) restoreLink(l *link, name string) {
	l.bandwidth = l.healthy
	s.faults.LinkRestores++
	s.traceFault(TraceFaultRecover, name)
}

// recoverStall ends a VertexStall window: the evStallRecover action.
func (s *Simulator) recoverStall(n *node) {
	if s.now < n.stalledUntil {
		return // a longer overlapping stall superseded this one
	}
	s.faults.StallRecoveries++
	s.traceFault(TraceFaultRecover, n.v.Name)
	s.drain(n)
}

// canStart reports whether the vertex has a healthy idle engine.
func (s *Simulator) canStart(n *node) bool {
	return n.busy < n.engines-n.down && s.now >= n.stalledUntil
}

// drain dispatches queued work onto engines freed by a recovery.
func (s *Simulator) drain(n *node) {
	for s.canStart(n) {
		q, ok := n.queue.pop()
		if !ok {
			return
		}
		n.queueTW.set(s.now, float64(n.queue.length()))
		s.startService(n, q.p, s.now-q.enqueued)
	}
}

// traceFault emits a packet-less trace event for a fault transition.
// Sharded domains buffer it in emission order for the merged replay.
func (s *Simulator) traceFault(kind TraceKind, where string) {
	if s.sh != nil {
		if s.sh.traceOn {
			s.sh.addTrace(kind, s.now, where, 0, 0)
		}
		return
	}
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(TraceEvent{Kind: kind, Time: s.now, Vertex: where})
}

// PermanentFaults converts a steady-state degradation scenario (the input
// of core.Degrade) into a schedule of time-zero, never-recovered faults,
// so the simulator can measure the operating point the degraded model
// predicts.
func PermanentFaults(d core.Degradation) FaultSchedule {
	var fs FaultSchedule
	for _, v := range sortedKeys(d.EnginesDown) {
		fs = append(fs, Fault{Kind: EngineDown, Vertex: v, Count: d.EnginesDown[v]})
	}
	for _, l := range sortedKeys(d.LinkFactors) {
		fs = append(fs, Fault{Kind: LinkDegrade, Link: l, Factor: d.LinkFactors[l]})
	}
	return fs
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// schedules.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
