package sim

// Sharded event engine: a conservative-lookahead parallel DES over the
// domains partition.go carves out of the execution graph.
//
// Each domain runs the unmodified serial machinery — the 4-ary value
// heap, packet free list and ring queues of the PR 4 engine — on its own
// goroutine, over its own vertices, links and statistics. Domains
// synchronize with a bounded-lag barrier window (the YAWNS scheme): every
// round the coordinator computes the global floor (minimum heap top over
// all domains) and releases each domain to process events strictly below
// floor+Lmin, where Lmin is the minimum cross-domain edge lookahead. A
// packet crossing domains departs at its source no earlier than the
// current event time plus the edge's computation-transfer overhead
// (≥ Lmin), so every cross event lands at or beyond the window end —
// no domain ever receives a straggler, and floors strictly increase,
// which is the liveness argument.
//
// Determinism contract. In sharded mode the heap key (event.seq) is not a
// schedule counter but an intrinsic, partition-invariant identity:
//
//	packet events:  (packet id + 1) << 32 | kind
//	next arrival:   (next packet id + 1) << 32
//	fault inject:   fault index + 1
//	link restore:   1<<20 + fault index
//	stall recover:  2<<20 + fault index
//	warmup rebase:  3<<20
//
// A live packet has exactly one pending event and control indices are
// unique, so (time, key) totally orders every coexisting event — and the
// order is the same under any partition. Same-time events in different
// domains are causally independent (cross-domain influence always travels
// over positive-lookahead edges), so the run is equivalent to executing
// the global (time, key) sequence on one core: results are byte-identical
// at every shard count. Equality with the *serial* engine additionally
// requires that no two same-time events disagree between key order and
// serial schedule order; ties between unrelated events at exactly equal
// float64 timestamps are the only divergence risk, and the differential
// golden suite pins the scenarios we ship. Control events sort before
// packet events at equal times by construction.
//
// Statistics merge deterministically after the run: per-vertex and
// per-link state is taken from the owning domain, integer counters sum,
// and deliveries replay into the latency accumulators in global
// (time, packet id) order — the serial accumulation order — so float
// summation order is preserved bit-for-bit. Trace events buffer
// per-domain in emission order and replay through a time-keyed stable
// merge that preserves that order.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"lognic/internal/traffic"
)

// ErrShardedCheckpoint reports that checkpoint/resume was requested on a
// sharded run. A multi-domain run has no serial-equivalent mid-run
// snapshot (per-domain clocks straddle the window), so the combination is
// a typed configuration error rather than silent corruption; run with
// Shards ≤ 1 to checkpoint.
var ErrShardedCheckpoint = errors.New("sim: checkpointing is unsupported with Shards > 1")

// Control-event key bases: distinct per kind so same-time control events
// order deterministically, all far below the first packet key (1<<32).
const (
	keyLinkRestore  = 1 << 20
	keyStallRecover = 2 << 20
	keyWarmup       = 3 << 20
)

// intrinsicKey computes the partition-invariant heap key for one event
// scheduled in sharded mode.
func (s *Simulator) intrinsicKey(e *event) uint64 {
	switch e.kind {
	case evArriveAt, evServiceDone:
		return (e.pkt.id+1)<<32 | uint64(e.kind)
	case evArrival:
		// The arrival being scheduled will create packet packetSeq+1.
		return (s.packetSeq + 2) << 32
	case evFault:
		return uint64(e.idx) + 1
	case evLinkRestore:
		return keyLinkRestore + uint64(e.idx)
	case evStallRecover:
		return keyStallRecover + uint64(e.idx)
	default: // evWarmup
		return keyWarmup
	}
}

// xmsg is one packet crossing domains: everything needed to rematerialize
// it from the receiver's free list. Packet ids are assigned only by the
// root domain's arrival pump, so identity is global.
type xmsg struct {
	t        float64
	to, from string
	id       uint64
	size     float64
	born     float64
	flow     uint64
	retries  int
	measure  bool
}

// delivery is one measured egress completion, buffered per domain and
// replayed in global (time, id) order during the merge.
type delivery struct {
	t    float64
	id   uint64
	born float64
	size float64
}

// shardTrace is one buffered trace event. A domain's buffer is in emission
// order — the exact order the serial engine would have emitted those events
// — and event times within a buffer are non-decreasing, so the post-run
// merge is a k-way merge by time that preserves each domain's emission
// order (a stable sort over the domain-ordered concatenation). One event
// can emit several trace records at one timestamp (a departure freeing an
// engine for a queued packet, an arrival delivered inline); keying the
// merge on anything per-packet would tear those apart.
type shardTrace struct {
	t  float64
	ev TraceEvent
}

// shardCtx is the per-domain sharding state hung off a domain's Simulator.
// Its presence (s.sh != nil) is what switches schedule/depart/complete/
// trace onto the sharded paths.
type shardCtx struct {
	dom        int
	run        *shardedRun
	work       chan float64 // coordinator → worker: process up to this horizon
	outbox     [][]xmsg     // per-target-domain cross events, drained at barriers
	deliveries []delivery
	traces     []shardTrace
	traceOn    bool
	stalled    int
	sinceCheck uint64 // events since the last abort-condition poll
}

// send buffers a cross-domain packet hand-off; the local record returns to
// the free list (serial depart semantics end at the domain boundary).
func (s *Simulator) sendRemote(rc *routeChoice, from string, t float64, p *packet) {
	sh := s.sh
	sh.outbox[rc.remoteDom] = append(sh.outbox[rc.remoteDom], xmsg{
		t: t, to: rc.to, from: from,
		id: p.id, size: p.size, born: p.born, flow: p.flow,
		retries: p.retries, measure: p.measure,
	})
	s.freePacket(p)
}

// receive materializes one cross-domain packet from the local free list —
// without consuming a packet id — and schedules its arrival. Called by the
// coordinator between rounds, never concurrently with the domain's loop.
func (s *Simulator) receive(m *xmsg) {
	var p *packet
	if n := len(s.free); n > 0 {
		p = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		p = new(packet)
	}
	*p = packet{id: m.id, size: m.size, born: m.born, flow: m.flow, measure: m.measure, retries: m.retries}
	s.schedule(m.t, event{kind: evArriveAt, node: s.nodes[m.to], from: m.from, pkt: p})
}

// addTrace buffers one trace event for the deterministic post-run replay.
func (sh *shardCtx) addTrace(kind TraceKind, t float64, vertex string, size, born float64) {
	sh.traces = append(sh.traces, shardTrace{
		t:  t,
		ev: TraceEvent{Kind: kind, Time: t, Vertex: vertex, Size: size, Born: born},
	})
}

// shardedRun coordinates one sharded execution.
type shardedRun struct {
	ctx       context.Context
	doms      []*Simulator
	maxEvents uint64
	total     atomic.Uint64 // events processed across all domains (flushed)
	aborted   atomic.Bool
	errMu     sync.Mutex
	errs      []error // first error per domain; [len(doms)] is the coordinator
	wg        sync.WaitGroup
}

// fail records a domain's first error and aborts the run. The eventual
// returned error is the lowest-indexed domain's, so concurrent failures
// surface deterministically.
func (r *shardedRun) fail(dom int, err error) {
	r.errMu.Lock()
	if r.errs[dom] == nil {
		r.errs[dom] = err
	}
	r.errMu.Unlock()
	r.aborted.Store(true)
}

func (r *shardedRun) firstErr() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	for _, err := range r.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flush publishes a domain's locally-counted events to the shared total.
func (r *shardedRun) flush(sh *shardCtx) {
	if sh.sinceCheck > 0 {
		r.total.Add(sh.sinceCheck)
		sh.sinceCheck = 0
	}
}

// processWindow runs one domain's loop over events strictly below the
// horizon — the serial RunContext inner loop with per-domain watchdog and
// the shared abort conditions polled on the serial cadence.
func (r *shardedRun) processWindow(d *Simulator, horizon float64) {
	sh := d.sh
	dur := d.cfg.Duration
	for d.events.len() > 0 {
		if top := d.events.ev[0].time; top >= horizon || top > dur {
			return
		}
		e := d.events.pop()
		if e.time > d.now {
			sh.stalled = 0
		} else if sh.stalled++; sh.stalled > stallWindow {
			r.fail(sh.dom, fmt.Errorf("%w: %d events at t=%v (shard %d)", ErrStalled, sh.stalled, d.now, sh.dom))
			return
		}
		d.now = e.time
		d.dispatch(&e)
		d.processed++
		if sh.sinceCheck++; sh.sinceCheck >= ctxCheckInterval {
			r.flush(sh)
			if r.aborted.Load() {
				return
			}
			if err := r.ctx.Err(); err != nil {
				r.fail(sh.dom, fmt.Errorf("sim: run aborted at t=%v after %d events: %w", d.now, r.total.Load(), err))
				return
			}
			if r.maxEvents > 0 && r.total.Load() >= r.maxEvents {
				r.fail(sh.dom, fmt.Errorf("%w: budget %d at t=%v", ErrBudgetExceeded, r.maxEvents, d.now))
				return
			}
		}
	}
}

// runSharded executes the plan: build one executor per domain, seed them,
// then run bounded-lag rounds until every heap is past Duration.
func (s *Simulator) runSharded(ctx context.Context) (Result, error) {
	pl := s.plan
	k := len(pl.domains)
	r := &shardedRun{ctx: ctx, maxEvents: s.cfg.MaxEvents, errs: make([]error, k+1)}

	doms := make([]*Simulator, k)
	for i := range doms {
		dcfg := s.cfg
		dcfg.Shards = 0
		dcfg.Trace = nil // buffered via shardCtx and replayed post-run
		dcfg.Progress = nil
		dcfg.CheckpointEvery = 0
		dcfg.CheckpointSink = nil
		d, err := New(dcfg)
		if err != nil {
			return Result{}, fmt.Errorf("sim: building shard %d: %w", i, err)
		}
		d.sh = &shardCtx{
			dom: i, run: r,
			work:    make(chan float64, 1),
			outbox:  make([][]xmsg, k),
			traceOn: s.cfg.Trace != nil,
		}
		for name, nd := range d.nodes {
			if pl.owner[name] != i {
				continue
			}
			for j := range nd.outEdges {
				if t := pl.owner[nd.outEdges[j].to]; t != i {
					nd.outEdges[j].remote = true
					nd.outEdges[j].remoteDom = int32(t)
				}
			}
		}
		doms[i] = d
	}
	r.doms = doms

	// Seed: the arrival pump lives in the root domain; every domain
	// rebases its own observation windows at warmup; each fault fires in
	// the domain owning its target. The fault's global index rides along
	// so trace keys and recovery events stay partition-invariant.
	root := doms[pl.rootDom]
	gen, err := traffic.NewGenerator(s.cfg.Profile, SeedStream(s.cfg.Seed, trafficStreamTag))
	if err != nil {
		return Result{}, err
	}
	root.gen = gen
	first := gen.Next()
	root.schedule(first.Time, event{kind: evArrival, a: first.Size, flow: first.Flow})
	for i := range s.cfg.Faults {
		d := doms[pl.faultDomain(&s.cfg.Faults[i])]
		d.schedule(s.cfg.Faults[i].Time, event{kind: evFault, idx: int32(i)})
	}
	for _, d := range doms {
		d.schedule(d.warmEnd, event{kind: evWarmup})
	}

	for _, d := range doms {
		go func(d *Simulator) {
			for horizon := range d.sh.work {
				r.processWindow(d, horizon)
				r.wg.Done()
			}
		}(d)
	}
	defer func() {
		for _, d := range doms {
			close(d.sh.work)
		}
	}()

	for !r.aborted.Load() {
		if err := ctx.Err(); err != nil {
			r.fail(k, fmt.Errorf("sim: run aborted at t=%v after %d events: %w", s.now, r.total.Load(), err))
			break
		}
		floor := math.Inf(1)
		for _, d := range doms {
			if d.events.len() > 0 && d.events.ev[0].time < floor {
				floor = d.events.ev[0].time
			}
		}
		if floor > s.cfg.Duration {
			break // includes +Inf: every heap drained or past the end
		}
		s.now = floor
		horizon := floor + pl.lookahead
		if !(horizon > floor) {
			// Lmin underflowed against a large floor: fall back to
			// one-timestamp windows rather than stalling.
			horizon = math.Nextafter(floor, math.Inf(1))
		}
		r.wg.Add(k)
		for _, d := range doms {
			d.sh.work <- horizon
		}
		r.wg.Wait()

		// Barrier: deliver cross-domain events (single-threaded here —
		// workers are parked until the next round).
		for _, d := range doms {
			sh := d.sh
			r.flush(sh)
			for tgt := range sh.outbox {
				box := sh.outbox[tgt]
				if len(box) == 0 {
					continue
				}
				rd := doms[tgt]
				for m := range box {
					rd.receive(&box[m])
				}
				sh.outbox[tgt] = box[:0]
			}
		}
		if s.cfg.Progress != nil {
			s.cfg.Progress(Progress{Events: r.total.Load(), SimTime: floor})
		}
		// MaxEvents is approximate under sharding: domains flush local
		// counts every ctxCheckInterval events, so the run stops within
		// one flush quantum per domain of the serial abort point.
		if r.maxEvents > 0 && r.total.Load() >= r.maxEvents {
			r.fail(k, fmt.Errorf("%w: budget %d at t=%v", ErrBudgetExceeded, r.maxEvents, floor))
			break
		}
	}

	if err := r.firstErr(); err != nil {
		// Surface partial fault activity like the serial engine does.
		s.mergeFaults(doms)
		return Result{}, err
	}
	s.now = s.cfg.Duration
	return s.mergeResult(doms), nil
}

// mergeFaults folds the domains' fault counters and vertex state into the
// user-facing simulator, so FaultStats() attributes partial runs.
func (s *Simulator) mergeFaults(doms []*Simulator) {
	for _, d := range doms {
		s.faults.EngineDownEvents += d.faults.EngineDownEvents
		s.faults.EngineUpEvents += d.faults.EngineUpEvents
		s.faults.LinkDegradeEvents += d.faults.LinkDegradeEvents
		s.faults.LinkRestores += d.faults.LinkRestores
		s.faults.VertexStallEvents += d.faults.VertexStallEvents
		s.faults.StallRecoveries += d.faults.StallRecoveries
		s.faults.Retries += d.faults.Retries
		s.faults.RetryDrops += d.faults.RetryDrops
	}
	for name, dom := range s.plan.owner {
		s.nodes[name] = doms[dom].nodes[name]
	}
}

// mergeResult deterministically folds the domains' state into the
// user-facing simulator and collects the Result through the serial path.
func (s *Simulator) mergeResult(doms []*Simulator) Result {
	pl := s.plan
	for _, d := range doms {
		d.now = d.cfg.Duration
		s.processed += d.processed
		s.droppedMeasured += d.droppedMeasured
	}
	root := doms[pl.rootDom]
	s.offeredPackets = root.offeredPackets
	s.offeredBytes = root.offeredBytes
	s.packetSeq = root.packetSeq
	s.mergeFaults(doms)

	// Adopt link state from each owner. Dedicated links live with the
	// source vertex; shared links with their user clique.
	s.intf = doms[pl.intfDom].intf
	s.mem = doms[pl.memDom].mem
	for name := range s.links {
		s.links[name] = doms[pl.linkDomain(name)].links[name]
	}

	// Replay deliveries in global (time, id) order — the order the serial
	// engine accumulated them — so float sums match bit-for-bit.
	var recs []delivery
	for _, d := range doms {
		recs = append(recs, d.sh.deliveries...)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].t != recs[j].t {
			return recs[i].t < recs[j].t
		}
		return recs[i].id < recs[j].id
	})
	for i := range recs {
		s.deliveredPackets++
		s.deliveredBytes += recs[i].size
		s.latencies.add(recs[i].t - recs[i].born)
	}

	if s.cfg.Trace != nil {
		// k-way merge by time: the stable sort over the domain-ordered
		// concatenation keeps every domain's emission order, which is the
		// serial order whenever same-time activity is intra-domain (the
		// tie-freeness the differential suite pins).
		var traces []shardTrace
		for _, d := range doms {
			traces = append(traces, d.sh.traces...)
		}
		sort.SliceStable(traces, func(i, j int) bool {
			return traces[i].t < traces[j].t
		})
		for i := range traces {
			s.cfg.Trace(traces[i].ev)
		}
	}
	return s.collect()
}
