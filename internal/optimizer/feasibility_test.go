package optimizer

import (
	"testing"

	"lognic/internal/core"
	"lognic/internal/numopt"
)

// loadModel builds a single-IP model whose offered load is the parameter.
func loadModel(t *testing.T) func(x []float64) (core.Model, error) {
	t.Helper()
	g, err := core.NewBuilder("feas").
		AddIngress("in").
		AddIP("ip", 1e9, 1, 32).
		AddEgress("out").
		Connect("in", "ip", 1).
		Connect("ip", "out", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return func(x []float64) (core.Model, error) {
		return core.Model{
			Graph:   g,
			Traffic: core.Traffic{IngressBW: x[0], Granularity: 1024},
		}, nil
	}
}

func TestSatisfyFeasible(t *testing.T) {
	// Find a load with throughput ≥ 0.5 GB/s and latency ≤ 5µs. The
	// latency at ρ=0.5 is ~2µs, so a band of feasible loads exists.
	res, err := Satisfy(FeasibilityProblem{
		Build:  loadModel(t),
		Bounds: numopt.Bounds{Lo: []float64{1e8}, Hi: []float64{0.99e9}},
		Requirements: []Requirement{
			ThroughputFloor(0.5e9),
			LatencyBound(5e-6),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("expected feasible, residuals %+v", res.Residuals)
	}
	if res.X[0] < 0.5e9 {
		t.Fatalf("x = %v violates the throughput floor", res.X[0])
	}
	lr, err := res.Model.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if lr.Attainable > 5e-6 {
		t.Fatalf("latency %v violates the bound", lr.Attainable)
	}
	for _, r := range res.Residuals {
		if r.Violation > 1e-9 {
			t.Fatalf("residual %+v should be satisfied", r)
		}
	}
}

func TestSatisfyInfeasibleReportsRelaxation(t *testing.T) {
	// Demand more throughput than the IP can serve AND tiny latency: no
	// load satisfies both. The residuals must name the blockers.
	res, err := Satisfy(FeasibilityProblem{
		Build:  loadModel(t),
		Bounds: numopt.Bounds{Lo: []float64{1e8}, Hi: []float64{0.99e9}},
		Requirements: []Requirement{
			ThroughputFloor(2e9), // impossible: capacity is 1e9
			LatencyBound(100e-6), // easy
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("expected infeasible")
	}
	// Most violated first, and it's the throughput floor.
	if len(res.Residuals) != 2 {
		t.Fatalf("residuals = %+v", res.Residuals)
	}
	if res.Residuals[0].Name != ThroughputFloor(2e9).Name {
		t.Fatalf("top residual = %+v, want the throughput floor", res.Residuals[0])
	}
	if res.Residuals[0].Violation <= 0 {
		t.Fatal("top residual should be violated")
	}
	if res.Residuals[1].Violation > 0 {
		t.Fatal("latency bound should be satisfiable")
	}
}

func TestSatisfyPreferencesSteerWithinFeasibleSet(t *testing.T) {
	// Any load in [0.3, 0.9] GB/s meets the floor; preferring max
	// throughput should push toward the top of the band, preferring min
	// latency toward the bottom.
	base := FeasibilityProblem{
		Build:  loadModel(t),
		Bounds: numopt.Bounds{Lo: []float64{0.3e9}, Hi: []float64{0.9e9}},
		Requirements: []Requirement{
			ThroughputFloor(0.3e9),
		},
	}
	maxT := base
	maxT.Preferences = []Preference{{Name: "fast", Weight: 1, Goal: MaximizeThroughput}}
	resT, err := Satisfy(maxT)
	if err != nil {
		t.Fatal(err)
	}
	minL := base
	minL.Preferences = []Preference{{Name: "snappy", Weight: 1, Goal: MinimizeLatency}}
	resL, err := Satisfy(minL)
	if err != nil {
		t.Fatal(err)
	}
	if !resT.Feasible || !resL.Feasible {
		t.Fatal("both should be feasible")
	}
	if !(resT.X[0] > resL.X[0]) {
		t.Fatalf("preferences had no effect: maxT at %v, minL at %v", resT.X[0], resL.X[0])
	}
}

func TestSatisfyErrors(t *testing.T) {
	build := loadModel(t)
	bounds := numopt.Bounds{Lo: []float64{1}, Hi: []float64{2}}
	reqs := []Requirement{LatencyBound(1)}
	cases := []FeasibilityProblem{
		{Bounds: bounds, Requirements: reqs},
		{Build: build, Bounds: bounds},
		{Build: build, Requirements: reqs},
		{Build: build, Bounds: numopt.Bounds{Lo: []float64{2}, Hi: []float64{1}}, Requirements: reqs},
		{Build: build, Bounds: bounds, Requirements: reqs,
			Preferences: []Preference{{Name: "bad", Weight: -1}}},
	}
	for i, p := range cases {
		if _, err := Satisfy(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRequirementConstructors(t *testing.T) {
	m, err := loadModel(t)([]float64{0.5e9})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput at 0.5e9 offered: floor of 0.4e9 satisfied, 0.6e9 not.
	if v, err := ThroughputFloor(0.4e9).Violation(m); err != nil || v > 0 {
		t.Fatalf("floor 0.4e9: v=%v err=%v", v, err)
	}
	if v, err := ThroughputFloor(0.6e9).Violation(m); err != nil || v <= 0 {
		t.Fatalf("floor 0.6e9: v=%v err=%v", v, err)
	}
	// Drop ceiling: at ρ=0.5 with queue 32 the drop rate is ~0.
	if v, err := DropCeiling(0.01).Violation(m); err != nil || v > 0 {
		t.Fatalf("drop ceiling: v=%v err=%v", v, err)
	}
	if LatencyBound(1e-6).Name == "" || DropCeiling(0.1).Name == "" {
		t.Fatal("names must be set")
	}
}
