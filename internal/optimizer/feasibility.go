package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lognic/internal/core"
	"lognic/internal/numopt"
)

// This file implements the interactive workflow of Figure 4-b: the user
// states performance requirements (latency bounds, throughput floors, drop
// ceilings) and optional weighted preferences over design alternatives;
// the solver searches the configurable parameters for a satisfying point.
// When none exists it reports each requirement's best achievable residual,
// telling the user which goal or constraint to relax — the "relax
// goals/constraints" loop of the figure.

// Requirement is one performance demand on a model. Violation returns how
// far the model is from meeting it (≤ 0 means satisfied); the units are
// the requirement's own (seconds for latency bounds, bytes/second for
// throughput floors).
type Requirement struct {
	// Name labels the requirement in reports.
	Name string
	// Violation measures the shortfall.
	Violation func(core.Model) (float64, error)
	// Scale normalizes the violation for the aggregate objective; it
	// should be a typical magnitude of the requirement's unit (defaults
	// to 1, which over-weights small-unit requirements like seconds —
	// set it).
	Scale float64
}

// LatencyBound requires T_attainable ≤ bound seconds.
func LatencyBound(bound float64) Requirement {
	return Requirement{
		Name:  fmt.Sprintf("latency<=%.3gs", bound),
		Scale: bound,
		Violation: func(m core.Model) (float64, error) {
			lr, err := m.Latency()
			if err != nil {
				return 0, err
			}
			return lr.Attainable - bound, nil
		},
	}
}

// ThroughputFloor requires min(P_attainable, BW_in) ≥ floor bytes/second.
func ThroughputFloor(floor float64) Requirement {
	return Requirement{
		Name:  fmt.Sprintf("throughput>=%.3gB/s", floor),
		Scale: floor,
		Violation: func(m core.Model) (float64, error) {
			tr, err := m.Throughput()
			if err != nil {
				return 0, err
			}
			return floor - tr.Attainable, nil
		},
	}
}

// DropCeiling requires the modeled drop probability ≤ ceiling.
func DropCeiling(ceiling float64) Requirement {
	return Requirement{
		Name:  fmt.Sprintf("droprate<=%.3g", ceiling),
		Scale: math.Max(ceiling, 1e-6),
		Violation: func(m core.Model) (float64, error) {
			lr, err := m.Latency()
			if err != nil {
				return 0, err
			}
			return lr.DropRate - ceiling, nil
		},
	}
}

// Preference is a weighted secondary objective used to rank satisfying
// points — "an interface for developers to prioritize different design
// alternatives by assigning weights" (§3.8).
type Preference struct {
	// Name labels the preference.
	Name string
	// Weight scales its contribution (≥ 0).
	Weight float64
	// Goal selects the metric to improve.
	Goal Goal
}

// FeasibilityProblem is a Figure 4-b query.
type FeasibilityProblem struct {
	// Build maps a parameter vector to a model.
	Build func(x []float64) (core.Model, error)
	// Bounds box-constrains the parameters.
	Bounds numopt.Bounds
	// Requirements are the hard demands.
	Requirements []Requirement
	// Preferences rank satisfying points (optional).
	Preferences []Preference
	// MaxIter bounds each inner search.
	MaxIter int
}

// Residual is one requirement's outcome at the returned point.
type Residual struct {
	// Name is the requirement's label.
	Name string
	// Violation is the shortfall at the point (≤ 0 = satisfied).
	Violation float64
}

// FeasibilityResult reports a Satisfy outcome.
type FeasibilityResult struct {
	// Feasible tells whether every requirement is met at X.
	Feasible bool
	// X is the best parameter vector found.
	X []float64
	// Model is the model at X.
	Model core.Model
	// Residuals lists each requirement's violation at X, most violated
	// first. For an infeasible problem this is the relaxation hint: the
	// top entries are the requirements to loosen.
	Residuals []Residual
}

// Satisfy searches for parameters meeting every requirement, preferring
// points that score better on the weighted preferences. If no feasible
// point is found, the returned result carries the least-violating point
// and per-requirement residuals so the caller can relax goals (§3.8).
func Satisfy(p FeasibilityProblem) (FeasibilityResult, error) {
	if p.Build == nil {
		return FeasibilityResult{}, errors.New("optimizer: nil Build")
	}
	if len(p.Requirements) == 0 {
		return FeasibilityResult{}, errors.New("optimizer: no requirements")
	}
	dim := len(p.Bounds.Lo)
	if dim == 0 {
		return FeasibilityResult{}, errors.New("optimizer: empty bounds")
	}
	if err := p.Bounds.Validate(dim); err != nil {
		return FeasibilityResult{}, err
	}
	for _, pref := range p.Preferences {
		if pref.Weight < 0 {
			return FeasibilityResult{}, fmt.Errorf("optimizer: negative preference weight for %q", pref.Name)
		}
	}

	// Phase 1: minimize total normalized violation, heavily weighted, with
	// the preferences as a light tie-breaker among feasible points.
	objective := func(x []float64) float64 {
		m, err := p.Build(x)
		if err != nil {
			return math.Inf(1)
		}
		total := 0.0
		for _, r := range p.Requirements {
			v, err := r.Violation(m)
			if err != nil {
				return math.Inf(1)
			}
			scale := r.Scale
			if scale <= 0 {
				scale = 1
			}
			if v > 0 {
				nv := v / scale
				total += 1e6 * nv * (1 + nv)
			}
		}
		for _, pref := range p.Preferences {
			if pref.Weight == 0 {
				continue
			}
			s, err := Score(m, pref.Goal)
			if err != nil {
				return math.Inf(1)
			}
			// Score is already minimize-oriented; normalize softly.
			total += pref.Weight * softsign(s)
		}
		return total
	}
	obj := numopt.Penalized(objective, &p.Bounds, 0)
	best, err := numopt.MultiStart(obj, numopt.GridStarts(p.Bounds, 4),
		numopt.NelderMeadOptions{MaxIter: p.MaxIter})
	if err != nil {
		return FeasibilityResult{}, err
	}
	x := p.Bounds.Clamp(best.X)
	m, err := p.Build(x)
	if err != nil {
		return FeasibilityResult{}, fmt.Errorf("optimizer: best point infeasible to build: %w", err)
	}
	res := FeasibilityResult{X: x, Model: m, Feasible: true}
	for _, r := range p.Requirements {
		v, err := r.Violation(m)
		if err != nil {
			return FeasibilityResult{}, err
		}
		scale := r.Scale
		if scale <= 0 {
			scale = 1
		}
		res.Residuals = append(res.Residuals, Residual{Name: r.Name, Violation: v})
		if v > 1e-9*scale {
			res.Feasible = false
		}
	}
	sort.SliceStable(res.Residuals, func(i, j int) bool {
		return res.Residuals[i].Violation > res.Residuals[j].Violation
	})
	return res, nil
}

// softsign maps any score into (−1, 1) so preference magnitudes cannot
// drown the feasibility term.
func softsign(v float64) float64 { return v / (1 + math.Abs(v)) }
