package optimizer

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lognic/internal/core"
	"lognic/internal/numopt"
)

func TestGoalFromName(t *testing.T) {
	cases := map[string]Goal{
		"latency": MinimizeLatency, "min-latency": MinimizeLatency,
		"throughput": MaximizeThroughput, "max-throughput": MaximizeThroughput,
		"goodput": MaximizeGoodput, "max-goodput": MaximizeGoodput,
	}
	for name, want := range cases {
		g, err := GoalFromName(name)
		if err != nil || g != want {
			t.Errorf("GoalFromName(%q) = %v, %v; want %v", name, g, err, want)
		}
	}
	if _, err := GoalFromName("speed"); err == nil {
		t.Fatal("unknown goal should fail")
	}
}

func TestApplyKnobs(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	knobs := []IntKnob{
		{Vertex: "fast", Param: KnobParallelism, Lo: 1, Hi: 8},
		{Vertex: "slow", Param: KnobQueue, Lo: 1, Hi: 64},
	}
	mm, err := ApplyKnobs(m, knobs, []int{4, 48})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := mm.Graph.Vertex("fast"); v.Parallelism != 4 {
		t.Fatalf("fast.Parallelism = %d, want 4", v.Parallelism)
	}
	if v, _ := mm.Graph.Vertex("slow"); v.QueueCapacity != 48 {
		t.Fatalf("slow.QueueCapacity = %d, want 48", v.QueueCapacity)
	}
	// The input model must be untouched (value semantics).
	if v, _ := m.Graph.Vertex("fast"); v.Parallelism != 1 {
		t.Fatalf("input model mutated: fast.Parallelism = %d", v.Parallelism)
	}
	if _, err := ApplyKnobs(m, knobs, []int{4}); err == nil {
		t.Fatal("value/knob count mismatch should fail")
	}
	if _, err := ApplyKnobs(m, []IntKnob{{Vertex: "ghost", Param: KnobQueue}}, []int{3}); err == nil {
		t.Fatal("unknown vertex should fail")
	}
}

func TestIntKnobValidate(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	good := IntKnob{Vertex: "fast", Param: KnobQueue, Lo: 1, Hi: 4}
	if err := good.Validate(m.Graph); err != nil {
		t.Fatal(err)
	}
	if good.Name() != "fast.queue" {
		t.Fatalf("Name() = %q", good.Name())
	}
	bad := []IntKnob{
		{Vertex: "fast", Param: "speed", Lo: 1, Hi: 4},
		{Vertex: "fast", Param: KnobQueue, Lo: 0, Hi: 4},
		{Vertex: "fast", Param: KnobQueue, Lo: 4, Hi: 1},
		{Vertex: "ghost", Param: KnobQueue, Lo: 1, Hi: 4},
	}
	for _, k := range bad {
		if err := k.Validate(m.Graph); err == nil {
			t.Errorf("Validate(%+v) should fail", k)
		}
	}
}

func TestSolveKnobsQueueSweep(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	knobs := []IntKnob{{Vertex: "slow", Param: KnobQueue, Lo: 1, Hi: 16}}
	sol, err := SolveKnobs(m, MaximizeGoodput, knobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Values) != 1 || sol.Values[0] < 1 || sol.Values[0] > 16 {
		t.Fatalf("Values = %v, want one value in 1..16", sol.Values)
	}
	if !sol.Exhaustive || sol.Evaluated != 16 {
		t.Fatalf("Evaluated=%d Exhaustive=%v, want 16/true", sol.Evaluated, sol.Exhaustive)
	}
	// Maximization objectives are sign-corrected back to a positive rate.
	if sol.Objective <= 0 || math.IsInf(sol.Objective, 0) {
		t.Fatalf("Objective = %v, want positive finite goodput", sol.Objective)
	}
	// Exhaustive check: no other setting beats the reported best.
	for q := 1; q <= 16; q++ {
		mm, err := ApplyKnobs(m, knobs, []int{q})
		if err != nil {
			t.Fatal(err)
		}
		v, err := Score(mm, MaximizeGoodput)
		if err != nil {
			t.Fatal(err)
		}
		if -v > sol.Objective*(1+1e-12) {
			t.Fatalf("queue=%d goodput %v beats reported best %v", q, -v, sol.Objective)
		}
	}
}

func TestSolveKnobsLatencyObjectiveSign(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveKnobs(m, MinimizeLatency,
		[]IntKnob{{Vertex: "fast", Param: KnobParallelism, Lo: 1, Hi: 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective <= 0 {
		t.Fatalf("latency objective = %v, want positive seconds", sol.Objective)
	}
}

func TestSolveKnobsNoFeasible(t *testing.T) {
	// A graph whose egress edge splits don't cover the ingress is
	// structurally valid but fails model evaluation, so every knob
	// setting scores +Inf.
	g, err := core.NewBuilder("broken").
		AddIngress("in").
		AddVertex(core.Vertex{Name: "ip", Kind: core.KindIP, Throughput: 1e9, Parallelism: 1, QueueCapacity: 8}).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "ip", Delta: 1}).
		AddEdge(core.Edge{From: "ip", To: "out", Delta: 1}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{Graph: g, Traffic: core.Traffic{IngressBW: -1, Granularity: 1024}}
	_, err = SolveKnobs(m, MinimizeLatency,
		[]IntKnob{{Vertex: "ip", Param: KnobQueue, Lo: 1, Hi: 4}}, 0)
	if !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("err = %v, want ErrNoFeasible", err)
	}
}

func TestSolveKnobsValidatesUpFront(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveKnobs(m, MinimizeLatency, nil, 0); err == nil {
		t.Fatal("no knobs should fail")
	}
	_, err = SolveKnobs(m, MinimizeLatency,
		[]IntKnob{{Vertex: "ghost", Param: KnobQueue, Lo: 1, Hi: 2}}, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown vertex") {
		t.Fatalf("err = %v, want unknown-vertex validation error", err)
	}
}

// Solve must surface the winning run's convergence diagnostics and wrap
// numopt.ErrNoFeasibleStart when the whole space is infeasible.
func TestSolveDiagnosticsAndInfeasibleWrap(t *testing.T) {
	sol, err := Solve(Problem{
		Build: func(x []float64) (core.Model, error) { return twoPathModel(t, x[0]) },
		Goal:  MinimizeLatency,
		Bounds: numopt.Bounds{
			Lo: []float64{0.05},
			Hi: []float64{0.95},
		},
		MaxIter: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("steering problem should converge within 500 iterations")
	}
	if sol.Iterations <= 0 {
		t.Fatalf("Iterations = %d, want > 0", sol.Iterations)
	}

	_, err = Solve(Problem{
		Build: func(x []float64) (core.Model, error) {
			return core.Model{}, errors.New("always infeasible")
		},
		Goal:   MinimizeLatency,
		Bounds: numopt.Bounds{Lo: []float64{0}, Hi: []float64{1}},
	})
	if !errors.Is(err, numopt.ErrNoFeasibleStart) {
		t.Fatalf("err = %v, want wrapped numopt.ErrNoFeasibleStart", err)
	}
}
