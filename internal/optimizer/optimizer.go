// Package optimizer implements the LogNIC optimizer of §3.8 (Figure 4-b):
// given an objective over the model's configurable parameters (Table 2's
// CONF column — parallelism degrees D_vi, node partitions γ_vi, traffic
// splits δ, queue capacities N_vi) and a set of constraints, it searches
// for a satisfying configuration. The continuous solver is Nelder–Mead
// with exterior penalties (internal/numopt) standing in for SciPy's SLSQP;
// discrete knobs use exhaustive or coordinate integer search. On top of the
// generic interface, this package provides the four concrete searches the
// evaluation uses: microservice parallelism tuning (§4.4), NF placement
// (§4.5), and PANIC credit sizing and traffic steering (§4.6).
package optimizer

import (
	"errors"
	"fmt"
	"math"

	"lognic/internal/core"
	"lognic/internal/numopt"
)

// Goal selects the optimization direction and metric.
type Goal int

// Goals.
const (
	// MinimizeLatency minimizes T_attainable.
	MinimizeLatency Goal = iota
	// MaximizeThroughput maximizes min(P_attainable, BW_in).
	MaximizeThroughput
	// MaximizeGoodput maximizes delivered throughput after queue drops:
	// min(P_attainable, BW_in)·(1−droprate).
	MaximizeGoodput
)

// String names the goal.
func (g Goal) String() string {
	switch g {
	case MinimizeLatency:
		return "min-latency"
	case MaximizeThroughput:
		return "max-throughput"
	case MaximizeGoodput:
		return "max-goodput"
	default:
		return fmt.Sprintf("goal(%d)", int(g))
	}
}

// GoalFromName maps a goal name — the short CLI spelling ("latency") or
// the canonical String() form ("min-latency") — to its Goal.
func GoalFromName(s string) (Goal, error) {
	switch s {
	case "latency", "min-latency":
		return MinimizeLatency, nil
	case "throughput", "max-throughput":
		return MaximizeThroughput, nil
	case "goodput", "max-goodput":
		return MaximizeGoodput, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown goal %q (latency|throughput|goodput)", s)
	}
}

// Score evaluates a model against a goal; the optimizer always minimizes
// the returned value (maximization goals negate).
func Score(m core.Model, goal Goal) (float64, error) {
	switch goal {
	case MinimizeLatency:
		lr, err := m.Latency()
		if err != nil {
			return 0, err
		}
		return lr.Attainable, nil
	case MaximizeThroughput:
		tr, err := m.Throughput()
		if err != nil {
			return 0, err
		}
		return -tr.Attainable, nil
	case MaximizeGoodput:
		est, err := m.Estimate()
		if err != nil {
			return 0, err
		}
		return -est.Throughput.Attainable * (1 - est.Latency.DropRate), nil
	default:
		return 0, fmt.Errorf("optimizer: unknown goal %d", int(goal))
	}
}

// Problem is a generic continuous optimization problem over model
// parameters: Build maps a parameter vector to a model, which is scored
// against Goal; Constraints (g(x) ≤ 0) and Bounds restrict the space.
type Problem struct {
	// Build constructs the model for a parameter vector.
	Build func(x []float64) (core.Model, error)
	// Goal selects the metric.
	Goal Goal
	// Bounds box-constrains the parameters.
	Bounds numopt.Bounds
	// Constraints are additional g(x) <= 0 conditions.
	Constraints []numopt.Constraint
	// Starts overrides the default multi-start points.
	Starts [][]float64
	// MaxIter bounds each Nelder–Mead run.
	MaxIter int
}

// Solution is the outcome of a continuous search.
type Solution struct {
	// X is the best parameter vector.
	X []float64
	// Objective is the goal metric at X (latency seconds, or
	// throughput bytes/second for maximization goals).
	Objective float64
	// Model is the model built at X.
	Model core.Model
	// Converged reports whether the winning Nelder–Mead run met its
	// tolerance before exhausting MaxIter — false means X is only the
	// best point seen, not a certified local optimum.
	Converged bool
	// Iterations counts the simplex iterations the winning run spent.
	Iterations int
}

// Solve runs the continuous search. Infeasible evaluations (Build errors)
// are treated as +inf.
func Solve(p Problem) (Solution, error) {
	if p.Build == nil {
		return Solution{}, errors.New("optimizer: nil Build")
	}
	dim := len(p.Bounds.Lo)
	if dim == 0 {
		return Solution{}, errors.New("optimizer: empty bounds")
	}
	if err := p.Bounds.Validate(dim); err != nil {
		return Solution{}, err
	}
	raw := func(x []float64) float64 {
		m, err := p.Build(x)
		if err != nil {
			return math.Inf(1)
		}
		v, err := Score(m, p.Goal)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	obj := numopt.Penalized(raw, &p.Bounds, 0, p.Constraints...)
	starts := p.Starts
	if len(starts) == 0 {
		starts = numopt.GridStarts(p.Bounds, 3)
	}
	opts := numopt.NelderMeadOptions{MaxIter: p.MaxIter}
	best, err := numopt.MultiStart(obj, starts, opts)
	if err != nil {
		if errors.Is(err, numopt.ErrNoFeasibleStart) {
			return Solution{}, fmt.Errorf("optimizer: every start point is infeasible for goal %v: %w", p.Goal, err)
		}
		return Solution{}, err
	}
	x := p.Bounds.Clamp(best.X)
	m, err := p.Build(x)
	if err != nil {
		return Solution{}, fmt.Errorf("optimizer: best point infeasible: %w", err)
	}
	v, err := Score(m, p.Goal)
	if err != nil {
		return Solution{}, err
	}
	if p.Goal != MinimizeLatency {
		v = -v
	}
	return Solution{
		X: x, Objective: v, Model: m,
		Converged: best.Converged, Iterations: best.Iterations,
	}, nil
}
