package optimizer

import (
	"errors"
	"fmt"
	"math"

	"lognic/internal/apps"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/numopt"
)

// TuneParallelism is the §4.4 search: find the NIC-core allocation across a
// microservice chain's stages that maximizes attainable throughput under
// the core budget (the paper's "optimal parallelism degree D_vi at each
// vertex"). Ties break toward fewer total cores, then lower latency.
func TuneParallelism(d devices.LiquidIO2, chain apps.ServiceChain, totalCores int, offeredBW float64) (apps.Allocation, error) {
	k := len(chain.Stages)
	if k == 0 {
		return apps.Allocation{}, errors.New("optimizer: empty chain")
	}
	if totalCores < k {
		return apps.Allocation{}, fmt.Errorf("optimizer: %d cores cannot cover %d stages", totalCores, k)
	}
	ranges := make([]numopt.IntRange, k)
	for i := range ranges {
		ranges[i] = numopt.IntRange{Lo: 1, Hi: totalCores - (k - 1)}
	}
	eval := func(x []int) float64 {
		sum := 0
		for _, c := range x {
			sum += c
		}
		if sum > totalCores {
			return math.Inf(1)
		}
		m, err := apps.MicroserviceModel(d, chain, apps.Allocation{Name: "cand", Cores: x}, offeredBW)
		if err != nil {
			return math.Inf(1)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			return math.Inf(1)
		}
		// Prefer fewer cores at equal throughput (tiny tie-break term).
		return -rep.Attainable * (1 - 1e-9*float64(sum))
	}
	res, err := numopt.IntSearch(eval, ranges, 1<<18)
	if err != nil {
		return apps.Allocation{}, err
	}
	if math.IsInf(res.F, 1) {
		return apps.Allocation{}, errors.New("optimizer: no feasible allocation")
	}
	return apps.Allocation{Name: "LogNIC-Opt", Cores: res.X}, nil
}

// PlaceNFs is the §4.5 search: enumerate every feasible placement of the
// middlebox chain and pick the one with the best attainable throughput at
// the given packet size, breaking ties toward lower average latency — "the
// placement that offers the best throughput without over-subscribing the
// hardware resource".
func PlaceNFs(d devices.BlueField2, chain []apps.NF, packetBytes, offeredBW float64) (apps.Placement, error) {
	if len(chain) == 0 {
		return nil, errors.New("optimizer: empty chain")
	}
	type cand struct {
		p       apps.Placement
		thr     float64
		latency float64
	}
	var best *cand
	for _, p := range apps.Placements(chain) {
		m, err := apps.NFChainModel(d, chain, p, packetBytes, offeredBW)
		if err != nil {
			return nil, err
		}
		sat, err := m.SaturationThroughput()
		if err != nil {
			return nil, err
		}
		lr, err := m.Latency()
		if err != nil {
			return nil, err
		}
		c := cand{p: p, thr: sat.Attainable, latency: lr.Attainable}
		if best == nil ||
			c.thr > best.thr*(1+1e-9) ||
			(approxEq(c.thr, best.thr) && c.latency < best.latency) {
			cc := c
			best = &cc
		}
	}
	return best.p, nil
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// SizeCredits is the §4.6 scenario-#1 search: the minimal per-unit credit
// count whose goodput (throughput after M/M/1/N drops) stays within
// tolerance of the fully provisioned configuration — "the minimal amount
// of credits that saves the hardware resource without hurting throughput".
// build must map a credit count to a model.
func SizeCredits(build func(credits int) (core.Model, error), maxCredits int, tolerance float64) (int, error) {
	if build == nil {
		return 0, errors.New("optimizer: nil build")
	}
	if maxCredits < 1 {
		return 0, fmt.Errorf("optimizer: maxCredits %d < 1", maxCredits)
	}
	if tolerance <= 0 {
		tolerance = 0.01
	}
	goodput := func(credits int) (float64, error) {
		m, err := build(credits)
		if err != nil {
			return 0, err
		}
		v, err := Score(m, MaximizeGoodput)
		if err != nil {
			return 0, err
		}
		return -v, nil
	}
	ref, err := goodput(maxCredits)
	if err != nil {
		return 0, err
	}
	for credits := 1; credits <= maxCredits; credits++ {
		g, err := goodput(credits)
		if err != nil {
			return 0, err
		}
		if g >= (1-tolerance)*ref {
			return credits, nil
		}
	}
	return maxCredits, nil
}

// SteerTraffic is the §4.6 scenario-#2 search: the traffic share x ∈
// [lo, hi] (the paper's X%) minimizing average latency. build maps the
// share to a model; the search is golden-section (the objective is
// unimodal: a convex combination of per-unit queueing curves).
func SteerTraffic(build func(x float64) (core.Model, error), lo, hi float64) (float64, error) {
	if build == nil {
		return 0, errors.New("optimizer: nil build")
	}
	if !(lo < hi) {
		return 0, fmt.Errorf("optimizer: bad bracket [%v, %v]", lo, hi)
	}
	obj := func(x float64) float64 {
		m, err := build(x)
		if err != nil {
			return math.Inf(1)
		}
		v, err := Score(m, MinimizeLatency)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	x, fx, err := numopt.GoldenSection(obj, lo, hi, 1e-4)
	if err != nil {
		return 0, err
	}
	if math.IsInf(fx, 1) {
		return 0, errors.New("optimizer: no feasible steering point")
	}
	return x, nil
}

// TuneUnitParallelism is the §4.6 scenario-#3 search: the smallest IP
// parallel degree whose average latency is within tolerance of the fully
// parallel configuration — "the minimal amount of resource provisioning".
// build maps a lane count to a model.
func TuneUnitParallelism(build func(lanes int) (core.Model, error), maxLanes int, tolerance float64) (int, error) {
	if build == nil {
		return 0, errors.New("optimizer: nil build")
	}
	if maxLanes < 1 {
		return 0, fmt.Errorf("optimizer: maxLanes %d < 1", maxLanes)
	}
	if tolerance <= 0 {
		tolerance = 0.05
	}
	lat := func(lanes int) (float64, error) {
		m, err := build(lanes)
		if err != nil {
			return 0, err
		}
		return Score(m, MinimizeLatency)
	}
	ref, err := lat(maxLanes)
	if err != nil {
		return 0, err
	}
	for lanes := 1; lanes <= maxLanes; lanes++ {
		l, err := lat(lanes)
		if err != nil {
			return 0, err
		}
		if l <= (1+tolerance)*ref {
			return lanes, nil
		}
	}
	return maxLanes, nil
}
