package optimizer

import (
	"math"
	"testing"

	"lognic/internal/apps"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/numopt"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// twoPathModel builds a steering model: traffic split x to a fast IP and
// 1−x to a slow IP.
func twoPathModel(t *testing.T, x float64) (core.Model, error) {
	g, err := core.NewBuilder("steer").
		AddIngress("in").
		AddVertex(core.Vertex{Name: "fast", Kind: core.KindIP, Throughput: 2e9, Parallelism: 1, QueueCapacity: 32}).
		AddVertex(core.Vertex{Name: "slow", Kind: core.KindIP, Throughput: 1e9, Parallelism: 1, QueueCapacity: 32}).
		AddEgress("out").
		AddEdge(core.Edge{From: "in", To: "fast", Delta: x}).
		AddEdge(core.Edge{From: "in", To: "slow", Delta: 1 - x}).
		AddEdge(core.Edge{From: "fast", To: "out", Delta: x}).
		AddEdge(core.Edge{From: "slow", To: "out", Delta: 1 - x}).
		Build()
	if err != nil {
		return core.Model{}, err
	}
	return core.Model{
		Graph:   g,
		Traffic: core.Traffic{IngressBW: 1.8e9, Granularity: 1024},
	}, nil
}

func TestScoreGoals(t *testing.T) {
	m, err := twoPathModel(t, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := Score(m, MinimizeLatency)
	if err != nil || lat <= 0 {
		t.Fatalf("latency score = %v, err %v", lat, err)
	}
	thr, err := Score(m, MaximizeThroughput)
	if err != nil || thr >= 0 {
		t.Fatalf("throughput score = %v (should be negative), err %v", thr, err)
	}
	good, err := Score(m, MaximizeGoodput)
	if err != nil || good >= 0 {
		t.Fatalf("goodput score = %v, err %v", good, err)
	}
	// Goodput magnitude can't exceed raw throughput magnitude.
	if -good > -thr+1e-9 {
		t.Fatal("goodput should not exceed throughput")
	}
	if _, err := Score(m, Goal(99)); err == nil {
		t.Fatal("unknown goal should fail")
	}
	for g, want := range map[Goal]string{
		MinimizeLatency: "min-latency", MaximizeThroughput: "max-throughput",
		MaximizeGoodput: "max-goodput", Goal(9): "goal(9)",
	} {
		if g.String() != want {
			t.Errorf("%d.String() = %q", int(g), g.String())
		}
	}
}

func TestSolveSteering(t *testing.T) {
	// Optimal split for capacity 2:1 servers at high load is ~2/3 to the
	// fast one.
	sol, err := Solve(Problem{
		Build: func(x []float64) (core.Model, error) { return twoPathModel(t, x[0]) },
		Goal:  MinimizeLatency,
		Bounds: numopt.Bounds{
			Lo: []float64{0.05},
			Hi: []float64{0.95},
		},
		MaxIter: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2.0/3, 0.08) {
		t.Fatalf("steering x = %v, want ~0.667", sol.X[0])
	}
	if sol.Objective <= 0 {
		t.Fatal("objective latency must be positive")
	}
	// The optimized split must beat a naive 50/50.
	naive, _ := twoPathModel(t, 0.5)
	naiveLat, _ := Score(naive, MinimizeLatency)
	if sol.Objective > naiveLat {
		t.Fatalf("optimized %v worse than naive %v", sol.Objective, naiveLat)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Fatal("nil Build should fail")
	}
	if _, err := Solve(Problem{
		Build:  func(x []float64) (core.Model, error) { return core.Model{}, nil },
		Bounds: numopt.Bounds{},
	}); err == nil {
		t.Fatal("empty bounds should fail")
	}
}

func TestTuneParallelismBeatsBaselines(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	for _, chain := range apps.E3Workloads() {
		opt, err := TuneParallelism(d, chain, d.Cores, 1e9)
		if err != nil {
			t.Fatalf("%s: %v", chain.Name, err)
		}
		if len(opt.Cores) != len(chain.Stages) {
			t.Fatalf("%s: allocation size %d", chain.Name, len(opt.Cores))
		}
		total := 0
		for _, c := range opt.Cores {
			total += c
		}
		if total > d.Cores {
			t.Fatalf("%s: allocation overflows cores: %v", chain.Name, opt.Cores)
		}
		sat := func(a apps.Allocation) float64 {
			m, err := apps.MicroserviceModel(d, chain, a, 1e9)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.SaturationThroughput()
			if err != nil {
				t.Fatal(err)
			}
			return rep.Attainable
		}
		optThr := sat(opt)
		eqThr := sat(apps.EqualPartition(chain, d.Cores))
		if optThr < eqThr-1e-9 {
			t.Fatalf("%s: optimizer %v worse than equal partition %v", chain.Name, optThr, eqThr)
		}
		// For the skewed chains the optimizer must strictly win.
		if chain.Name == "RTA-SHM" && optThr <= eqThr*1.05 {
			t.Fatalf("%s: expected a clear win, got %v vs %v", chain.Name, optThr, eqThr)
		}
	}
}

func TestTuneParallelismErrors(t *testing.T) {
	d := devices.LiquidIO2CN2360()
	chain := apps.E3Workloads()[0]
	if _, err := TuneParallelism(d, apps.ServiceChain{}, 16, 1e9); err == nil {
		t.Fatal("empty chain should fail")
	}
	if _, err := TuneParallelism(d, chain, 2, 1e9); err == nil {
		t.Fatal("too few cores should fail")
	}
}

func TestPlaceNFsBeatsBaselines(t *testing.T) {
	d := devices.BlueField2DPU()
	chain := apps.MiddleboxChain()
	sat := func(p apps.Placement, size float64) float64 {
		m, err := apps.NFChainModel(d, chain, p, size, 10e9)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.SaturationThroughput()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Attainable
	}
	for _, size := range []float64{64, 512, 1500} {
		opt, err := PlaceNFs(d, chain, size, 10e9)
		if err != nil {
			t.Fatal(err)
		}
		optThr := sat(opt, size)
		if optThr < sat(apps.ARMOnly(chain), size)-1e-9 {
			t.Fatalf("size %v: optimizer worse than ARM-only", size)
		}
		if optThr < sat(apps.AcceleratorOnly(chain), size)-1e-9 {
			t.Fatalf("size %v: optimizer worse than accelerator-only", size)
		}
	}
	if _, err := PlaceNFs(d, nil, 1500, 1e9); err == nil {
		t.Fatal("empty chain should fail")
	}
}

func TestSizeCredits(t *testing.T) {
	d := devices.PANICPrototype()
	build := func(credits int) (core.Model, error) {
		return apps.PANICPipelined(d, 512, 0.8*4.0e6*512, credits)
	}
	credits, err := SizeCredits(build, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if credits < 1 || credits > 8 {
		t.Fatalf("credits = %d", credits)
	}
	// Fewer credits must not beat the reference goodput by construction:
	// goodput is non-decreasing in credits.
	prev := -1.0
	for c := 1; c <= 8; c++ {
		m, err := build(c)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Score(m, MaximizeGoodput)
		if err != nil {
			t.Fatal(err)
		}
		g := -v
		if g < prev-1e-6 {
			t.Fatalf("goodput decreased at credits=%d", c)
		}
		prev = g
	}
	if _, err := SizeCredits(nil, 8, 0); err == nil {
		t.Fatal("nil build should fail")
	}
	if _, err := SizeCredits(build, 0, 0); err == nil {
		t.Fatal("zero max should fail")
	}
}

func TestSteerTrafficFindsCapabilityProportionalSplit(t *testing.T) {
	d := devices.PANICPrototype()
	// Fix a1 at 20%; steer x to a2 and 0.8−x to a3. Capability ratio
	// 7:3 suggests x ≈ 0.56.
	load := 6e9 // bytes/s, high enough for queueing to matter
	build := func(x float64) (core.Model, error) {
		return apps.PANICParallelized(d, 512, load, 0.2, x, 0.8-x, 8)
	}
	x, err := SteerTraffic(build, 0.05, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, 0.56, 0.15) {
		t.Fatalf("steering x = %v, want ≈ 0.56", x)
	}
	if _, err := SteerTraffic(nil, 0, 1); err == nil {
		t.Fatal("nil build should fail")
	}
	if _, err := SteerTraffic(build, 0.9, 0.1); err == nil {
		t.Fatal("inverted bracket should fail")
	}
}

func TestTuneUnitParallelism(t *testing.T) {
	d := devices.PANICPrototype()
	build := func(lanes int) (core.Model, error) {
		return apps.PANICHybrid(d, 1500, 6e9, 0.5, 0.5, lanes, 8)
	}
	lanes, err := TuneUnitParallelism(build, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lanes < 1 || lanes > 8 {
		t.Fatalf("lanes = %d", lanes)
	}
	// Latency at the chosen degree must be within tolerance of max.
	mMax, _ := build(8)
	mOpt, _ := build(lanes)
	lMax, _ := Score(mMax, MinimizeLatency)
	lOpt, _ := Score(mOpt, MinimizeLatency)
	if lOpt > 1.0501*lMax {
		t.Fatalf("latency at %d lanes (%v) outside tolerance of max (%v)", lanes, lOpt, lMax)
	}
	if _, err := TuneUnitParallelism(nil, 8, 0); err == nil {
		t.Fatal("nil build should fail")
	}
	if _, err := TuneUnitParallelism(build, 0, 0); err == nil {
		t.Fatal("zero max should fail")
	}
}
