package optimizer

// Integer knob search: the discrete face of the §3.8 optimizer, shared by
// the `lognic -optimize` CLI and the lognic-serve daemon's /v1/optimize
// endpoint. A knob names one integer-valued CONF parameter of a vertex —
// its parallelism degree D_vi or queue capacity N_vi — with an inclusive
// range; SolveKnobs searches the cross product for the best configuration
// under a Goal via internal/numopt's exhaustive or coordinate-descent
// integer search.

import (
	"errors"
	"fmt"
	"math"

	"lognic/internal/core"
	"lognic/internal/numopt"
)

// Knob parameter names.
const (
	// KnobParallelism turns a vertex's parallelism degree D_vi.
	KnobParallelism = "parallelism"
	// KnobQueue turns a vertex's queue capacity N_vi.
	KnobQueue = "queue"
)

// IntKnob is one integer parameter under search.
type IntKnob struct {
	// Vertex names the target vertex.
	Vertex string
	// Param is KnobParallelism or KnobQueue.
	Param string
	// Lo and Hi bound the search (inclusive); Lo must be >= 1.
	Lo, Hi int
}

// Validate checks the knob against a graph.
func (k IntKnob) Validate(g *core.Graph) error {
	if k.Param != KnobParallelism && k.Param != KnobQueue {
		return fmt.Errorf("optimizer: unknown knob parameter %q (%s|%s)", k.Param, KnobParallelism, KnobQueue)
	}
	if k.Lo < 1 || k.Hi < k.Lo {
		return fmt.Errorf("optimizer: bad knob range %d..%d for %s.%s", k.Lo, k.Hi, k.Vertex, k.Param)
	}
	if _, ok := g.Vertex(k.Vertex); !ok {
		return fmt.Errorf("optimizer: knob references unknown vertex %q", k.Vertex)
	}
	return nil
}

// Name renders the knob's "vertex.param" label.
func (k IntKnob) Name() string { return k.Vertex + "." + k.Param }

// ErrNoFeasible reports that no searched configuration evaluated to a
// finite objective — every knob setting failed to build or to score.
var ErrNoFeasible = errors.New("optimizer: no feasible configuration found")

// KnobSolution is the best integer configuration found.
type KnobSolution struct {
	// Values holds the chosen knob settings, in knob order.
	Values []int
	// Objective is the goal metric at the chosen point, sign-corrected to
	// the natural reading (latency seconds, or bytes/second for
	// maximization goals).
	Objective float64
	// Evaluated counts model evaluations spent.
	Evaluated int
	// Exhaustive reports whether the search covered the whole space.
	Exhaustive bool
}

// ApplyKnobs returns a copy of the model with the knob values set.
func ApplyKnobs(m core.Model, knobs []IntKnob, values []int) (core.Model, error) {
	if len(values) != len(knobs) {
		return core.Model{}, fmt.Errorf("optimizer: %d values for %d knobs", len(values), len(knobs))
	}
	g := m.Graph
	for i, k := range knobs {
		v, ok := g.Vertex(k.Vertex)
		if !ok {
			return core.Model{}, fmt.Errorf("optimizer: knob references unknown vertex %q", k.Vertex)
		}
		switch k.Param {
		case KnobParallelism:
			v.Parallelism = values[i]
		case KnobQueue:
			v.QueueCapacity = values[i]
		default:
			return core.Model{}, fmt.Errorf("optimizer: unknown knob parameter %q", k.Param)
		}
		var err error
		g, err = g.WithVertex(v)
		if err != nil {
			return core.Model{}, err
		}
	}
	out := m
	out.Graph = g
	return out, nil
}

// SolveKnobs searches the knob space for the configuration that best meets
// the goal (Figure 4-a's "apply for optimization" output). maxEvals bounds
// the number of model evaluations (<= 0 selects the numopt default);
// spaces that fit the budget are searched exhaustively, larger ones by
// coordinate descent. It returns ErrNoFeasible when every searched
// configuration is infeasible.
func SolveKnobs(m core.Model, goal Goal, knobs []IntKnob, maxEvals int) (KnobSolution, error) {
	if len(knobs) == 0 {
		return KnobSolution{}, errors.New("optimizer: no knobs to search")
	}
	ranges := make([]numopt.IntRange, 0, len(knobs))
	for _, k := range knobs {
		if err := k.Validate(m.Graph); err != nil {
			return KnobSolution{}, err
		}
		ranges = append(ranges, numopt.IntRange{Lo: k.Lo, Hi: k.Hi})
	}
	eval := func(values []int) float64 {
		mm, err := ApplyKnobs(m, knobs, values)
		if err != nil {
			return math.Inf(1)
		}
		v, err := Score(mm, goal)
		if err != nil {
			return math.Inf(1)
		}
		return v
	}
	res, err := numopt.IntSearch(eval, ranges, maxEvals)
	if err != nil {
		return KnobSolution{}, err
	}
	if res.X == nil || math.IsInf(res.F, 1) {
		return KnobSolution{}, ErrNoFeasible
	}
	objective := res.F
	if goal != MinimizeLatency {
		objective = -objective
	}
	return KnobSolution{
		Values:     res.X,
		Objective:  objective,
		Evaluated:  res.Evaluated,
		Exhaustive: res.Exhaustive,
	}, nil
}
