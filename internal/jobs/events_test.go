package jobs

import (
	"context"
	"testing"
	"time"
)

// drainUntilTerminal reads the subscription until the terminal event or
// the feed closes, returning every event seen.
func drainUntilTerminal(t *testing.T, sub *Subscription) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []Event
	for {
		e, ok, err := sub.Next(ctx)
		if !ok {
			if err != nil {
				t.Fatalf("Next: %v (got %d events)", err, len(out))
			}
			return out
		}
		out = append(out, e)
		if e.Terminal {
			return out
		}
	}
}

// A slow consumer's bounded queue sheds the oldest progress frames but
// never a state transition, and reports exactly what it shed.
func TestSubscriptionDropsOldestProgressNeverState(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		<-release
		return []byte("done"), nil
	})
	if _, isNew, err := m.Submit("estimate", "slowsub", []byte("x")); err != nil || !isNew {
		t.Fatalf("Submit: isNew=%v err=%v", isNew, err)
	}
	waitState(t, m, "slowsub", StateRunning)

	const buf = 4
	sub, snap, ok := m.Subscribe("slowsub", buf)
	if !ok || snap.State != StateRunning {
		t.Fatalf("Subscribe: ok=%v snap=%+v", ok, snap)
	}
	defer sub.Close()

	// 20 progress frames into a queue of 4: the 16 oldest are evicted
	// while the consumer sleeps.
	const frames = 20
	for i := 0; i < frames; i++ {
		m.Progress("slowsub", uint64(i+1), float64(i+1), 0)
	}
	// The terminal state event must enter even though the queue is full —
	// it evicts one more progress frame.
	close(release)
	waitState(t, m, "slowsub", StateSucceeded)

	events := drainUntilTerminal(t, sub)
	last := events[len(events)-1]
	if last.Type != EventState || last.State != StateSucceeded || !last.Terminal {
		t.Fatalf("final event %+v, want terminal succeeded state", last)
	}
	if string(last.Result) != "done" {
		t.Fatalf("terminal result %q", last.Result)
	}
	wantDropped := uint64(frames - buf + 1)
	if got := sub.Dropped(); got != wantDropped {
		t.Fatalf("Dropped() = %d, want %d", got, wantDropped)
	}
	// The surviving progress frames are the newest, still in order.
	var progress []Event
	for _, e := range events {
		if e.Type == EventProgress {
			progress = append(progress, e)
		}
	}
	if len(progress) != buf-1 {
		t.Fatalf("%d progress frames survived, want %d", len(progress), buf-1)
	}
	for i, p := range progress {
		if want := uint64(frames - (buf - 1) + i + 1); p.Events != want {
			t.Fatalf("progress[%d].Events = %d, want %d (oldest-first eviction)", i, p.Events, want)
		}
	}
	// Seq must be strictly increasing across the survivors.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("seq not increasing: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

// With the smallest possible buffer the terminal transition still
// displaces a queued snapshot rather than being lost.
func TestSubscriptionTerminalDisplacesProgress(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		<-release
		return []byte("r"), nil
	})
	m.Submit("estimate", "tiny", []byte("x"))
	waitState(t, m, "tiny", StateRunning)
	sub, _, ok := m.Subscribe("tiny", 1)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer sub.Close()
	m.Progress("tiny", 1, 0.5, 0)
	close(release)
	waitState(t, m, "tiny", StateSucceeded)

	events := drainUntilTerminal(t, sub)
	if len(events) != 1 || !events[0].Terminal || events[0].State != StateSucceeded {
		t.Fatalf("events %+v, want exactly the terminal state", events)
	}
	if sub.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1 (the displaced progress frame)", sub.Dropped())
	}
}

// Close detaches the subscriber from the manager; pending events stay
// readable and Next reports a clean end once drained.
func TestSubscriptionCloseDetaches(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		<-release
		return nil, nil
	})
	m.Submit("estimate", "bye", []byte("x"))
	waitState(t, m, "bye", StateRunning)
	sub, _, _ := m.Subscribe("bye", 8)
	if got := m.Subscribers("bye"); got != 1 {
		t.Fatalf("Subscribers = %d, want 1", got)
	}
	m.Progress("bye", 7, 1, 0)
	sub.Close()
	if got := m.Subscribers("bye"); got != 0 {
		t.Fatalf("Subscribers after Close = %d, want 0", got)
	}
	// Events published after Close never arrive.
	m.Progress("bye", 8, 2, 0)

	ctx := context.Background()
	e, ok, err := sub.Next(ctx)
	if !ok || err != nil || e.Events != 7 {
		t.Fatalf("pending event after Close: %+v ok=%v err=%v", e, ok, err)
	}
	if _, ok, err := sub.Next(ctx); ok || err != nil {
		t.Fatalf("drained feed: ok=%v err=%v, want clean close", ok, err)
	}
}

func TestSubscriptionNextContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		<-release
		return nil, nil
	})
	m.Submit("estimate", "ctx", []byte("x"))
	sub, _, _ := m.Subscribe("ctx", 8)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, err := sub.Next(ctx); ok || err != context.Canceled {
		t.Fatalf("Next on canceled ctx: ok=%v err=%v, want canceled", ok, err)
	}
}

func TestSubscribeUnknownJob(t *testing.T) {
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return nil, nil
	})
	if _, _, ok := m.Subscribe("nope", 0); ok {
		t.Fatal("Subscribe to an unknown job must report ok=false")
	}
}
