package jobs

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame appends one valid CRC frame for payload to buf.
func frame(buf *bytes.Buffer, payload []byte) {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(payload, crcTable))
	buf.Write(head[:])
	buf.Write(payload)
}

// FuzzJournalReplay feeds arbitrary byte streams — valid journals,
// truncated tails, bit-flipped frames, pure noise — through ReplayRecords
// and checks the replay invariants: never panic, never error on in-memory
// input, recover exactly the records whose frames verify, and report a
// goodBytes offset that re-frames to the recovered records.
func FuzzJournalReplay(f *testing.F) {
	var valid bytes.Buffer
	frame(&valid, []byte(`{"type":"submit","id":"aa"}`))
	frame(&valid, []byte(`{"type":"done","id":"aa"}`))
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3]) // torn tail
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[10] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // huge length field
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, good, err := ReplayRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory replay returned I/O error: %v", err)
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodBytes %d outside [0, %d]", good, len(data))
		}
		// The recovered prefix must itself be a well-formed journal whose
		// frames carry exactly the recovered records, in order.
		var reframed bytes.Buffer
		for _, r := range records {
			frame(&reframed, r)
		}
		if int64(reframed.Len()) != good {
			t.Fatalf("recovered %d records spanning %d bytes, but goodBytes = %d",
				len(records), reframed.Len(), good)
		}
		if !bytes.Equal(reframed.Bytes(), data[:good]) {
			t.Fatal("recovered records do not re-frame to the good prefix")
		}
		// Replaying the good prefix alone must recover the same records.
		again, good2, err := ReplayRecords(bytes.NewReader(data[:good]))
		if err != nil || good2 != good || len(again) != len(records) {
			t.Fatalf("replay of good prefix diverged: n=%d good=%d err=%v", len(again), good2, err)
		}
	})
}
