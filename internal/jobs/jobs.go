// Package jobs is the crash-safe asynchronous job subsystem behind
// lognic-serve's /v1/jobs API. A job is one model evaluation — an
// estimate, an optimization or a simulation — identified by the canonical
// hash of its request, executed by a bounded worker pool, and made
// durable by an append-only CRC-framed journal (journal.go): once Submit
// returns, a kill -9 loses nothing. On restart the manager replays the
// journal, re-enqueues every job without a terminal record, and resumes
// interrupted simulations from their latest on-disk checkpoint
// (sim.Checkpoint/sim.Resume), producing results byte-identical to an
// uninterrupted run.
//
// Three more behaviors round out the robustness story:
//
//   - Idempotent, coalescing admission: the job ID is the canonical
//     request hash, so N concurrent submissions of equivalent specs —
//     a thundering herd — create one job and one evaluation whose result
//     every submitter polls.
//   - Retries with capped exponential backoff + jitter under a per-job
//     attempt budget. Attempt failures are journaled so the budget
//     survives crashes; a process crash itself does not consume an
//     attempt.
//   - Graceful degradation: journal or checkpoint write failures (disk
//     full, permission lost) switch the manager to a documented
//     memory-only mode — jobs keep flowing, durability is lost, and the
//     lognic_jobs_degraded gauge goes loud — instead of refusing traffic.
package jobs

import "time"

// State is a job's lifecycle state.
type State string

// Job lifecycle states. queued covers both first admission and the
// backoff wait between retry attempts.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// states lists every lifecycle state, for gauge registration and tests.
var states = []State{StateQueued, StateRunning, StateSucceeded, StateFailed, StateCancelled}

// Job is a point-in-time snapshot of one job, safe to retain.
type Job struct {
	// ID is the canonical request hash — the idempotency key.
	ID string
	// Kind is the evaluation kind ("estimate", "optimize", "simulate").
	Kind string
	// State is the lifecycle state at snapshot time.
	State State
	// Attempts counts evaluation attempts started so far.
	Attempts int
	// MaxAttempts is the attempt budget.
	MaxAttempts int
	// Coalesced counts submissions folded into this job beyond the first.
	Coalesced int
	// Result holds the serialized evaluation result once succeeded.
	Result []byte
	// Error is the terminal failure message (failed) or last attempt
	// error (queued between retries).
	Error string
	// Resumed reports that some attempt restored a simulation checkpoint
	// instead of starting from scratch.
	Resumed bool
	// Created, Started and Finished are wall-clock timestamps; Started
	// and Finished are zero until the first attempt begins / the job
	// reaches a terminal state.
	Created, Started, Finished time.Time
	// RetryAt is the scheduled time of the next attempt while the job is
	// queued waiting out a retry backoff; zero otherwise. It lets the
	// HTTP surface answer polls with an honest Retry-After instead of a
	// fixed guess.
	RetryAt time.Time
}

// Terminal reports whether the state accepts no further transitions
// (except an explicit resubmission of failed/cancelled jobs).
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// record is one journal entry. Records are JSON inside CRC frames;
// unknown fields are ignored on replay so the format can grow.
type record struct {
	// Type is "submit", "attempt", "done", "fail" or "cancel".
	Type string `json:"type"`
	ID   string `json:"id"`
	Kind string `json:"kind,omitempty"`
	// Body is the canonical request (submit records), base64 in the JSON.
	Body []byte `json:"body,omitempty"`
	// Result is the serialized evaluation result (done records).
	Result []byte `json:"result,omitempty"`
	// Error carries the attempt or terminal failure message.
	Error string `json:"error,omitempty"`
	// Attempts is the attempt count after the recorded event.
	Attempts int `json:"attempts,omitempty"`
	// Trace is the submitting request's traceparent header (submit
	// records), so post-crash attempts rejoin the originating trace.
	Trace string `json:"trace,omitempty"`
	// Unix is the event's wall-clock time in nanoseconds, informational.
	Unix int64 `json:"unix,omitempty"`
}
