package jobs

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- journal ---

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	jr, records, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(records))
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(``), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range want {
		if err := jr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	jr.Close()

	jr2, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// A torn tail — the crash signature — is truncated on open and the
// journal accepts new appends at the clean boundary.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	jr, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jr.Append([]byte("first"))
	jr.Append([]byte("second"))
	jr.Close()

	// Simulate kill -9 mid-append: a header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], 100)
	f.Write(head[:])
	f.Write([]byte("torn"))
	f.Close()

	jr2, records, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || string(records[0]) != "first" || string(records[1]) != "second" {
		t.Fatalf("recovered %q", records)
	}
	if err := jr2.Append([]byte("third")); err != nil {
		t.Fatal(err)
	}
	jr2.Close()

	_, records, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || string(records[2]) != "third" {
		t.Fatalf("after truncate+append recovered %q", records)
	}
}

func TestJournalBitFlipStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	jr, _, _ := OpenJournal(path)
	jr.Append([]byte("good"))
	jr.Append([]byte("evil"))
	jr.Append([]byte("after"))
	jr.Close()

	b, _ := os.ReadFile(path)
	b[8+4+8+2] ^= 0x01 // flip a bit inside the second payload
	os.WriteFile(path, b, 0o644)

	_, records, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "good" {
		t.Fatalf("recovered %q, want only the pre-corruption record", records)
	}
}

func TestJournalRecordTooLarge(t *testing.T) {
	jr, _, err := OpenJournal(filepath.Join(t.TempDir(), "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if err := jr.Append(make([]byte, maxRecordLen+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

// --- manager ---

// newTestManager builds a started manager with a tiny backoff and the
// given evaluator.
func newTestManager(t *testing.T, dir string, eval EvalFunc) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dir:         dir,
		Workers:     2,
		MaxAttempts: 3,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Evaluate:    eval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitState polls until the job reaches st or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, st State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := m.Get(id); ok && j.State == st {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s (attempts=%d err=%q)", id, j.State, st, j.Attempts, j.Error)
	return Job{}
}

func TestSubmitRunsToSuccess(t *testing.T) {
	m := newTestManager(t, t.TempDir(), func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return append([]byte("ok:"), body...), nil
	})
	snap, isNew, err := m.Submit("estimate", "aabbccdd", []byte("spec"))
	if err != nil || !isNew {
		t.Fatalf("Submit = %+v, %v, %v", snap, isNew, err)
	}
	j := waitState(t, m, "aabbccdd", StateSucceeded)
	if string(j.Result) != "ok:spec" {
		t.Fatalf("result %q", j.Result)
	}
	if j.Attempts != 1 {
		t.Fatalf("attempts = %d", j.Attempts)
	}
}

// N concurrent identical submissions run exactly one evaluation. Run
// under -race in CI (the acceptance criterion).
func TestCoalescingSingleEvaluation(t *testing.T) {
	var evals atomic.Int64
	release := make(chan struct{})
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		evals.Add(1)
		<-release
		return []byte("r"), nil
	})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := m.Submit("simulate", "deadbeef01", []byte("samespec")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(release)
	j := waitState(t, m, "deadbeef01", StateSucceeded)
	if got := evals.Load(); got != 1 {
		t.Fatalf("%d evaluations for %d identical submissions, want 1", got, n)
	}
	if m.Evaluations() != 1 {
		t.Fatalf("Evaluations() = %v, want 1", m.Evaluations())
	}
	if j.Coalesced != n-1 {
		t.Fatalf("Coalesced = %d, want %d", j.Coalesced, n-1)
	}
}

func TestRetriesWithBudget(t *testing.T) {
	var calls atomic.Int64
	m := newTestManager(t, t.TempDir(), func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("eventually"), nil
	})
	m.Submit("optimize", "cafe0001", nil)
	j := waitState(t, m, "cafe0001", StateSucceeded)
	if j.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", j.Attempts)
	}
	if string(j.Result) != "eventually" {
		t.Fatalf("result %q", j.Result)
	}
}

func TestBudgetExhaustionFails(t *testing.T) {
	m := newTestManager(t, t.TempDir(), func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return nil, errors.New("permanent")
	})
	m.Submit("estimate", "cafe0002", nil)
	j := waitState(t, m, "cafe0002", StateFailed)
	if j.Attempts != 3 || j.Error != "permanent" {
		t.Fatalf("attempts=%d err=%q", j.Attempts, j.Error)
	}

	// A fresh submission of the same id reopens the failed job.
	_, isNew, err := m.Submit("estimate", "cafe0002", nil)
	if err != nil || !isNew {
		t.Fatalf("resubmit = %v, %v; want a fresh job", isNew, err)
	}
	waitState(t, m, "cafe0002", StateFailed)
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	m := newTestManager(t, t.TempDir(), func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	m.Submit("simulate", "cafe0003", nil)
	<-started
	if _, ok := m.Cancel("cafe0003"); !ok {
		t.Fatal("Cancel: job not found")
	}
	j := waitState(t, m, "cafe0003", StateCancelled)
	// A cancelled attempt must not be retried.
	time.Sleep(30 * time.Millisecond)
	if j2, _ := m.Get("cafe0003"); j2.State != StateCancelled || j2.Attempts != j.Attempts {
		t.Fatalf("cancelled job moved on: %+v", j2)
	}
}

func TestCancelQueuedBeforeRun(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		<-gate
		return []byte("x"), nil
	})
	// Fill both workers, then queue a third job and cancel it while queued.
	m.Submit("estimate", "cafe0010", nil)
	m.Submit("estimate", "cafe0011", nil)
	time.Sleep(5 * time.Millisecond)
	m.Submit("estimate", "cafe0012", nil)
	if j, ok := m.Cancel("cafe0012"); !ok || j.State != StateCancelled {
		t.Fatalf("cancel queued: %+v ok=%v", j, ok)
	}
	close(gate)
	waitState(t, m, "cafe0010", StateSucceeded)
	waitState(t, m, "cafe0011", StateSucceeded)
	if j, _ := m.Get("cafe0012"); j.State != StateCancelled || j.Attempts != 0 {
		t.Fatalf("cancelled-queued job ran: %+v", j)
	}
}

// Restarting a manager over the same dir replays the journal: finished
// jobs keep their results, unfinished jobs re-run.
func TestReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	m1 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		if kind == "slow" {
			select {
			case <-block:
			case <-ctx.Done(): // shutdown: leave unfinished
				return nil, ctx.Err()
			}
		}
		return append([]byte("r:"), body...), nil
	})
	m1.Submit("estimate", "aaaa1111", []byte("done-before-crash"))
	waitState(t, m1, "aaaa1111", StateSucceeded)
	m1.Submit("slow", "bbbb2222", []byte("interrupted"))
	waitState(t, m1, "bbbb2222", StateRunning)
	m1.Close() // simulates the crash: the slow job never finished

	m2 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return append([]byte("r:"), body...), nil
	})
	j, ok := m2.Get("aaaa1111")
	if !ok || j.State != StateSucceeded || string(j.Result) != "r:done-before-crash" {
		t.Fatalf("finished job after replay: %+v ok=%v", j, ok)
	}
	j2 := waitState(t, m2, "bbbb2222", StateSucceeded)
	if string(j2.Result) != "r:interrupted" {
		t.Fatalf("interrupted job re-ran to %q", j2.Result)
	}
	// The interrupted attempt did not count against the budget.
	if j2.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", j2.Attempts)
	}
}

// Attempt records persist the retry budget across restarts.
func TestReplayPreservesAttemptBudget(t *testing.T) {
	dir := t.TempDir()
	firstFailed := make(chan struct{}, 1)
	m1 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		select {
		case firstFailed <- struct{}{}:
			return nil, errors.New("boom")
		default:
			<-ctx.Done() // park until shutdown so no more attempts land
			return nil, ctx.Err()
		}
	})
	m1.Submit("estimate", "cccc3333", nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := m1.Get("cccc3333"); j.Attempts >= 1 && j.Error == "boom" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first failing attempt never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	m2 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return nil, errors.New("still boom")
	})
	j := waitState(t, m2, "cccc3333", StateFailed)
	// One attempt journaled before the restart + the remaining budget.
	if j.Attempts != 3 {
		t.Fatalf("attempts after restart = %d, want 3", j.Attempts)
	}
}

// A journal failure degrades to memory-only: submissions keep working and
// the gauge reports the condition.
func TestDegradedModeKeepsServing(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return []byte("ok"), nil
	})
	// Sabotage the journal file descriptor: close it out from under the
	// manager so the next append fails.
	m.mu.Lock()
	m.journal.f.Close()
	m.mu.Unlock()

	if _, _, err := m.Submit("estimate", "dddd4444", nil); err != nil {
		t.Fatalf("submit while degrading: %v", err)
	}
	waitState(t, m, "dddd4444", StateSucceeded)
	if !m.Degraded() {
		t.Fatal("manager not degraded after journal failure")
	}
	if m.degradedG.Value() != 1 {
		t.Fatal("lognic_jobs_degraded gauge not raised")
	}
	// Still accepting work.
	m.Submit("estimate", "eeee5555", nil)
	waitState(t, m, "eeee5555", StateSucceeded)
}

// Memory-only checkpoints flow between attempts of the same process.
func TestCheckpointStoreMemoryFallback(t *testing.T) {
	var sawCkpt atomic.Bool
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		if b, ok := ck.Load(); ok {
			sawCkpt.Store(string(b) == "progress-marker")
			return []byte("resumed"), nil
		}
		ck.Save([]byte("progress-marker"))
		return nil, errors.New("interrupted")
	})
	m.Submit("simulate", "ffff6666", nil)
	j := waitState(t, m, "ffff6666", StateSucceeded)
	if !sawCkpt.Load() {
		t.Fatal("retry attempt did not see the saved checkpoint")
	}
	if string(j.Result) != "resumed" {
		t.Fatalf("result %q", j.Result)
	}
}

// On-disk checkpoints survive a manager restart and are deleted when the
// job completes.
func TestCheckpointStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		ck.Save([]byte("snap-1"))
		<-ctx.Done() // park until shutdown, like a crash mid-simulation
		return nil, ctx.Err()
	})
	m1.Submit("simulate", "abcd7777", nil)
	ckPath := filepath.Join(dir, ckptName("abcd7777"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint file never written")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	var loaded atomic.Value
	m2 := newTestManager(t, dir, func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		b, _ := ck.Load()
		loaded.Store(string(b))
		return []byte("done"), nil
	})
	waitState(t, m2, "abcd7777", StateSucceeded)
	if loaded.Load() != "snap-1" {
		t.Fatalf("restarted attempt loaded %q, want snap-1", loaded.Load())
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not deleted after success: %v", err)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	m, err := NewManager(Config{
		Evaluate:    func(context.Context, string, string, []byte, CheckpointStore) ([]byte, error) { return nil, nil },
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempts, max := range map[int]time.Duration{1: 100 * time.Millisecond, 2: 200 * time.Millisecond, 3: 400 * time.Millisecond, 10: 400 * time.Millisecond} {
		for i := 0; i < 50; i++ {
			d := m.backoffLocked(attempts)
			if d < max/2 || d > max {
				t.Fatalf("backoff(%d) = %v, want [%v, %v]", attempts, d, max/2, max)
			}
		}
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("nil Evaluate accepted")
	}
	m, _ := NewManager(Config{Evaluate: func(context.Context, string, string, []byte, CheckpointStore) ([]byte, error) { return nil, nil }})
	if _, _, err := m.Submit("", "id", nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, _, err := m.Submit("estimate", "", nil); err == nil {
		t.Fatal("empty id accepted")
	}
	m.Close()
	if _, _, err := m.Submit("estimate", "id1234", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

func TestCkptNameArmorsNonHexIDs(t *testing.T) {
	for _, id := range []string{"../../etc/passwd", "a b", "UPPER", "deadbeef"} {
		name := ckptName(id)
		if filepath.Base(name) != name || name == "ckpt-.bin" {
			t.Fatalf("ckptName(%q) = %q escapes or is empty", id, name)
		}
	}
	if ckptName("deadbeef") != "ckpt-deadbeef.bin" {
		t.Fatal("hex ids should map through unchanged")
	}
}

func TestManagerStartTwice(t *testing.T) {
	m, _ := NewManager(Config{Evaluate: func(context.Context, string, string, []byte, CheckpointStore) ([]byte, error) { return nil, nil }})
	defer m.Close()
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestUnwritableDirDegradesNotFails(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	m, err := NewManager(Config{
		Dir:      filepath.Join(parent, "jobs"),
		Evaluate: func(context.Context, string, string, []byte, CheckpointStore) ([]byte, error) { return []byte("ok"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Start(); err != nil {
		t.Fatalf("Start should degrade, not fail: %v", err)
	}
	if !m.Degraded() {
		t.Fatal("not degraded")
	}
	m.Submit("estimate", "ab12cd34", nil)
	waitState(t, m, "ab12cd34", StateSucceeded)
}

func TestJobsListingOrder(t *testing.T) {
	m := newTestManager(t, "", func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error) {
		return nil, nil
	})
	for i := 0; i < 5; i++ {
		m.Submit("estimate", fmt.Sprintf("%08x", i), nil)
	}
	list := m.Jobs()
	if len(list) != 5 {
		t.Fatalf("len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Created.After(list[i-1].Created) {
			t.Fatal("jobs not newest-first")
		}
	}
}
