package jobs

// Per-job checkpoint slots. A long simulation saves its serialized
// sim.Checkpoint here periodically; the next attempt (same process after
// a retry, or a fresh process after a crash) Loads it and resumes
// instead of starting over. On disk each slot is a single CRC-framed
// record written atomically (tmp + fsync + rename), so a crash mid-save
// leaves either the old checkpoint or the new one, never a torn file.

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"lognic/internal/obs"
)

// ckptName maps a job id to its checkpoint filename. Job ids are hex
// hashes; anything else is hex-armored so an id can never escape Dir.
var hexID = regexp.MustCompile(`^[0-9a-f]{8,64}$`)

func ckptName(id string) string {
	if !hexID.MatchString(id) {
		id = hex.EncodeToString([]byte(id))
	}
	return "ckpt-" + id + ".bin"
}

// ckptSlot is the CheckpointStore handed to one evaluation attempt.
type ckptSlot struct {
	m  *Manager
	id string
}

func (c *ckptSlot) Load() ([]byte, bool) {
	c.m.mu.Lock()
	j := c.m.jobs[c.id]
	degraded := c.m.degraded
	dir := c.m.cfg.Dir
	var mem []byte
	if j != nil && j.memCkpt != nil {
		mem = append([]byte(nil), j.memCkpt...)
	}
	c.m.mu.Unlock()

	if mem != nil {
		return mem, true
	}
	if dir == "" || degraded {
		return nil, false
	}
	f, err := os.Open(filepath.Join(dir, ckptName(c.id)))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	// The slot holds exactly one frame; a torn or bit-rotted file yields
	// zero records and the attempt starts from scratch — safe, just slower.
	records, _, err := ReplayRecords(f)
	if err != nil || len(records) == 0 {
		return nil, false
	}
	return records[0], true
}

func (c *ckptSlot) Save(b []byte) {
	c.m.mu.Lock()
	degraded := c.m.degraded
	dir := c.m.cfg.Dir
	c.m.noteCheckpointLocked(c.id, len(b))
	c.m.mu.Unlock()

	if dir != "" && !degraded {
		if err := writeCkptFile(filepath.Join(dir, ckptName(c.id)), b); err == nil {
			return
		} else {
			c.m.mu.Lock()
			c.m.degradeLocked(fmt.Errorf("checkpoint save: %w", err))
			c.m.mu.Unlock()
		}
	}
	c.m.mu.Lock()
	if j := c.m.jobs[c.id]; j != nil {
		j.memCkpt = append([]byte(nil), b...)
	}
	c.m.mu.Unlock()
}

// writeCkptFile atomically replaces path with one CRC-framed record.
func writeCkptFile(path string, payload []byte) error {
	if len(payload) > maxRecordLen {
		return ErrRecordTooLarge
	}
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	buf.Write(frameHeader(payload))
	buf.Write(payload)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// dropCheckpointLocked discards a terminal job's checkpoint, both the
// in-memory copy and the on-disk slot. Caller holds mu.
func (m *Manager) dropCheckpointLocked(j *job) {
	j.memCkpt = nil
	if m.cfg.Dir != "" {
		os.Remove(filepath.Join(m.cfg.Dir, ckptName(j.id)))
	}
}

// noteCheckpointLocked books one checkpoint save: a checkpoint event on
// the job's feed and a point span under the running attempt. Caller
// holds mu.
func (m *Manager) noteCheckpointLocked(id string, bytes int) {
	j := m.jobs[id]
	if j == nil {
		return
	}
	j.ckptSaves++
	m.publishLocked(id, Event{Type: EventCheckpoint, State: j.state,
		Attempt: j.attempts, Checkpoints: j.ckptSaves})
	if m.cfg.Tracer != nil {
		var traceID string
		if tc, err := obs.ParseTraceparent(j.trace); err == nil {
			traceID = tc.TraceID
		}
		m.cfg.Tracer.Emit(obs.Span{
			Name: "checkpoint", Cat: "job",
			Track: jobTrack(id), Start: m.cfg.SpanTime(), Dur: 0,
			Args:    map[string]any{"job_id": id, "bytes": bytes},
			TraceID: traceID, ParentID: j.attemptSpanID,
		})
	}
}

// MarkResumed records that an attempt restored a checkpoint (surfaced on
// the Job snapshot and the resumed counter). Evaluators call it via the
// manager reference they close over.
func (m *Manager) MarkResumed(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j := m.jobs[id]; j != nil && !j.resumed {
		j.resumed = true
		m.jobLogger(j).Info("attempt resumed from checkpoint", "attempt", j.attempts)
		m.publishLocked(id, Event{Type: EventResumed, State: j.state,
			Attempt: j.attempts, Resumed: true})
	}
	m.resumes.Inc()
}
