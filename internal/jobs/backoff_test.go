package jobs

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestBackoffBounds pins the retry-delay envelope: every draw must land
// in [exp/2, min(exp, BackoffMax)] where exp is the capped exponential —
// in particular the jitter must never exceed BackoffMax, attempts below
// one must behave like the first retry instead of skipping the schedule,
// and a huge attempt count must saturate at the cap rather than overflow.
func TestBackoffBounds(t *testing.T) {
	cases := []struct {
		name     string
		base     time.Duration
		max      time.Duration
		attempts int
		lo, hi   time.Duration
	}{
		{"first retry", 200 * time.Millisecond, 10 * time.Second, 1,
			100 * time.Millisecond, 200 * time.Millisecond},
		{"second retry doubles", 200 * time.Millisecond, 10 * time.Second, 2,
			200 * time.Millisecond, 400 * time.Millisecond},
		{"fifth retry", 200 * time.Millisecond, 10 * time.Second, 5,
			1600 * time.Millisecond, 3200 * time.Millisecond},
		{"saturates at cap", 200 * time.Millisecond, 10 * time.Second, 12,
			5 * time.Second, 10 * time.Second},
		{"cap not power-of-two aligned", 300 * time.Millisecond, time.Second, 4,
			500 * time.Millisecond, time.Second},
		{"zero attempts acts like first", 200 * time.Millisecond, 10 * time.Second, 0,
			100 * time.Millisecond, 200 * time.Millisecond},
		{"negative attempts acts like first", 200 * time.Millisecond, 10 * time.Second, -3,
			100 * time.Millisecond, 200 * time.Millisecond},
		{"base above cap clamps", 5 * time.Second, time.Second, 1,
			500 * time.Millisecond, time.Second},
		{"huge attempt count does not overflow", time.Second, math.MaxInt64, 500,
			math.MaxInt64 / 2, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewManager(Config{
				BackoffBase: tc.base,
				BackoffMax:  tc.max,
				Evaluate: func(context.Context, string, string, []byte, CheckpointStore) ([]byte, error) {
					return nil, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				d := m.backoffLocked(tc.attempts)
				if d < tc.lo || d > tc.hi {
					t.Fatalf("attempts=%d draw %v outside [%v, %v]", tc.attempts, d, tc.lo, tc.hi)
				}
				if d > tc.max {
					t.Fatalf("attempts=%d draw %v exceeds BackoffMax %v", tc.attempts, d, tc.max)
				}
			}
		})
	}
}
