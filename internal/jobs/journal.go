package jobs

// The durable journal: an append-only file of CRC-framed records that
// makes accepted jobs survive kill -9. Every state transition the manager
// must not forget — submission, terminal completion, terminal failure,
// cancellation, and per-attempt failures (so retry budgets survive a
// crash) — is framed, appended and fsynced before the transition is
// acknowledged.
//
// Frame format, little-endian:
//
//	+---------+----------+------------------+
//	| len u32 | crc32c u32 | payload (len B) |
//	+---------+----------+------------------+
//
// crc32c is the Castagnoli CRC of the payload. Replay reads frames until
// the first hole — a short header, a length beyond the file, a CRC
// mismatch, or an oversized length field — and recovers every record
// before it; the file is then truncated back to the last good frame so
// new appends never interleave with a torn tail. A kill -9 can tear at
// most the frame being written, which was by definition unacknowledged.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// maxRecordLen bounds one record's payload. Journal records are small
// JSON documents (a submitted spec, a serialized result); anything past
// this is a corrupt length field, not a record — replay must not trust a
// torn u32 enough to allocate 4 GiB.
const maxRecordLen = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrRecordTooLarge reports an Append payload over maxRecordLen.
var ErrRecordTooLarge = errors.New("jobs: journal record exceeds size cap")

// ReplayRecords reads CRC-framed records from r until EOF or the first
// corrupt frame. It returns the intact records and the byte offset of
// the first hole (== bytes consumed by intact frames). Corruption is not
// an error: a torn tail is the expected crash signature, and everything
// before it is trustworthy. The reader is consumed; errors other than
// frame corruption (I/O failures) are returned alongside the records
// recovered so far.
func ReplayRecords(r io.Reader) (records [][]byte, goodBytes int64, err error) {
	br := bufio.NewReader(r)
	var head [8]byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, goodBytes, nil // clean end or torn header
			}
			return records, goodBytes, err
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if n > maxRecordLen {
			return records, goodBytes, nil // corrupt length field
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, goodBytes, nil // torn payload
			}
			return records, goodBytes, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return records, goodBytes, nil // bit rot or torn overwrite
		}
		records = append(records, payload)
		goodBytes += 8 + int64(n)
	}
}

// Journal is an append-only CRC-framed record log.
type Journal struct {
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path, replays its intact
// records, and truncates any torn tail so subsequent appends start at a
// clean frame boundary.
func OpenJournal(path string) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	records, good, err := ReplayRecords(f)
	if err != nil {
		f.Close()
		return nil, records, fmt.Errorf("jobs: replaying journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, records, fmt.Errorf("jobs: stat journal: %w", err)
	}
	if st.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, records, fmt.Errorf("jobs: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, records, fmt.Errorf("jobs: seeking journal: %w", err)
	}
	return &Journal{f: f, path: path}, records, nil
}

// frameHeader builds the 8-byte frame header for payload.
func frameHeader(payload []byte) []byte {
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(payload, crcTable))
	return head
}

// WriteFrame writes one CRC-framed record to w in the journal's frame
// format (len u32 | crc32c u32 | payload, little-endian). It is the
// streaming counterpart of ReplayRecords for consumers that frame records
// over something other than the job journal — lognic-serve's cache
// snapshots use it so a snapshot stream gets the same torn-tail and
// bit-rot detection the journal has.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxRecordLen {
		return ErrRecordTooLarge
	}
	if _, err := w.Write(frameHeader(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Append frames, writes and fsyncs one record. An error means the record
// may not be durable; the caller decides whether to degrade to
// memory-only operation or refuse the transition.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return ErrRecordTooLarge
	}
	// One Write call per frame section; a torn frame is recovered by
	// replay's CRC check regardless of where the tear lands.
	if _, err := j.f.Write(frameHeader(payload)); err != nil {
		return fmt.Errorf("jobs: journal write: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("jobs: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal fsync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
