package jobs

// Live job event streaming. Every job carries an ordered event feed —
// state transitions, attempt starts, backoff scheduling, checkpoint
// saves, in-run progress frames, degradation — that lognic-serve exposes
// as Server-Sent Events at GET /v1/jobs/{id}/events.
//
// Subscriptions buffer events in a bounded per-subscriber queue. A slow
// consumer never blocks the manager and never stalls other subscribers:
// when the queue fills, the oldest *droppable* frame (progress or
// checkpoint — snapshots superseded by any later one) is evicted, while
// state transitions, attempts, backoffs and the terminal result are
// never dropped. Dropped counts are reported on the subscription so the
// stream can disclose the gap.

import (
	"context"
	"sync"
	"time"
)

// EventType classifies job events.
const (
	// EventState is a lifecycle transition; the terminal one carries the
	// result (succeeded) or error (failed/cancelled) and Terminal=true.
	EventState = "state"
	// EventAttempt marks an evaluation attempt starting.
	EventAttempt = "attempt"
	// EventBackoff marks a retry scheduled after a failed attempt.
	EventBackoff = "backoff"
	// EventProgress is a periodic in-run snapshot (events simulated,
	// sim-time, checkpoints) fed from sim.Config.Progress. Droppable.
	EventProgress = "progress"
	// EventCheckpoint marks a checkpoint save. Droppable.
	EventCheckpoint = "checkpoint"
	// EventResumed marks an attempt restoring a checkpoint instead of
	// starting over.
	EventResumed = "resumed"
	// EventDegraded reports the manager losing durability (broadcast to
	// every subscriber).
	EventDegraded = "degraded"
)

// Event is one entry in a job's event feed.
type Event struct {
	// Seq orders events across the whole manager; gaps in a stream mean
	// dropped progress frames, never missed transitions.
	Seq uint64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// JobID is the subject job.
	JobID string `json:"job_id"`
	// State is the job's lifecycle state after the event.
	State State `json:"state,omitempty"`
	// Attempt is the attempt count after the event.
	Attempt int `json:"attempt,omitempty"`
	// Error carries attempt or terminal failure detail.
	Error string `json:"error,omitempty"`
	// Resumed reports that some attempt restored a checkpoint.
	Resumed bool `json:"resumed,omitempty"`
	// RetryAt is the scheduled next attempt (backoff events).
	RetryAt time.Time `json:"retry_at,omitempty"`
	// Events, SimTime and Checkpoints are the progress snapshot.
	Events      uint64  `json:"events,omitempty"`
	SimTime     float64 `json:"sim_time,omitempty"`
	Checkpoints uint64  `json:"checkpoints,omitempty"`
	// Result is the serialized evaluation result (terminal success).
	Result []byte `json:"result,omitempty"`
	// Terminal marks the feed's final event; the stream ends after it.
	Terminal bool `json:"terminal,omitempty"`
}

// droppable reports whether a full buffer may evict this event: only
// snapshot-style frames a later frame supersedes.
func (e Event) droppable() bool {
	return e.Type == EventProgress || e.Type == EventCheckpoint
}

// DefaultSubscriptionBuffer bounds a subscription's queue when Subscribe
// is called with buf <= 0.
const DefaultSubscriptionBuffer = 64

// Subscription is one subscriber's bounded event feed.
// Lock order: Manager.mu may be held while taking Subscription.mu,
// never the reverse.
type Subscription struct {
	m  *Manager
	id string

	mu      sync.Mutex
	queue   []Event
	max     int
	closed  bool
	dropped uint64
	// notify has capacity 1: publishers make a non-blocking send, Next
	// drains it. A slow consumer therefore costs publishers nothing.
	notify chan struct{}
}

// Subscribe opens an event feed for a job and returns it with the job's
// current snapshot (so the caller can render state-so-far before any new
// event arrives). ok is false for unknown jobs.
func (m *Manager) Subscribe(id string, buf int) (sub *Subscription, snap Job, ok bool) {
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, exists := m.jobs[id]
	if !exists {
		return nil, Job{}, false
	}
	sub = &Subscription{m: m, id: id, max: buf, notify: make(chan struct{}, 1)}
	m.subs[id] = append(m.subs[id], sub)
	return sub, j.snapshot(m.cfg.MaxAttempts), true
}

// Subscribers reports how many feeds are currently attached to a job —
// the observable side of a client disconnecting mid-stream.
func (m *Manager) Subscribers(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs[id])
}

// Next blocks until an event is available, the context ends, or the
// subscription closes. It returns ok=false with the context's error on
// cancellation and ok=false, nil error when the feed closed cleanly.
func (s *Subscription) Next(ctx context.Context) (Event, bool, error) {
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			e := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			return e, true, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false, nil
		}
		select {
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		case <-s.notify:
		}
	}
}

// Dropped counts progress/checkpoint frames evicted because this
// subscriber fell behind.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the manager. Pending events stay
// readable; Next returns ok=false once drained.
func (s *Subscription) Close() {
	s.m.mu.Lock()
	subs := s.m.subs[s.id]
	for i, other := range subs {
		if other == s {
			s.m.subs[s.id] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	if len(s.m.subs[s.id]) == 0 {
		delete(s.m.subs, s.id)
	}
	s.m.mu.Unlock()
	s.closeFeed()
}

// closeFeed marks the feed finished and wakes the reader.
func (s *Subscription) closeFeed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// push enqueues one event, evicting the oldest droppable frame when the
// buffer is full. Non-droppable events always enter the queue: the
// buffer can exceed max only by the handful of lifecycle events a job
// can ever emit, so it stays bounded.
func (s *Subscription) push(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.queue) >= s.max {
		evicted := false
		for i, old := range s.queue {
			if old.droppable() {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.dropped++
				evicted = true
				break
			}
		}
		if !evicted && e.droppable() {
			// Queue full of must-deliver events: shed the new snapshot
			// instead.
			s.dropped++
			s.mu.Unlock()
			return
		}
	}
	s.queue = append(s.queue, e)
	terminal := e.Terminal
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	if terminal {
		s.closeFeed()
	}
}

// publishLocked fans one event out to the job's subscribers. Caller
// holds m.mu. Terminal events close the feeds after delivery.
func (m *Manager) publishLocked(id string, e Event) {
	subs := m.subs[id]
	if len(subs) == 0 && e.Type != EventDegraded {
		return
	}
	m.eventSeq++
	e.Seq = m.eventSeq
	e.JobID = id
	if j := m.jobs[id]; j != nil {
		e.Resumed = e.Resumed || j.resumed
	}
	for _, sub := range subs {
		sub.push(e)
	}
	if e.Terminal {
		delete(m.subs, id)
	}
}

// broadcastLocked sends an event to every subscriber of every job —
// manager-wide conditions like durability loss. Caller holds m.mu.
func (m *Manager) broadcastLocked(e Event) {
	for id, subs := range m.subs {
		m.eventSeq++
		out := e
		out.Seq = m.eventSeq
		out.JobID = id
		for _, sub := range subs {
			sub.push(out)
		}
	}
}

// Progress publishes an in-run progress frame for a running job.
// lognic-serve wires sim.Config.Progress here (throttled to a sane
// wall-clock cadence).
func (m *Manager) Progress(id string, events uint64, simTime float64, checkpoints uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.publishLocked(id, Event{
		Type: EventProgress, State: StateRunning,
		Events: events, SimTime: simTime, Checkpoints: checkpoints,
	})
}
