package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lognic/internal/obs"
	"lognic/internal/obs/olog"
)

// EvalFunc executes one evaluation attempt. id, kind and body are the
// values passed to Submit; ck gives the attempt access to the job's
// checkpoint slot (Load a previous simulation snapshot, Save periodic
// ones). The returned bytes are the job's result, stored and replayed
// verbatim.
type EvalFunc func(ctx context.Context, id, kind string, body []byte, ck CheckpointStore) ([]byte, error)

// CheckpointStore is one job's checkpoint slot. Save is best-effort: on
// a disk error the manager degrades to an in-memory slot (the degraded
// gauge goes up) so retries in this process still resume; only a crash
// then loses the checkpoint, never the job.
type CheckpointStore interface {
	// Load returns the most recent checkpoint, if any.
	Load() ([]byte, bool)
	// Save replaces the job's checkpoint.
	Save([]byte)
}

// ErrClosed reports an operation on a closed manager.
var ErrClosed = errors.New("jobs: manager closed")

// Config tunes a Manager.
type Config struct {
	// Dir is the durability directory (journal + checkpoints). Empty
	// runs memory-only: jobs work, nothing survives a restart.
	Dir string
	// Workers caps concurrent evaluations (default 2).
	Workers int
	// MaxAttempts is the per-job attempt budget (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay (default 200ms); attempt k
	// waits min(BackoffBase·2^(k-1), BackoffMax), jittered to [d/2, d).
	BackoffBase time.Duration
	// BackoffMax caps the retry delay (default 10s).
	BackoffMax time.Duration
	// Evaluate runs one attempt. Required.
	Evaluate EvalFunc
	// Registry receives job metrics (default: a fresh registry).
	Registry *obs.Registry
	// Logger receives the manager's structured log records (default:
	// discard). Job-scoped records carry the job_id attribute.
	Logger *slog.Logger
	// Tracer, when set, receives attempt/backoff/checkpoint spans so a
	// job's execution shows up in the merged Perfetto export alongside
	// the serve request and sim vertex spans.
	Tracer *obs.Tracer
	// SpanTime supplies span timestamps in seconds; lognic-serve passes
	// its request-span clock so job and request spans share one timeline.
	// Default: seconds since the manager was built.
	SpanTime func() float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Evaluate == nil {
		return c, errors.New("jobs: Config.Evaluate is required")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = olog.Discard()
	}
	return c, nil
}

// job is the manager's mutable record; all fields are guarded by
// Manager.mu except the fields copied into Job snapshots.
type job struct {
	id, kind string
	body     []byte
	state    State
	attempts int
	coal     int
	result   []byte
	errMsg   string
	resumed  bool
	created  time.Time
	started  time.Time
	finished time.Time
	// retryAt is the scheduled next-attempt time while queued in backoff.
	retryAt time.Time
	// cancel aborts the running attempt; non-nil only while running.
	cancel context.CancelFunc
	// userCancelled distinguishes DELETE /v1/jobs from a shutdown
	// cancellation: the first is terminal, the second leaves the job
	// queued so a restart resumes it.
	userCancelled bool
	// memCkpt is the in-memory checkpoint fallback (degraded mode, or
	// memory-only managers).
	memCkpt []byte
	// trace is the originating request's traceparent header, journaled so
	// attempts after a crash still join the submitter's trace.
	trace string
	// attemptSpanID is the current attempt's span id while running, the
	// parent for checkpoint spans saved during the attempt.
	attemptSpanID string
	// ckptSaves counts checkpoint saves for this job in this process.
	ckptSaves uint64
}

// Manager runs the job subsystem.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	pending  []string // FIFO of job ids ready for a worker
	timers   map[*time.Timer]struct{}
	journal  *Journal
	degraded bool
	closed   bool
	started  bool
	rng      *rand.Rand

	// subscriptions: job id → live event feeds (events.go).
	subs     map[string][]*Subscription
	eventSeq uint64

	// spanEpoch anchors the default SpanTime clock.
	spanEpoch time.Time

	closeCtx  context.Context
	closeStop context.CancelFunc
	wg        sync.WaitGroup

	// metrics
	stateG    map[State]*obs.Gauge
	degradedG *obs.Gauge
	submitted *obs.Counter
	coalesced *obs.Counter
	retries   *obs.Counter
	evals     *obs.Counter
	resumes   *obs.Counter
	replayed  *obs.Counter
	jErrors   *obs.Counter
	fsyncH    *obs.Histogram
}

// NewManager builds a manager. It performs no I/O; call Start to open
// and replay the journal and launch the workers.
func NewManager(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:       cfg,
		jobs:      map[string]*job{},
		timers:    map[*time.Timer]struct{}{},
		subs:      map[string][]*Subscription{},
		spanEpoch: time.Now(),
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if m.cfg.SpanTime == nil {
		m.cfg.SpanTime = func() float64 { return time.Since(m.spanEpoch).Seconds() }
	}
	m.cond = sync.NewCond(&m.mu)
	m.closeCtx, m.closeStop = context.WithCancel(context.Background())

	reg := cfg.Registry
	m.stateG = make(map[State]*obs.Gauge, len(states))
	for _, st := range states {
		m.stateG[st] = reg.Gauge("lognic_jobs_state", "jobs by lifecycle state",
			obs.Labels{"state": string(st)})
	}
	m.degradedG = reg.Gauge("lognic_jobs_degraded",
		"1 when a durability failure forced memory-only operation", nil)
	m.submitted = reg.Counter("lognic_jobs_submitted_total", "job submissions accepted", nil)
	m.coalesced = reg.Counter("lognic_jobs_coalesced_total",
		"submissions folded into an existing job by canonical-hash identity", nil)
	m.retries = reg.Counter("lognic_jobs_retries_total", "attempts re-scheduled after a failure", nil)
	m.evals = reg.Counter("lognic_jobs_evaluations_total", "evaluation attempts started", nil)
	m.resumes = reg.Counter("lognic_jobs_resumed_total",
		"attempts that restored a simulation checkpoint", nil)
	m.replayed = reg.Counter("lognic_jobs_replayed_total", "journal records replayed at startup", nil)
	m.jErrors = reg.Counter("lognic_jobs_journal_errors_total", "journal/checkpoint write failures", nil)
	m.fsyncH = reg.Histogram("lognic_jobs_journal_fsync_seconds",
		"journal append+fsync latency", obs.ExpBuckets(1e-5, 4, 12), nil)
	return m, nil
}

// Start opens and replays the journal (when Config.Dir is set),
// re-enqueues every job without a terminal record, and launches the
// worker pool. A journal that cannot be opened degrades the manager to
// memory-only operation instead of failing Start; the returned error is
// then nil and the degraded gauge reports the condition.
func (m *Manager) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.started {
		return errors.New("jobs: manager already started")
	}
	m.started = true

	if m.cfg.Dir != "" {
		if err := os.MkdirAll(m.cfg.Dir, 0o755); err != nil {
			m.degradeLocked(fmt.Errorf("creating jobs dir: %w", err))
		} else {
			jr, records, err := OpenJournal(filepath.Join(m.cfg.Dir, "journal.wal"))
			if err != nil {
				m.degradeLocked(err)
			} else {
				m.journal = jr
				m.replayLocked(records)
			}
		}
	}
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return nil
}

// replayLocked rebuilds job state from journal records, in order.
func (m *Manager) replayLocked(records [][]byte) {
	for _, rec := range records {
		var r record
		if err := json.Unmarshal(rec, &r); err != nil || r.ID == "" {
			continue // an old or foreign record shape; framing already vouched for integrity
		}
		m.replayed.Inc()
		j := m.jobs[r.ID]
		switch r.Type {
		case "submit":
			if j == nil {
				j = &job{id: r.ID, created: time.Unix(0, r.Unix)}
				m.jobs[r.ID] = j
			}
			// A submit record also reopens a previously terminal job
			// (resubmission after failure/cancel).
			j.kind = r.Kind
			j.body = append([]byte(nil), r.Body...)
			j.state = StateQueued
			j.attempts = 0
			j.result = nil
			j.errMsg = ""
			j.userCancelled = false
			j.trace = r.Trace
		case "attempt":
			if j != nil {
				j.attempts = r.Attempts
				j.errMsg = r.Error
			}
		case "done":
			if j != nil {
				j.state = StateSucceeded
				j.result = append([]byte(nil), r.Result...)
				j.finished = time.Unix(0, r.Unix)
			}
		case "fail":
			if j != nil {
				j.state = StateFailed
				j.errMsg = r.Error
				j.attempts = r.Attempts
				j.finished = time.Unix(0, r.Unix)
			}
		case "cancel":
			if j != nil {
				j.state = StateCancelled
				j.userCancelled = true
				j.finished = time.Unix(0, r.Unix)
			}
		}
	}
	for id, j := range m.jobs {
		if j.state == StateQueued {
			m.pending = append(m.pending, id)
		}
	}
	// Deterministic re-enqueue order (map iteration is not).
	sort.Strings(m.pending)
	m.refreshStateGauges()
}

// append journals one record, degrading to memory-only on failure. The
// caller holds mu.
func (m *Manager) appendLocked(r record) {
	if m.journal == nil {
		return
	}
	r.Unix = time.Now().UnixNano()
	payload, err := json.Marshal(r)
	if err != nil {
		m.degradeLocked(err)
		return
	}
	timer := m.fsyncH.StartTimer()
	err = m.journal.Append(payload)
	timer.ObserveDuration()
	if err != nil {
		m.degradeLocked(err)
	}
}

// degradeLocked switches to memory-only mode: the journal is closed, the
// gauge goes loud, and traffic keeps flowing without durability.
func (m *Manager) degradeLocked(err error) {
	m.jErrors.Inc()
	if m.degraded {
		return
	}
	m.degraded = true
	m.degradedG.Set(1)
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
	m.cfg.Logger.Error("degraded to memory-only mode: durability lost until restart",
		olog.KeyComponent, "jobs", "error", err.Error())
	m.broadcastLocked(Event{Type: EventDegraded, Error: err.Error()})
}

// Degraded reports whether a durability failure forced memory-only mode.
func (m *Manager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// Evaluations returns the number of evaluation attempts started — the
// observable the coalescing tests assert on.
func (m *Manager) Evaluations() float64 { return m.evals.Value() }

// snapshotLocked copies a job into its public form.
func (j *job) snapshot(maxAttempts int) Job {
	out := Job{
		ID: j.id, Kind: j.kind, State: j.state,
		Attempts: j.attempts, MaxAttempts: maxAttempts, Coalesced: j.coal,
		Error: j.errMsg, Resumed: j.resumed,
		Created: j.created, Started: j.started, Finished: j.finished,
		RetryAt: j.retryAt,
	}
	if j.result != nil {
		out.Result = append([]byte(nil), j.result...)
	}
	return out
}

// Submit admits one job. id must be the canonical request hash: an id
// already known returns the existing job (coalescing — no second
// evaluation runs) unless that job ended failed or cancelled, in which
// case the submission reopens it with a fresh attempt budget. isNew
// reports whether this call enqueued work.
func (m *Manager) Submit(kind, id string, body []byte) (snap Job, isNew bool, err error) {
	return m.SubmitTrace(kind, id, body, "")
}

// SubmitTrace is Submit carrying the originating request's traceparent
// header: attempts run inside the submitter's distributed trace, and the
// header is journaled so even post-crash attempts rejoin it. Coalesced
// submissions keep the first submitter's trace.
func (m *Manager) SubmitTrace(kind, id string, body []byte, traceparent string) (snap Job, isNew bool, err error) {
	if kind == "" || id == "" {
		return Job{}, false, errors.New("jobs: submit needs a kind and an id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok && !(j.state == StateFailed || j.state == StateCancelled) {
		j.coal++
		m.coalesced.Inc()
		return j.snapshot(m.cfg.MaxAttempts), false, nil
	}
	j := m.jobs[id]
	if j == nil {
		j = &job{id: id, created: time.Now()}
		m.jobs[id] = j
	}
	j.kind = kind
	j.body = append([]byte(nil), body...)
	j.state = StateQueued
	j.attempts = 0
	j.result = nil
	j.errMsg = ""
	j.resumed = false
	j.userCancelled = false
	j.finished = time.Time{}
	j.retryAt = time.Time{}
	j.trace = traceparent
	m.submitted.Inc()
	m.appendLocked(record{Type: "submit", ID: id, Kind: kind, Body: body, Trace: traceparent})
	m.enqueueLocked(id)
	m.refreshStateGauges()
	m.jobLogger(j).Info("job submitted", "kind", kind, "state", StateQueued)
	m.publishLocked(id, Event{Type: EventState, State: StateQueued})
	return j.snapshot(m.cfg.MaxAttempts), true, nil
}

// jobLogger tags the configured logger with one job's identity.
func (m *Manager) jobLogger(j *job) *slog.Logger {
	l := olog.WithJob(m.cfg.Logger, j.id).With(olog.KeyComponent, "jobs")
	if tc, err := obs.ParseTraceparent(j.trace); err == nil {
		l = l.With(olog.KeyTraceID, tc.TraceID)
	}
	return l
}

// jobTrack maps a job id to a span track.
func jobTrack(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// Get returns a job snapshot.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(m.cfg.MaxAttempts), true
}

// Cancel requests cancellation: a queued job goes terminal immediately, a
// running job's context is cancelled (it goes terminal when the attempt
// unwinds). Cancelling a terminal job is a no-op returning its state.
func (m *Manager) Cancel(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	if j.state.Terminal() {
		return j.snapshot(m.cfg.MaxAttempts), true
	}
	j.userCancelled = true
	m.appendLocked(record{Type: "cancel", ID: id})
	if j.state == StateRunning && j.cancel != nil {
		j.cancel() // the worker finalizes the state transition
	} else {
		j.state = StateCancelled
		j.finished = time.Now()
		m.dropCheckpointLocked(j)
		m.jobLogger(j).Info("job cancelled", "state", StateCancelled)
		m.publishLocked(id, Event{Type: EventState, State: StateCancelled, Terminal: true})
	}
	m.refreshStateGauges()
	return j.snapshot(m.cfg.MaxAttempts), true
}

// Jobs lists snapshots of every known job, newest first.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot(m.cfg.MaxAttempts))
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.After(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

func (m *Manager) enqueueLocked(id string) {
	m.pending = append(m.pending, id)
	m.cond.Signal()
}

// next blocks until a job id is pending or the manager closes.
func (m *Manager) next() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return "", false
	}
	id := m.pending[0]
	m.pending = m.pending[1:]
	return id, true
}

// worker is one pool goroutine: dequeue, run one attempt, decide the
// job's fate.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		id, ok := m.next()
		if !ok {
			return
		}
		m.runAttempt(id)
	}
}

func (m *Manager) runAttempt(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.state != StateQueued {
		// Cancelled (or resubmission-superseded) while waiting.
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.attempts++
	j.retryAt = time.Time{}
	if j.started.IsZero() {
		j.started = time.Now()
	}
	ctx, cancel := context.WithCancel(m.closeCtx)
	j.cancel = cancel
	kind, body := j.kind, j.body
	attempt := j.attempts
	log := m.jobLogger(j)
	// Mint the attempt's trace position: a child span of the submitting
	// request, carried on the attempt context so the evaluator (and the
	// simulator under it) parent their spans here. Ids come from
	// crypto/rand — never simulator randomness.
	var attemptTC obs.TraceContext
	var parentSpan string
	if tc, terr := obs.ParseTraceparent(j.trace); terr == nil {
		parentSpan = tc.SpanID
		attemptTC = tc.Child()
		j.attemptSpanID = attemptTC.SpanID
		ctx = obs.ContextWithTrace(ctx, attemptTC)
	}
	m.evals.Inc()
	m.refreshStateGauges()
	log.Info("attempt starting", "attempt", attempt, "kind", kind)
	m.publishLocked(id, Event{Type: EventAttempt, State: StateRunning, Attempt: attempt})
	m.mu.Unlock()

	attemptStart := m.cfg.SpanTime()
	result, err := m.cfg.Evaluate(ctx, id, kind, body, &ckptSlot{m: m, id: id})
	cancel()
	attemptEnd := m.cfg.SpanTime()

	m.mu.Lock()
	defer m.mu.Unlock()
	if mj := m.jobs[id]; mj != j {
		return // resubmitted out from under us; the new incarnation owns the state
	}
	j.cancel = nil
	j.attemptSpanID = ""
	outcome := "ok"
	if err != nil {
		outcome = err.Error()
	}
	m.emitSpanLocked(j, obs.Span{
		Name: fmt.Sprintf("attempt %d", attempt), Cat: "job",
		Track: jobTrack(id), Start: attemptStart, Dur: attemptEnd - attemptStart,
		Args:    map[string]any{"job_id": id, "kind": kind, "attempt": attempt, "outcome": outcome},
		TraceID: attemptTC.TraceID, SpanID: attemptTC.SpanID, ParentID: parentSpan,
	})
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = result
		j.errMsg = ""
		j.finished = time.Now()
		m.appendLocked(record{Type: "done", ID: id, Result: result, Attempts: j.attempts})
		m.dropCheckpointLocked(j)
		log.Info("job succeeded", "attempt", attempt, "result_bytes", len(result))
		m.publishLocked(id, Event{Type: EventState, State: StateSucceeded, Attempt: attempt,
			Result: result, Terminal: true})
	case j.userCancelled:
		j.state = StateCancelled
		j.finished = time.Now()
		m.dropCheckpointLocked(j) // the cancel record was journaled in Cancel
		log.Info("job cancelled mid-attempt", "attempt", attempt)
		m.publishLocked(id, Event{Type: EventState, State: StateCancelled, Attempt: attempt,
			Terminal: true})
	case m.closed || m.closeCtx.Err() != nil:
		// Shutdown interrupted the attempt: leave the job queued with the
		// attempt uncounted, exactly like a crash, so a restart resumes it.
		j.state = StateQueued
		j.attempts--
		m.publishLocked(id, Event{Type: EventState, State: StateQueued, Error: "shutdown"})
	case j.attempts >= m.cfg.MaxAttempts:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finished = time.Now()
		m.appendLocked(record{Type: "fail", ID: id, Error: err.Error(), Attempts: j.attempts})
		m.dropCheckpointLocked(j)
		log.Error("job failed: attempt budget exhausted",
			"attempt", attempt, "max_attempts", m.cfg.MaxAttempts, "error", err.Error())
		m.publishLocked(id, Event{Type: EventState, State: StateFailed, Attempt: attempt,
			Error: err.Error(), Terminal: true})
	default:
		// Retry with capped exponential backoff + jitter. The job shows
		// as queued (with the last error) while it waits.
		j.state = StateQueued
		j.errMsg = err.Error()
		m.appendLocked(record{Type: "attempt", ID: id, Error: err.Error(), Attempts: j.attempts})
		m.retries.Inc()
		d := m.backoffLocked(j.attempts)
		j.retryAt = time.Now().Add(d)
		log.Warn("attempt failed; retry scheduled",
			"attempt", attempt, "error", err.Error(), "retry_in", d.String())
		m.publishLocked(id, Event{Type: EventBackoff, State: StateQueued, Attempt: attempt,
			Error: err.Error(), RetryAt: j.retryAt})
		m.emitSpanLocked(j, obs.Span{
			Name: "backoff", Cat: "job",
			Track: jobTrack(id), Start: attemptEnd, Dur: d.Seconds(),
			Args:    map[string]any{"job_id": id, "attempt": attempt},
			TraceID: attemptTC.TraceID, ParentID: parentSpan,
		})
		var tm *time.Timer
		tm = time.AfterFunc(d, func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			delete(m.timers, tm)
			if m.closed {
				return
			}
			if jj, ok := m.jobs[id]; ok && jj.state == StateQueued {
				jj.retryAt = time.Time{} // backoff served; now genuinely pending
				m.enqueueLocked(id)
			}
		})
		m.timers[tm] = struct{}{}
	}
	m.refreshStateGauges()
}

// emitSpanLocked hands a span to the configured tracer, if any. Spans
// with no trace identity (the job was submitted without a traceparent)
// are still emitted — they render on the job's track, just unlinked.
func (m *Manager) emitSpanLocked(j *job, s obs.Span) {
	if m.cfg.Tracer == nil {
		return
	}
	m.cfg.Tracer.Emit(s)
}

// backoffLocked computes the delay before retry attempt n+1: the capped
// exponential, jittered uniformly into [d/2, d] so synchronized failures
// don't retry in lockstep. The result is always within
// [BackoffBase/2, BackoffMax]: the doubling saturates at BackoffMax
// before it can overflow, attempts below 1 are treated as the first
// retry, and the jittered value is clamped so no draw can exceed the
// configured cap.
func (m *Manager) backoffLocked(attempts int) time.Duration {
	if attempts < 1 {
		attempts = 1
	}
	d := m.cfg.BackoffBase
	for i := 1; i < attempts && d < m.cfg.BackoffMax; i++ {
		if d > m.cfg.BackoffMax/2 {
			d = m.cfg.BackoffMax // doubling would overshoot (or overflow)
			break
		}
		d *= 2
	}
	if d > m.cfg.BackoffMax {
		d = m.cfg.BackoffMax
	}
	half := d / 2
	jittered := half + time.Duration(m.rng.Int63n(int64(half)+1))
	if jittered > m.cfg.BackoffMax {
		jittered = m.cfg.BackoffMax
	}
	return jittered
}

// Close stops the workers, cancels running attempts (their jobs stay
// queued for the next start, mirroring crash semantics), stops retry
// timers and closes the journal.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for tm := range m.timers {
		tm.Stop()
	}
	m.closeStop()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
}

func (m *Manager) refreshStateGauges() {
	counts := map[State]int{}
	for _, j := range m.jobs {
		counts[j.state]++
	}
	for _, st := range states {
		m.stateG[st].Set(float64(counts[st]))
	}
}
