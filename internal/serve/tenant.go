package serve

// Multi-tenant fairness. A request carries a tenant identity in the
// X-Lognic-Tenant header (the legacy X-Tenant spelling is accepted;
// absent or unrecognized names fold into the "default" tenant), and a
// server configured with TenantWeights holds every tenant to a weighted
// share of three contended resources:
//
//   - Workers: each tenant owns a reserved slice of the worker pool (its
//     own semaphore), so a saturating tenant can occupy at most its share
//     of evaluation slots and never makes a light tenant wait behind it.
//   - QueueDepth: each tenant queues against its own share; beyond it the
//     tenant is shed with 429 + Retry-After scaled to its own backlog and
//     worker slice, while other tenants keep admitting.
//   - CacheBytes: the canonical result cache splits into per-tenant LRU
//     partitions (byte sub-budgets), optionally with a shared spillover
//     pool for entries larger than their partition, so one tenant's giant
//     simulate bodies cannot evict everyone's warm entries. The L1
//     exact-body index partitions the same way.
//
// Shares are apportioned by the largest-remainder (greatest-deficit)
// method: floor of the exact weighted share, minimum one slot, remaining
// slots to the tenants furthest below their exact share. The minimum-one
// guarantee means the effective worker cap can exceed Workers by at most
// the number of tenants whose exact share rounded below one;
// withDefaults raises Workers/QueueDepth to at least the tenant count so
// tiny pools still give everyone a slot.
//
// With TenantWeights unset, none of this machinery exists: requests flow
// through the exact single-pool, single-cache path they always did,
// byte for byte.

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"lognic/internal/obs"
	"lognic/internal/obs/slo"
)

// defaultTenant absorbs requests with no (or an unconfigured) tenant
// header. It always exists when tenancy is enabled, weight 1 unless
// configured explicitly.
const defaultTenant = "default"

// spillTenant labels the shared spillover pool in metrics and snapshot
// sections; it is reserved and never a valid tenant name.
const spillTenant = "*"

// tenantHeader carries the client's tenant identity.
const tenantHeader = "X-Lognic-Tenant"

// tenant is one tenant's runtime state.
type tenant struct {
	name   string
	weight float64

	// Admission: a reserved slice of the worker pool and the wait queue.
	workerShare int
	queueShare  int
	sem         chan struct{}
	queued      atomic.Int64

	// Cache partition (nil when caching is disabled): strict LRU within
	// the tenant's byte sub-budget, plus its slice of the L1 index.
	cache       *lruCache
	l1          *lruCache
	cacheBudget int64

	// SLO accounting mirrors the server-wide counters and feeds the
	// tenant's own burn-rate monitor (the per-tenant rows under /v1/slo).
	sloTotal, sloErrors, sloSlow atomic.Uint64
	slo                          *slo.Monitor

	queueLen    *obs.Gauge
	inflight    *obs.Gauge
	partBytes   *obs.Gauge
	partBudget  *obs.Gauge
	partEntries *obs.Gauge
	hits        *obs.Counter
	misses      *obs.Counter
	rejected    *obs.Counter
}

// validTenantName restricts tenant names to a bounded, header- and
// metric-safe charset. The spill label "*" is reserved.
func validTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	if name == spillTenant {
		return fmt.Errorf("serve: tenant name %q is reserved for the spillover pool", spillTenant)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: bad tenant name %q (want [A-Za-z0-9._-])", name)
		}
	}
	return nil
}

// parseTenantWeights parses the -tenant-weights flag: comma-separated
// name:weight pairs, weights positive.
func parseTenantWeights(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("serve: bad tenant weight %q (want name:weight)", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return nil, fmt.Errorf("serve: bad tenant weight %q (weight must be a positive number)", part)
		}
		if err := validTenantName(name); err != nil {
			return nil, err
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q in -tenant-weights", name)
		}
		out[name] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: -tenant-weights names no tenants")
	}
	return out, nil
}

// apportion splits total indivisible slots across names in proportion to
// weight by the largest-remainder method: every name gets the floor of
// its exact share but at least one slot; remaining slots go one each to
// the names furthest below their exact share. Deterministic — ties break
// by weight, then name. The minimum-one guarantee can push the sum past
// total when total is small; callers that need a hard sum must size
// total to at least len(names).
func apportion(total int, names []string, weights map[string]float64) map[string]int {
	out := make(map[string]int, len(names))
	if len(names) == 0 {
		return out
	}
	var sum float64
	for _, n := range names {
		sum += weights[n]
	}
	type deficit struct {
		name string
		gap  float64
	}
	deficits := make([]deficit, 0, len(names))
	used := 0
	for _, n := range names {
		exact := float64(total) * weights[n] / sum
		share := int(exact)
		if share < 1 {
			share = 1
		}
		out[n] = share
		used += share
		deficits = append(deficits, deficit{name: n, gap: exact - float64(share)})
	}
	sort.Slice(deficits, func(i, j int) bool {
		if deficits[i].gap != deficits[j].gap {
			return deficits[i].gap > deficits[j].gap
		}
		if weights[deficits[i].name] != weights[deficits[j].name] {
			return weights[deficits[i].name] > weights[deficits[j].name]
		}
		return deficits[i].name < deficits[j].name
	})
	for i := 0; used < total; i++ {
		out[deficits[i%len(deficits)].name]++
		used++
	}
	return out
}

// apportionBytes is apportion for byte budgets. total <= 0 (byte bound
// disabled) gives every partition 0, which newLRU reads as unbounded —
// matching the untenanted cache's semantics. Otherwise every partition
// gets at least one byte so a tiny budget never degrades to unbounded.
func apportionBytes(total int64, names []string, weights map[string]float64) map[string]int64 {
	out := make(map[string]int64, len(names))
	if total <= 0 {
		for _, n := range names {
			out[n] = 0
		}
		return out
	}
	var sum float64
	for _, n := range names {
		sum += weights[n]
	}
	var used int64
	for _, n := range names {
		share := int64(float64(total) * weights[n] / sum)
		if share < 1 {
			share = 1
		}
		out[n] = share
		used += share
	}
	// Hand the integer remainder to the heaviest tenants (stable order);
	// at byte granularity the deficit refinement is noise.
	if rem := total - used; rem > 0 {
		sorted := append([]string(nil), names...)
		sort.Slice(sorted, func(i, j int) bool {
			if weights[sorted[i]] != weights[sorted[j]] {
				return weights[sorted[i]] > weights[sorted[j]]
			}
			return sorted[i] < sorted[j]
		})
		for i := 0; rem > 0; i++ {
			out[sorted[i%len(sorted)]]++
			rem--
		}
	}
	return out
}

// initTenants builds the per-tenant state from cfg.TenantWeights (no-op
// when tenancy is disabled). Called once from NewServer, after the
// server-wide metric handles exist.
func (s *Server) initTenants() {
	weights := s.cfg.TenantWeights
	if len(weights) == 0 {
		return
	}
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	workerShares := apportion(s.cfg.Workers, names, weights)
	queueShares := apportion(s.cfg.QueueDepth, names, weights)

	// Cache arithmetic: the spillover fraction comes off the top of the
	// byte budget, the rest splits into weighted partitions. Entry counts
	// split the same way (byte budgets are the operative bound; the entry
	// split just keeps per-partition maps proportionate).
	var spillBytes int64
	cacheBudget := s.cfg.CacheBytes
	if cacheBudget < 0 {
		cacheBudget = 0 // byte bound disabled
	}
	if s.cacheOn && cacheBudget > 0 && s.cfg.TenantCacheSpill > 0 {
		spillBytes = int64(float64(cacheBudget) * s.cfg.TenantCacheSpill)
	}
	byteShares := apportionBytes(cacheBudget-spillBytes, names, weights)
	var entryShares map[string]int
	if s.cacheOn {
		entryShares = apportion(s.cfg.CacheEntries, names, weights)
	}

	reg := s.cfg.Registry
	s.tenants = make(map[string]*tenant, len(names))
	s.tenantNames = names
	for _, name := range names {
		t := &tenant{
			name:        name,
			weight:      weights[name],
			workerShare: workerShares[name],
			queueShare:  queueShares[name],
		}
		t.sem = make(chan struct{}, t.workerShare)
		if s.cacheOn {
			t.cacheBudget = byteShares[name]
			t.cache = newLRU(entryShares[name], t.cacheBudget)
			// Same layout as the untenanted L1: a quarter of the byte
			// budget indexes the partition's hot entries.
			l1Bytes := t.cacheBudget / 4
			t.l1 = newLRU(entryShares[name], l1Bytes)
		}
		labels := obs.Labels{"tenant": name}
		t.queueLen = reg.Gauge("lognic_serve_queue_depth", "requests waiting for a worker", labels)
		t.inflight = reg.Gauge("lognic_serve_inflight", "evaluations running", labels)
		t.hits = reg.Counter("lognic_serve_cache_hits_total", "result cache hits", labels)
		t.misses = reg.Counter("lognic_serve_cache_misses_total", "result cache misses", labels)
		t.rejected = reg.Counter("lognic_serve_rejected_total", "requests shed with 429", labels)
		if s.cacheOn {
			t.partBytes = reg.Gauge("lognic_serve_cache_partition_bytes",
				"per-tenant cache partition occupancy in bytes", labels)
			t.partBudget = reg.Gauge("lognic_serve_cache_partition_budget_bytes",
				"per-tenant cache partition byte budget (0 = unbounded)", labels)
			t.partEntries = reg.Gauge("lognic_serve_cache_partition_entries",
				"per-tenant cache partition occupancy in entries", labels)
			t.partBudget.Set(float64(t.cacheBudget))
		}
		// The tenant's own burn-rate monitor. No Registry: the lognic_slo_*
		// series belong to the server-wide monitor; tenant judgements are
		// served as /v1/slo rows instead.
		t.slo = slo.NewMonitor(slo.Config{
			AvailabilityTarget: s.cfg.SLOAvailability,
			LatencyTarget:      s.cfg.SLOLatency,
			LatencyThreshold:   s.cfg.SLOLatencyThreshold,
			Source: func() slo.Sample {
				return slo.Sample{
					Total:  t.sloTotal.Load(),
					Errors: t.sloErrors.Load(),
					Slow:   t.sloSlow.Load(),
				}
			},
		})
		t.slo.Start()
		s.tenants[name] = t
	}
	if spillBytes > 0 {
		s.spill = newLRU(s.cfg.CacheEntries, spillBytes)
		labels := obs.Labels{"tenant": spillTenant}
		s.spillBytes = reg.Gauge("lognic_serve_cache_partition_bytes",
			"per-tenant cache partition occupancy in bytes", labels)
		s.spillEntries = reg.Gauge("lognic_serve_cache_partition_entries",
			"per-tenant cache partition occupancy in entries", labels)
		reg.Gauge("lognic_serve_cache_partition_budget_bytes",
			"per-tenant cache partition byte budget (0 = unbounded)", labels).Set(float64(spillBytes))
	}
}

// claimedTenant is the tenant name the client asserted ("" when absent).
// Used verbatim in logs; metrics use the resolved bucket so cardinality
// stays bounded by configuration, not by client behavior.
func claimedTenant(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return r.Header.Get("X-Tenant")
}

// tenantFor resolves a claimed tenant name to its bucket — nil when
// tenancy is disabled, the default tenant for unknown or absent names.
func (s *Server) tenantFor(claimed string) *tenant {
	if len(s.tenants) == 0 {
		return nil
	}
	if t := s.tenants[claimed]; t != nil {
		return t
	}
	return s.tenants[defaultTenant]
}

// l1For picks the request's L1 index: the tenant partition's slice under
// tenancy, the shared index otherwise (nil when caching is disabled).
func (s *Server) l1For(ten *tenant) *lruCache {
	if ten != nil {
		return ten.l1
	}
	return s.l1
}

// cacheGet probes the canonical tier for one request: the tenant's
// partition first, then the shared spillover pool.
func (s *Server) cacheGet(ten *tenant, key string) ([]byte, bool) {
	if ten == nil {
		if s.cache == nil {
			return nil, false
		}
		return s.cache.Get(key)
	}
	if ten.cache == nil {
		return nil, false
	}
	if body, ok := ten.cache.Get(key); ok {
		return body, true
	}
	if s.spill != nil {
		return s.spill.Get(key)
	}
	return nil, false
}

// cachePut stores one response. An entry too large for the tenant's
// partition goes to the spillover pool (when configured), where it
// competes with every tenant's oversized entries instead of evicting
// this tenant's warm set.
func (s *Server) cachePut(ten *tenant, key string, body []byte) {
	if ten == nil {
		if s.cache != nil {
			s.cache.Put(key, body)
		}
		return
	}
	if ten.cache == nil {
		return
	}
	if ten.cache.Put(key, body) {
		return
	}
	if s.spill != nil {
		s.spill.Put(key, body)
	}
}

// countHit tallies a cache hit against the server and the tenant.
func (s *Server) countHit(ten *tenant, l1 bool) {
	s.hits.Inc()
	if l1 {
		s.l1Hits.Inc()
	}
	if ten != nil {
		ten.hits.Inc()
	}
	s.updateCacheGauges()
}

// tenantDrainEstimate is queueDrainEstimate scoped to one tenant's
// reserved slice of the pool: its backlog drained by its own workers at
// the recent mean service time.
func (s *Server) tenantDrainEstimate(t *tenant) time.Duration {
	mean := math.Float64frombits(s.svcMean.Load())
	if mean <= 0 {
		mean = 0.05
	}
	drain := float64(t.queued.Load()) * mean / float64(t.workerShare)
	return time.Duration(drain * float64(time.Second))
}

// sloReport is /v1/slo's shape when tenancy is enabled: the server-wide
// judgement plus one row per tenant. Without tenants the plain
// slo.Status is served, so existing consumers see an unchanged document.
type sloReport struct {
	slo.Status
	Tenants map[string]tenantSLO `json:"tenants"`
}

// tenantSLO is one tenant's /v1/slo row: its configured shares plus its
// own burn-rate judgement.
type tenantSLO struct {
	Weight     float64 `json:"weight"`
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	CacheBytes int64   `json:"cache_bytes,omitempty"`
	slo.Status
}
