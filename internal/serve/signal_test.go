package serve

import (
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// A real SIGTERM (delivered to the test process) must stop the listener,
// drain the in-flight request to completion, and return nil from Serve.
// Serve's signal.NotifyContext intercepts the signal, so the process
// survives; the test blocks the in-flight request with testDelay until
// after the signal lands to prove the drain waits.
func TestSIGTERMGracefulDrain(t *testing.T) {
	s := NewServer(Config{Addr: "127.0.0.1:0", CacheEntries: -1, DrainTimeout: 10 * time.Second})
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered <- struct{}{}
		<-release
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(nil) }()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr()+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	// The request being inside the worker proves Serve is running and its
	// signal handler is registered — only then is SIGTERM safe to send.
	<-entered

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain must wait for the blocked request, not abort it.
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", code)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}

	// The listener is closed: new requests must fail to connect.
	if _, err := http.Post("http://"+s.Addr()+"/v1/estimate", "application/json",
		strings.NewReader(estimateBody(sampleSpec))); err == nil {
		t.Fatal("post-drain request should fail to connect")
	}
}
