package serve

// Regression tests for three accounting bugs in the cache/admission path:
// a stale L1 index entry surviving its canonical eviction, the queue-depth
// gauge not being refreshed on the shed path, and miss counters ticking on
// a server whose cache is disabled.

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"lognic/internal/obs"
)

// A stale L1 entry — one whose canonical key has left the cache — must be
// pruned on the fall-through, not left pinning its whole request body in
// the L1 byte budget forever.
func TestL1StalePrunedOnCanonicalMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Plant a stale index entry by hand: its canonical key was never
	// cached, exactly the state a canonical eviction leaves behind. The
	// request body is malformed on purpose so the fall-through path stops
	// at prepare (400) and nothing re-creates the entry.
	badBody := `{"spec": nope`
	l1key := "estimate\x00" + badBody
	s.l1.Put(l1key, []byte("0000000000000000000000000000000000000000000000000000000000000000"))
	before := s.l1.Bytes()
	if before == 0 {
		t.Fatal("planted L1 entry not accounted")
	}

	resp, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", badBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if _, ok := s.l1.Get(l1key); ok {
		t.Fatal("stale L1 entry must be pruned when its canonical key misses")
	}
	if after := s.l1.Bytes(); after >= before {
		t.Fatalf("L1 bytes %d did not shrink below %d after the prune", after, before)
	}
	if s.hits.Value() != 0 {
		t.Fatalf("a stale L1 probe must not count as a hit (hits=%v)", s.hits.Value())
	}
}

// Under sustained saturation every request takes the shed branch, so the
// shed path itself must refresh the queue-depth gauge — a scrape during
// overload has to show the real backlog.
func TestShedPathRefreshesQueueDepthGauge(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2, CacheEntries: -1, Registry: reg,
	})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered <- struct{}{}
		<-release
	}

	results := make(chan int, 8)
	do := func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			results <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp.StatusCode
	}

	// Occupy the worker, then both queue slots, one request at a time.
	go do()
	<-entered
	go do()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	go do()
	waitFor(t, func() bool { return s.queued.Load() == 2 })

	// Shed a request, then scrape: the gauge must read the live backlog.
	go do()
	if code := <-results; code != http.StatusTooManyRequests {
		t.Fatalf("fourth request status %d, want 429", code)
	}
	if got := s.queueLen.Value(); got != 2 {
		t.Fatalf("queue gauge = %v after a shed, want 2", got)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "lognic_serve_queue_depth 2") {
		t.Fatalf("metrics under full queue missing queue_depth 2:\n%s", metrics)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted request status %d, want 200", code)
		}
	}
}

// A server with caching disabled must report no cache traffic at all —
// no miss counts, no hit ratio — not a stream of phantom misses against
// a cache that isn't there.
func TestCacheDisabledNoMissAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{CacheEntries: -1, Registry: reg})
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
			t.Fatalf("status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
		}
	}
	if s.misses.Value() != 0 || s.hits.Value() != 0 {
		t.Fatalf("disabled cache counted traffic: hits=%v misses=%v",
			s.hits.Value(), s.misses.Value())
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"lognic_serve_cache_misses_total 0",
		"lognic_serve_cache_hit_ratio 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
