package serve

// GET /v1/jobs/{id}/events — a live Server-Sent Events feed of one job's
// lifecycle: state transitions, attempt starts, retry backoffs,
// checkpoint saves, periodic in-run progress frames and the terminal
// result. The stream opens with a synthetic state frame built from the
// job's current snapshot (so a late subscriber still sees state-so-far),
// then relays the manager's event feed until the terminal event or the
// client disconnects.
//
// Flow control is the subscription's job (internal/jobs/events.go): a
// slow consumer's queue drops superseded progress/checkpoint frames but
// never transitions; the stream discloses drops with a comment line.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"lognic/internal/jobs"
)

// sseFrame writes one SSE frame: event type, JSON data, sequence id.
func sseFrame(w http.ResponseWriter, e jobs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\nid: %d\n\n", e.Type, data, e.Seq)
	return err
}

// snapshotEvent synthesizes the stream's opening frame from a job
// snapshot, shaped exactly like a live state event so clients need one
// decoder.
func snapshotEvent(j jobs.Job) jobs.Event {
	e := jobs.Event{
		Type: jobs.EventState, JobID: j.ID, State: j.State,
		Attempt: j.Attempts, Resumed: j.Resumed,
		Terminal: j.State.Terminal(),
	}
	if !j.RetryAt.IsZero() {
		e.RetryAt = j.RetryAt
	}
	switch j.State {
	case jobs.StateSucceeded:
		e.Result = j.Result
	case jobs.StateFailed, jobs.StateCancelled:
		e.Error = j.Error
	}
	return e
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnready(w) {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: streaming unsupported by this connection"))
		return
	}
	id := r.PathValue("id")
	sub, snap, ok := s.jobs.Subscribe(id, 0)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	first := snapshotEvent(snap)
	if err := sseFrame(w, first); err != nil {
		return
	}
	fl.Flush()
	if first.Terminal {
		return
	}

	var disclosed uint64
	for {
		e, ok, err := sub.Next(r.Context())
		if !ok {
			// err != nil: the client went away (context canceled) — just
			// stop; the subscription's deferred Close detaches it. err ==
			// nil: the feed closed after a terminal event we already
			// relayed.
			_ = err
			return
		}
		if d := sub.Dropped(); d > disclosed {
			fmt.Fprintf(w, ": dropped %d superseded snapshot frames\n\n", d-disclosed)
			disclosed = d
		}
		if err := sseFrame(w, e); err != nil {
			return
		}
		fl.Flush()
		if e.Terminal {
			return
		}
	}
}
