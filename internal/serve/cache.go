package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU mapping canonical request hashes
// to serialized response bodies. Storing the exact bytes written on the
// cold path is what makes cache hits byte-identical to cold evaluations:
// a hit replays the stored body verbatim, with no re-marshaling.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element, max)}
}

// Get returns the cached body and marks the entry most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a body under the key, evicting the least recently used entry
// when full. The caller must not mutate body afterwards.
func (c *lruCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
