package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU mapping canonical request hashes
// to serialized response bodies. Storing the exact bytes written on the
// cold path is what makes cache hits byte-identical to cold evaluations:
// a hit replays the stored body verbatim, with no re-marshaling.
//
// The cache is bounded by total bytes (keys + bodies) first and entry
// count second. The byte budget is the one that matters operationally: a
// handful of multi-megabyte /v1/simulate responses would sail under any
// reasonable entry-count cap while exhausting process memory. Keys count
// toward the budget because the L1 request index uses whole request
// bodies as keys — there, the keys ARE the memory. Eviction is strict
// LRU under both limits.
type lruCache struct {
	mu       sync.Mutex
	maxN     int
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newLRU builds a cache holding at most maxEntries entries and maxBytes
// total body bytes. maxBytes <= 0 disables the byte bound (count-only).
func newLRU(maxEntries int, maxBytes int64) *lruCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &lruCache{
		maxN:     maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element, maxEntries),
	}
}

// Get returns the cached body and marks the entry most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a body under the key, evicting least recently used entries
// until both the byte and entry budgets hold. An entry larger than the
// whole byte budget is rejected outright (caching it would evict
// everything else for one entry that can never share the cache); Put
// reports whether the body was stored. The caller must not mutate body
// afterwards.
func (c *lruCache) Put(key string, body []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(key))+int64(len(body)) > c.maxBytes {
		// An oversized replacement also invalidates the stale entry: the
		// caller just recomputed this key, so keeping old bytes would pin
		// memory for a response we refuse to serve from cache anyway.
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
		}
		return false
	}
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(key)) + int64(len(body))
	}
	for c.order.Len() > c.maxN || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
	}
	return true
}

// Delete drops one entry, reporting whether it existed. The L1
// maintenance path uses it: when the canonical tier has evicted a key,
// the L1 entry pointing at it is dead weight — its key is a whole
// request body — and would re-miss forever if left in place.
func (c *lruCache) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// removeLocked drops one entry, keeping the byte account in step.
func (c *lruCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.key)) + int64(len(e.body))
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes reports the total accounted bytes (keys plus bodies).
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Entries snapshots every entry in least-recently-used-first order — the
// order a restore should Put them back in, so the most recently used
// entry ends up back at the front. Bodies are shared, not copied: cache
// bodies are immutable by the Put contract.
func (c *lruCache) Entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, cacheEntry{key: e.key, body: e.body})
	}
	return out
}
