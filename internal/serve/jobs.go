package serve

// The async job API: POST /v1/jobs submits an estimate/optimize/simulate
// request for background evaluation, GET /v1/jobs/{id} polls it, DELETE
// /v1/jobs/{id} cancels it. Jobs exist for work that outlives a request
// timeout — long simulations especially — so attempts run without the
// synchronous RequestTimeout; a simulation is bounded by its event budget
// and periodically checkpointed, and an interrupted attempt (retry,
// restart, kill -9) resumes from the last checkpoint with results
// byte-identical to an uninterrupted run (internal/sim's guarantee).
//
// The job ID is the same canonical hash that keys the result cache, so
// submissions are idempotent: N clients posting equivalent specs get one
// job, one evaluation, and the same /v1/jobs/{id} to poll. Durability,
// retries with backoff, and the degraded memory-only mode live in
// internal/jobs; this file is the HTTP surface plus the evaluator that
// maps job kinds back onto the endpoint preparers.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lognic/internal/jobs"
	"lognic/internal/obs"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// jobKinds maps a submission kind to its request preparer (validation +
// canonical hash). The evaluator dispatches on the same names.
func (s *Server) jobPreparer(kind string) func([]byte) (prepared, error) {
	switch kind {
	case "estimate":
		return s.prepareEstimate
	case "optimize":
		return s.prepareOptimize
	case "simulate":
		return s.prepareSimulate
	default:
		return nil
	}
}

// JobSubmitRequest is the body of POST /v1/jobs.
type JobSubmitRequest struct {
	// Kind is "estimate", "optimize" or "simulate".
	Kind string `json:"kind"`
	// Request is the body the matching synchronous endpoint would take.
	Request json.RawMessage `json:"request"`
}

// JobView is the wire shape of one job, returned by every /v1/jobs
// endpoint.
type JobView struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Attempts    int             `json:"attempts"`
	MaxAttempts int             `json:"max_attempts"`
	Coalesced   int             `json:"coalesced,omitempty"`
	Resumed     bool            `json:"resumed,omitempty"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Created     time.Time       `json:"created"`
	Started     *time.Time      `json:"started,omitempty"`
	Finished    *time.Time      `json:"finished,omitempty"`
	// RetryAt is the scheduled time of the next attempt while the job
	// waits out a retry backoff.
	RetryAt *time.Time `json:"retry_at,omitempty"`
}

func jobView(j jobs.Job) JobView {
	v := JobView{
		ID: j.ID, Kind: j.Kind, State: string(j.State),
		Attempts: j.Attempts, MaxAttempts: j.MaxAttempts,
		Coalesced: j.Coalesced, Resumed: j.Resumed,
		Error: j.Error, Created: j.Created,
	}
	if len(j.Result) > 0 {
		v.Result = json.RawMessage(j.Result)
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	if !j.RetryAt.IsZero() {
		t := j.RetryAt
		v.RetryAt = &t
	}
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// jobsUnready rejects job traffic with 503 until the journal replay has
// finished (accepting a submission before the journal is open would make
// it silently non-durable) and once the drain has begun. The Retry-After
// hint is derived from the actual state, not hardcoded: during the drain
// it reports the drain time left (after which either the process is gone
// — retry lands on a peer — or a stuck drain got killed); during replay
// it scales with how long the replay has already run, a standard
// elapsed-time predictor for a task of unknown length.
func (s *Server) jobsUnready(w http.ResponseWriter) bool {
	switch {
	case s.draining.Load():
		remaining := s.cfg.DrainTimeout - time.Since(time.Unix(0, s.drainStart.Load()))
		w.Header().Set("Retry-After", retryAfterValue(remaining))
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining"))
		return true
	case !s.jobsReady.Load():
		w.Header().Set("Retry-After", retryAfterValue(time.Since(s.start)/2))
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: job journal replay in progress"))
		return true
	}
	return false
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnready(w) {
		return
	}
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, bodyStatus(err), err)
		return
	}
	var env JobSubmitRequest
	if err := decodeStrict(body, &env); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	prep := s.jobPreparer(env.Kind)
	if prep == nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: unknown job kind %q (want estimate, optimize or simulate)", env.Kind))
		return
	}
	// Validate now so a malformed spec fails the submission, not the
	// attempt; the preparer also yields the canonical hash = job ID.
	p, err := prep(env.Request)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// The job rides the submitting request's trace (minted here when the
	// client sent none), so post-crash attempts in a future process still
	// rejoin the originating trace — the traceparent is journaled with
	// the submit record.
	tc, _ := s.requestTrace(r)
	w.Header().Set("X-Request-Id", tc.SpanID)
	snap, isNew, err := s.jobs.SubmitTrace(env.Kind, p.key, env.Request, tc.Traceparent())
	if err != nil {
		code := http.StatusInternalServerError
		if err == jobs.ErrClosed {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	code := http.StatusOK // coalesced into an existing job
	if isNew {
		code = http.StatusAccepted
	}
	writeJSON(w, code, jobView(snap))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnready(w) {
		return
	}
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	// A job waiting out its retry backoff won't change state before the
	// scheduled attempt: tell compliant pollers exactly when to come back.
	if j.State == jobs.StateQueued && !j.RetryAt.IsZero() {
		if until := time.Until(j.RetryAt); until > 0 {
			w.Header().Set("Retry-After", retryAfterValue(until))
		}
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnready(w) {
		return
	}
	list := s.jobs.Jobs()
	views := make([]JobView, 0, len(list))
	for _, j := range list {
		// Results can be large; the listing is an index, poll the job for
		// its payload.
		j.Result = nil
		views = append(views, jobView(j))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobsUnready(w) {
		return
	}
	j, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

// handleReadyz is the readiness probe: distinct from /healthz (liveness),
// it reports 503 while the job journal replay is still rebuilding state
// and once the shutdown drain has begun, so load balancers stop routing
// before the listener actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.jobsReady.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "replaying-journal"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// evalJob is the jobs.Manager evaluator: it maps a journaled (kind, body)
// back onto the endpoint logic. Attempts deliberately run without
// RequestTimeout — outliving synchronous limits is what jobs are for —
// bounded instead by the simulation event budget and shutdown.
func (s *Server) evalJob(ctx context.Context, id, kind string, body []byte, ck jobs.CheckpointStore) ([]byte, error) {
	var result any
	var err error
	switch kind {
	case "simulate":
		result, err = s.runSimulateJob(ctx, id, body, ck)
	case "estimate", "optimize":
		p, perr := s.jobPreparer(kind)(body)
		if perr != nil {
			return nil, perr
		}
		result, err = p.run(ctx)
	default:
		return nil, badRequest{fmt.Errorf("serve: unknown job kind %q", kind)}
	}
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(result)
	if err != nil {
		return nil, err
	}
	// Identical serialization to the synchronous endpoints, so an async
	// result is byte-for-byte the response /v1/simulate would have sent.
	return append(out, '\n'), nil
}

// runSimulateJob runs one simulation attempt with checkpointing: periodic
// snapshots go to the job's checkpoint slot, and an attempt that finds a
// snapshot resumes from it instead of starting over.
func (s *Server) runSimulateJob(ctx context.Context, id string, body []byte, ck jobs.CheckpointStore) (any, error) {
	var req SimulateRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	m, err := req.Spec.Model()
	if err != nil {
		return nil, badRequest{err}
	}
	if req.Duration <= 0 {
		return nil, badRequest{fmt.Errorf("serve: simulate needs duration > 0 seconds")}
	}
	maxEvents := req.MaxEvents
	if maxEvents == 0 {
		maxEvents = s.cfg.MaxSimEvents
	}
	cfg := sim.Config{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile: traffic.Fixed(m.Graph.Name(),
			unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity)),
		Seed:                 req.Seed,
		Duration:             req.Duration,
		Warmup:               req.Warmup,
		DeterministicService: req.Deterministic,
		MaxEvents:            maxEvents,
		Shards:               req.Shards,
	}
	// The manager stamps the attempt's trace context on the context; the
	// simulation's vertex spans parent under the attempt span, and live
	// progress frames feed the job's SSE subscribers (throttled to wall
	// clock — the sim polls far faster than any human or dashboard).
	if tc, ok := obs.TraceFromContext(ctx); ok {
		cfg.TraceID = tc.TraceID
		cfg.ParentSpanID = tc.SpanID
		cfg.Spans = s.cfg.Tracer
	}
	var lastProgress time.Time
	cfg.Progress = func(p sim.Progress) {
		if now := time.Now(); now.Sub(lastProgress) >= 50*time.Millisecond {
			lastProgress = now
			s.jobs.Progress(id, p.Events, p.SimTime, p.Checkpoints)
		}
	}
	// Sharded runs cannot checkpoint (sim.ErrShardedCheckpoint); the job
	// still runs crash-safe, it just restarts attempts from t=0.
	if s.cfg.JobCheckpointEvery > 0 && req.Shards <= 1 {
		cfg.CheckpointEvery = s.cfg.JobCheckpointEvery
		cfg.CheckpointSink = func(c *sim.Checkpoint) error {
			b, err := c.Encode()
			if err != nil {
				return nil // best-effort: a snapshot we can't encode just isn't saved
			}
			ck.Save(b)
			return nil
		}
	}
	var sm *sim.Simulator
	if b, ok := ck.Load(); ok {
		// A stale or undecodable snapshot (server upgraded, knob changed)
		// falls through to a fresh run — correct, just slower.
		if ckpt, derr := sim.DecodeCheckpoint(b); derr == nil {
			if resumed, rerr := sim.Resume(cfg, ckpt); rerr == nil {
				sm = resumed
				s.jobs.MarkResumed(id)
			}
		}
	}
	if sm == nil {
		if sm, err = sim.New(cfg); err != nil {
			return nil, badRequest{err}
		}
	}
	return sm.RunContext(ctx)
}
