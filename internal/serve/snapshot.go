package serve

// Cache snapshots — the shared tier behind per-replica L1 caches. A
// replica streams its result cache as a length-prefixed, CRC-framed dump
// (GET /v1/cache/snapshot, reusing the internal/jobs journal framing), and
// a fresh replica warm-starts from a peer's snapshot file or URL
// (Config.CacheWarmFrom / -cache-warm-from). Because cache entries are the
// exact serialized response bodies, a warm-started replica's first hit is
// byte-identical to the cold evaluation that populated the peer — the same
// guarantee the L1 gives, extended across the fleet.
//
// Stream layout: frame 0 is the magic/version record; every further frame
// is one entry, payload = key bytes | 0x00 | body bytes, ordered least
// recently used first so replaying Puts reconstructs the donor's
// recency order. A torn tail (snapshot taken mid-crash, truncated
// download) loses only the most recently used suffix — ReplayRecords
// stops at the first bad frame — and never poisons an entry: bodies are
// CRC-covered end to end.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lognic/internal/jobs"
)

// snapshotMagic is frame 0 of every cache snapshot stream; readers reject
// streams that don't open with it (wrong file, wrong endpoint, future
// incompatible version).
const snapshotMagic = "lognic-cache-snapshot v1"

// handleCacheSnapshot streams the result cache. The dump reflects one
// consistent moment of the LRU order (Entries snapshots under the cache
// lock); bodies stream without re-marshaling.
func (s *Server) handleCacheSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: result cache disabled"))
		return
	}
	entries := s.cache.Entries()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Cache-Entries", fmt.Sprint(len(entries)))
	if err := writeCacheSnapshot(w, entries); err != nil {
		// Headers are gone; the client's replay stops at the torn frame and
		// keeps the prefix — exactly the journal's crash contract.
		return
	}
}

// writeCacheSnapshot frames the magic record and one record per entry.
func writeCacheSnapshot(w io.Writer, entries []cacheEntry) error {
	if err := jobs.WriteFrame(w, []byte(snapshotMagic)); err != nil {
		return err
	}
	for _, e := range entries {
		payload := make([]byte, 0, len(e.key)+1+len(e.body))
		payload = append(payload, e.key...)
		payload = append(payload, 0)
		payload = append(payload, e.body...)
		if err := jobs.WriteFrame(w, payload); err != nil {
			return err
		}
	}
	return nil
}

// readCacheSnapshot parses a snapshot stream back into entries, stopping
// silently at the first corrupt frame (the replay contract: everything
// before a tear is trustworthy, the tear itself was unacknowledged).
func readCacheSnapshot(r io.Reader) ([]cacheEntry, error) {
	records, _, err := jobs.ReplayRecords(r)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 || string(records[0]) != snapshotMagic {
		return nil, fmt.Errorf("serve: not a cache snapshot stream (bad magic)")
	}
	entries := make([]cacheEntry, 0, len(records)-1)
	for _, rec := range records[1:] {
		sep := bytes.IndexByte(rec, 0)
		if sep <= 0 {
			return nil, fmt.Errorf("serve: malformed snapshot entry (no key separator)")
		}
		entries = append(entries, cacheEntry{
			key:  string(rec[:sep]),
			body: append([]byte(nil), rec[sep+1:]...),
		})
	}
	return entries, nil
}

// WarmCache populates the result cache from a snapshot source — a file
// path or an http(s) URL (typically a peer replica's /v1/cache/snapshot).
// Entries replay in the donor's LRU order, so the warmed cache evicts in
// the same order the donor would have; entries over this replica's byte
// budget are skipped, not errors. Returns how many entries and accounted
// bytes (keys plus bodies) were admitted.
func (s *Server) WarmCache(src string) (entries int, admittedBytes int64, err error) {
	if s.cache == nil {
		return 0, 0, fmt.Errorf("serve: result cache disabled")
	}
	rc, err := openSnapshotSource(src)
	if err != nil {
		return 0, 0, err
	}
	defer rc.Close()
	es, err := readCacheSnapshot(rc)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range es {
		if s.cache.Put(e.key, e.body) {
			entries++
			admittedBytes += int64(len(e.key)) + int64(len(e.body))
		}
	}
	s.updateCacheGauges()
	return entries, admittedBytes, nil
}

// openSnapshotSource opens a warm-start source: URLs fetch with a bounded
// client, anything else is a local file path.
func openSnapshotSource(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 2 * time.Minute}
		resp, err := client.Get(src)
		if err != nil {
			return nil, fmt.Errorf("serve: fetching snapshot: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("serve: snapshot peer answered %s", resp.Status)
		}
		return resp.Body, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, fmt.Errorf("serve: opening snapshot: %w", err)
	}
	return f, nil
}
