package serve

// Cache snapshots — the shared tier behind per-replica L1 caches. A
// replica streams its result cache as a length-prefixed, CRC-framed dump
// (GET /v1/cache/snapshot, reusing the internal/jobs journal framing), and
// a fresh replica warm-starts from a peer's snapshot file or URL
// (Config.CacheWarmFrom / -cache-warm-from). Because cache entries are the
// exact serialized response bodies, a warm-started replica's first hit is
// byte-identical to the cold evaluation that populated the peer — the same
// guarantee the L1 gives, extended across the fleet.
//
// Stream layout: frame 0 is the magic/version record; every further frame
// is one entry, payload = key bytes | 0x00 | body bytes, ordered least
// recently used first so replaying Puts reconstructs the donor's
// recency order. A torn tail (snapshot taken mid-crash, truncated
// download) loses only the most recently used suffix — ReplayRecords
// stops at the first bad frame — and never poisons an entry: bodies are
// CRC-covered end to end.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"lognic/internal/jobs"
)

// snapshotMagic is frame 0 of an untenanted cache snapshot stream;
// readers reject streams that don't open with a known magic (wrong file,
// wrong endpoint, future incompatible version).
const snapshotMagic = "lognic-cache-snapshot v1"

// snapshotMagicV2 opens a partitioned snapshot: every entry frame is
// prefixed with its tenant name (the spillover pool dumps under "*"), so
// a warm-start restores each entry into the partition it came from. A
// tenancy-enabled server always emits v2; an untenanted one always emits
// v1, keeping its streams byte-compatible with older readers.
const snapshotMagicV2 = "lognic-cache-snapshot v2"

// snapEntry is one parsed snapshot entry. tenant is "" for v1 streams,
// a tenant name or spillTenant for v2.
type snapEntry struct {
	tenant string
	key    string
	body   []byte
}

// handleCacheSnapshot streams the result cache. The dump reflects one
// consistent moment of each partition's LRU order (Entries snapshots
// under the cache lock); bodies stream without re-marshaling.
func (s *Server) handleCacheSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.cacheOn {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: result cache disabled"))
		return
	}
	if len(s.tenants) == 0 {
		entries := s.cache.Entries()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Cache-Entries", fmt.Sprint(len(entries)))
		// On a mid-stream error the headers are gone; the client's replay
		// stops at the torn frame and keeps the prefix — exactly the
		// journal's crash contract.
		_ = writeCacheSnapshot(w, entries)
		return
	}
	var es []snapEntry
	for _, name := range s.tenantNames {
		for _, e := range s.tenants[name].cache.Entries() {
			es = append(es, snapEntry{tenant: name, key: e.key, body: e.body})
		}
	}
	if s.spill != nil {
		for _, e := range s.spill.Entries() {
			es = append(es, snapEntry{tenant: spillTenant, key: e.key, body: e.body})
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Cache-Entries", fmt.Sprint(len(es)))
	_ = writeCacheSnapshotV2(w, es)
}

// writeCacheSnapshot frames the magic record and one record per entry.
func writeCacheSnapshot(w io.Writer, entries []cacheEntry) error {
	if err := jobs.WriteFrame(w, []byte(snapshotMagic)); err != nil {
		return err
	}
	for _, e := range entries {
		payload := make([]byte, 0, len(e.key)+1+len(e.body))
		payload = append(payload, e.key...)
		payload = append(payload, 0)
		payload = append(payload, e.body...)
		if err := jobs.WriteFrame(w, payload); err != nil {
			return err
		}
	}
	return nil
}

// writeCacheSnapshotV2 frames the v2 magic and one tenant-prefixed
// record per entry: tenant | 0x00 | key | 0x00 | body. Tenant names and
// keys are NUL-free by construction (validTenantName; hex hashes), so
// the first two separators are unambiguous even though bodies may
// contain NULs.
func writeCacheSnapshotV2(w io.Writer, entries []snapEntry) error {
	if err := jobs.WriteFrame(w, []byte(snapshotMagicV2)); err != nil {
		return err
	}
	for _, e := range entries {
		payload := make([]byte, 0, len(e.tenant)+1+len(e.key)+1+len(e.body))
		payload = append(payload, e.tenant...)
		payload = append(payload, 0)
		payload = append(payload, e.key...)
		payload = append(payload, 0)
		payload = append(payload, e.body...)
		if err := jobs.WriteFrame(w, payload); err != nil {
			return err
		}
	}
	return nil
}

// readCacheSnapshot parses a snapshot stream (either version) back into
// entries, stopping silently at the first corrupt frame (the replay
// contract: everything before a tear is trustworthy, the tear itself was
// unacknowledged). v1 entries come back with tenant "".
func readCacheSnapshot(r io.Reader) ([]snapEntry, error) {
	records, _, err := jobs.ReplayRecords(r)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("serve: not a cache snapshot stream (bad magic)")
	}
	v2 := false
	switch string(records[0]) {
	case snapshotMagic:
	case snapshotMagicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("serve: not a cache snapshot stream (bad magic)")
	}
	entries := make([]snapEntry, 0, len(records)-1)
	for _, rec := range records[1:] {
		e := snapEntry{}
		if v2 {
			sep := bytes.IndexByte(rec, 0)
			if sep < 0 {
				return nil, fmt.Errorf("serve: malformed snapshot entry (no tenant separator)")
			}
			e.tenant = string(rec[:sep])
			rec = rec[sep+1:]
		}
		sep := bytes.IndexByte(rec, 0)
		if sep <= 0 {
			return nil, fmt.Errorf("serve: malformed snapshot entry (no key separator)")
		}
		e.key = string(rec[:sep])
		e.body = append([]byte(nil), rec[sep+1:]...)
		entries = append(entries, e)
	}
	return entries, nil
}

// WarmCache populates the result cache from a snapshot source — a file
// path or an http(s) URL (typically a peer replica's /v1/cache/snapshot).
// Entries replay in the donor's LRU order, so the warmed cache evicts in
// the same order the donor would have; entries over this replica's byte
// budget are skipped, not errors. Returns how many entries and accounted
// bytes (keys plus bodies) were admitted.
//
// Restores are partition-faithful. On a tenancy-enabled replica a v2
// entry lands in the partition named by its tenant prefix (the spill
// section in the spillover pool), a v1 entry in the default partition,
// and entries for tenants this replica doesn't configure are skipped —
// guessing a partition would let one tenant's bytes evict another's. An
// untenanted replica flattens every section into its single cache.
func (s *Server) WarmCache(src string) (entries int, admittedBytes int64, err error) {
	if !s.cacheOn {
		return 0, 0, fmt.Errorf("serve: result cache disabled")
	}
	rc, err := openSnapshotSource(src)
	if err != nil {
		return 0, 0, err
	}
	defer rc.Close()
	es, err := readCacheSnapshot(rc)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range es {
		var target *lruCache
		switch {
		case len(s.tenants) == 0:
			target = s.cache
		case e.tenant == spillTenant:
			target = s.spill // nil when spillover is off: skip
		case e.tenant == "":
			target = s.tenants[defaultTenant].cache
		default:
			if t := s.tenants[e.tenant]; t != nil {
				target = t.cache
			}
		}
		if target == nil {
			continue
		}
		if target.Put(e.key, e.body) {
			entries++
			admittedBytes += int64(len(e.key)) + int64(len(e.body))
		}
	}
	s.updateCacheGauges()
	return entries, admittedBytes, nil
}

// openSnapshotSource opens a warm-start source: URLs fetch with a bounded
// client, anything else is a local file path.
func openSnapshotSource(src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 2 * time.Minute}
		resp, err := client.Get(src)
		if err != nil {
			return nil, fmt.Errorf("serve: fetching snapshot: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("serve: snapshot peer answered %s", resp.Status)
		}
		return resp.Body, nil
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, fmt.Errorf("serve: opening snapshot: %w", err)
	}
	return f, nil
}
