package serve

// Request-level observability surface: the per-request trace-context
// derivation, the SLO judgement endpoint (GET /v1/slo) and the merged
// span export (GET /v1/trace). The underlying machinery — W3C trace
// context, the burn-rate monitor, the span ring — lives in internal/obs.

import (
	"fmt"
	"net/http"
	"time"

	"lognic/internal/obs"
)

// requestTrace derives the server-side trace context for one request: a
// child of the client's traceparent when the header parses, a freshly
// minted root otherwise. parentSpan is the client's span id ("" for
// roots).
func (s *Server) requestTrace(r *http.Request) (tc obs.TraceContext, parentSpan string) {
	if parent, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		return parent.Child(), parent.SpanID
	}
	return obs.NewTraceContext(), ""
}

// handleSLO serves the monitor's current judgement — plus one row per
// tenant when tenancy is enabled. A poll is forced at most once a second
// so the response reflects requests that finished after the last
// background sample, without letting a hammering client grow the sample
// rings.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	now := time.Now().UnixNano()
	last := s.sloPolled.Load()
	if now-last >= int64(time.Second) && s.sloPolled.CompareAndSwap(last, now) {
		s.slo.Poll()
		for _, t := range s.tenants {
			t.slo.Poll()
		}
	}
	st := s.slo.Status()
	if len(s.tenants) == 0 {
		writeJSON(w, http.StatusOK, st)
		return
	}
	out := sloReport{Status: st, Tenants: make(map[string]tenantSLO, len(s.tenants))}
	for name, t := range s.tenants {
		out.Tenants[name] = tenantSLO{
			Weight:     t.weight,
			Workers:    t.workerShare,
			QueueDepth: t.queueShare,
			CacheBytes: t.cacheBudget,
			Status:     t.slo.Status(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace exports the retained span ring as Chrome trace_event JSON
// — one file Perfetto loads directly, with request, job and simulation
// spans carrying their W3C trace identity in args so a client-side
// export (lognic-storm's) merges into the same tree.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: tracing disabled (start with -trace-spans)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Tracer.WriteChromeTrace(w, "lognic-serve")
}
