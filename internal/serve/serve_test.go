package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lognic/internal/obs"
)

// sampleSpec is the spec package's echo-pipeline example.
const sampleSpec = `{
  "name": "echo",
  "hardware": {"interface_bw": "50Gbps", "memory_bw": 160e9},
  "graph": {
    "vertices": [
      {"name": "rx", "kind": "ingress"},
      {"name": "cores", "throughput": "10Gbps", "parallelism": 8, "queue_capacity": 64, "overhead": 3e-7},
      {"name": "ssd", "throughput": 7e8, "parallelism": 16, "queue_capacity": 256, "queue_model": "mmck"},
      {"name": "tx", "kind": "egress"}
    ],
    "edges": [
      {"from": "rx", "to": "cores", "delta": 1, "alpha": 1},
      {"from": "cores", "to": "ssd", "delta": 1, "alpha": 1, "beta": 1},
      {"from": "ssd", "to": "tx", "delta": 1, "bandwidth": "100Gbps"}
    ]
  },
  "traffic": {"ingress_bw": "8Gbps", "granularity": "4KB"}
}`

func estimateBody(spec string) string {
	return `{"spec": ` + spec + `}`
}

func post(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func TestEstimateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pt PointResult
	if err := json.Unmarshal(body, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 || pt.Latency <= 0 || pt.Bottleneck == "" {
		t.Fatalf("implausible estimate: %+v", pt)
	}
	if pt.IngressBW != 1e9 {
		t.Fatalf("IngressBW = %v, want 1e9 (8Gbps)", pt.IngressBW)
	}
	if len(pt.Constraints) == 0 || len(pt.PathsLatency) == 0 {
		t.Fatal("estimate should include constraints and paths")
	}
}

func TestOptimizeRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"spec": ` + sampleSpec + `, "goal": "goodput",
	          "knobs": [{"vertex": "cores", "param": "parallelism", "lo": 1, "hi": 8}]}`
	resp, out := post(t, ts.Client(), ts.URL+"/v1/optimize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var res OptimizeResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if res.Goal != "max-goodput" || res.Objective <= 0 {
		t.Fatalf("optimize result: %+v", res)
	}
	v, ok := res.Knobs["cores.parallelism"]
	if !ok || v < 1 || v > 8 {
		t.Fatalf("knob result: %+v", res.Knobs)
	}
	if !res.Exhaustive || res.Evaluated != 8 {
		t.Fatalf("Evaluated=%d Exhaustive=%v, want 8/true", res.Evaluated, res.Exhaustive)
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"spec": ` + sampleSpec + `, "duration": 0.002, "seed": 7}`
	resp, out := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var res struct {
		SimTime          float64
		DeliveredPackets uint64
		Throughput       float64
	}
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 || res.DeliveredPackets == 0 || res.Throughput <= 0 {
		t.Fatalf("implausible simulation: %+v", res)
	}
}

func TestErrorStatusCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/v1/estimate", `{"spec": nope`, http.StatusBadRequest},
		{"unknown field", "/v1/estimate", `{"sepc": {}}`, http.StatusBadRequest},
		{"invalid spec", "/v1/estimate", estimateBody(`{"name":"empty","graph":{"vertices":[],"edges":[]},"traffic":{"ingress_bw":1,"granularity":64}}`), http.StatusBadRequest},
		{"unknown goal", "/v1/optimize", `{"spec": ` + sampleSpec + `, "goal": "speed", "knobs": [{"vertex":"cores","param":"queue","lo":1,"hi":2}]}`, http.StatusBadRequest},
		{"no knobs", "/v1/optimize", `{"spec": ` + sampleSpec + `, "goal": "latency", "knobs": []}`, http.StatusBadRequest},
		{"bad knob vertex", "/v1/optimize", `{"spec": ` + sampleSpec + `, "goal": "latency", "knobs": [{"vertex":"ghost","param":"queue","lo":1,"hi":2}]}`, http.StatusBadRequest},
		{"missing duration", "/v1/simulate", `{"spec": ` + sampleSpec + `}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := post(t, ts.Client(), ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, out)
			}
			var eb errorBody
			if err := json.Unmarshal(out, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %q should be {\"error\": ...}", out)
			}
		})
	}

	// Wrong method on an API route.
	resp, err := ts.Client().Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/estimate status %d, want 405", resp.StatusCode)
	}
}

func TestSimulateBudgetExceededIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSimEvents: 100})
	body := `{"spec": ` + sampleSpec + `, "duration": 1.0, "seed": 1}`
	resp, out := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, out)
	}
}

// Cache hits must replay the cold response byte for byte — asserted both
// against the same server's cold response and against an independent
// server evaluating from scratch.
func TestCacheByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, ep := range []struct{ path, body string }{
		{"/v1/estimate", estimateBody(sampleSpec)},
		{"/v1/optimize", `{"spec": ` + sampleSpec + `, "goal": "latency", "knobs": [{"vertex":"cores","param":"parallelism","lo":1,"hi":4}]}`},
		{"/v1/simulate", `{"spec": ` + sampleSpec + `, "duration": 0.002, "seed": 3}`},
	} {
		cold, coldBody := post(t, ts.Client(), ts.URL+ep.path, ep.body)
		warm, warmBody := post(t, ts.Client(), ts.URL+ep.path, ep.body)
		if cold.StatusCode != 200 || warm.StatusCode != 200 {
			t.Fatalf("%s: status %d/%d", ep.path, cold.StatusCode, warm.StatusCode)
		}
		if cold.Header.Get("X-Cache") != "miss" || warm.Header.Get("X-Cache") != "hit" {
			t.Fatalf("%s: X-Cache %q/%q, want miss/hit", ep.path,
				cold.Header.Get("X-Cache"), warm.Header.Get("X-Cache"))
		}
		if !bytes.Equal(coldBody, warmBody) {
			t.Fatalf("%s: warm body differs from cold:\n%s\n%s", ep.path, coldBody, warmBody)
		}

		// An independent server must produce the same bytes cold.
		_, ts2 := newTestServer(t, Config{})
		_, freshBody := post(t, ts2.Client(), ts2.URL+ep.path, ep.body)
		if !bytes.Equal(coldBody, freshBody) {
			t.Fatalf("%s: fresh server disagrees with cached bytes", ep.path)
		}
	}
	if s.hits.Value() != 3 || s.misses.Value() != 3 {
		t.Fatalf("hits=%v misses=%v, want 3/3", s.hits.Value(), s.misses.Value())
	}
}

// Whitespace, key order and unit spellings must share one cache entry.
func TestCacheKeyCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	variant := strings.NewReplacer(
		`"8Gbps"`, `1e9`,
		`"4KB"`, `4096`,
		"\n", "", "  ", " ",
	).Replace(sampleSpec)
	_, a := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	warm, b := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(variant))
	if warm.Header.Get("X-Cache") != "hit" {
		t.Fatal("canonically-equal request should hit the cache")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("responses must be byte-identical")
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	r1, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	r2, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	if r1.Header.Get("X-Cache") != "miss" || r2.Header.Get("X-Cache") != "miss" {
		t.Fatal("disabled cache must never hit")
	}
}

// With one worker and a queue of one, a third concurrent request must be
// shed with 429 + Retry-After while the first two eventually succeed.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered <- struct{}{}
		<-release
	}

	type outcome struct {
		code  int
		retry string
	}
	results := make(chan outcome, 3)
	do := func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			results <- outcome{code: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- outcome{code: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
	}

	// First request occupies the worker...
	go do()
	<-entered
	// ...second occupies the queue slot...
	go do()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	// ...third must be rejected immediately.
	go do()
	rejected := <-results
	if rejected.code != http.StatusTooManyRequests {
		t.Fatalf("third request status %d, want 429", rejected.code)
	}
	if rejected.retry == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if s.rejected.Value() != 1 {
		t.Fatalf("rejected counter = %v, want 1", s.rejected.Value())
	}

	close(release)
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Fatalf("admitted request status %d, want 200", r.code)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// A request that outlives the per-request timeout while queued gets 504.
func TestQueueedRequestTimesOut(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheEntries: -1,
		RequestTimeout: 50 * time.Millisecond,
	})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testDelay = func(string) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	defer close(release)

	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered

	resp, body := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request status %d, want 504: %s", resp.StatusCode, body)
	}
	// The first request also overstayed its own deadline while blocked in
	// the worker, so it 504s too — the timeout bounds total time, not just
	// queue wait.
	release <- struct{}{}
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Fatalf("first request status %d, want 504", code)
	}
}

// The daemon must sustain 1000 concurrent in-flight requests with zero
// drops when the queue is deep enough (acceptance gate, run under -race).
func TestThousandConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 2048, CacheEntries: 2048})
	const n = 1000
	var wg sync.WaitGroup
	codes := make([]int, n)
	client := ts.Client()
	client.Transport.(*http.Transport).MaxConnsPerHost = 0
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique ingress rates defeat the cache so every request
			// really evaluates.
			body := estimateBody(strings.Replace(sampleSpec,
				`"ingress_bw": "8Gbps"`, fmt.Sprintf(`"ingress_bw": %d`, 100_000_000+i*100_000), 1))
			resp, err := client.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (zero non-429 drops; queue was deep enough for zero 429s)", i, c)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	s, ts := newTestServer(t, Config{Registry: reg, Tracer: tracer})
	post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, err %v", health, err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`lognic_serve_requests_total{code="200",endpoint="estimate"} 1`,
		"lognic_serve_request_seconds",
		"lognic_serve_cache_misses_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if tracer.Len() != 1 {
		t.Fatalf("tracer has %d spans, want 1", tracer.Len())
	}
	_ = s
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{Pprof: true})
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	resp, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
	}
}

// Serve must keep running until canceled, then drain in-flight work.
func TestServeContextCancelDrains(t *testing.T) {
	s := NewServer(Config{Addr: "127.0.0.1:0", CacheEntries: -1})
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered <- struct{}{}
		<-release
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr()+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-entered

	// Begin shutdown while the request is still in flight.
	cancel()
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", code)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}
}
