package serve

// The kill -9 test — the tentpole's acceptance criterion, end to end. A
// real lognic-serve process (this test binary re-exec'd into Main via
// TestMain) accepts a multi-second simulation job, is SIGKILLed
// mid-evaluation after its first on-disk checkpoint, and is restarted
// over the same jobs directory. The restarted daemon must replay the
// journal, resume the simulation from the checkpoint, and finish with a
// result byte-identical to an uninterrupted evaluation.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

const helperEnv = "LOGNIC_SERVE_CRASH_HELPER"
const helperArgsEnv = "LOGNIC_SERVE_CRASH_HELPER_ARGS"

// TestMain lets this test binary double as the lognic-serve executable
// for crash tests: with the helper env set it runs Main instead of the
// test suite.
func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		args := strings.Split(os.Getenv(helperArgsEnv), "\x1f")
		os.Exit(Main(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

var listenLine = regexp.MustCompile(`lognic-serve listening on http://(\S+)`)

// startServeProcess launches this test binary as a lognic-serve daemon
// and returns the process and its base URL.
func startServeProcess(t *testing.T, args []string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		helperArgsEnv+"="+strings.Join(args, "\x1f"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stdout so the child never blocks on a full pipe.
			go io.Copy(io.Discard, stdout)
			return cmd, "http://" + m[1]
		}
	}
	t.Fatalf("serve process exited before announcing its address (scan err: %v)", sc.Err())
	return nil, ""
}

// waitReadyURL polls /readyz on a raw URL until 200.
func waitReadyURL(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("serve process never became ready")
}

// nopCkpt is a checkpoint slot that stores nothing — for computing the
// uninterrupted baseline in-process.
type nopCkpt struct{}

func (nopCkpt) Load() ([]byte, bool) { return nil, false }
func (nopCkpt) Save([]byte)          {}

func TestKillNineLosesNoJob(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and runs multi-second simulations")
	}
	dir := t.TempDir()
	// ~2.5s of wall clock for the full simulation, checkpointing every
	// 50k events (~every 40ms), so the SIGKILL reliably lands mid-run
	// with plenty of checkpoints behind it.
	simReq := `{"spec": ` + sampleSpec + `, "duration": 4.0, "seed": 42}`
	args := []string{
		"-addr", "127.0.0.1:0",
		"-jobs-dir", dir,
		"-job-checkpoint-every", "50000",
		"-cache", "-1",
	}

	// Uninterrupted baseline, computed in-process through the same
	// evaluator the daemon uses.
	base := NewServer(Config{CacheEntries: -1})
	defer base.Close()
	want, err := base.evalJob(context.Background(), "baseline", "simulate", []byte(simReq), nopCkpt{})
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: submit, wait for a checkpoint to hit disk, kill -9.
	cmd1, url1 := startServeProcess(t, args)
	waitReadyURL(t, url1)
	body := fmt.Sprintf(`{"kind": "simulate", "request": %s}`, simReq)
	resp, err := http.Post(url1+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var v JobView
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}

	ckPath := filepath.Join(dir, "ckpt-"+v.ID+".bin")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st, err := os.Stat(ckPath); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint reached disk before the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// SIGKILL: no drain, no journal finalization — the crash the journal
	// and checkpoint store exist to survive.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Round 2: a fresh process over the same directory must finish the job.
	_, url2 := startServeProcess(t, args)
	waitReadyURL(t, url2)
	var got JobView
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url2 + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job lost across kill -9: %d %s", resp.StatusCode, out)
		}
		if err := json.Unmarshal(out, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == "succeeded" || got.State == "failed" || got.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished after restart: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.State != "succeeded" {
		t.Fatalf("job after restart: %+v", got)
	}
	if !got.Resumed {
		t.Fatal("job completed but did not resume from the checkpoint")
	}
	if !bytes.Equal(bytes.TrimRight(got.Result, "\n"), bytes.TrimRight(want, "\n")) {
		t.Fatal("resumed result is not byte-identical to the uninterrupted evaluation")
	}
	// The checkpoint is garbage-collected once the job succeeds.
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint file not cleaned up: %v", err)
	}
}
