package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lognic/internal/jobs"
)

// sseFrameRead is one parsed Server-Sent Events frame.
type sseFrameRead struct {
	name     string
	id       string
	event    jobs.Event
	comments []string
}

// readSSEFrame parses the next frame off the stream; io.EOF means the
// server ended it.
func readSSEFrame(br *bufio.Reader) (sseFrameRead, error) {
	var f sseFrameRead
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, nil
			}
			// Blank line after a comment-only block: keep scanning.
		case strings.HasPrefix(line, ":"):
			f.comments = append(f.comments, strings.TrimSpace(line[1:]))
		case strings.HasPrefix(line, "event: "):
			f.name = line[len("event: "):]
			seen = true
		case strings.HasPrefix(line, "id: "):
			f.id = line[len("id: "):]
			seen = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &f.event); err != nil {
				return f, fmt.Errorf("bad data line %q: %w", line, err)
			}
			seen = true
		}
	}
}

// openStream issues the events GET and returns the response plus a
// buffered reader over the body. The caller owns resp.Body.
func openStream(t *testing.T, ctx context.Context, client *http.Client, url, id string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, bufio.NewReader(resp.Body)
}

// A subscriber attached near submission sees the live lifecycle: an
// opening state frame, in-run progress, and the terminal result — with
// monotonic sequence ids.
func TestJobEventsLiveStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	// ~0.6s of wall clock: long enough that the stream reliably attaches
	// mid-run and sees progress frames.
	long := `{"spec": ` + sampleSpec + `, "duration": 1.0, "seed": 11}`
	code, v := submitJob(t, ts.Client(), ts.URL, "simulate", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.Client(), ts.URL, v.ID)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("Content-Type %q", got)
	}

	var frames []sseFrameRead
	for {
		f, err := readSSEFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		if f.event.Terminal {
			break
		}
	}
	if len(frames) == 0 {
		t.Fatal("stream delivered no frames")
	}
	first, last := frames[0], frames[len(frames)-1]
	if first.name != jobs.EventState {
		t.Fatalf("opening frame type %q, want state snapshot", first.name)
	}
	if last.name != jobs.EventState || last.event.State != jobs.StateSucceeded || !last.event.Terminal {
		t.Fatalf("final frame %+v, want terminal succeeded state", last.event)
	}
	if len(last.event.Result) == 0 {
		t.Fatal("terminal frame carries no result")
	}
	if last.event.Resumed {
		t.Fatal("uninterrupted job reported resumed=true")
	}
	progress := 0
	for _, f := range frames {
		if f.name == jobs.EventProgress {
			progress++
			if f.event.Events == 0 || f.event.SimTime <= 0 {
				t.Fatalf("empty progress frame: %+v", f.event)
			}
		}
	}
	if progress == 0 {
		t.Fatal("no progress frames during a ~600ms simulation")
	}
	// Live frames carry strictly increasing sequence ids (the snapshot
	// frame has Seq 0 and no id line).
	var prev uint64
	for _, f := range frames[1:] {
		if f.event.Seq <= prev {
			t.Fatalf("seq not increasing: %d after %d", f.event.Seq, prev)
		}
		prev = f.event.Seq
	}

	// After the terminal frame the server ends the stream.
	if _, err := readSSEFrame(br); err != io.EOF {
		t.Fatalf("after terminal frame: %v, want EOF", err)
	}
}

// Subscribing to a finished job yields exactly one frame — the terminal
// snapshot with the result — then EOF.
func TestJobEventsTerminalSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)
	_, v := submitJob(t, ts.Client(), ts.URL, "estimate", estimateBody(sampleSpec))
	done := pollJob(t, ts.Client(), ts.URL, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, br := openStream(t, ctx, ts.Client(), ts.URL, v.ID)
	defer resp.Body.Close()
	f, err := readSSEFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.name != jobs.EventState || !f.event.Terminal || f.event.State != jobs.StateSucceeded {
		t.Fatalf("snapshot frame %+v", f.event)
	}
	if string(f.event.Result) != strings.TrimRight(string(done.Result), "\n")+"\n" &&
		string(f.event.Result) != string(done.Result) {
		t.Fatal("snapshot result differs from the polled result")
	}
	if _, err := readSSEFrame(br); err != io.EOF {
		t.Fatalf("terminal snapshot must end the stream, got %v", err)
	}
}

func TestJobEventsUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)
	resp, _ := get(t, ts.Client(), ts.URL+"/v1/jobs/ffffffffffffffff/events")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// A client that disconnects mid-stream detaches its subscription without
// disturbing the job, and a later subscriber still gets the ending.
func TestJobEventsClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{JobCheckpointEvery: 1})
	waitReady(t, ts.Client(), ts.URL)
	long := `{"spec": ` + sampleSpec + `, "duration": 60, "seed": 1}`
	code, v := submitJob(t, ts.Client(), ts.URL, "simulate", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	resp, br := openStream(t, ctx, ts.Client(), ts.URL, v.ID)
	if _, err := readSSEFrame(br); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	waitFor(t, func() bool { return s.jobs.Subscribers(v.ID) == 1 })

	// Drop the connection mid-stream; the handler must notice and detach.
	cancel()
	resp.Body.Close()
	waitFor(t, func() bool { return s.jobs.Subscribers(v.ID) == 0 })

	// The job is unaffected: cancel it and stream the terminal state.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	done := pollJob(t, ts.Client(), ts.URL, v.ID)
	if done.State != "cancelled" {
		t.Fatalf("job after disconnect+cancel: %+v", done)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	resp2, br2 := openStream(t, ctx2, ts.Client(), ts.URL, v.ID)
	defer resp2.Body.Close()
	f, err := readSSEFrame(br2)
	if err != nil {
		t.Fatal(err)
	}
	if !f.event.Terminal || f.event.State != jobs.StateCancelled {
		t.Fatalf("late subscriber frame %+v, want terminal cancelled", f.event)
	}
}

// The stream survives kill -9: a fresh process over the same jobs
// directory resumes the simulation from its checkpoint and a subscriber
// on the new process sees progress and a terminal frame with
// resumed=true.
func TestKillNineStreamReportsResumed(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and runs multi-second simulations")
	}
	dir := t.TempDir()
	simReq := `{"spec": ` + sampleSpec + `, "duration": 4.0, "seed": 21}`
	args := []string{
		"-addr", "127.0.0.1:0",
		"-jobs-dir", dir,
		"-job-checkpoint-every", "50000",
		"-cache", "-1",
	}

	cmd1, url1 := startServeProcess(t, args)
	waitReadyURL(t, url1)
	body := fmt.Sprintf(`{"kind": "simulate", "request": %s}`, simReq)
	resp, err := http.Post(url1+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var v JobView
	if err := json.Unmarshal(out, &v); err != nil {
		t.Fatal(err)
	}
	waitForCheckpoint(t, dir, v.ID)
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	_, url2 := startServeProcess(t, args)
	waitReadyURL(t, url2)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	resp2, br := openStream(t, ctx, http.DefaultClient, url2, v.ID)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stream on restarted process: %d", resp2.StatusCode)
	}
	var last sseFrameRead
	sawProgress := false
	for {
		f, err := readSSEFrame(br)
		if err != nil {
			t.Fatalf("stream after restart: %v (last %+v)", err, last.event)
		}
		last = f
		if f.name == jobs.EventProgress {
			sawProgress = true
		}
		if f.event.Terminal {
			break
		}
	}
	if last.event.State != jobs.StateSucceeded {
		t.Fatalf("terminal frame %+v, want succeeded", last.event)
	}
	if !last.event.Resumed {
		t.Fatal("terminal frame must report resumed=true after a checkpoint resume")
	}
	if !sawProgress {
		t.Fatal("no progress frames streamed from the resumed run")
	}
}

// waitForCheckpoint blocks until the job's checkpoint file is on disk.
func waitForCheckpoint(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, "ckpt-"+id+".bin")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint reached disk before the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
