package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitReady polls /readyz until the server reports ready.
func waitReady(t *testing.T, client *http.Client, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func submitJob(t *testing.T, client *http.Client, url, kind, request string) (int, JobView) {
	t.Helper()
	body := fmt.Sprintf(`{"kind": %q, "request": %s}`, kind, request)
	resp, out := post(t, client, url+"/v1/jobs", body)
	var v JobView
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatalf("decoding job view: %v (%s)", err, out)
		}
	}
	return resp.StatusCode, v
}

// pollJob waits for the job to reach a terminal state.
func pollJob(t *testing.T, client *http.Client, url, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, out)
		}
		var v JobView
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "succeeded", "failed", "cancelled":
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobView{}
}

const simulateReq = `{"spec": ` + sampleSpec + `, "duration": 0.02, "seed": 7}`

func TestJobSubmitPollEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	code, v := submitJob(t, ts.Client(), ts.URL, "estimate", estimateBody(sampleSpec))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if v.ID == "" || v.Kind != "estimate" {
		t.Fatalf("job view: %+v", v)
	}
	done := pollJob(t, ts.Client(), ts.URL, v.ID)
	if done.State != "succeeded" || done.Attempts != 1 {
		t.Fatalf("job: %+v", done)
	}
	var pt PointResult
	if err := json.Unmarshal(done.Result, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 {
		t.Fatalf("implausible async estimate: %+v", pt)
	}
}

// The async simulate result is byte-identical to the synchronous
// endpoint's response for the same request.
func TestJobSimulateMatchesSyncEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{JobCheckpointEvery: 5000})
	waitReady(t, ts.Client(), ts.URL)

	resp, syncBody := post(t, ts.Client(), ts.URL+"/v1/simulate", simulateReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync simulate: %d %s", resp.StatusCode, syncBody)
	}
	code, v := submitJob(t, ts.Client(), ts.URL, "simulate", simulateReq)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := pollJob(t, ts.Client(), ts.URL, v.ID)
	if done.State != "succeeded" {
		t.Fatalf("job failed: %+v", done)
	}
	if !bytes.Equal(bytes.TrimRight(done.Result, "\n"), bytes.TrimRight(syncBody, "\n")) {
		t.Fatal("async result differs from the synchronous response")
	}
}

// Acceptance criterion: N concurrent submissions of an identical spec
// create one job and exactly one evaluation. Runs under -race in CI.
func TestJobCoalescingSingleEvaluation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, v := submitJob(t, ts.Client(), ts.URL, "simulate", simulateReq)
			codes[i], ids[i] = code, v.ID
		}(i)
	}
	wg.Wait()

	accepted := 0
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK: // coalesced
		default:
			t.Fatalf("submission %d: status %d", i, codes[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got a different job id", i)
		}
	}
	if accepted != 1 {
		t.Fatalf("%d submissions created jobs, want exactly 1", accepted)
	}
	done := pollJob(t, ts.Client(), ts.URL, ids[0])
	if done.State != "succeeded" {
		t.Fatalf("job: %+v", done)
	}
	if got := s.jobs.Evaluations(); got != 1 {
		t.Fatalf("%v evaluations for %d identical submissions, want 1", got, n)
	}
	if done.Coalesced != n-1 {
		t.Fatalf("Coalesced = %d, want %d", done.Coalesced, n-1)
	}
}

func TestJobCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{JobCheckpointEvery: 1})
	waitReady(t, ts.Client(), ts.URL)

	// A long simulation we cancel mid-flight.
	long := `{"spec": ` + sampleSpec + `, "duration": 60, "seed": 1}`
	code, v := submitJob(t, ts.Client(), ts.URL, "simulate", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	done := pollJob(t, ts.Client(), ts.URL, v.ID)
	if done.State != "cancelled" {
		t.Fatalf("state %q after cancel", done.State)
	}
}

func TestJobValidationAtSubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	for name, body := range map[string]string{
		"unknown kind": `{"kind": "transmogrify", "request": {}}`,
		"bad spec":     `{"kind": "estimate", "request": {"spec": {"name": "x"}}}`,
		"not json":     `{{{`,
	} {
		resp, out := post(t, ts.Client(), ts.URL+"/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, out)
		}
	}
	resp, _ := ts.Client().Get(ts.URL + "/v1/jobs/0000000000000000")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestJobListing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	_, v := submitJob(t, ts.Client(), ts.URL, "estimate", estimateBody(sampleSpec))
	pollJob(t, ts.Client(), ts.URL, v.ID)
	resp, out := get(t, ts.Client(), ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []JobView
	if err := json.Unmarshal(out, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("listing: %+v", list)
	}
	if list[0].Result != nil {
		t.Fatal("listing should omit result payloads")
	}
}

// Jobs submitted before a restart are visible — with results — after a
// new server replays the same journal.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{JobsDir: dir})
	waitReady(t, ts1.Client(), ts1.URL)
	_, v := submitJob(t, ts1.Client(), ts1.URL, "estimate", estimateBody(sampleSpec))
	done := pollJob(t, ts1.Client(), ts1.URL, v.ID)
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Config{JobsDir: dir})
	waitReady(t, ts2.Client(), ts2.URL)
	resp, out := get(t, ts2.Client(), ts2.URL+"/v1/jobs/"+v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restart: %d %s", resp.StatusCode, out)
	}
	var v2 JobView
	if err := json.Unmarshal(out, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.State != "succeeded" || !bytes.Equal(v2.Result, done.Result) {
		t.Fatalf("replayed job lost its result: %+v", v2)
	}
}

func TestReadyzDistinctFromHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	waitReady(t, ts.Client(), ts.URL)

	resp, _ := get(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// Drain flips readiness but not liveness, and job traffic is refused.
	s.draining.Store(true)
	resp, _ = get(t, ts.Client(), ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, _ = get(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	code, _ := submitJob(t, ts.Client(), ts.URL, "estimate", estimateBody(sampleSpec))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	s.draining.Store(false)
	resp, _ = get(t, ts.Client(), ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after drain flag cleared: %d", resp.StatusCode)
	}
}

func TestReadyzDuringReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Wait out the startup goroutine, then force the pre-replay window
	// back deterministically — nothing will flip the flag again.
	waitReady(t, ts.Client(), ts.URL)
	s.jobsReady.Store(false)
	resp, _ := get(t, ts.Client(), ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before replay: %d, want 503", resp.StatusCode)
	}
	code, _ := submitJob(t, ts.Client(), ts.URL, "estimate", estimateBody(sampleSpec))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit before replay: %d, want 503", code)
	}
}

// Oversized bodies are rejected with 413 on both the synchronous and the
// job endpoints.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	waitReady(t, ts.Client(), ts.URL)
	big := `{"spec": {"pad": "` + strings.Repeat("x", 2048) + `"}}`
	resp, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("sync: %d, want 413", resp.StatusCode)
	}
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("jobs: %d, want 413", resp.StatusCode)
	}
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}
