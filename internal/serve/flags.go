package serve

import (
	"flag"
	"fmt"
	"io"
	"time"

	"lognic/internal/obs/olog"
)

// newFlagSet builds the lognic-serve flag set.
func newFlagSet(stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("lognic-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// parseFlags parses daemon flags into a Config. The structured logger is
// built here too (from -log-level/-log-format), writing to the flag
// set's output — stderr in the real binary.
func parseFlags(fs *flag.FlagSet, args []string) (Config, error) {
	var cfg Config
	fs.StringVar(&cfg.Addr, "addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent evaluations (default GOMAXPROCS)")
	fs.IntVar(&cfg.QueueDepth, "queue", 0, "max requests waiting for a worker (default 16×workers)")
	fs.IntVar(&cfg.CacheEntries, "cache", 1024, "result cache entries (negative disables)")
	fs.Int64Var(&cfg.CacheBytes, "cache-bytes", 256<<20, "result cache byte budget (negative disables the byte bound)")
	fs.StringVar(&cfg.CacheWarmFrom, "cache-warm-from", "", "warm-start the cache from a snapshot: file path or peer /v1/cache/snapshot URL")
	tenantWeights := fs.String("tenant-weights", "", "enable multi-tenant fairness: comma-separated name:weight pairs, e.g. alpha:10,beta:1 (a \"default\" tenant with weight 1 is always added for unlabeled requests)")
	fs.Float64Var(&cfg.TenantCacheSpill, "tenant-cache-spill", 0, "fraction of -cache-bytes shared as a spillover pool for entries larger than their tenant partition (0 disables, max 0.9)")
	fs.DurationVar(&cfg.RequestTimeout, "timeout", 30*time.Second, "per-request evaluation timeout")
	fs.DurationVar(&cfg.DrainTimeout, "drain", 30*time.Second, "graceful-shutdown drain timeout")
	fs.Int64Var(&cfg.MaxBodyBytes, "max-body", 8<<20, "max request body bytes")
	var maxEvents uint64
	fs.Uint64Var(&maxEvents, "max-sim-events", 50e6, "default event budget per /v1/simulate request")
	fs.BoolVar(&cfg.Pprof, "pprof", false, "mount /debug/pprof")
	fs.IntVar(&cfg.TraceSpans, "trace-spans", 0, "span ring capacity for GET /v1/trace (0 disables tracing)")
	fs.StringVar(&cfg.JobsDir, "jobs-dir", "", "async-job durability directory (empty: jobs are memory-only)")
	fs.IntVar(&cfg.JobsWorkers, "jobs-workers", 2, "concurrent async-job evaluations")
	fs.IntVar(&cfg.JobMaxAttempts, "job-attempts", 3, "attempt budget per async job")
	fs.DurationVar(&cfg.JobBackoff, "job-backoff", 200*time.Millisecond, "base retry backoff for failed job attempts")
	fs.DurationVar(&cfg.JobBackoffMax, "job-backoff-max", 10*time.Second, "retry backoff cap")
	var ckptEvery uint64
	fs.Uint64Var(&ckptEvery, "job-checkpoint-every", 1_000_000, "simulation checkpoint cadence in events for async jobs")
	fs.Float64Var(&cfg.SLOAvailability, "slo-availability", 0.999, "availability objective: fraction of admitted requests that must not 5xx (negative disables)")
	fs.Float64Var(&cfg.SLOLatency, "slo-latency", 0.99, "latency objective: fraction of successes that must beat -slo-latency-threshold (negative disables)")
	fs.DurationVar(&cfg.SLOLatencyThreshold, "slo-latency-threshold", time.Second, "latency objective cutoff")
	logOpts := olog.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return Config{}, err
	}
	cfg.MaxSimEvents = maxEvents
	cfg.JobCheckpointEvery = ckptEvery
	if *tenantWeights != "" {
		tw, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			fmt.Fprintln(fs.Output(), err)
			return Config{}, err
		}
		cfg.TenantWeights = tw
	}
	logger, err := logOpts.Logger(fs.Output())
	if err != nil {
		fmt.Fprintln(fs.Output(), err)
		return Config{}, err
	}
	cfg.Logger = logger
	return cfg, nil
}
