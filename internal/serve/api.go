package serve

// Wire types and evaluators for the three model endpoints. The request
// DTOs embed spec.File — the same JSON spec format the CLIs load from
// disk — so a file that works with `lognic-est -spec f.json` works as
// `{"spec": <contents of f.json>}` against the daemon. The DTOs are also
// the cache identity: a decoded request re-marshals deterministically
// (struct field order, units normalized to numbers by spec's
// unmarshalers), and the SHA-256 of those bytes keys the result cache.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
	"lognic/internal/spec"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Spec is the model document (spec package format).
	Spec spec.File `json:"spec"`
}

// PointResult is the analytical estimate's wire shape (matches the
// `lognic-est -json` output).
type PointResult struct {
	IngressBW    float64            `json:"ingress_bw"`
	Throughput   float64            `json:"throughput"`
	Bottleneck   string             `json:"bottleneck"`
	Latency      float64            `json:"latency"`
	DropRate     float64            `json:"drop_rate"`
	Constraints  []ConstraintResult `json:"constraints"`
	PathsLatency []PathResult       `json:"paths,omitempty"`
}

// ConstraintResult is one Equation 4 term.
type ConstraintResult struct {
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	Limit float64 `json:"limit"`
}

// PathResult is one path's latency breakdown.
type PathResult struct {
	Vertices []string `json:"vertices"`
	Weight   float64  `json:"weight"`
	Total    float64  `json:"total"`
	Queueing float64  `json:"queueing"`
	Compute  float64  `json:"compute"`
	Overhead float64  `json:"overhead"`
	Movement float64  `json:"movement"`
}

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	Spec spec.File `json:"spec"`
	// Goal is "latency", "throughput" or "goodput" (long forms accepted).
	Goal string `json:"goal"`
	// Knobs lists the integer parameters to search.
	Knobs []KnobSpec `json:"knobs"`
	// MaxEvals bounds model evaluations (0 selects the default).
	MaxEvals int `json:"max_evals,omitempty"`
}

// KnobSpec is one searched parameter.
type KnobSpec struct {
	Vertex string `json:"vertex"`
	// Param is "parallelism" or "queue".
	Param string `json:"param"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
}

// OptimizeResult is the optimizer's wire shape.
type OptimizeResult struct {
	Goal       string         `json:"goal"`
	Knobs      map[string]int `json:"knobs"`
	Objective  float64        `json:"objective"`
	Evaluated  int            `json:"evaluated"`
	Exhaustive bool           `json:"exhaustive"`
}

// SimulateRequest is the body of POST /v1/simulate.
type SimulateRequest struct {
	Spec spec.File `json:"spec"`
	// Duration is the simulated time in seconds. Required.
	Duration float64 `json:"duration"`
	// Warmup excludes initial simulated time from statistics (default 10%
	// of Duration).
	Warmup float64 `json:"warmup,omitempty"`
	// Seed drives all randomness; equal seeds give equal runs — which is
	// what makes simulation results cacheable.
	Seed int64 `json:"seed,omitempty"`
	// Deterministic uses mean service times instead of exponential draws.
	Deterministic bool `json:"deterministic,omitempty"`
	// MaxEvents bounds the event budget (0 uses the server default).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// Shards, when above 1, runs the simulation on the sharded event
	// engine. Results are byte-identical to serial runs (equal seeds
	// still give equal, cacheable results); async jobs with Shards > 1
	// skip checkpointing, so a crashed attempt restarts from the top.
	Shards int `json:"shards,omitempty"`
}

// badRequest marks an error as the client's fault (HTTP 400): malformed
// JSON, an invalid spec, an unknown goal or knob.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// decodeStrict decodes a request body, rejecting unknown fields so typos
// fail loudly instead of silently evaluating a different model.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest{fmt.Errorf("serve: bad request body: %w", err)}
	}
	return nil
}

// cacheKey hashes an endpoint name plus the canonical form of a decoded
// request DTO. Marshaling the DTO (not the raw body) normalizes
// whitespace, key order and unit spellings, so equivalent requests share
// one cache entry.
func cacheKey(endpoint string, dto any) (string, error) {
	canon, err := json.Marshal(dto)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// estimatePoint evaluates a model once into the wire shape.
func estimatePoint(m core.Model) (PointResult, error) {
	est, err := m.Estimate()
	if err != nil {
		return PointResult{}, err
	}
	out := PointResult{
		IngressBW:  m.Traffic.IngressBW,
		Throughput: est.Throughput.Attainable,
		Bottleneck: est.Throughput.Bottleneck.String(),
		Latency:    est.Latency.Attainable,
		DropRate:   est.Latency.DropRate,
	}
	for _, c := range est.Throughput.Constraints {
		out.Constraints = append(out.Constraints, ConstraintResult{
			Kind: c.Kind.String(), Name: c.Name, Limit: c.Limit,
		})
	}
	for _, p := range est.Latency.Paths {
		out.PathsLatency = append(out.PathsLatency, PathResult{
			Vertices: p.Vertices, Weight: p.Weight, Total: p.Total,
			Queueing: p.Queueing, Compute: p.Compute,
			Overhead: p.Overhead, Movement: p.Movement,
		})
	}
	return out, nil
}

// prepared is one admitted request: its cache key and the work to run if
// the cache misses.
type prepared struct {
	key string
	run func(ctx context.Context) (any, error)
}

// prepareEstimate decodes and validates an estimate request.
func (s *Server) prepareEstimate(body []byte) (prepared, error) {
	var req EstimateRequest
	if err := decodeStrict(body, &req); err != nil {
		return prepared{}, err
	}
	m, err := req.Spec.Model()
	if err != nil {
		return prepared{}, badRequest{err}
	}
	key, err := cacheKey("estimate", req)
	if err != nil {
		return prepared{}, err
	}
	return prepared{key: key, run: func(ctx context.Context) (any, error) {
		return estimatePoint(m)
	}}, nil
}

// prepareOptimize decodes and validates an optimize request.
func (s *Server) prepareOptimize(body []byte) (prepared, error) {
	var req OptimizeRequest
	if err := decodeStrict(body, &req); err != nil {
		return prepared{}, err
	}
	m, err := req.Spec.Model()
	if err != nil {
		return prepared{}, badRequest{err}
	}
	goal, err := optimizer.GoalFromName(req.Goal)
	if err != nil {
		return prepared{}, badRequest{err}
	}
	if len(req.Knobs) == 0 {
		return prepared{}, badRequest{fmt.Errorf("serve: optimize needs at least one knob")}
	}
	knobs := make([]optimizer.IntKnob, 0, len(req.Knobs))
	for _, k := range req.Knobs {
		ik := optimizer.IntKnob{Vertex: k.Vertex, Param: k.Param, Lo: k.Lo, Hi: k.Hi}
		if err := ik.Validate(m.Graph); err != nil {
			return prepared{}, badRequest{err}
		}
		knobs = append(knobs, ik)
	}
	key, err := cacheKey("optimize", req)
	if err != nil {
		return prepared{}, err
	}
	return prepared{key: key, run: func(ctx context.Context) (any, error) {
		sol, err := optimizer.SolveKnobs(m, goal, knobs, req.MaxEvals)
		if err != nil {
			return nil, err
		}
		out := OptimizeResult{
			Goal:       goal.String(),
			Knobs:      make(map[string]int, len(knobs)),
			Objective:  sol.Objective,
			Evaluated:  sol.Evaluated,
			Exhaustive: sol.Exhaustive,
		}
		for i, k := range knobs {
			out.Knobs[k.Name()] = sol.Values[i]
		}
		return out, nil
	}}, nil
}

// prepareSimulate decodes and validates a simulate request.
func (s *Server) prepareSimulate(body []byte) (prepared, error) {
	var req SimulateRequest
	if err := decodeStrict(body, &req); err != nil {
		return prepared{}, err
	}
	m, err := req.Spec.Model()
	if err != nil {
		return prepared{}, badRequest{err}
	}
	if req.Duration <= 0 {
		return prepared{}, badRequest{fmt.Errorf("serve: simulate needs duration > 0 seconds")}
	}
	maxEvents := req.MaxEvents
	if maxEvents == 0 {
		maxEvents = s.cfg.MaxSimEvents
	}
	key, err := cacheKey("simulate", req)
	if err != nil {
		return prepared{}, err
	}
	return prepared{key: key, run: func(ctx context.Context) (any, error) {
		cfg := sim.Config{
			Graph:    m.Graph,
			Hardware: m.Hardware,
			Profile: traffic.Fixed(m.Graph.Name(),
				unit.Bandwidth(m.Traffic.IngressBW), unit.Size(m.Traffic.Granularity)),
			Seed:                 req.Seed,
			Duration:             req.Duration,
			Warmup:               req.Warmup,
			DeterministicService: req.Deterministic,
			MaxEvents:            maxEvents,
			Shards:               req.Shards,
		}
		// Synchronous simulations join the request's trace: vertex spans
		// parent under the server's request span. (Cache hits skip the
		// evaluation entirely, so a traced run is only guaranteed on a
		// cold key.)
		if tc, ok := obs.TraceFromContext(ctx); ok {
			cfg.TraceID = tc.TraceID
			cfg.ParentSpanID = tc.SpanID
			cfg.Spans = s.cfg.Tracer
		}
		sm, err := sim.New(cfg)
		if err != nil {
			return nil, badRequest{err}
		}
		return sm.RunContext(ctx)
	}}, nil
}
