package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"lognic/internal/obs"
	"lognic/internal/obs/slo"
)

var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

// A request carrying a W3C traceparent joins the client's trace: the
// server's request span is a child of the client span, the simulation's
// vertex spans inherit the same trace id, and X-Request-Id echoes the
// server span so client logs and server spans correlate.
func TestTracePropagationSyncEndpoint(t *testing.T) {
	tracer := obs.NewTracer(4096)
	_, ts := newTestServer(t, Config{Tracer: tracer, CacheEntries: -1})

	const clientTrace = "0af7651916cd43dd8448eb211c80319c"
	const clientSpan = "b7ad6b7169203331"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"spec": `+sampleSpec+`, "duration": 0.002, "seed": 7}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+clientTrace+"-"+clientSpan+"-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if !hex16.MatchString(reqID) || reqID == clientSpan {
		t.Fatalf("X-Request-Id %q, want a fresh 16-hex server span id", reqID)
	}

	var reqSpans, simSpans int
	for _, sp := range tracer.Spans() {
		if sp.TraceID != clientTrace {
			t.Fatalf("span %q carries trace %q, want the client's %s", sp.Name, sp.TraceID, clientTrace)
		}
		switch sp.Cat {
		case "request":
			reqSpans++
			if sp.SpanID != reqID || sp.ParentID != clientSpan {
				t.Fatalf("request span %+v, want span=%s parent=%s", sp, reqID, clientSpan)
			}
		case obs.CatVertex, obs.CatQueue, obs.CatService, obs.CatTransfer:
			simSpans++
			if sp.ParentID != reqID {
				t.Fatalf("sim span %q parent %q, want the request span %s", sp.Name, sp.ParentID, reqID)
			}
		}
	}
	if reqSpans != 1 || simSpans == 0 {
		t.Fatalf("%d request spans, %d sim spans; want 1 and >0", reqSpans, simSpans)
	}
}

// The async path: a traced job submission journals the traceparent, the
// attempt span is a child in the same trace, and the simulation spans
// hang off the attempt.
func TestTracePropagationAsyncJob(t *testing.T) {
	tracer := obs.NewTracer(4096)
	_, ts := newTestServer(t, Config{Tracer: tracer, CacheEntries: -1})
	waitReady(t, ts.Client(), ts.URL)

	const clientTrace = "11111111111111111111111111111111"
	const clientSpan = "2222222222222222"
	body := fmt.Sprintf(`{"kind": "simulate", "request": {"spec": %s, "duration": 0.002, "seed": 3}}`, sampleSpec)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+clientTrace+"-"+clientSpan+"-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); !hex16.MatchString(got) {
		t.Fatalf("X-Request-Id %q on job submit", got)
	}
	pollJob(t, ts.Client(), ts.URL, v.ID)

	var attempt, sim int
	var attemptSpan string
	for _, sp := range tracer.Spans() {
		if sp.TraceID != clientTrace {
			continue
		}
		switch sp.Cat {
		case "job":
			attempt++
			attemptSpan = sp.SpanID
		case obs.CatVertex:
			sim++
		}
	}
	if attempt != 1 || sim == 0 {
		t.Fatalf("%d attempt spans, %d sim vertex spans in the client's trace; want 1 and >0", attempt, sim)
	}
	for _, sp := range tracer.Spans() {
		if sp.TraceID == clientTrace && sp.Cat == obs.CatVertex && sp.ParentID != attemptSpan {
			t.Fatalf("sim span parent %q, want the attempt span %q", sp.ParentID, attemptSpan)
		}
	}
}

// Without a traceparent the server mints a root trace and still stamps
// X-Request-Id.
func TestRequestIDMintedWithoutTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	if got := resp.Header.Get("X-Request-Id"); !hex16.MatchString(got) {
		t.Fatalf("X-Request-Id %q, want 16 hex digits", got)
	}
}

// A malformed traceparent is ignored, not propagated.
func TestMalformedTraceparentIgnored(t *testing.T) {
	tracer := obs.NewTracer(64)
	_, ts := newTestServer(t, Config{Tracer: tracer, CacheEntries: -1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(estimateBody(sampleSpec)))
	req.Header.Set("traceparent", "00-zzzz-1234-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	spans := tracer.Spans()
	if len(spans) != 1 || spans[0].ParentID != "" || len(spans[0].TraceID) != 32 {
		t.Fatalf("spans after malformed traceparent: %+v, want one fresh root", spans)
	}
}

// GET /v1/trace exports the ring as a loadable Chrome trace with the W3C
// identity in args; without a tracer the route 404s.
func TestTraceEndpoint(t *testing.T) {
	_, bare := newTestServer(t, Config{})
	resp, _ := get(t, bare.Client(), bare.URL+"/v1/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without tracer: %d, want 404", resp.StatusCode)
	}

	tracer := obs.NewTracer(64)
	_, ts := newTestServer(t, Config{Tracer: tracer, CacheEntries: -1})
	post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	resp, body := get(t, ts.Client(), ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "estimate" {
			found = true
			id, _ := ev.Args["trace_id"].(string)
			if len(id) != 32 {
				t.Fatalf("request event args %+v, want a 32-hex trace_id", ev.Args)
			}
		}
	}
	if !found {
		t.Fatalf("no request span in the export: %+v", doc.TraceEvents)
	}
}

// GET /v1/slo reports the multi-window burn-rate judgement, counting
// completed requests (5xx as errors) while excluding shed load.
func TestSLOEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SLOLatencyThreshold: time.Minute, // nothing here is "slow"
	})
	for i := 0; i < 3; i++ {
		post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	}
	post(t, ts.Client(), ts.URL+"/v1/estimate", `{"spec": nope`) // 400: counted, not an error

	resp, body := get(t, ts.Client(), ts.URL+"/v1/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slo: %d %s", resp.StatusCode, body)
	}
	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.AvailabilityTarget != 0.999 || st.LatencyTarget != 0.99 {
		t.Fatalf("targets %+v, want the 0.999/0.99 defaults", st)
	}
	if len(st.Windows) != 2 || st.Windows[0].Window != "5m" || st.Windows[1].Window != "1h" {
		t.Fatalf("windows %+v, want 5m and 1h", st.Windows)
	}
	w := st.Windows[0]
	if w.Total != 4 || w.Errors != 0 || w.Availability != 1 {
		t.Fatalf("5m window %+v, want 4 requests, 0 errors", w)
	}
	if st.Verdict != "ok" {
		t.Fatalf("verdict %q on a healthy run", st.Verdict)
	}
	if s.sloTotal.Load() != 4 {
		t.Fatalf("sloTotal = %d, want 4", s.sloTotal.Load())
	}
}

// Shed load (429) must not burn availability budget: rejecting work
// under backpressure is the contract, not a failure.
func TestSLOExcludesShedLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered <- struct{}{}
		<-release
	}
	results := make(chan int, 3)
	do := func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(estimateBody(sampleSpec)))
		if err != nil {
			results <- -1
			return
		}
		resp.Body.Close()
		results <- resp.StatusCode
	}
	go do()
	<-entered
	go do()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	go do()
	if code := <-results; code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d, want 429", code)
	}
	close(release)
	<-results
	<-results
	if total := s.sloTotal.Load(); total != 2 {
		t.Fatalf("sloTotal = %d, want 2 (the 429 is excluded)", total)
	}
	if errs := s.sloErrors.Load(); errs != 0 {
		t.Fatalf("sloErrors = %d, want 0", errs)
	}
}

// /healthz reports the build identity alongside liveness.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status    string `json:"status"`
		GoVersion string `json:"go_version"`
		Version   string `json:"version"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.GoVersion == "" || h.Version == "" {
		t.Fatalf("healthz body %s, want status/version/go_version", body)
	}
	_, goVersion, _ := obs.BuildInfo()
	if h.GoVersion != goVersion {
		t.Fatalf("go_version %q, want %q", h.GoVersion, goVersion)
	}
}

// The metrics export includes the build-info gauge and the SLO gauges.
func TestSLOAndBuildInfoMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Registry: reg})
	post(t, ts.Client(), ts.URL+"/v1/estimate", estimateBody(sampleSpec))
	s.slo.Poll()
	_, body := get(t, ts.Client(), ts.URL+"/metrics")
	for _, want := range []string{
		"lognic_build_info{",
		`lognic_slo_burn_rate{objective="availability",window="5m"}`,
		`lognic_slo_compliance{objective="latency",window="1h"}`,
		"lognic_slo_verdict ",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
