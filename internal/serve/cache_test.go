package serve

import (
	"fmt"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction candidate.
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for k, want := range map[string]string{"a": "A", "c": "C"} {
		if v, ok := c.Get(k); !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRU(4)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("Get(k) = %q, want v2", v)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					panic("corrupted entry")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}
