package serve

import (
	"fmt"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction candidate.
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for k, want := range map[string]string{"a": "A", "c": "C"} {
		if v, ok := c.Get(k); !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRU(4, 0)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("Get(k) = %q, want v2", v)
	}
}

// The byte budget must evict in LRU order, independent of the entry cap.
// Accounted bytes are key + body per entry.
func TestLRUByteBudgetEvicts(t *testing.T) {
	c := newLRU(1000, 100)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 30)) // 4×(2+30) = 128 > 100
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 (least recently used) should have been evicted by the byte budget")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d should have survived", i)
		}
	}
	if got := c.Bytes(); got != 96 {
		t.Fatalf("Bytes = %d, want 96", got)
	}

	// Touch k1 so k2 is now oldest; a 23-byte insert must evict exactly k2
	// (96+23=119 → evict k2's 32 → 87).
	c.Get("k1")
	c.Put("big", make([]byte, 20))
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted")
	}
	if got := c.Bytes(); got != 87 {
		t.Fatalf("Bytes = %d, want 87", got)
	}
}

// Replacing an entry's body must re-account its bytes, both shrinking and
// growing — the original count-only cache silently leaked this delta.
func TestLRUReplaceAccounting(t *testing.T) {
	c := newLRU(10, 1000)
	c.Put("a", make([]byte, 100)) // 1-byte keys: entry = key + body
	c.Put("b", make([]byte, 200))
	if got := c.Bytes(); got != 302 {
		t.Fatalf("Bytes = %d, want 302", got)
	}
	c.Put("a", make([]byte, 500)) // grow 100 → 500
	if got := c.Bytes(); got != 702 {
		t.Fatalf("Bytes after grow = %d, want 702", got)
	}
	c.Put("b", make([]byte, 50)) // shrink 200 → 50
	if got := c.Bytes(); got != 552 {
		t.Fatalf("Bytes after shrink = %d, want 552", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// A replacement that grows past the budget must evict the other entry,
	// not the one being replaced.
	c.Put("a", make([]byte, 990))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted by a's growth")
	}
	if got := c.Bytes(); got != 991 {
		t.Fatalf("Bytes = %d, want 991", got)
	}
}

// A single body larger than the whole byte budget must be rejected, not
// cached (it would evict everything for an entry that can't amortize),
// and an oversized replacement must also drop the stale entry.
func TestLRUOversizedRejected(t *testing.T) {
	c := newLRU(10, 100)
	if c.Put("huge", make([]byte, 101)) {
		t.Fatal("oversized Put should report not-stored")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("cache should be empty, got Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	if !c.Put("k", make([]byte, 60)) {
		t.Fatal("in-budget Put should store")
	}
	if c.Put("k", make([]byte, 200)) {
		t.Fatal("oversized replacement should report not-stored")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale entry must not survive an oversized replacement")
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", c.Bytes())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(64, 1<<20)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					panic("corrupted entry")
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}

// The L1 exact-body index must serve byte-identical repeats without
// parsing, while a semantically equal but textually different request
// still hits through the canonical tier — and both replay the same bytes.
func TestL1FastPathAndCanonicalFallthrough(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	bodyA := estimateBody(sampleSpec)
	respA, coldBody := post(t, ts.Client(), ts.URL+"/v1/estimate", bodyA)
	if respA.StatusCode != 200 || respA.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold request: status %d cache %q", respA.StatusCode, respA.Header.Get("X-Cache"))
	}

	l1Before := s.l1Hits.Value()
	resp, body := post(t, ts.Client(), ts.URL+"/v1/estimate", bodyA)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("byte-identical repeat should hit")
	}
	if s.l1Hits.Value() != l1Before+1 {
		t.Fatalf("exact repeat should hit the L1 index: %v -> %v", l1Before, s.l1Hits.Value())
	}
	if string(body) != string(coldBody) {
		t.Fatal("L1 hit bytes differ from cold response")
	}

	// Same spec, different whitespace: misses the L1, hits the canonical
	// tier, and that hit back-fills the L1 for the new byte shape.
	bodyB := `{ "spec":   ` + sampleSpec + ` }`
	resp, body = post(t, ts.Client(), ts.URL+"/v1/estimate", bodyB)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("semantically equal request should hit the canonical tier")
	}
	if s.l1Hits.Value() != l1Before+1 {
		t.Fatal("reshaped body must not be an L1 hit on first sight")
	}
	if string(body) != string(coldBody) {
		t.Fatal("canonical hit bytes differ from cold response")
	}
	resp, _ = post(t, ts.Client(), ts.URL+"/v1/estimate", bodyB)
	if resp.Header.Get("X-Cache") != "hit" || s.l1Hits.Value() != l1Before+2 {
		t.Fatalf("repeat of the reshaped body should now hit the L1 (hits=%v)", s.l1Hits.Value())
	}
}
