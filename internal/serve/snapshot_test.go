package serve

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// snapshotOf GETs a server's cache snapshot stream.
func snapshotOf(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// A replica warm-started from a peer's snapshot must serve its first
// request for a warmed spec as a cache hit, byte-identical to the peer's
// cold evaluation — for every endpoint, via both a file and a URL source.
func TestWarmStartByteIdentical(t *testing.T) {
	_, donor := newTestServer(t, Config{})
	reqs := []struct{ path, body string }{
		{"/v1/estimate", estimateBody(sampleSpec)},
		{"/v1/optimize", `{"spec": ` + sampleSpec + `, "goal": "latency", "knobs": [{"vertex":"cores","param":"parallelism","lo":1,"hi":4}]}`},
		{"/v1/simulate", `{"spec": ` + sampleSpec + `, "duration": 0.002, "seed": 3}`},
	}
	cold := make([][]byte, len(reqs))
	for i, rq := range reqs {
		resp, body := post(t, donor.Client(), donor.URL+rq.path, rq.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: cold status %d: %s", rq.path, resp.StatusCode, body)
		}
		cold[i] = body
	}

	raw := snapshotOf(t, donor.URL)
	snapPath := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, src := range []struct{ name, src string }{
		{"from file", snapPath},
		{"from peer URL", donor.URL + "/v1/cache/snapshot"},
	} {
		t.Run(src.name, func(t *testing.T) {
			fresh, ts := newTestServer(t, Config{})
			n, nbytes, err := fresh.WarmCache(src.src)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(reqs) || nbytes <= 0 {
				t.Fatalf("warmed %d entries / %d bytes, want %d entries", n, nbytes, len(reqs))
			}
			if fresh.cache.Bytes() != nbytes {
				t.Fatalf("cache accounts %d bytes, WarmCache reported %d", fresh.cache.Bytes(), nbytes)
			}
			for i, rq := range reqs {
				resp, body := post(t, ts.Client(), ts.URL+rq.path, rq.body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: warm status %d", rq.path, resp.StatusCode)
				}
				if resp.Header.Get("X-Cache") != "hit" {
					t.Fatalf("%s: first warmed request should be a cache hit", rq.path)
				}
				if !bytes.Equal(body, cold[i]) {
					t.Fatalf("%s: warm-started hit differs from donor's cold evaluation:\n%s\n%s",
						rq.path, body, cold[i])
				}
			}
		})
	}
}

// A truncated snapshot (torn download, donor crash mid-stream) must warm
// the intact prefix and lose only the tail — never error, never admit a
// corrupt body.
func TestWarmStartTornTail(t *testing.T) {
	_, donor := newTestServer(t, Config{})
	for seed := int64(1); seed <= 3; seed++ {
		body := `{"spec": ` + sampleSpec + `, "duration": 0.002, "seed": ` + string(rune('0'+seed)) + `}`
		if resp, out := post(t, donor.Client(), donor.URL+"/v1/simulate", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("cold status %d: %s", resp.StatusCode, out)
		}
	}
	raw := snapshotOf(t, donor.URL)
	torn := raw[:len(raw)-7] // tear inside the last frame's body

	snapPath := filepath.Join(t.TempDir(), "torn.snap")
	if err := os.WriteFile(snapPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, _ := newTestServer(t, Config{})
	n, _, err := fresh.WarmCache(snapPath)
	if err != nil {
		t.Fatalf("torn tail must not fail the warm-start: %v", err)
	}
	if n != 2 {
		t.Fatalf("warmed %d entries from torn snapshot, want the 2 intact ones", n)
	}
}

// Entries over the warming replica's byte budget are skipped, not errors;
// a non-snapshot stream is rejected loudly.
func TestWarmStartBudgetAndBadMagic(t *testing.T) {
	_, donor := newTestServer(t, Config{})
	post(t, donor.Client(), donor.URL+"/v1/estimate", estimateBody(sampleSpec))
	raw := snapshotOf(t, donor.URL)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "cache.snap")
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	tiny := NewServer(Config{CacheBytes: 8}) // every real body is bigger
	t.Cleanup(tiny.Close)
	if n, _, err := tiny.WarmCache(snapPath); err != nil || n != 0 {
		t.Fatalf("over-budget entries should be skipped: n=%d err=%v", n, err)
	}

	badPath := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(badPath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewServer(Config{})
	t.Cleanup(fresh.Close)
	if _, _, err := fresh.WarmCache(badPath); err == nil {
		t.Fatal("bad magic must be rejected")
	}
}

// The snapshot endpoint on a cache-disabled server answers 404.
func TestSnapshotCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	resp, err := http.Get(ts.URL + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
