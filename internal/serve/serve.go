// Package serve implements lognic-serve, the model-evaluation daemon: an
// HTTP/JSON front end over the analytical estimator (POST /v1/estimate),
// the knob optimizer (POST /v1/optimize) and the discrete-event simulator
// (POST /v1/simulate). Requests carry the same JSON spec documents the
// CLIs load from disk.
//
// The daemon is built for repeated evaluation of overlapping
// configurations — a sweep driver or CI gate hammering variations of one
// model — so it puts three mechanisms in front of the evaluators:
//
//   - A canonical-hash result cache. Each decoded request re-marshals to a
//     canonical byte form (units normalized, field order fixed) and its
//     SHA-256 keys an LRU of serialized response bodies; a hit replays the
//     stored bytes verbatim, guaranteeing byte-identical responses for
//     equivalent requests. Simulation results are cacheable because equal
//     seeds give equal runs.
//   - A bounded worker pool with queue-depth backpressure. At most Workers
//     evaluations run concurrently; up to QueueDepth more wait. Beyond
//     that the daemon sheds load with HTTP 429 + Retry-After instead of
//     collapsing under unbounded concurrency.
//   - Per-request timeouts and graceful drain: every evaluation runs under
//     a context with RequestTimeout, and SIGTERM/SIGINT stops accepting
//     new connections while in-flight requests finish (up to
//     DrainTimeout).
//
// For work that outlives a request timeout — long simulations above all —
// the daemon also exposes a crash-safe async job API (jobs.go,
// internal/jobs): POST /v1/jobs submits a spec for background evaluation,
// GET /v1/jobs/{id} polls it, DELETE cancels it. Accepted jobs survive
// kill -9 via an fsynced journal, interrupted simulations resume from
// periodic checkpoints with byte-identical results, failures retry with
// capped backoff, and identical submissions coalesce into one evaluation.
//
// Observability rides on internal/obs: request counts and latency
// histograms per endpoint, cache hit/miss counters and hit-ratio gauges,
// queue-depth gauges and per-request spans, exposed at /metrics (with
// ?format=json) alongside /healthz, /readyz (503 during journal replay
// and shutdown drain) and optional /debug/pprof.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lognic/internal/jobs"
	"lognic/internal/obs"
	"lognic/internal/obs/olog"
	"lognic/internal/obs/slo"
	"lognic/internal/optimizer"
	"lognic/internal/sim"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8080"; ":0" picks a
	// free port).
	Addr string
	// Workers caps concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth caps requests waiting for a worker slot (default
	// 16×Workers). Requests beyond Workers+QueueDepth in flight are
	// rejected with 429.
	QueueDepth int
	// CacheEntries bounds the result cache's entry count (default 1024;
	// negative disables caching).
	CacheEntries int
	// CacheBytes bounds the result cache's total body bytes (default
	// 256 MiB; negative disables the byte bound). The byte budget is the
	// primary limit — entry counts alone let a few multi-MB simulation
	// responses exhaust memory.
	CacheBytes int64
	// CacheWarmFrom, when set, warm-starts the cache from a snapshot at
	// startup: a file path or an http(s) URL of a peer replica's
	// /v1/cache/snapshot endpoint. Warm-start failures are logged, not
	// fatal — a dead peer must not block a fresh replica.
	CacheWarmFrom string
	// TenantWeights, when non-empty, enables multi-tenant fairness: each
	// entry maps a tenant name to its relative weight, and requests
	// carrying that name in X-Lognic-Tenant are held to weighted shares of
	// Workers, QueueDepth and CacheBytes (see tenant.go). A "default"
	// tenant (weight 1 unless listed) is always added and absorbs requests
	// with no or an unrecognized tenant header. Names must satisfy
	// validTenantName; parseTenantWeights enforces it for flag input and
	// withDefaults drops invalid entries from programmatic configs. Empty
	// disables tenancy entirely — the single-pool behavior is unchanged.
	TenantWeights map[string]float64
	// TenantCacheSpill is the fraction of CacheBytes set aside as a shared
	// spillover pool for entries larger than their tenant's cache
	// partition (0 disables; clamped to 0.9). Only meaningful with
	// TenantWeights.
	TenantCacheSpill float64
	// RequestTimeout bounds each evaluation (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 30s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxSimEvents is the default event budget for /v1/simulate requests
	// that don't set max_events (default 50e6); it converts a pathological
	// spec into HTTP 422 instead of a pinned worker.
	MaxSimEvents uint64
	// Registry receives request metrics and serves /metrics (default: a
	// fresh registry).
	Registry *obs.Registry
	// Tracer, when set, receives one span per request plus the job and
	// simulation spans nested under it; the merged tree is exported at
	// GET /v1/trace in Chrome trace_event form.
	Tracer *obs.Tracer
	// TraceSpans, when > 0 and Tracer is nil, builds a Tracer with that
	// ring capacity (the -trace-spans flag).
	TraceSpans int
	// Logger receives the daemon's structured log records (default:
	// discard). Request- and job-scoped records carry request_id,
	// trace_id, endpoint and job_id attributes.
	Logger *slog.Logger
	// Pprof mounts /debug/pprof when true.
	Pprof bool

	// SLOAvailability is the fraction of admitted requests that must not
	// fail with a 5xx (default 0.999; negative disables the objective).
	SLOAvailability float64
	// SLOLatency is the fraction of successful requests that must finish
	// under SLOLatencyThreshold (default 0.99; negative disables).
	SLOLatency float64
	// SLOLatencyThreshold is the latency objective's cutoff (default 1s).
	SLOLatencyThreshold time.Duration

	// JobsDir is the async-job durability directory (journal +
	// checkpoints). Empty runs the job API memory-only: jobs work but do
	// not survive a restart.
	JobsDir string
	// JobsWorkers caps concurrent async evaluations (default 2).
	JobsWorkers int
	// JobMaxAttempts is the per-job attempt budget (default 3).
	JobMaxAttempts int
	// JobBackoff and JobBackoffMax shape the retry delay: attempt k waits
	// min(JobBackoff·2^(k-1), JobBackoffMax), jittered (defaults 200ms/10s).
	JobBackoff    time.Duration
	JobBackoffMax time.Duration
	// JobCheckpointEvery is the simulation checkpoint cadence in processed
	// events for async jobs (0 selects the default 1e6).
	JobCheckpointEvery uint64
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSimEvents == 0 {
		c.MaxSimEvents = 50e6
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Tracer == nil && c.TraceSpans > 0 {
		c.Tracer = obs.NewTracer(c.TraceSpans)
	}
	if c.Logger == nil {
		c.Logger = olog.Discard()
	}
	if c.SLOAvailability == 0 {
		c.SLOAvailability = 0.999
	} else if c.SLOAvailability < 0 {
		c.SLOAvailability = 0
	}
	if c.SLOLatency == 0 {
		c.SLOLatency = 0.99
	} else if c.SLOLatency < 0 {
		c.SLOLatency = 0
	}
	if c.SLOLatencyThreshold <= 0 {
		c.SLOLatencyThreshold = time.Second
	}
	if c.JobsWorkers <= 0 {
		c.JobsWorkers = 2
	}
	if c.JobCheckpointEvery == 0 {
		c.JobCheckpointEvery = 1_000_000
	}
	if len(c.TenantWeights) > 0 {
		tw := make(map[string]float64, len(c.TenantWeights)+1)
		for name, wt := range c.TenantWeights {
			if wt > 0 && validTenantName(name) == nil {
				tw[name] = wt
			}
		}
		if _, ok := tw[defaultTenant]; !ok {
			tw[defaultTenant] = 1
		}
		c.TenantWeights = tw
		// Every tenant is guaranteed one worker and one queue slot, so the
		// pools must be at least tenant-sized.
		if c.Workers < len(tw) {
			c.Workers = len(tw)
		}
		if c.QueueDepth < len(tw) {
			c.QueueDepth = len(tw)
		}
		if c.TenantCacheSpill < 0 {
			c.TenantCacheSpill = 0
		} else if c.TenantCacheSpill > 0.9 {
			c.TenantCacheSpill = 0.9
		}
	} else {
		c.TenantWeights = nil
		c.TenantCacheSpill = 0
	}
	return c
}

// Server is one daemon instance.
type Server struct {
	cfg   Config
	cache *lruCache
	// l1 maps exact request bytes (endpoint NUL body) to the canonical
	// cache key, short-circuiting the hit path: a repeated identical
	// request skips JSON decode, spec validation and canonical hashing
	// entirely. It is an index over cache, not a second copy of the
	// responses — a canonical entry evicted from cache falls through to
	// the full prepare path regardless of what l1 remembers.
	l1 *lruCache
	// cacheOn records whether caching is configured at all — with tenancy
	// enabled the canonical tier lives in per-tenant partitions and both
	// cache and l1 above stay nil.
	cacheOn bool
	// tenants maps configured tenant names to their state (empty when
	// tenancy is disabled); tenantNames is the sorted key list, the stable
	// iteration order for snapshots and /v1/slo. spill is the shared
	// spillover pool for entries larger than their tenant's partition
	// (nil unless TenantCacheSpill > 0).
	tenants      map[string]*tenant
	tenantNames  []string
	spill        *lruCache
	spillBytes   *obs.Gauge
	spillEntries *obs.Gauge
	// sem holds one token per running evaluation; queued counts requests
	// waiting for a token. queued > QueueDepth ⇒ shed load. With tenancy
	// enabled admission runs on the per-tenant semaphores instead and sem
	// sits idle; queued still tracks the global backlog.
	sem    chan struct{}
	queued atomic.Int64
	ln     net.Listener
	start  time.Time
	reqID  atomic.Uint64

	// svcMean is an EWMA of recent evaluation wall times (float64 bits),
	// feeding the Retry-After estimate: a shed request should come back
	// roughly when the queue ahead of it has drained.
	svcMean atomic.Uint64
	// drainStart is the drain's start time in unix nanos (0 before it),
	// so Retry-After during the drain reports the time actually left.
	drainStart atomic.Int64

	// jobs is the async job subsystem; jobsReady flips once its journal
	// replay finished, draining once shutdown began. /readyz and the
	// /v1/jobs endpoints key off both.
	jobs      *jobs.Manager
	jobsReady atomic.Bool
	draining  atomic.Bool

	logger *slog.Logger

	// slo grades the request stream against the configured objectives;
	// the counters feed its Source and count admitted requests only —
	// load-shed 429s never consume error budget.
	slo       *slo.Monitor
	sloTotal  atomic.Uint64
	sloErrors atomic.Uint64
	sloSlow   atomic.Uint64
	// sloPolled rate-limits on-demand polls from /v1/slo (unix nanos of
	// the last forced sample).
	sloPolled atomic.Int64

	closeOnce sync.Once

	latency    map[string]*obs.Histogram
	hits       *obs.Counter
	l1Hits     *obs.Counter
	misses     *obs.Counter
	rejected   *obs.Counter
	entries    *obs.Gauge
	cacheBytes *obs.Gauge
	hitRatio   *obs.Gauge
	inflight   *obs.Gauge
	queueLen   *obs.Gauge

	// testDelay, when set by tests, runs inside the worker slot before the
	// evaluation — a deterministic way to hold requests in flight for
	// backpressure and drain tests.
	testDelay func(endpoint string)
}

// endpoints, in route order.
var endpoints = []string{"estimate", "optimize", "simulate"}

// NewServer builds a daemon from the config (it does not listen yet).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		start: time.Now(),
	}
	s.cacheOn = cfg.CacheEntries > 0
	if s.cacheOn && len(cfg.TenantWeights) == 0 {
		s.cache = newLRU(cfg.CacheEntries, cfg.CacheBytes)
		// The L1 keys on whole request bodies, so it gets a quarter of the
		// byte budget — enough to index every hot entry without competing
		// with the responses themselves for memory.
		l1Bytes := cfg.CacheBytes / 4
		if cfg.CacheBytes <= 0 {
			l1Bytes = 0
		}
		s.l1 = newLRU(cfg.CacheEntries, l1Bytes)
	}
	s.logger = cfg.Logger
	reg := cfg.Registry
	obs.RegisterBuildInfo(reg)
	s.latency = make(map[string]*obs.Histogram, len(endpoints))
	for _, ep := range endpoints {
		s.latency[ep] = reg.Histogram("lognic_serve_request_seconds",
			"request latency by endpoint",
			obs.ExpBuckets(1e-5, 4, 14), obs.Labels{"endpoint": ep})
	}
	s.hits = reg.Counter("lognic_serve_cache_hits_total", "result cache hits", nil)
	s.l1Hits = reg.Counter("lognic_serve_cache_l1_hits_total", "hits served from the exact-body L1 index, skipping request parsing", nil)
	s.misses = reg.Counter("lognic_serve_cache_misses_total", "result cache misses", nil)
	s.rejected = reg.Counter("lognic_serve_rejected_total", "requests shed with 429", nil)
	s.entries = reg.Gauge("lognic_serve_cache_entries", "result cache occupancy", nil)
	s.cacheBytes = reg.Gauge("lognic_serve_cache_bytes", "result cache body bytes", nil)
	s.hitRatio = reg.Gauge("lognic_serve_cache_hit_ratio", "hits / (hits+misses)", nil)
	s.inflight = reg.Gauge("lognic_serve_inflight", "evaluations running", nil)
	s.queueLen = reg.Gauge("lognic_serve_queue_depth", "requests waiting for a worker", nil)
	s.initTenants()

	// The SLO monitor samples the request counters on its own cadence;
	// /v1/slo serves its judgement.
	s.slo = slo.NewMonitor(slo.Config{
		AvailabilityTarget: cfg.SLOAvailability,
		LatencyTarget:      cfg.SLOLatency,
		LatencyThreshold:   cfg.SLOLatencyThreshold,
		Source: func() slo.Sample {
			return slo.Sample{
				Total:  s.sloTotal.Load(),
				Errors: s.sloErrors.Load(),
				Slow:   s.sloSlow.Load(),
			}
		},
		Registry: reg,
	})
	s.slo.Start()

	// The async job manager. NewManager only errors on a nil evaluator,
	// which we always supply. It shares the request tracer and the
	// request-span clock, so job and simulation spans land on the same
	// timeline as the requests that submitted them.
	s.jobs, _ = jobs.NewManager(jobs.Config{
		Dir:         cfg.JobsDir,
		Workers:     cfg.JobsWorkers,
		MaxAttempts: cfg.JobMaxAttempts,
		BackoffBase: cfg.JobBackoff,
		BackoffMax:  cfg.JobBackoffMax,
		Evaluate:    s.evalJob,
		Registry:    reg,
		Logger:      cfg.Logger,
		Tracer:      cfg.Tracer,
		SpanTime:    func() float64 { return time.Since(s.start).Seconds() },
	})
	// Journal replay happens off the constructor so a large journal never
	// delays binding the listener; /readyz and the job endpoints report
	// 503 until it completes.
	go func() {
		if err := s.jobs.Start(); err != nil {
			s.logger.Error("job manager start failed", olog.KeyComponent, "serve", "error", err.Error())
			return
		}
		s.jobsReady.Store(true)
	}()
	return s
}

// Close releases the server's background resources — the job manager's
// workers, retry timers and journal, and the SLO monitor's poll loop.
// Running job attempts are interrupted and stay queued, exactly as a
// crash would leave them, so a successor over the same JobsDir resumes
// them.
func (s *Server) Close() {
	s.jobs.Close()
	s.closeOnce.Do(func() {
		s.slo.Close()
		for _, t := range s.tenants {
			t.slo.Close()
		}
	})
}

// Handler returns the daemon's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handle("estimate", s.prepareEstimate))
	mux.HandleFunc("POST /v1/optimize", s.handle("optimize", s.prepareOptimize))
	mux.HandleFunc("POST /v1/simulate", s.handle("simulate", s.prepareSimulate))
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/cache/snapshot", s.handleCacheSnapshot)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.Handle("/metrics", s.cfg.Registry)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		version, goVersion, revision := obs.BuildInfo()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.start).Seconds(),
			"version":        version,
			"go_version":     goVersion,
			"revision":       revision,
		})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// readBody drains a request body under the size cap.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("serve: reading body: %w", err)
	}
	return body, nil
}

// bodyStatus maps a body-read failure to its status: 413 for an
// over-limit body, 400 for anything else.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps an evaluation error to an HTTP status.
func statusFor(err error) int {
	var br badRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, optimizer.ErrNoFeasible),
		errors.Is(err, sim.ErrBudgetExceeded),
		errors.Is(err, sim.ErrStalled):
		// The request was well-formed but the model rejected it: no
		// feasible configuration, or a simulation that blew its budget.
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handle wraps one endpoint's prepare function with the shared request
// path: body limit → decode/validate → cache probe → admission control →
// evaluate under timeout → serialize, cache, reply.
func (s *Server) handle(endpoint string, prepare func([]byte) (prepared, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		timer := s.latency[endpoint].StartTimer()
		code := http.StatusOK

		// Accept the client's W3C trace context or mint a fresh one; the
		// server span is a child of the client's span, and its span id is
		// echoed as X-Request-Id so client logs and server logs correlate.
		tc, parentSpan := s.requestTrace(r)
		w.Header().Set("X-Request-Id", tc.SpanID)
		// Tenant resolution: logs carry the claimed name verbatim, metrics
		// and admission use the resolved bucket (bounded cardinality).
		claimed := claimedTenant(r)
		ten := s.tenantFor(claimed)
		logTenant := claimed
		if logTenant == "" && ten != nil {
			logTenant = ten.name
		}
		rl := olog.WithRequest(s.logger, tc.SpanID, tc.TraceID, endpoint, logTenant)
		ctx0 := olog.NewContext(obs.ContextWithTrace(r.Context(), tc), rl)
		r = r.WithContext(ctx0)

		defer func() {
			d := timer.ObserveDuration()
			labels := obs.Labels{"endpoint": endpoint, "code": fmt.Sprint(code)}
			if ten != nil {
				labels["tenant"] = ten.name
			}
			s.cfg.Registry.Counter("lognic_serve_requests_total", "requests by endpoint and status",
				labels).Inc()
			// SLO accounting: 429s are load shedding, not budget burn;
			// 5xx burns availability; slow successes burn latency.
			if code != http.StatusTooManyRequests {
				s.sloTotal.Add(1)
				if ten != nil {
					ten.sloTotal.Add(1)
				}
				switch {
				case code >= 500:
					s.sloErrors.Add(1)
					if ten != nil {
						ten.sloErrors.Add(1)
					}
				case code < 400 && d > s.cfg.SLOLatencyThreshold:
					s.sloSlow.Add(1)
					if ten != nil {
						ten.sloSlow.Add(1)
					}
				}
			}
			lvl := slog.LevelDebug
			if code >= 500 {
				lvl = slog.LevelWarn
			}
			rl.Log(r.Context(), lvl, "request complete", "code", code, "duration_seconds", d.Seconds())
		}()
		if s.cfg.Tracer != nil {
			startAt := time.Since(s.start).Seconds()
			id := s.reqID.Add(1)
			defer func() {
				args := map[string]any{"code": code}
				if ten != nil {
					args["tenant"] = ten.name
				}
				s.cfg.Tracer.Emit(obs.Span{
					Name:     endpoint,
					Cat:      "request",
					Track:    id,
					Start:    startAt,
					Dur:      time.Since(s.start).Seconds() - startAt,
					Args:     args,
					TraceID:  tc.TraceID,
					SpanID:   tc.SpanID,
					ParentID: parentSpan,
				})
			}()
		}

		body, err := readBody(w, r, s.cfg.MaxBodyBytes)
		if err != nil {
			code = bodyStatus(err)
			writeError(w, code, err)
			return
		}

		// L1 probe: a byte-identical repeat of a cached request is served
		// before the body is even parsed. Safe because the L1 only ever
		// redirects into the canonical cache — a stale index entry just
		// misses and falls through to the full path.
		var l1key string
		if l1 := s.l1For(ten); l1 != nil {
			l1key = endpoint + "\x00" + string(body)
			if ck, ok := l1.Get(l1key); ok {
				if cached, ok := s.cacheGet(ten, string(ck)); ok {
					s.countHit(ten, true)
					w.Header().Set("Content-Type", "application/json")
					w.Header().Set("X-Cache", "hit")
					_, _ = w.Write(cached)
					return
				}
				// The canonical tier evicted this key, so the index entry is
				// dead weight: its key is a whole request body, it pins real
				// memory in the L1 byte budget, and it can only ever re-miss.
				// Prune it now; the full path re-creates it if the response
				// is cached again.
				l1.Delete(l1key)
			}
		}

		p, err := prepare(body)
		if err != nil {
			code = statusFor(err)
			writeError(w, code, err)
			return
		}

		// Cache probe. Hits bypass the worker pool entirely: replaying
		// cached bytes is cheap and must stay available under saturation.
		if cached, ok := s.cacheGet(ten, p.key); ok {
			s.countHit(ten, false)
			s.l1For(ten).Put(l1key, []byte(p.key))
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", "hit")
			_, _ = w.Write(cached)
			return
		}

		// Admission: bound the number of requests waiting for a worker.
		// With tenancy enabled the request is first held to its tenant's
		// reserved share of the queue, so a saturating tenant sheds against
		// its own budget while other tenants keep admitting.
		if ten != nil {
			if tq := ten.queued.Add(1); tq > int64(ten.queueShare) {
				ten.queued.Add(-1)
				ten.queueLen.Set(float64(ten.queued.Load()))
				ten.rejected.Inc()
				s.rejected.Inc()
				code = http.StatusTooManyRequests
				w.Header().Set("Retry-After", retryAfterValue(s.tenantDrainEstimate(ten)))
				writeError(w, code, fmt.Errorf("serve: %s queue full for tenant %q (%d waiting)", endpoint, ten.name, tq-1))
				return
			}
			ten.queueLen.Set(float64(ten.queued.Load()))
		}
		if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			// Refresh the gauge on the shed path too: under sustained
			// saturation every request takes this branch, and without the
			// refresh the gauge freezes at whatever the last admitted
			// request set it to.
			s.queueLen.Set(float64(s.queued.Load()))
			if ten != nil {
				ten.queued.Add(-1)
				ten.queueLen.Set(float64(ten.queued.Load()))
				ten.rejected.Inc()
			}
			s.rejected.Inc()
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfterValue(s.queueDrainEstimate()))
			writeError(w, code, fmt.Errorf("serve: %s queue full (%d waiting)", endpoint, q-1))
			return
		}
		s.queueLen.Set(float64(s.queued.Load()))

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// With tenancy the evaluation slot comes from the tenant's reserved
		// semaphore — a heavy tenant can exhaust its own slots but never
		// occupies another tenant's.
		sem := s.sem
		if ten != nil {
			sem = ten.sem
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			s.queued.Add(-1)
			s.queueLen.Set(float64(s.queued.Load()))
			if ten != nil {
				ten.queued.Add(-1)
				ten.queueLen.Set(float64(ten.queued.Load()))
			}
			code = statusFor(ctx.Err())
			writeError(w, code, fmt.Errorf("serve: timed out waiting for a worker: %w", ctx.Err()))
			return
		}
		s.queued.Add(-1)
		s.queueLen.Set(float64(s.queued.Load()))
		if ten != nil {
			ten.queued.Add(-1)
			ten.queueLen.Set(float64(ten.queued.Load()))
			ten.inflight.Add(1)
		}
		s.inflight.Add(1)
		result, err := func() (any, error) {
			defer func() {
				<-sem
				s.inflight.Add(-1)
				if ten != nil {
					ten.inflight.Add(-1)
				}
			}()
			if s.testDelay != nil {
				s.testDelay(endpoint)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			evalStart := time.Now()
			res, err := p.run(ctx)
			s.observeServiceTime(time.Since(evalStart))
			return res, err
		}()
		if err != nil {
			code = statusFor(err)
			writeError(w, code, err)
			return
		}

		out, err := json.Marshal(result)
		if err != nil {
			code = http.StatusInternalServerError
			writeError(w, code, err)
			return
		}
		out = append(out, '\n')
		// Miss accounting only applies when a cache exists to miss: a
		// server started with caching disabled must report no cache
		// traffic (and no 0.0 hit ratio for a cache that isn't there).
		if s.cacheOn {
			s.misses.Inc()
			if ten != nil {
				ten.misses.Inc()
			}
			s.cachePut(ten, p.key, out)
			s.l1For(ten).Put(l1key, []byte(p.key))
			s.updateCacheGauges()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		_, _ = w.Write(out)
	}
}

func (s *Server) updateCacheGauges() {
	switch {
	case len(s.tenants) > 0 && s.cacheOn:
		// Partition gauges per tenant; the unlabeled aggregates stay the
		// fleet-wide view (partitions plus spillover) so dashboards built
		// on them keep working when tenancy is switched on.
		var n int
		var b int64
		for _, name := range s.tenantNames {
			t := s.tenants[name]
			tn, tb := t.cache.Len(), t.cache.Bytes()
			t.partEntries.Set(float64(tn))
			t.partBytes.Set(float64(tb))
			n += tn
			b += tb
		}
		if s.spill != nil {
			sn, sb := s.spill.Len(), s.spill.Bytes()
			s.spillEntries.Set(float64(sn))
			s.spillBytes.Set(float64(sb))
			n += sn
			b += sb
		}
		s.entries.Set(float64(n))
		s.cacheBytes.Set(float64(b))
	case s.cache != nil:
		s.entries.Set(float64(s.cache.Len()))
		s.cacheBytes.Set(float64(s.cache.Bytes()))
	}
	h, m := s.hits.Value(), s.misses.Value()
	if h+m > 0 {
		s.hitRatio.Set(h / (h + m))
	}
}

// observeServiceTime folds one evaluation's wall time into the EWMA that
// backs the Retry-After estimate. α=0.2 keeps it "recent": ~5 evaluations
// of history, so a shift in the workload mix reshapes the hint quickly.
func (s *Server) observeServiceTime(d time.Duration) {
	sec := d.Seconds()
	for {
		old := s.svcMean.Load()
		mean := math.Float64frombits(old)
		if mean <= 0 {
			mean = sec
		} else {
			mean = 0.8*mean + 0.2*sec
		}
		if s.svcMean.CompareAndSwap(old, math.Float64bits(mean)) {
			return
		}
	}
}

// queueDrainEstimate predicts how long a shed request should wait before
// retrying: the queue ahead of it divided across the worker pool, at the
// recent mean service time. Before any evaluation completes it assumes a
// cheap one — better to invite an early retry than park clients a minute.
func (s *Server) queueDrainEstimate() time.Duration {
	mean := math.Float64frombits(s.svcMean.Load())
	if mean <= 0 {
		mean = 0.05
	}
	drain := float64(s.queued.Load()) * mean / float64(s.cfg.Workers)
	return time.Duration(drain * float64(time.Second))
}

// retryAfterValue renders a drain estimate as a Retry-After header value:
// whole seconds, rounded up, clamped to [1, 60] — a shed client should
// neither hammer sub-second nor be parked past a minute on a guess.
func retryAfterValue(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// Listen binds the configured address. Call before Serve to learn the
// bound port (Addr) — e.g. with Addr ":0".
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the daemon until the context is canceled or SIGTERM/SIGINT
// arrives, then drains: the listener closes, in-flight requests get up to
// DrainTimeout to finish, and Serve returns nil on a clean drain. Listen
// is called implicitly if it hasn't been.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Slow-client hardening: a peer that trickles its header or parks an
	// idle keep-alive connection must not pin a goroutine forever. Request
	// bodies are separately bounded by MaxBytesReader in the handlers.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(s.ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness first so /readyz steers load balancers away while
	// in-flight requests finish, then stop catching signals so a second
	// SIGTERM kills a stuck drain.
	s.drainStart.Store(time.Now().UnixNano())
	s.draining.Store(true)
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	// Stop the job workers after the HTTP drain: interrupted attempts stay
	// journaled as queued, so a restart resumes them from their last
	// checkpoint — the same contract as a crash, minus the torn tail.
	s.Close()
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}

// Main is the lognic-serve entry point (also reachable as `lognic serve`).
func Main(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet(stderr)
	cfg, err := parseFlags(fs, args)
	if err != nil {
		return 2
	}
	srv := NewServer(cfg)
	lg := srv.logger
	if err := srv.Listen(); err != nil {
		return olog.Fail(lg, "listen failed", olog.KeyComponent, "serve", "error", err.Error())
	}
	if cfg.CacheWarmFrom != "" {
		n, nbytes, err := srv.WarmCache(cfg.CacheWarmFrom)
		if err != nil {
			// Warm-start is an optimization: a dead peer or a stale file
			// must not block a fresh replica from serving cold.
			lg.Warn("cache warm-start failed", olog.KeyComponent, "serve",
				"source", cfg.CacheWarmFrom, "error", err.Error())
		} else {
			fmt.Fprintf(stdout, "lognic-serve: cache warmed with %d entries (%d bytes) from %s\n",
				n, nbytes, cfg.CacheWarmFrom)
		}
	}
	jobsDir := srv.cfg.JobsDir
	if jobsDir == "" {
		jobsDir = "memory-only"
	}
	fmt.Fprintf(stdout, "lognic-serve listening on http://%s (workers %d, queue %d, cache %d entries/%d bytes, jobs %s)\n",
		srv.Addr(), srv.cfg.Workers, srv.cfg.QueueDepth, srv.cfg.CacheEntries, srv.cfg.CacheBytes, jobsDir)
	if err := srv.Serve(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return olog.Fail(lg, "serve failed", olog.KeyComponent, "serve", "error", err.Error())
	}
	fmt.Fprintln(stdout, "lognic-serve drained cleanly")
	return 0
}
