package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lognic/internal/obs"
	"lognic/internal/storm"
)

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights map[string]float64
		want    map[string]int
	}{
		// Exact shares.
		{4, map[string]float64{"default": 1, "heavy": 2, "light": 1},
			map[string]int{"default": 1, "heavy": 2, "light": 1}},
		// 10:1:1 over 12 slots.
		{12, map[string]float64{"default": 1, "heavy": 10, "light": 1},
			map[string]int{"default": 1, "heavy": 10, "light": 1}},
		// Minimum-one pushes the sum past total on tiny pools.
		{2, map[string]float64{"a": 100, "b": 1, "c": 1},
			map[string]int{"a": 1, "b": 1, "c": 1}},
		// Largest remainder: 7 slots at 3:2:2 → exact 3/2/2.
		{7, map[string]float64{"a": 3, "b": 2, "c": 2},
			map[string]int{"a": 3, "b": 2, "c": 2}},
		// 5 slots at 1:1:1 → floor 1 each, remainder 2 by weight-then-name
		// tie break (all equal weight, so a and b).
		{5, map[string]float64{"a": 1, "b": 1, "c": 1},
			map[string]int{"a": 2, "b": 2, "c": 1}},
	}
	for _, tc := range cases {
		names := make([]string, 0, len(tc.weights))
		for n := range tc.weights {
			names = append(names, n)
		}
		got := apportion(tc.total, names, tc.weights)
		for n, want := range tc.want {
			if got[n] != want {
				t.Fatalf("apportion(%d, %v)[%s] = %d, want %d (full: %v)",
					tc.total, tc.weights, n, got[n], want, got)
			}
		}
	}

	// Byte apportionment: spill comes off before this is called, so the
	// helper just splits. Every partition gets at least a byte; a disabled
	// bound (≤0) stays unbounded for everyone.
	names := []string{"a", "b"}
	weights := map[string]float64{"a": 3, "b": 1}
	b := apportionBytes(1000, names, weights)
	if b["a"] != 750 || b["b"] != 250 {
		t.Fatalf("apportionBytes(1000, 3:1) = %v", b)
	}
	b = apportionBytes(-1, names, weights)
	if b["a"] != 0 || b["b"] != 0 {
		t.Fatalf("disabled byte bound must stay unbounded: %v", b)
	}
}

func TestParseTenantWeights(t *testing.T) {
	tw, err := parseTenantWeights("alpha:10, beta:1")
	if err != nil || tw["alpha"] != 10 || tw["beta"] != 1 || len(tw) != 2 {
		t.Fatalf("parse = %v, %v", tw, err)
	}
	for _, bad := range []string{
		"", "alpha", "alpha:0", "alpha:-1", "alpha:x", "alpha:1,alpha:2",
		"*:1", ":1", "bad name:1",
	} {
		if _, err := parseTenantWeights(bad); err == nil {
			t.Fatalf("parseTenantWeights(%q) should error", bad)
		}
	}
}

// Tenancy disabled must be byte-for-byte today's behavior — headers are
// ignored, metrics stay unlabeled — and a tenancy-enabled server must
// serve an unlabeled request identically to an untenanted one.
func TestTenantDefaultPathByteCompat(t *testing.T) {
	regOff := obs.NewRegistry()
	_, tsOff := newTestServer(t, Config{Registry: regOff})
	sOn, tsOn := newTestServer(t, Config{TenantWeights: map[string]float64{"alpha": 3}})

	body := estimateBody(sampleSpec)
	_, coldOff := post(t, tsOff.Client(), tsOff.URL+"/v1/estimate", body)

	// Untenanted server with a tenant header: same bytes, header ignored,
	// request counted without a tenant label.
	req, _ := http.NewRequest(http.MethodPost, tsOff.URL+"/v1/estimate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Lognic-Tenant", "alpha")
	resp, err := tsOff.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	headered, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(coldOff, headered) {
		t.Fatal("untenanted server must ignore the tenant header")
	}
	mresp, err := tsOff.Client().Get(tsOff.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `lognic_serve_requests_total{code="200",endpoint="estimate"} 2`) {
		t.Fatalf("untenanted metrics must stay unlabeled:\n%s", metrics)
	}
	if strings.Contains(string(metrics), `tenant=`) {
		t.Fatal("untenanted metrics must carry no tenant labels")
	}

	// Tenancy-enabled default path: identical bytes cold, identical bytes
	// on the warm (cached) replay.
	respOn, coldOn := post(t, tsOn.Client(), tsOn.URL+"/v1/estimate", body)
	if respOn.Header.Get("X-Cache") != "miss" || !bytes.Equal(coldOff, coldOn) {
		t.Fatal("tenanted default path must evaluate to the untenanted bytes")
	}
	warmOn, warmBody := post(t, tsOn.Client(), tsOn.URL+"/v1/estimate", body)
	if warmOn.Header.Get("X-Cache") != "hit" || !bytes.Equal(coldOff, warmBody) {
		t.Fatal("tenanted warm hit must replay the untenanted bytes")
	}
	if sOn.tenants[defaultTenant].misses.Value() != 1 || sOn.tenants[defaultTenant].hits.Value() != 1 {
		t.Fatalf("default tenant accounting: misses=%v hits=%v, want 1/1",
			sOn.tenants[defaultTenant].misses.Value(), sOn.tenants[defaultTenant].hits.Value())
	}
	// Unknown names fold into the default bucket, not a fresh one.
	if got := sOn.tenantFor("nobody"); got != sOn.tenants[defaultTenant] {
		t.Fatalf("unknown tenant resolved to %v, want default", got)
	}
	if got := sOn.tenantFor("alpha"); got != sOn.tenants["alpha"] {
		t.Fatal("configured tenant must resolve to its own bucket")
	}
}

// Three tenants under a saturating heavy tenant: the heavy tenant sheds
// against its own queue share with 429 + Retry-After, the light and
// default tenants admit with zero drops, and cache partitions stay within
// their byte budgets. Deterministic — requests are staggered against the
// server's own counters, and evaluations block on a test hook.
func TestTenantFairnessSkewed(t *testing.T) {
	reg := obs.NewRegistry()
	s, srv := newTestServer(t, Config{
		Workers: 4, QueueDepth: 8,
		CacheEntries: 128, CacheBytes: 1 << 20,
		TenantWeights: map[string]float64{"heavy": 2, "light": 1},
		Registry:      reg,
	})
	heavy, light := s.tenants["heavy"], s.tenants["light"]
	if heavy.workerShare != 2 || heavy.queueShare != 4 || light.workerShare != 1 || light.queueShare != 2 {
		t.Fatalf("shares: heavy %d/%d light %d/%d, want 2/4 and 1/2",
			heavy.workerShare, heavy.queueShare, light.workerShare, light.queueShare)
	}

	var entered atomic.Int64
	release := make(chan struct{})
	s.testDelay = func(string) {
		entered.Add(1)
		<-release
	}

	uniqueBody := func(i int) string {
		return estimateBody(strings.Replace(sampleSpec,
			`"ingress_bw": "8Gbps"`, fmt.Sprintf(`"ingress_bw": %d`, 1_000_000_000+i*1_000_000), 1))
	}
	type outcome struct {
		code  int
		retry string
	}
	results := make(chan outcome, 16)
	do := func(tenant string, i int) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/estimate", strings.NewReader(uniqueBody(i)))
		if err != nil {
			results <- outcome{code: -1}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Lognic-Tenant", tenant)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			results <- outcome{code: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- outcome{code: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
	}

	// Fill heavy's two workers, then its four queue slots, one at a time.
	go do("heavy", 0)
	waitFor(t, func() bool { return entered.Load() == 1 })
	go do("heavy", 1)
	waitFor(t, func() bool { return entered.Load() == 2 })
	for q := 1; q <= 4; q++ {
		go do("heavy", 1+q)
		qq := int64(q)
		waitFor(t, func() bool { return heavy.queued.Load() == qq })
	}

	// The 7th heavy request must shed against heavy's own share.
	go do("heavy", 6)
	shed := <-results
	if shed.code != http.StatusTooManyRequests {
		t.Fatalf("saturating tenant status %d, want 429", shed.code)
	}
	if shed.retry == "" {
		t.Fatal("tenant 429 must carry Retry-After")
	}
	if heavy.rejected.Value() != 1 || s.rejected.Value() != 1 {
		t.Fatalf("rejected: heavy=%v total=%v, want 1/1", heavy.rejected.Value(), s.rejected.Value())
	}

	// Light and default (via an unknown name) must still admit — their
	// worker slices are reserved, not borrowed from.
	go do("light", 10)
	waitFor(t, func() bool { return entered.Load() == 3 })
	go do("unknown-name", 11)
	waitFor(t, func() bool { return entered.Load() == 4 })
	if light.rejected.Value() != 0 || s.tenants[defaultTenant].rejected.Value() != 0 {
		t.Fatal("light/default tenants must not shed while heavy saturates")
	}

	close(release)
	for i := 0; i < 8; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("admitted request status %d, want 200", r.code)
		}
	}

	// Cache partitions: every tenant within its byte budget, and the
	// budgets visible via labeled gauges.
	for name, ten := range s.tenants {
		budget, used := ten.partBudget.Value(), ten.partBytes.Value()
		if budget <= 0 {
			t.Fatalf("tenant %s has no partition budget", name)
		}
		if used > budget {
			t.Fatalf("tenant %s partition %v bytes exceeds budget %v", name, used, budget)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	for _, want := range []string{
		`lognic_serve_rejected_total{tenant="heavy"} 1`,
		`lognic_serve_cache_partition_bytes{tenant="light"}`,
		`lognic_serve_cache_partition_budget_bytes{tenant="default"}`,
		`lognic_serve_requests_total{code="200",endpoint="estimate",tenant="light"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// /v1/slo grows one row per tenant.
	resp, err := srv.Client().Get(srv.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo struct {
		Verdict string `json:"verdict"`
		Tenants map[string]struct {
			Weight     float64 `json:"weight"`
			Workers    int     `json:"workers"`
			QueueDepth int     `json:"queue_depth"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{"default", "heavy", "light"} {
		row, ok := slo.Tenants[name]
		if !ok {
			t.Fatalf("/v1/slo missing tenant %q: %+v", name, slo)
		}
		if row.Workers < 1 || row.QueueDepth < 1 || row.Weight <= 0 {
			t.Fatalf("/v1/slo tenant %q row implausible: %+v", name, row)
		}
	}
}

// Snapshots round-trip partition-faithfully: a v2 snapshot restores each
// entry into the partition it came from, a v1 snapshot lands in the
// default partition, an untenanted replica flattens everything, and
// entries for unconfigured tenants are skipped.
func TestTenantSnapshotRoundTrip(t *testing.T) {
	tenanted := Config{
		CacheEntries: 64, CacheBytes: 1 << 20,
		TenantWeights:    map[string]float64{"alpha": 1, "beta": 1},
		TenantCacheSpill: 0.25,
	}
	a, tsA := newTestServer(t, tenanted)

	bodies := map[string]string{}
	for i, tenant := range []string{"alpha", "beta", ""} {
		body := estimateBody(strings.Replace(sampleSpec,
			`"ingress_bw": "8Gbps"`, fmt.Sprintf(`"ingress_bw": %d`, 2_000_000_000+i*1_000_000), 1))
		bodies[tenant] = body
		req, _ := http.NewRequest(http.MethodPost, tsA.URL+"/v1/estimate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Lognic-Tenant", tenant)
		}
		resp, err := tsA.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed request for %q: status %d", tenant, resp.StatusCode)
		}
	}
	// One oversized-entry stand-in parked directly in the spillover pool.
	a.spill.Put("spillkey", []byte(`{"spill":true}`))

	snapResp, err := tsA.Client().Get(tsA.URL + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	path := filepath.Join(t.TempDir(), "snap.v2")
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	// Same-config replica: every entry back in its own partition, and the
	// warm hit replays A's bytes.
	b, tsB := newTestServer(t, tenanted)
	n, nbytes, err := b.WarmCache(path)
	if err != nil || n != 4 || nbytes <= 0 {
		t.Fatalf("warm = %d entries %d bytes, %v; want 4 entries", n, nbytes, err)
	}
	if b.tenants["alpha"].cache.Len() != 1 || b.tenants["beta"].cache.Len() != 1 ||
		b.tenants[defaultTenant].cache.Len() != 1 || b.spill.Len() != 1 {
		t.Fatalf("partitions after warm: alpha=%d beta=%d default=%d spill=%d, want 1 each",
			b.tenants["alpha"].cache.Len(), b.tenants["beta"].cache.Len(),
			b.tenants[defaultTenant].cache.Len(), b.spill.Len())
	}
	req, _ := http.NewRequest(http.MethodPost, tsB.URL+"/v1/estimate", strings.NewReader(bodies["alpha"]))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Lognic-Tenant", "alpha")
	resp, err := tsB.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("alpha's warmed entry should hit in alpha's partition")
	}
	// Byte identity against the donor: re-request on A (a hit) and compare.
	reqA, _ := http.NewRequest(http.MethodPost, tsA.URL+"/v1/estimate", strings.NewReader(bodies["alpha"]))
	reqA.Header.Set("Content-Type", "application/json")
	reqA.Header.Set("X-Lognic-Tenant", "alpha")
	respA, err := tsA.Client().Do(reqA)
	if err != nil {
		t.Fatal(err)
	}
	donor, _ := io.ReadAll(respA.Body)
	respA.Body.Close()
	if !bytes.Equal(warm, donor) {
		t.Fatal("warmed hit bytes differ from the donor's")
	}
	// Partition faithfulness: beta never saw alpha's spec, so the same
	// body under beta's name is a miss.
	reqBeta, _ := http.NewRequest(http.MethodPost, tsB.URL+"/v1/estimate", strings.NewReader(bodies["alpha"]))
	reqBeta.Header.Set("Content-Type", "application/json")
	reqBeta.Header.Set("X-Lognic-Tenant", "beta")
	respBeta, err := tsB.Client().Do(reqBeta)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respBeta.Body)
	respBeta.Body.Close()
	if respBeta.Header.Get("X-Cache") != "miss" {
		t.Fatal("alpha's warmed entry must not leak into beta's partition")
	}

	// Untenanted replica flattens all sections into its single cache.
	c, tsC := newTestServer(t, Config{CacheEntries: 64})
	if n, _, err := c.WarmCache(path); err != nil || n != 4 {
		t.Fatalf("flatten warm = %d, %v; want 4", n, err)
	}
	if c.cache.Len() != 4 {
		t.Fatalf("flattened cache has %d entries, want 4", c.cache.Len())
	}
	respC, _ := post(t, tsC.Client(), tsC.URL+"/v1/estimate", bodies["beta"])
	if respC.Header.Get("X-Cache") != "hit" {
		t.Fatal("flattened replica should hit on any section's entry")
	}

	// A replica that doesn't configure beta (or spill) skips those
	// sections rather than guessing a partition.
	noBeta, _ := newTestServer(t, Config{
		CacheEntries: 64, CacheBytes: 1 << 20,
		TenantWeights: map[string]float64{"alpha": 1},
	})
	if n, _, err := noBeta.WarmCache(path); err != nil || n != 2 {
		t.Fatalf("skip warm = %d, %v; want 2 (alpha + default)", n, err)
	}

	// v1 snapshots land in the default partition.
	_, tsD := newTestServer(t, Config{CacheEntries: 64})
	post(t, tsD.Client(), tsD.URL+"/v1/estimate", bodies[""])
	v1Resp, err := tsD.Client().Get(tsD.URL + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := io.ReadAll(v1Resp.Body)
	v1Resp.Body.Close()
	if !bytes.Contains(snap, []byte(snapshotMagicV2)) {
		t.Fatal("tenanted server must emit a v2 snapshot")
	}
	if !bytes.Contains(v1, []byte(snapshotMagic)) || bytes.Contains(v1, []byte(snapshotMagicV2)) {
		t.Fatal("untenanted server must emit a v1 snapshot")
	}
	v1Path := filepath.Join(t.TempDir(), "snap.v1")
	if err := os.WriteFile(v1Path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	e, _ := newTestServer(t, tenanted)
	if n, _, err := e.WarmCache(v1Path); err != nil || n != 1 {
		t.Fatalf("v1 warm = %d, %v; want 1", n, err)
	}
	if e.tenants[defaultTenant].cache.Len() != 1 || e.tenants["alpha"].cache.Len() != 0 {
		t.Fatal("v1 entries must land in the default partition only")
	}
}

// Acceptance: two tenants at 10:1 offered load against a saturated pool.
// The light tenant's error rate and p99 must stay within 20% of its solo
// (no heavy tenant) values — the reserved shares, not luck, must carry it.
func TestTenantSkewAcceptance(t *testing.T) {
	const evalSleep = 80 * time.Millisecond
	newSaturableReplica := func() string {
		s, srv := newTestServer(t, Config{
			Workers: 3, QueueDepth: 4, CacheEntries: -1,
			TenantWeights: map[string]float64{"heavy": 10, "light": 1},
		})
		// heavy gets 2 workers + 3 queue slots, light 1 + 1 — verify so the
		// load numbers below stay meaningful if defaults shift.
		if s.tenants["heavy"].workerShare != 2 || s.tenants["light"].workerShare != 1 {
			t.Fatalf("worker shares heavy=%d light=%d, want 2/1",
				s.tenants["heavy"].workerShare, s.tenants["light"].workerShare)
		}
		s.testDelay = func(string) { time.Sleep(evalSleep) }
		return srv.URL
	}
	items, err := storm.BuildCorpus(storm.CorpusConfig{Endpoint: "estimate", Unique: 16})
	if err != nil {
		t.Fatal(err)
	}

	// Solo baseline: the light tenant alone, one closed-loop worker.
	solo, err := storm.Run(context.Background(), storm.Config{
		Targets: []string{newSaturableReplica()},
		Workers: 1, Duration: 2 * time.Second, Corpus: items,
		Tenants: []storm.TenantLoad{{Name: "light", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shared run: heavy offers 10× light's concurrency against the same
	// shape of replica, far past heavy's 2-worker/3-queue share.
	shared, err := storm.Run(context.Background(), storm.Config{
		Targets: []string{newSaturableReplica()},
		Workers: 11, Duration: 2 * time.Second, Corpus: items,
		Tenants: []storm.TenantLoad{
			{Name: "heavy", Weight: 10},
			{Name: "light", Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	soloLight, sharedLight := solo.Tenants["light"], shared.Tenants["light"]
	heavy := shared.Tenants["heavy"]
	if soloLight == nil || sharedLight == nil || heavy == nil {
		t.Fatalf("missing tenant rows: solo=%+v shared=%+v", solo.Tenants, shared.Tenants)
	}
	if soloLight.Completed == 0 || sharedLight.Completed == 0 {
		t.Fatalf("light did no work: solo=%d shared=%d", soloLight.Completed, sharedLight.Completed)
	}

	// The saturating tenant is shed — against its own budget, always with
	// a retry hint.
	if heavy.Shed == 0 {
		t.Fatalf("heavy at 10 concurrency over a 2+3 share must shed: %+v", heavy)
	}
	if heavy.ShedMissingRetryAfter != 0 {
		t.Fatalf("%d heavy 429s arrived without Retry-After", heavy.ShedMissingRetryAfter)
	}

	// The light tenant is untouched: zero shed, zero errors (solo error
	// rate is zero, so within-20% means zero), p99 within 20% of solo.
	if sharedLight.Shed != 0 || sharedLight.Dropped != 0 {
		t.Fatalf("light tenant shed under heavy load: %+v", sharedLight)
	}
	if n := sharedLight.Errors4xx + sharedLight.Errors5xx + sharedLight.NetErrors; n != 0 {
		t.Fatalf("light tenant saw %d errors under heavy load", n)
	}
	soloP99 := soloLight.Latency["estimate"].P99Ms
	sharedP99 := sharedLight.Latency["estimate"].P99Ms
	if soloP99 <= 0 || sharedP99 <= 0 {
		t.Fatalf("p99 missing: solo=%v shared=%v", soloP99, sharedP99)
	}
	if sharedP99 > soloP99*1.20 {
		t.Fatalf("light p99 degraded past 20%%: solo %.1fms, shared %.1fms", soloP99, sharedP99)
	}
}
