package queueing

// Regression tests for the near-saturation numerical fixes: StateProb /
// BlockingProb against a big.Float direct-sum oracle arbitrarily close to
// ρ=1, M/M/c/K state weights at offered loads that overflow the raw
// recurrence, and M/G/1 overload guards. See the package comment's
// "Numerical behavior near saturation" section.

import (
	"math"
	"math/big"
	"testing"
)

const oraclePrec = 256

// mm1nOracle computes the M/M/1/N blocking probability and mean occupancy
// by direct summation in 256-bit arithmetic — no closed forms, no
// cancellation, the ground truth the fast paths must match.
func mm1nOracle(rho float64, capN int) (blocking, meanOcc float64) {
	r := new(big.Float).SetPrec(oraclePrec).SetFloat64(rho)
	term := big.NewFloat(1).SetPrec(oraclePrec) // ρ^n
	sum := big.NewFloat(0).SetPrec(oraclePrec)  // Σ ρ^n
	occ := big.NewFloat(0).SetPrec(oraclePrec)  // Σ n·ρ^n
	for n := 0; n <= capN; n++ {
		sum.Add(sum, term)
		w := new(big.Float).SetPrec(oraclePrec).Mul(term, big.NewFloat(float64(n)))
		occ.Add(occ, w)
		term = new(big.Float).SetPrec(oraclePrec).Mul(term, r)
	}
	top := new(big.Float).SetPrec(oraclePrec).SetFloat64(rho)
	pN := big.NewFloat(1).SetPrec(oraclePrec)
	for n := 0; n < capN; n++ {
		pN.Mul(pN, top)
	}
	pN.Quo(pN, sum)
	occ.Quo(occ, sum)
	b, _ := pN.Float64()
	l, _ := occ.Float64()
	return b, l
}

// relErr is the relative error of got against a non-zero oracle value.
func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Near ρ=1 the direct (1−ρ^{N+1})/(1−ρ) evaluation loses ~ε/((N+1)|ρ−1|)
// relative accuracy — every digit by |ρ−1| ≈ 1e-12. The expm1/log1p path
// must track the direct-sum oracle to ~1e-12 relative error no matter how
// close ρ sits to 1.
func TestStateProbNearSaturationOracle(t *testing.T) {
	for _, capN := range []int{1, 4, 64, 1024} {
		for _, d := range []float64{
			1e-3, -1e-3, 1e-5, -1e-5, 1e-7, -1e-7,
			1e-9, -1e-9, 1e-12, -1e-12, 1e-14, -1e-14,
		} {
			rho := 1 + d
			q := MM1N{Lambda: rho * 7, Mu: 7, Capacity: capN}
			// Build the queue from ρ directly so the oracle sees the
			// exact same float64 ratio.
			rho = q.Rho()
			wantB, wantL := mm1nOracle(rho, capN)
			if e := relErr(q.BlockingProb(), wantB); e > 1e-12 {
				t.Errorf("N=%d ρ=1%+g: BlockingProb = %v, oracle %v (rel err %.3g)",
					capN, d, q.BlockingProb(), wantB, e)
			}
			if e := relErr(q.MeanOccupancy(), wantL); e > 1e-10 {
				t.Errorf("N=%d ρ=1%+g: MeanOccupancy = %v, oracle %v (rel err %.3g)",
					capN, d, q.MeanOccupancy(), wantL, e)
			}
			sum := 0.0
			for k := 0; k <= capN; k++ {
				sum += q.StateProb(k)
			}
			if e := relErr(sum, 1); capN <= 64 && e > 1e-11 {
				t.Errorf("N=%d ρ=1%+g: state probs sum to %v", capN, d, sum)
			}
		}
	}
}

// Away from saturation the stable path must agree with the (accurate
// there) direct form — the fix may not perturb the regime the existing
// goldens cover.
func TestStateProbFarFromSaturationUnchanged(t *testing.T) {
	for _, rho := range []float64{0.05, 0.5, 0.9, 1.2, 3, 20} {
		for _, capN := range []int{1, 8, 64} {
			q := MM1N{Lambda: rho, Mu: 1, Capacity: capN}
			wantB, _ := mm1nOracle(q.Rho(), capN)
			if e := relErr(q.BlockingProb(), wantB); e > 1e-12 {
				t.Errorf("ρ=%v N=%d: BlockingProb rel err %.3g", rho, capN, e)
			}
		}
	}
}

// geometricSum itself, across the threshold between the two evaluation
// paths: both sides of |ρ−1|·(N+1) = 0.1 must agree with the oracle and
// with each other to rounding, so the path switch is seamless.
func TestGeometricSumPathBoundary(t *testing.T) {
	for _, capN := range []int{9, 99, 999} {
		for _, scale := range []float64{0.99, 1.01} { // straddle the 0.1 threshold
			d := 0.1 * scale / float64(capN+1)
			for _, sign := range []float64{1, -1} {
				rho := 1 + sign*d
				got := geometricSum(rho, capN)
				r := new(big.Float).SetPrec(oraclePrec).SetFloat64(rho)
				term := big.NewFloat(1).SetPrec(oraclePrec)
				sum := big.NewFloat(0).SetPrec(oraclePrec)
				for n := 0; n <= capN; n++ {
					sum.Add(sum, term)
					term = new(big.Float).SetPrec(oraclePrec).Mul(term, r)
				}
				want, _ := sum.Float64()
				if e := relErr(got, want); e > 1e-12 {
					t.Errorf("N=%d ρ=1%+g: geometricSum = %v, oracle %v (rel err %.3g)",
						capN, sign*d, got, want, e)
				}
			}
		}
	}
}

// mmckOracle computes M/M/c/K blocking and occupancy by direct big.Float
// accumulation of the birth–death weights.
func mmckOracle(q MMcK) (blocking, meanOcc float64) {
	a := new(big.Float).SetPrec(oraclePrec).SetFloat64(q.Lambda / q.Mu)
	w := big.NewFloat(1).SetPrec(oraclePrec)
	sum := big.NewFloat(1).SetPrec(oraclePrec)
	occ := big.NewFloat(0).SetPrec(oraclePrec)
	for n := 1; n <= q.Capacity; n++ {
		servers := math.Min(float64(n), float64(q.Servers))
		w = new(big.Float).SetPrec(oraclePrec).Mul(w, a)
		w.Quo(w, big.NewFloat(servers))
		sum.Add(sum, w)
		occ.Add(occ, new(big.Float).SetPrec(oraclePrec).Mul(w, big.NewFloat(float64(n))))
	}
	last := new(big.Float).SetPrec(oraclePrec).Quo(w, sum)
	occ.Quo(occ, sum)
	b, _ := last.Float64()
	l, _ := occ.Float64()
	return b, l
}

// Offered loads whose raw weights overflow float64 (a^n/n! → +Inf) used to
// yield NaN probabilities; incremental renormalization must keep every
// statistic finite, normalized, and matching the oracle.
func TestMMcKLargeOfferedLoadNoOverflow(t *testing.T) {
	cases := []MMcK{
		{Lambda: 1e6, Mu: 1, Servers: 4, Capacity: 500},
		{Lambda: 5e3, Mu: 1, Servers: 8, Capacity: 2000},
		{Lambda: 1e150, Mu: 1, Servers: 2, Capacity: 64},
		{Lambda: 3e5, Mu: 2, Servers: 1, Capacity: 300},
	}
	for _, q := range cases {
		if err := q.Validate(); err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		b := q.BlockingProb()
		if math.IsNaN(b) || b < 0 || b > 1 {
			t.Fatalf("%+v: BlockingProb = %v, want a probability", q, b)
		}
		l := q.MeanOccupancy()
		if math.IsNaN(l) || l < 0 || l > float64(q.Capacity) {
			t.Fatalf("%+v: MeanOccupancy = %v, want within [0, K]", q, l)
		}
		wantB, wantL := mmckOracle(q)
		if e := relErr(b, wantB); e > 1e-10 {
			t.Errorf("%+v: blocking = %v, oracle %v (rel err %.3g)", q, b, wantB, e)
		}
		if e := relErr(l, wantL); e > 1e-10 {
			t.Errorf("%+v: occupancy = %v, oracle %v (rel err %.3g)", q, l, wantL, e)
		}
		sum := 0.0
		for n := 0; n <= q.Capacity; n++ {
			sum += q.StateProb(n)
		}
		if e := relErr(sum, 1); e > 1e-9 {
			t.Errorf("%+v: state probs sum to %v", q, sum)
		}
		if d := q.QueueingDelay(); math.IsNaN(d) || d < 0 {
			t.Errorf("%+v: QueueingDelay = %v", q, d)
		}
	}
}

// Moderate loads take the no-rescale path and must be bit-identical to the
// pre-fix evaluation (same recurrence, same accumulation order).
func TestMMcKModerateLoadBitIdentical(t *testing.T) {
	q := MMcK{Lambda: 8, Mu: 3, Servers: 4, Capacity: 16}
	// Pre-fix reference: raw weights, then normalize.
	a := q.Lambda / q.Mu
	w := make([]float64, q.Capacity+1)
	w[0] = 1
	for n := 1; n <= q.Capacity; n++ {
		servers := math.Min(float64(n), float64(q.Servers))
		w[n] = w[n-1] * a / servers
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for n := 0; n <= q.Capacity; n++ {
		if got, want := q.StateProb(n), w[n]/sum; got != want {
			t.Fatalf("StateProb(%d) = %v, pre-fix value %v", n, got, want)
		}
	}
}

// M/G/1 at ρ ≥ 1 has no steady state; with Validate skipped the raw
// Pollaczek–Khinchine formula returned a negative delay. It must now read
// +Inf (and stay finite/positive just below saturation).
func TestMG1OverloadGuard(t *testing.T) {
	for _, lambda := range []float64{5, 5.0001, 8, 1000} {
		q := MG1{Lambda: lambda, Mu: 5, CV2: 1}
		if d := q.QueueingDelay(); !math.IsInf(d, 1) {
			t.Errorf("λ=%v: QueueingDelay = %v, want +Inf at ρ ≥ 1", lambda, d)
		}
		if w := q.MeanWait(); !math.IsInf(w, 1) {
			t.Errorf("λ=%v: MeanWait = %v, want +Inf at ρ ≥ 1", lambda, w)
		}
	}
	// Just below saturation: finite, positive, and exploding as ρ → 1.
	prev := 0.0
	for _, lambda := range []float64{4, 4.9, 4.999, 4.99999} {
		q := MG1{Lambda: lambda, Mu: 5, CV2: 1}
		d := q.QueueingDelay()
		if math.IsInf(d, 0) || math.IsNaN(d) || d <= prev {
			t.Fatalf("λ=%v: QueueingDelay = %v, want finite and increasing", lambda, d)
		}
		prev = d
	}
}
