package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMM1NValidate(t *testing.T) {
	good := MM1N{Lambda: 1, Mu: 2, Capacity: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid queue rejected: %v", err)
	}
	bad := []MM1N{
		{Lambda: -1, Mu: 1, Capacity: 1},
		{Lambda: math.NaN(), Mu: 1, Capacity: 1},
		{Lambda: 1, Mu: 0, Capacity: 1},
		{Lambda: 1, Mu: -2, Capacity: 1},
		{Lambda: 1, Mu: math.Inf(1), Capacity: 1},
		{Lambda: 1, Mu: 1, Capacity: 0},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, q)
		}
	}
}

func TestStateProbsSumToOne(t *testing.T) {
	for _, q := range []MM1N{
		{Lambda: 0.5, Mu: 1, Capacity: 5},
		{Lambda: 1, Mu: 1, Capacity: 8},
		{Lambda: 3, Mu: 1, Capacity: 4},
	} {
		sum := 0.0
		for k := 0; k <= q.Capacity; k++ {
			p := q.StateProb(k)
			if p < 0 || p > 1 {
				t.Fatalf("StateProb(%d) = %v out of range for %+v", k, p, q)
			}
			sum += p
		}
		if !approx(sum, 1, 1e-12) {
			t.Errorf("probs sum to %v for %+v", sum, q)
		}
		if q.StateProb(-1) != 0 || q.StateProb(q.Capacity+1) != 0 {
			t.Error("out-of-range state should have probability 0")
		}
	}
}

func TestZeroLoad(t *testing.T) {
	q := MM1N{Lambda: 0, Mu: 5, Capacity: 4}
	if q.StateProb(0) != 1 {
		t.Fatal("empty system should have P0 = 1")
	}
	if q.MeanOccupancy() != 0 {
		t.Fatal("L should be 0 at zero load")
	}
	if q.QueueingDelay() != 0 {
		t.Fatal("Q should be 0 at zero load")
	}
	if !approx(q.MeanWait(), 1/q.Mu, 1e-12) {
		t.Fatal("W should equal service time at zero load")
	}
}

// The paper's Equation 12 closed form must agree with the first-principles
// L/λe − 1/μ (Equation 9) across the whole operating range.
func TestClosedFormMatchesFirstPrinciples(t *testing.T) {
	for _, rho := range []float64{0.01, 0.1, 0.5, 0.9, 0.999, 1.0, 1.1, 2, 10} {
		for _, n := range []int{1, 2, 4, 8, 16, 64} {
			q := MM1N{Lambda: rho * 3, Mu: 3, Capacity: n}
			a := q.QueueingDelay()
			b := q.QueueingDelayClosedForm()
			if !approx(a, b, 1e-6) {
				t.Errorf("rho=%v N=%d: Eq9 = %v, Eq12 = %v", rho, n, a, b)
			}
		}
	}
}

func TestClosedFormProperty(t *testing.T) {
	f := func(lRaw, nRaw uint16) bool {
		lambda := float64(lRaw%2000)/100 + 0.01 // 0.01..20
		n := int(nRaw%32) + 1
		q := MM1N{Lambda: lambda, Mu: 7.3, Capacity: n}
		return approx(q.QueueingDelay(), q.QueueingDelayClosedForm(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRhoOneLimitContinuity(t *testing.T) {
	// Q must be continuous through ρ=1.
	n := 8
	mu := 2.0
	qAt := func(rho float64) float64 {
		return MM1N{Lambda: rho * mu, Mu: mu, Capacity: n}.QueueingDelayClosedForm()
	}
	exact := qAt(1)
	want := (float64(n) - 1) / (2 * mu)
	if !approx(exact, want, 1e-12) {
		t.Fatalf("Q at rho=1 = %v, want %v", exact, want)
	}
	if !approx(qAt(1-1e-9), exact, 1e-4) || !approx(qAt(1+1e-9), exact, 1e-4) {
		t.Errorf("Q discontinuous at rho=1: %v / %v / %v", qAt(1-1e-9), exact, qAt(1+1e-9))
	}
}

func TestBlockingMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for rho := 0.1; rho <= 3.0; rho += 0.1 {
		q := MM1N{Lambda: rho, Mu: 1, Capacity: 6}
		b := q.BlockingProb()
		if b < prev-1e-12 {
			t.Fatalf("blocking decreased from %v to %v at rho=%v", prev, b, rho)
		}
		prev = b
	}
}

func TestBlockingDecreasesWithCapacity(t *testing.T) {
	for _, rho := range []float64{0.5, 0.9, 1.5} {
		prev := 2.0
		for n := 1; n <= 32; n *= 2 {
			q := MM1N{Lambda: rho, Mu: 1, Capacity: n}
			b := q.BlockingProb()
			if b > prev+1e-12 {
				t.Fatalf("rho=%v: blocking grew with capacity at N=%d", rho, n)
			}
			prev = b
		}
	}
}

func TestOverloadedQueueSaturates(t *testing.T) {
	// With λ >> μ the effective throughput approaches μ and occupancy
	// approaches N.
	q := MM1N{Lambda: 1000, Mu: 10, Capacity: 16}
	if got := q.Throughput(); !approx(got, q.Mu, 0.01) {
		t.Errorf("throughput = %v, want ≈ μ = %v", got, q.Mu)
	}
	if got := q.MeanOccupancy(); !approx(got, float64(q.Capacity), 0.01) {
		t.Errorf("occupancy = %v, want ≈ N = %d", got, q.Capacity)
	}
}

func TestQueueingDelayNonNegativeProperty(t *testing.T) {
	f := func(lRaw, mRaw, nRaw uint16) bool {
		q := MM1N{
			Lambda:   float64(lRaw%5000) / 100,
			Mu:       float64(mRaw%5000)/100 + 0.01,
			Capacity: int(nRaw%64) + 1,
		}
		d := q.QueueingDelay()
		return d >= 0 && !math.IsNaN(d) && !math.IsInf(d, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyBoundedByCapacityProperty(t *testing.T) {
	f := func(lRaw, nRaw uint16) bool {
		q := MM1N{Lambda: float64(lRaw%10000) / 100, Mu: 5, Capacity: int(nRaw%48) + 1}
		l := q.MeanOccupancy()
		return l >= 0 && l <= float64(q.Capacity)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLittleLawConsistency(t *testing.T) {
	// L = λe · W by construction; check the identities stay consistent.
	q := MM1N{Lambda: 4, Mu: 5, Capacity: 10}
	l := q.MeanOccupancy()
	w := q.MeanWait()
	le := q.EffectiveArrivalRate()
	if !approx(l, le*w, 1e-12) {
		t.Fatalf("Little's law violated: L=%v λe·W=%v", l, le*w)
	}
}

func TestMM1NApproachesMM1(t *testing.T) {
	// For large N and ρ<1 the finite queue behaves like M/M/1:
	// Q → ρ/(μ−λ).
	q := MM1N{Lambda: 3, Mu: 5, Capacity: 500}
	want := q.Rho() / (q.Mu - q.Lambda)
	if got := q.QueueingDelay(); !approx(got, want, 1e-6) {
		t.Fatalf("large-N Q = %v, want M/M/1 value %v", got, want)
	}
}

func TestMMcKValidate(t *testing.T) {
	good := MMcK{Lambda: 1, Mu: 1, Servers: 2, Capacity: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid queue rejected: %v", err)
	}
	bad := []MMcK{
		{Lambda: -1, Mu: 1, Servers: 1, Capacity: 1},
		{Lambda: 1, Mu: 0, Servers: 1, Capacity: 1},
		{Lambda: 1, Mu: 1, Servers: 0, Capacity: 1},
		{Lambda: 1, Mu: 1, Servers: 4, Capacity: 2},
		{Lambda: math.Inf(1), Mu: 1, Servers: 1, Capacity: 1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMMcKReducesToMM1N(t *testing.T) {
	// With one server, M/M/c/K must match M/M/1/N everywhere.
	for _, rho := range []float64{0.3, 0.9, 1.5} {
		m1 := MM1N{Lambda: rho * 2, Mu: 2, Capacity: 7}
		mc := MMcK{Lambda: rho * 2, Mu: 2, Servers: 1, Capacity: 7}
		if !approx(m1.BlockingProb(), mc.BlockingProb(), 1e-12) {
			t.Errorf("rho=%v blocking mismatch: %v vs %v", rho, m1.BlockingProb(), mc.BlockingProb())
		}
		if !approx(m1.MeanOccupancy(), mc.MeanOccupancy(), 1e-12) {
			t.Errorf("rho=%v occupancy mismatch", rho)
		}
		if !approx(m1.QueueingDelay(), mc.QueueingDelay(), 1e-9) {
			t.Errorf("rho=%v delay mismatch: %v vs %v", rho, m1.QueueingDelay(), mc.QueueingDelay())
		}
	}
}

func TestMMcKMoreServersLessDelay(t *testing.T) {
	base := MMcK{Lambda: 8, Mu: 3, Servers: 1, Capacity: 16}
	prev := math.Inf(1)
	for c := 1; c <= 8; c++ {
		q := base
		q.Servers = c
		d := q.QueueingDelay()
		if d > prev+1e-12 {
			t.Fatalf("delay grew when adding servers at c=%d: %v > %v", c, d, prev)
		}
		prev = d
	}
}

func TestMMcKProbsSumToOneProperty(t *testing.T) {
	f := func(lRaw uint16, cRaw, kRaw uint8) bool {
		c := int(cRaw%8) + 1
		k := c + int(kRaw%16)
		q := MMcK{Lambda: float64(lRaw%3000)/100 + 0.01, Mu: 2, Servers: c, Capacity: k}
		sum := 0.0
		for n := 0; n <= k; n++ {
			sum += q.StateProb(n)
		}
		return approx(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMMcKOutOfRangeStates(t *testing.T) {
	q := MMcK{Lambda: 1, Mu: 1, Servers: 2, Capacity: 4}
	if q.StateProb(-1) != 0 || q.StateProb(5) != 0 {
		t.Fatal("out-of-range state probability must be 0")
	}
	if q.QueueingDelay() < 0 {
		t.Fatal("delay must be non-negative")
	}
	zero := MMcK{Lambda: 0, Mu: 1, Servers: 2, Capacity: 4}
	if zero.QueueingDelay() != 0 {
		t.Fatal("zero-load delay must be 0")
	}
}

func TestMG1Validate(t *testing.T) {
	good := MG1{Lambda: 1, Mu: 2, CV2: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MG1{
		{Lambda: -1, Mu: 2, CV2: 1},
		{Lambda: 1, Mu: 0, CV2: 1},
		{Lambda: 1, Mu: 2, CV2: -1},
		{Lambda: 3, Mu: 2, CV2: 1}, // overloaded
		{Lambda: 2, Mu: 2, CV2: 1}, // critical
		{Lambda: math.NaN(), Mu: 2, CV2: 1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMG1ExponentialMatchesMM1(t *testing.T) {
	// CV²=1 reduces to M/M/1: W_q = ρ/(μ−λ).
	q := MG1{Lambda: 3, Mu: 5, CV2: 1}
	want := (3.0 / 5.0) / (5.0 - 3.0)
	if !approx(q.QueueingDelay(), want, 1e-12) {
		t.Fatalf("Wq = %v, want %v", q.QueueingDelay(), want)
	}
	// And the large-N finite queue agrees.
	fin := MM1N{Lambda: 3, Mu: 5, Capacity: 500}
	if !approx(q.QueueingDelay(), fin.QueueingDelay(), 1e-6) {
		t.Fatalf("M/G/1 %v vs M/M/1/N %v", q.QueueingDelay(), fin.QueueingDelay())
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	exp := MG1{Lambda: 4, Mu: 5, CV2: 1}
	det := MG1{Lambda: 4, Mu: 5, CV2: 0}
	if !approx(det.QueueingDelay(), exp.QueueingDelay()/2, 1e-12) {
		t.Fatalf("M/D/1 wait %v should be half of M/M/1 %v",
			det.QueueingDelay(), exp.QueueingDelay())
	}
	if !approx(det.MeanWait(), det.QueueingDelay()+0.2, 1e-12) {
		t.Fatal("MeanWait must add the service time")
	}
}

func TestMG1ZeroLoad(t *testing.T) {
	q := MG1{Lambda: 0, Mu: 5, CV2: 0.5}
	if q.QueueingDelay() != 0 {
		t.Fatal("zero load should give zero wait")
	}
}
