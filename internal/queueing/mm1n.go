// Package queueing implements the finite-capacity Markovian queue formulas
// LogNIC's latency model is built on (paper §3.6, Equations 9–12), plus an
// M/M/c/K generalization used by ablation benchmarks. The paper observes
// that data-center request arrivals are well approximated by a Poisson
// process and IP service times by an exponential distribution, and applies
// the M/M/1/N queue to each (virtual) IP after concatenating its disjoint
// queues into one logical queue.
//
// # Numerical behavior near saturation
//
// The closed forms are evaluated stably in the near-saturation regime the
// paper's Figures 6 and 11 probe hardest (ρ → 1, large Erlang loads),
// where textbook expressions lose precision or overflow:
//
//   - geometric partial sums Σ ρ^n switch from the direct
//     (1−ρ^{N+1})/(1−ρ) form — which cancels catastrophically when
//     ρ^{N+1} ≈ 1 — to an expm1/log1p evaluation that stays accurate to
//     a few ULPs arbitrarily close to ρ = 1 (StateProb, BlockingProb);
//   - the mean-occupancy expression ρ/(1−ρ) − Mρ^M/(1−ρ^M) uses a
//     second-order series around ρ = 1 (MeanOccupancy, QueueingDelay);
//   - M/M/c/K state weights are renormalized incrementally while they
//     accumulate, so offered loads large enough to overflow a^n/n! still
//     yield finite, correctly normalized probabilities;
//   - M/G/1, whose infinite queue has no steady state at ρ ≥ 1, reports
//     +Inf delay instead of the meaningless negative value the
//     Pollaczek–Khinchine formula would produce when Validate is skipped.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// MM1N describes an M/M/1/N queue: Poisson arrivals at rate Lambda,
// exponential service at rate Mu, a single server, and room for N requests
// in the system (the paper's queue capacity parameter N_vi). Arrivals that
// find the system full are dropped.
type MM1N struct {
	Lambda   float64 // arrival rate, requests/second
	Mu       float64 // service rate, requests/second
	Capacity int     // N: max requests in the system, >= 1
}

// Validate reports whether the queue parameters are usable.
func (q MM1N) Validate() error {
	if q.Lambda < 0 || math.IsNaN(q.Lambda) || math.IsInf(q.Lambda, 0) {
		return fmt.Errorf("queueing: invalid arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 || math.IsNaN(q.Mu) || math.IsInf(q.Mu, 0) {
		return fmt.Errorf("queueing: invalid service rate %v", q.Mu)
	}
	if q.Capacity < 1 {
		return fmt.Errorf("queueing: capacity %d < 1", q.Capacity)
	}
	return nil
}

// Rho returns the offered utilization ρ = λ/μ (Equation 10). It may exceed 1
// for an overloaded finite queue; the closed forms remain well defined.
func (q MM1N) Rho() float64 { return q.Lambda / q.Mu }

// geometricSum returns Σ_{n=0}^{N} ρ^n, handling ρ=1 exactly. The direct
// closed form (1−ρ^{N+1})/(1−ρ) cancels catastrophically when ρ^{N+1} ≈ 1
// — i.e. when (N+1)·|ρ−1| is small — losing a relative accuracy of about
// ε/((N+1)|ρ−1|); with ρ−1 = 1e-12 and N = 64 that is every significant
// digit. In that regime the sum is evaluated as
// expm1((N+1)·log1p(ρ−1))/(ρ−1), which never subtracts nearby values and
// stays within a few ULPs of the exact sum arbitrarily close to ρ = 1 (the
// same near-1 treatment finiteGeomMean applies via its series expansion).
func geometricSum(rho float64, n int) float64 {
	d := rho - 1
	if d == 0 {
		return float64(n + 1)
	}
	if math.Abs(d)*float64(n+1) < 0.1 {
		return math.Expm1(float64(n+1)*math.Log1p(d)) / d
	}
	return (1 - math.Pow(rho, float64(n+1))) / (1 - rho)
}

// StateProb returns Pro_k, the steady-state probability of k requests in
// the system (Equation 10): ρ^k / Σ_{n=0}^{N} ρ^n.
func (q MM1N) StateProb(k int) float64 {
	if k < 0 || k > q.Capacity {
		return 0
	}
	rho := q.Rho()
	if rho == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Pow(rho, float64(k)) / geometricSum(rho, q.Capacity)
}

// BlockingProb returns Pro_N, the probability an arrival is dropped because
// the queue is full — the paper reads this as the packet dropping rate.
func (q MM1N) BlockingProb() float64 { return q.StateProb(q.Capacity) }

// finiteGeomMean evaluates g(ρ, M) = ρ/(1−ρ) − M·ρ^M/(1−ρ^M), the
// recurring expression behind both the mean occupancy (with M = N+1) and
// Equation 12's queueing delay (with M = N). It is the mean of the
// truncated geometric distribution p_n ∝ ρ^n on {0..M−1}, so in terms of
// β = ln ρ it equals d/dβ ln[(e^{Mβ}−1)/(e^β−1)], whose expansion around
// saturation is
//
//	g = (M−1)/2 + (M²−1)β/12 − (M⁴−1)β³/720 + (M⁶−1)β⁵/30240 − …
//
// Direct evaluation subtracts two terms of magnitude ~1/|β| to produce a
// result of magnitude ~M/2, amplifying rounding error by ~2/(M|β|); the
// series is therefore used whenever M|β| < 0.05 (truncation error there is
// below 1e-14 relative), which both fixes the catastrophic loss the old
// narrow |ρ−1| < 1e-4/M guard allowed just outside its band and keeps the
// well-conditioned direct path — and the values it has always produced —
// for the rest of the range.
func finiteGeomMean(rho float64, m int) float64 {
	if rho == 0 {
		return 0
	}
	mf := float64(m)
	beta := math.Log1p(rho - 1) // ln ρ, computed without cancellation near 1
	if u := mf * beta; math.Abs(u) < 0.05 {
		b2 := beta * beta
		m2 := mf * mf
		return (mf-1)/2 + beta*((m2-1)/12-b2*((m2*m2-1)/720-b2*(m2*m2*m2-1)/30240))
	}
	rm := math.Pow(rho, mf)
	return rho/(1-rho) - mf*rm/(1-rm)
}

// MeanOccupancy returns L = Σ_{n=0}^{N} n·Pro_n, the average number of
// requests in the system, via the identity
// L = ρ/(1−ρ) − (N+1)ρ^{N+1}/(1−ρ^{N+1}).
func (q MM1N) MeanOccupancy() float64 {
	return finiteGeomMean(q.Rho(), q.Capacity+1)
}

// EffectiveArrivalRate returns λe = λ(1 − Pro_N), the rate of requests
// actually admitted.
func (q MM1N) EffectiveArrivalRate() float64 {
	return q.Lambda * (1 - q.BlockingProb())
}

// MeanWait returns W = L/λe, the mean time an admitted request spends in
// the system (queueing + service), by Little's law.
func (q MM1N) MeanWait() float64 {
	if q.Lambda == 0 {
		return 1 / q.Mu
	}
	return q.MeanOccupancy() / q.EffectiveArrivalRate()
}

// QueueingDelay returns Q = L/λe − 1/μ (Equation 9), the mean time an
// admitted request waits before service starts. Equation 12 of the paper
// gives the equivalent closed form Q = (1/μ)(ρ/(1−ρ) − Nρ^N/(1−ρ^N));
// QueueingDelayClosedForm implements that expression and the two agree to
// rounding (see the tests).
func (q MM1N) QueueingDelay() float64 {
	d := q.MeanWait() - 1/q.Mu
	if d < 0 {
		// Float drift for tiny ρ; delay is physically non-negative.
		return 0
	}
	return d
}

// QueueingDelayClosedForm evaluates Equation 12:
// Q = (1/μ)(ρ/(1−ρ) − Nρ^N/(1−ρ^N)), with the ρ→1 limit (N−1)/(2μ).
func (q MM1N) QueueingDelayClosedForm() float64 {
	v := finiteGeomMean(q.Rho(), q.Capacity) / q.Mu
	if v < 0 {
		return 0
	}
	return v
}

// Throughput returns the rate of completed requests, min-limited by the
// admitted load: λe (every admitted request is eventually served).
func (q MM1N) Throughput() float64 { return q.EffectiveArrivalRate() }

// MMcK describes an M/M/c/K queue: c parallel exponential servers and room
// for K requests in the system (K >= c). LogNIC's IP blocks have n parallel
// engines behind a shared logical queue; the paper folds parallelism into
// λ and μ instead (Equation 11), and the ablation bench compares the two
// treatments.
type MMcK struct {
	Lambda   float64
	Mu       float64 // per-server service rate
	Servers  int     // c
	Capacity int     // K, total in system
}

// Validate reports whether the queue parameters are usable.
func (q MMcK) Validate() error {
	if q.Lambda < 0 || math.IsNaN(q.Lambda) || math.IsInf(q.Lambda, 0) {
		return fmt.Errorf("queueing: invalid arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 || math.IsNaN(q.Mu) || math.IsInf(q.Mu, 0) {
		return fmt.Errorf("queueing: invalid service rate %v", q.Mu)
	}
	if q.Servers < 1 {
		return fmt.Errorf("queueing: servers %d < 1", q.Servers)
	}
	if q.Capacity < q.Servers {
		return errors.New("queueing: capacity must be >= servers")
	}
	return nil
}

// rescaleLimit triggers in-place renormalization of the M/M/c/K state
// weights: once their running sum exceeds it, every accumulated weight is
// divided through. 1e290 leaves ~18 orders of magnitude of headroom before
// math.MaxFloat64, so the next ratio step cannot overflow.
const rescaleLimit = 1e290

// stateWeights returns the steady-state weights w_n (w_0 starts at 1)
// together with their sum, for n = 0..K. Because w_n grows like a^n/n! for
// n ≤ c and like (a/c)^n beyond, a large offered load a overflows the raw
// recurrence to +Inf long before normalization — which used to turn every
// probability into NaN (Inf/Inf). The weights are therefore renormalized
// incrementally while they accumulate: only the ratios w_n/Σw matter, so
// dividing everything accumulated so far by the running sum whenever it
// nears overflow preserves the result exactly while keeping every
// intermediate finite. Callers must use the returned sum rather than
// re-accumulating the slice.
func (q MMcK) stateWeights() ([]float64, float64) {
	c := q.Servers
	k := q.Capacity
	a := q.Lambda / q.Mu // offered load in Erlangs
	w := make([]float64, k+1)
	w[0] = 1
	sum := 1.0
	for n := 1; n <= k; n++ {
		servers := math.Min(float64(n), float64(c))
		w[n] = w[n-1] * a / servers
		sum += w[n]
		if sum > rescaleLimit {
			inv := 1 / sum
			for i := 0; i <= n; i++ {
				w[i] *= inv
			}
			sum = 1
		}
	}
	return w, sum
}

// StateProb returns the steady-state probability of n requests in system.
func (q MMcK) StateProb(n int) float64 {
	if n < 0 || n > q.Capacity {
		return 0
	}
	w, sum := q.stateWeights()
	return w[n] / sum
}

// BlockingProb returns the probability an arrival is dropped.
func (q MMcK) BlockingProb() float64 { return q.StateProb(q.Capacity) }

// MeanOccupancy returns the average number of requests in the system.
func (q MMcK) MeanOccupancy() float64 {
	w, sum := q.stateWeights()
	l := 0.0
	for n, v := range w {
		l += float64(n) * v
	}
	return l / sum
}

// EffectiveArrivalRate returns λ(1 − blocking).
func (q MMcK) EffectiveArrivalRate() float64 {
	return q.Lambda * (1 - q.BlockingProb())
}

// QueueingDelay returns the mean pre-service wait for admitted requests.
func (q MMcK) QueueingDelay() float64 {
	le := q.EffectiveArrivalRate()
	if le == 0 {
		return 0
	}
	d := q.MeanOccupancy()/le - 1/q.Mu
	if d < 0 {
		return 0
	}
	return d
}

// MG1 describes an M/G/1 queue via the Pollaczek–Khinchine formula:
// Poisson arrivals, a single server with general service times of rate Mu
// and squared coefficient of variation CV2 (1 = exponential, 0 =
// deterministic), and an infinite queue. The simulator's
// DeterministicService mode behaves like CV2 = 0; comparing MG1 against
// MM1N quantifies how much of the modeled delay comes from the
// exponential-service assumption.
type MG1 struct {
	Lambda float64 // arrival rate, requests/second
	Mu     float64 // service rate, requests/second
	CV2    float64 // squared coefficient of variation of service times
}

// Validate reports whether the queue parameters are usable (requires
// ρ < 1; the infinite queue has no steady state otherwise).
func (q MG1) Validate() error {
	if q.Lambda < 0 || math.IsNaN(q.Lambda) || math.IsInf(q.Lambda, 0) {
		return fmt.Errorf("queueing: invalid arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 || math.IsNaN(q.Mu) || math.IsInf(q.Mu, 0) {
		return fmt.Errorf("queueing: invalid service rate %v", q.Mu)
	}
	if q.CV2 < 0 || math.IsNaN(q.CV2) || math.IsInf(q.CV2, 0) {
		return fmt.Errorf("queueing: invalid CV² %v", q.CV2)
	}
	if q.Lambda >= q.Mu {
		return errors.New("queueing: M/G/1 requires λ < μ")
	}
	return nil
}

// QueueingDelay returns the mean pre-service wait
// W_q = ρ/(1−ρ) · (1+CV²)/2 · E[S]. Like MM1N.QueueingDelay it guards the
// regimes where the raw formula turns unphysical when Validate was
// skipped: at ρ ≥ 1 the infinite queue has no steady state, so the delay
// is +Inf rather than the negative value 1−ρ would produce.
func (q MG1) QueueingDelay() float64 {
	rho := q.Lambda / q.Mu
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho) * (1 + q.CV2) / 2 / q.Mu
}

// MeanWait returns the mean time in system (wait plus service).
func (q MG1) MeanWait() float64 { return q.QueueingDelay() + 1/q.Mu }
