package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 1, 1e-12) || !approx(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want (1,3)", x)
	}
	// Input matrix untouched.
	if a[0][0] != 2 || a[1][2-1] != 3 {
		t.Fatal("input mutated")
	}
}

func TestSolveLinearSystemNeedsPivot(t *testing.T) {
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3, 1e-12) || !approx(x[1], 2, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSystemErrors(t *testing.T) {
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square should fail")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Fatal("singular should fail")
	}
	if _, err := SolveLinearSystem([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("b mismatch should fail")
	}
}

func TestPolyFitExact(t *testing.T) {
	// y = 2 - 3x + 0.5x²
	truth := []float64{2, -3, 0.5}
	var pts []Point
	for x := -5.0; x <= 5; x++ {
		pts = append(pts, Point{X: x, Y: PolyEval(truth, x)})
	}
	c, err := PolyFit(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !approx(c[i], truth[i], 1e-9) {
			t.Fatalf("coef[%d] = %v, want %v", i, c[i], truth[i])
		}
	}
}

func TestPolyFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := []float64{1, 2}
	var pts []Point
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		pts = append(pts, Point{X: x, Y: PolyEval(truth, x) + rng.NormFloat64()*0.01})
	}
	a, b, err := LinFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a, 1, 0.02) || !approx(b, 2, 0.02) {
		t.Fatalf("fit = (%v, %v), want (1, 2)", a, b)
	}
	r2 := RSquared(pts, func(x float64) float64 { return a + b*x })
	if r2 < 0.999 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit(nil, 1); err == nil {
		t.Fatal("too few points should fail")
	}
	if _, err := PolyFit([]Point{{0, 0}}, -1); err == nil {
		t.Fatal("negative degree should fail")
	}
	if _, err := PolyFit([]Point{{1, 1}, {1, 2}, {1, 3}}, 2); err == nil {
		t.Fatal("degenerate x should fail (singular)")
	}
}

func TestPolyEval(t *testing.T) {
	if got := PolyEval([]float64{1, 2, 3}, 2); got != 1+4+12 {
		t.Fatalf("PolyEval = %v, want 17", got)
	}
	if PolyEval(nil, 5) != 0 {
		t.Fatal("empty poly should be 0")
	}
}

func TestRSquaredEdgeCases(t *testing.T) {
	if RSquared(nil, func(float64) float64 { return 0 }) != 0 {
		t.Fatal("empty points should be 0")
	}
	flat := []Point{{1, 5}, {2, 5}}
	if RSquared(flat, func(float64) float64 { return 5 }) != 1 {
		t.Fatal("perfect flat fit should be 1")
	}
	if RSquared(flat, func(float64) float64 { return 6 }) != 0 {
		t.Fatal("wrong flat fit should be 0")
	}
}

func TestPolyFitRecoversRandomLineProperty(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 100
		b := float64(bRaw) / 100
		pts := make([]Point, 0, 10)
		for x := 0.0; x < 10; x++ {
			pts = append(pts, Point{X: x, Y: a + b*x})
		}
		ga, gb, err := LinFit(pts)
		if err != nil {
			return false
		}
		return approx(ga, a, 1e-6) && approx(gb, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaturationCurveEval(t *testing.T) {
	c := SaturationCurve{Base: 100e-6, Capacity: 3e9}
	if !approx(c.Eval(0), 100e-6, 1e-12) {
		t.Fatalf("Eval(0) = %v", c.Eval(0))
	}
	// At half capacity latency doubles.
	if !approx(c.Eval(1.5e9), 200e-6, 1e-12) {
		t.Fatalf("Eval(cap/2) = %v", c.Eval(1.5e9))
	}
	// Monotone increasing.
	prev := 0.0
	for x := 0.0; x < 2.9e9; x += 1e8 {
		v := c.Eval(x)
		if v < prev {
			t.Fatalf("not monotone at %v", x)
		}
		prev = v
	}
	// Clamped near and past capacity: finite and positive.
	if v := c.Eval(3e9); math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("Eval(cap) = %v", v)
	}
	if v := c.Eval(4e9); math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("Eval(>cap) = %v", v)
	}
	if c.Eval(-1) != c.Eval(0) {
		t.Fatal("negative x should clamp to 0")
	}
}

func TestFitSaturationRecoversTruth(t *testing.T) {
	truth := SaturationCurve{Base: 80e-6, Capacity: 2.8e9}
	var pts []Point
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		x := frac * truth.Capacity
		pts = append(pts, Point{X: x, Y: truth.Eval(x)})
	}
	got, err := FitSaturation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.Base, truth.Base, 0.02) {
		t.Fatalf("Base = %v, want %v", got.Base, truth.Base)
	}
	if !approx(got.Capacity, truth.Capacity, 0.02) {
		t.Fatalf("Capacity = %v, want %v", got.Capacity, truth.Capacity)
	}
}

func TestFitSaturationNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := SaturationCurve{Base: 120e-6, Capacity: 1.2e9}
	var pts []Point
	for i := 0; i < 60; i++ {
		x := rng.Float64() * 0.92 * truth.Capacity
		y := truth.Eval(x) * (1 + rng.NormFloat64()*0.02)
		if y <= 0 {
			continue
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	got, err := FitSaturation(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.Base, truth.Base, 0.1) || !approx(got.Capacity, truth.Capacity, 0.1) {
		t.Fatalf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitSaturationErrors(t *testing.T) {
	if _, err := FitSaturation(nil); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := FitSaturation([]Point{{1, 1}}); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := FitSaturation([]Point{{1, -1}, {2, 1}}); err == nil {
		t.Fatal("negative latency should fail")
	}
	if _, err := FitSaturation([]Point{{-1, 1}, {2, 1}}); err == nil {
		t.Fatal("negative throughput should fail")
	}
	if _, err := FitSaturation([]Point{{0, 1}, {0, 2}}); err == nil {
		t.Fatal("all-zero throughput should fail")
	}
}
