// Package fit implements the curve-fitting utilities the paper relies on
// for opaque IPs (§4.3, §4.7): when an IP's internals are hidden (the SSD
// behind the Stingray's NVMe-oF target), one characterizes its
// latency-vs-throughput behavior empirically and fits model parameters to
// the curve. Linear least squares is solved directly via normal equations
// and Gaussian elimination; the saturating latency curve is fit with
// Nelder–Mead.
package fit

import (
	"errors"
	"fmt"
	"math"

	"lognic/internal/numopt"
)

// Point is one (x, y) observation.
type Point struct{ X, Y float64 }

// SolveLinearSystem solves A·x = b by Gaussian elimination with partial
// pivoting. A is row major, n×n; it is not modified.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("fit: dimension mismatch")
	}
	// Augmented working copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("fit: non-square matrix")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, errors.New("fit: singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// PolyFit fits a polynomial of the given degree by least squares using the
// normal equations, returning coefficients lowest order first.
func PolyFit(points []Point, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, errors.New("fit: negative degree")
	}
	n := degree + 1
	if len(points) < n {
		return nil, fmt.Errorf("fit: need at least %d points for degree %d", n, degree)
	}
	// Normal equations: (XᵀX)c = Xᵀy with X the Vandermonde matrix.
	xtx := make([][]float64, n)
	xty := make([]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	for _, p := range points {
		pow := make([]float64, 2*n-1)
		pow[0] = 1
		for k := 1; k < len(pow); k++ {
			pow[k] = pow[k-1] * p.X
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				xtx[i][j] += pow[i+j]
			}
			xty[i] += pow[i] * p.Y
		}
	}
	return SolveLinearSystem(xtx, xty)
}

// PolyEval evaluates a polynomial (coefficients lowest order first).
func PolyEval(coef []float64, x float64) float64 {
	y := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		y = y*x + coef[i]
	}
	return y
}

// LinFit fits y = a + b·x, returning (a, b).
func LinFit(points []Point) (a, b float64, err error) {
	c, err := PolyFit(points, 1)
	if err != nil {
		return 0, 0, err
	}
	return c[0], c[1], nil
}

// RSquared reports the coefficient of determination of a prediction
// function against observations; 1 is a perfect fit.
func RSquared(points []Point, predict func(x float64) float64) float64 {
	if len(points) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range points {
		mean += p.Y
	}
	mean /= float64(len(points))
	var ssRes, ssTot float64
	for _, p := range points {
		d := p.Y - predict(p.X)
		ssRes += d * d
		t := p.Y - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// SaturationCurve is the latency-vs-throughput family the paper's SSD
// characterization produces: an M/M/1-shaped hyperbola
//
//	latency(x) = Base + Base·x/(Capacity−x)  =  Base·Capacity/(Capacity−x)
//
// where Base is the unloaded service latency (seconds) and Capacity the
// saturation throughput (same unit as x). As offered throughput x
// approaches Capacity, latency diverges — the shape of Figure 6.
type SaturationCurve struct {
	Base     float64
	Capacity float64
}

// Eval returns the latency at offered throughput x. Past 99.99% of
// capacity the curve is clamped to keep optimizers finite.
func (c SaturationCurve) Eval(x float64) float64 {
	lim := 0.9999 * c.Capacity
	if x > lim {
		x = lim
	}
	if x < 0 {
		x = 0
	}
	return c.Base * c.Capacity / (c.Capacity - x)
}

// FitSaturation fits a SaturationCurve to (throughput, latency)
// observations by least squares over (Base, Capacity) with Nelder–Mead,
// multi-started from moment-based guesses. Observations must have positive
// latency and non-negative throughput.
func FitSaturation(points []Point) (SaturationCurve, error) {
	if len(points) < 2 {
		return SaturationCurve{}, errors.New("fit: need at least 2 points")
	}
	var maxX, minY float64
	minY = math.Inf(1)
	for _, p := range points {
		if p.Y <= 0 || p.X < 0 {
			return SaturationCurve{}, fmt.Errorf("fit: invalid observation (%v, %v)", p.X, p.Y)
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
	}
	if maxX == 0 {
		return SaturationCurve{}, errors.New("fit: all throughputs are zero")
	}
	obj := func(v []float64) float64 {
		c := SaturationCurve{Base: v[0], Capacity: v[1]}
		if c.Base <= 0 || c.Capacity <= maxX {
			return math.Inf(1)
		}
		sse := 0.0
		for _, p := range points {
			d := c.Eval(p.X) - p.Y
			// Relative error keeps the fit balanced across decades.
			sse += (d / p.Y) * (d / p.Y)
		}
		return sse
	}
	starts := [][]float64{
		{minY, maxX * 1.05},
		{minY, maxX * 1.5},
		{minY, maxX * 4},
		{minY / 2, maxX * 2},
	}
	best, err := numopt.MultiStart(obj, starts, numopt.NelderMeadOptions{MaxIter: 4000})
	if err != nil {
		return SaturationCurve{}, err
	}
	if math.IsInf(best.F, 1) {
		return SaturationCurve{}, errors.New("fit: saturation fit diverged")
	}
	return SaturationCurve{Base: best.X[0], Capacity: best.X[1]}, nil
}
