package report

import (
	"math"
	"strings"
	"testing"

	"lognic/internal/experiments"
)

func demoFigure() experiments.Figure {
	return experiments.Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{
			{Name: "a", Points: []experiments.Point{{X: 1, Y: 2}, {X: 2, Y: 4}}},
			{Name: "b,q", Points: []experiments.Point{{X: 1, Y: 3}}},
		},
	}
}

func TestCSV(t *testing.T) {
	out := CSV(demoFigure())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `x,a,"b,q"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2,3" {
		t.Fatalf("row1 = %q", lines[1])
	}
	if lines[2] != "2,4," {
		t.Fatalf("row2 = %q (missing value should be empty)", lines[2])
	}
}

func TestCSVQuoting(t *testing.T) {
	f := experiments.Figure{
		XLabel: "app",
		Series: []experiments.Series{
			{Name: `he said "hi"`, Points: []experiments.Point{{X: 0, Label: "a,b", Y: 1}}},
		},
	}
	out := CSV(f)
	if !strings.Contains(out, `"he said ""hi"""`) {
		t.Fatalf("quote escaping wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("label quoting wrong: %q", out)
	}
}

func TestMarkdown(t *testing.T) {
	out := Markdown(demoFigure())
	if !strings.Contains(out, "### figX — demo") {
		t.Fatal("heading missing")
	}
	if !strings.Contains(out, "| x |") || !strings.Contains(out, "|---|") {
		t.Fatal("table skeleton missing")
	}
	if !strings.Contains(out, "| – |") {
		t.Fatal("missing-value dash expected")
	}
}

func TestMeanRelError(t *testing.T) {
	est := experiments.Series{Points: []experiments.Point{{Y: 110}, {Y: 90}}}
	meas := experiments.Series{Points: []experiments.Point{{Y: 100}, {Y: 100}}}
	if got := MeanRelError(est, meas); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MeanRelError = %v, want 0.1", got)
	}
	// Zero measured points are skipped.
	meas0 := experiments.Series{Points: []experiments.Point{{Y: 0}, {Y: 100}}}
	if got := MeanRelError(est, meas0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MeanRelError with zero = %v", got)
	}
	if MeanRelError(experiments.Series{}, experiments.Series{}) != 0 {
		t.Fatal("empty series should give 0")
	}
}

func TestMeanGainAndSaving(t *testing.T) {
	a := experiments.Series{Points: []experiments.Point{{Y: 120}, {Y: 150}}}
	b := experiments.Series{Points: []experiments.Point{{Y: 100}, {Y: 100}}}
	if got := MeanGain(a, b); math.Abs(got-0.35) > 1e-12 {
		t.Fatalf("MeanGain = %v, want 0.35", got)
	}
	// MeanSaving(b, a) = 1 − mean(b/a).
	want := 1 - (100.0/120+100.0/150)/2
	if got := MeanSaving(b, a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanSaving = %v, want %v", got, want)
	}
	if MeanSaving(a, b) != -MeanGain(a, b) {
		t.Fatal("MeanSaving must mirror MeanGain")
	}
	if MeanGain(experiments.Series{}, b) != 0 {
		t.Fatal("empty series should give 0")
	}
}

func TestSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("summary regenerates every figure")
	}
	rows, err := Summary(experiments.Options{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("rows = %d, want >= 10", len(rows))
	}
	byFig := map[string]bool{}
	for _, r := range rows {
		if r.Figure == "" || r.Metric == "" || r.Paper == "" || r.Repro == "" {
			t.Fatalf("incomplete row %+v", r)
		}
		byFig[r.Figure] = true
	}
	for _, want := range []string{"fig5", "fig6", "fig7", "fig9", "fig11", "fig13", "fig15", "fig16", "fig18/19"} {
		if !byFig[want] {
			t.Errorf("summary missing %s", want)
		}
	}
	md := SummaryMarkdown(rows)
	if !strings.Contains(md, "| Figure | Metric |") {
		t.Fatal("markdown header missing")
	}
	if strings.Count(md, "\n") < len(rows)+2 {
		t.Fatal("markdown row count wrong")
	}
}
