package report

import (
	"strings"
	"testing"

	"lognic/internal/apps"
	"lognic/internal/core"
	"lognic/internal/devices"
	"lognic/internal/obs"
	"lognic/internal/sim"
	"lognic/internal/traffic"
	"lognic/internal/unit"
)

// runAttribution drives one simulator replication of the model at the
// given fraction of its saturation throughput and builds the cross-checked
// report.
func runAttribution(t *testing.T, m core.Model, loadFrac float64, seed int64) obs.Report {
	t.Helper()
	sat, err := m.SaturationThroughput()
	if err != nil {
		t.Fatal(err)
	}
	offered := loadFrac * sat.Attainable
	res, err := sim.Run(sim.Config{
		Graph:    m.Graph,
		Hardware: m.Hardware,
		Profile:  traffic.Fixed("attr", unit.Bandwidth(offered), unit.Size(m.Traffic.Granularity)),
		Seed:     seed,
		Duration: 0.08,
		Warmup:   0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Attribution(m, res)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Acceptance: on the LiquidIO-2 catalog (inline MD5 with a small core
// group) the simulator's measured attribution must name the same
// bottleneck the analytical model derives — the NIC-core group.
func TestAttributionAgreesLiquidIO2(t *testing.T) {
	m, err := apps.InlineAccel(apps.InlineAccelConfig{
		Device: devices.LiquidIO2CN2360(), Accel: "md5", Cores: 2, PacketBytes: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := runAttribution(t, m, 0.85, 101)
	top, ok := obs.Bottleneck(r.Model)
	if !ok {
		t.Fatal("model ranking empty")
	}
	if top.Name != "nic-cores" || top.Kind != obs.KindCompute {
		t.Fatalf("model bottleneck = %s (%s), want nic-cores (compute)", top.Name, top.Kind)
	}
	if !r.Agree {
		simTop, _ := obs.Bottleneck(r.Sim)
		t.Fatalf("simulator attribution disagrees: sim names %s (%s)\n%s", simTop.Name, simTop.Kind, r.Format())
	}
}

// Acceptance: on the BlueField-2 catalog (ARM-only middlebox chain, where
// DPI's per-byte cost dominates the γ-partitioned core pool) model and
// simulator must again agree on the bottleneck.
func TestAttributionAgreesBlueField2(t *testing.T) {
	chain := apps.MiddleboxChain()
	m, err := apps.NFChainModel(devices.BlueField2DPU(), chain, apps.ARMOnly(chain), 1500, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	r := runAttribution(t, m, 0.85, 202)
	top, ok := obs.Bottleneck(r.Model)
	if !ok {
		t.Fatal("model ranking empty")
	}
	if top.Kind != obs.KindCompute || !strings.HasPrefix(top.Name, "arm-") {
		t.Fatalf("model bottleneck = %s (%s), want an arm-* compute vertex", top.Name, top.Kind)
	}
	if !r.Agree {
		simTop, _ := obs.Bottleneck(r.Sim)
		t.Fatalf("simulator attribution disagrees: sim names %s (%s)\n%s", simTop.Name, simTop.Kind, r.Format())
	}
}

func TestModelComponentsSkipIngress(t *testing.T) {
	rep := core.ThroughputReport{Constraints: []core.Constraint{
		{Kind: core.ConstraintIngress, Limit: 1e9},
		{Kind: core.ConstraintIPCompute, Name: "ip1", Limit: 2e9},
		{Kind: core.ConstraintInterface, Limit: 4e9},
	}}
	comps := ModelComponents(rep, 1e9)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (ingress skipped)", len(comps))
	}
	for _, c := range comps {
		if c.Kind == "" || c.SaturationLoad <= 0 {
			t.Fatalf("bad component %+v", c)
		}
	}
	if comps[0].Utilization != 0.5 {
		t.Fatalf("ip1 utilization = %v, want 0.5", comps[0].Utilization)
	}
}

func TestAttributionMarkdown(t *testing.T) {
	r := obs.BuildReport(1e9,
		[]obs.Component{{Name: "ip1", Kind: obs.KindCompute, Utilization: 0.9, SaturationLoad: 1.1e9}},
		[]obs.Component{{Name: "ip1", Kind: obs.KindCompute, Utilization: 0.88, SaturationLoad: 1.15e9}})
	md := AttributionMarkdown(r)
	for _, want := range []string{"### Bottleneck attribution", "agree", "**ip1**", "```"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
