package report

// Bottleneck attribution: this file bridges the analytical model's
// Equation 4 constraint ranking and the simulator's measured utilizations
// into one obs.Report, so a regenerated report can state — and a test can
// assert — that both sources blame the same component first.

import (
	"fmt"

	"lognic/internal/core"
	"lognic/internal/obs"
	"lognic/internal/sim"
)

// ModelComponents converts a throughput report's constraints into
// attribution components. The ingress constraint is skipped — the offered
// load caps throughput but is not a hardware component that saturates.
// Utilization is the model's prediction at the given offered load:
// offered over the constraint's limit, capped at 1.
func ModelComponents(rep core.ThroughputReport, offered float64) []obs.Component {
	var out []obs.Component
	for _, c := range rep.Constraints {
		if c.Kind == core.ConstraintIngress || c.Limit <= 0 {
			continue
		}
		var kind, name string
		switch c.Kind {
		case core.ConstraintIPCompute:
			kind, name = obs.KindCompute, c.Name
		case core.ConstraintInterface:
			kind, name = obs.KindInterface, "interface"
		case core.ConstraintMemory:
			kind, name = obs.KindMemory, "memory"
		case core.ConstraintEdge:
			kind, name = obs.KindEdge, c.Name
		default:
			continue
		}
		u := offered / c.Limit
		if u > 1 {
			u = 1
		}
		out = append(out, obs.Component{
			Name: name, Kind: kind, Utilization: u, SaturationLoad: c.Limit,
		})
	}
	return out
}

// Attribution cross-checks bottleneck attribution for one model and one
// simulator run of it: the model side ranks Equation 4's saturation
// constraints (independent of offered load), the simulator side
// extrapolates measured utilizations to their saturation loads. Both are
// keyed by (kind, name), so agreement means both sources blame the same
// hardware component first.
func Attribution(m core.Model, res sim.Result) (obs.Report, error) {
	rep, err := m.SaturationThroughput()
	if err != nil {
		return obs.Report{}, err
	}
	offered := res.OfferedRate()
	return obs.BuildReport(offered, ModelComponents(rep, offered), res.AttributionComponents()), nil
}

// AttributionMarkdown renders an attribution report as a Markdown section:
// the aligned table inside a code fence, with the cross-check verdict
// called out above it.
func AttributionMarkdown(r obs.Report) string {
	verdict := "model and simulator disagree on the first-saturating component"
	if r.Agree {
		if top, ok := obs.Bottleneck(r.Model); ok {
			verdict = fmt.Sprintf("model and simulator agree: **%s** (%s) saturates first", top.Name, top.Kind)
		}
	}
	return "### Bottleneck attribution\n\n" + verdict + "\n\n```\n" + r.Format() + "```\n"
}
