// Package report renders regenerated figures (internal/experiments) into
// CSV and Markdown, and builds the paper-vs-reproduction summary table
// that EXPERIMENTS.md records. It also computes the comparison statistics
// the paper quotes (model-vs-measured error bands, scheme-vs-scheme gains)
// directly from figure data, so the numbers in the documentation are
// regenerable rather than hand-copied.
package report

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"lognic/internal/experiments"
)

// CSV renders a figure as RFC-4180-ish CSV: one row per x position, one
// column per series. Missing points are empty cells.
func CSV(f experiments.Figure) string {
	var b strings.Builder
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	b.WriteString(joinCSV(cols))
	b.WriteByte('\n')
	for _, k := range xPositions(f) {
		row := []string{xLabel(k)}
		for _, s := range f.Series {
			if v, ok := lookup(s, k); ok {
				row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
			} else {
				row = append(row, "")
			}
		}
		b.WriteString(joinCSV(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders a figure as a GitHub-flavored Markdown table with a
// heading.
func Markdown(f experiments.Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", f.ID, f.Title)
	fmt.Fprintf(&b, "*x: %s, y: %s*\n\n", f.XLabel, f.YLabel)
	b.WriteString("| " + f.XLabel + " |")
	for _, s := range f.Series {
		b.WriteString(" " + s.Name + " |")
	}
	b.WriteByte('\n')
	b.WriteString("|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, k := range xPositions(f) {
		b.WriteString("| " + xLabel(k) + " |")
		for _, s := range f.Series {
			if v, ok := lookup(s, k); ok {
				fmt.Fprintf(&b, " %.6g |", v)
			} else {
				b.WriteString(" – |")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

type xKey struct {
	x     float64
	label string
}

func xLabel(k xKey) string {
	if k.label != "" {
		return k.label
	}
	return strconv.FormatFloat(k.x, 'g', 8, 64)
}

func xPositions(f experiments.Figure) []xKey {
	var xs []xKey
	seen := map[xKey]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			k := xKey{p.X, p.Label}
			if !seen[k] {
				seen[k] = true
				xs = append(xs, k)
			}
		}
	}
	return xs
}

func lookup(s experiments.Series, k xKey) (float64, bool) {
	for _, p := range s.Points {
		if p.X == k.x && p.Label == k.label {
			return p.Y, true
		}
	}
	return 0, false
}

func joinCSV(fields []string) string {
	out := make([]string, len(fields))
	for i, f := range fields {
		if strings.ContainsAny(f, ",\"\n") {
			f = "\"" + strings.ReplaceAll(f, "\"", "\"\"") + "\""
		}
		out[i] = f
	}
	return strings.Join(out, ",")
}

// MeanRelError is the mean |estimate−measured|/measured over the two
// series, paired by rank (Figure 6's estimate and measured curves share
// sweep positions, not exact x values). Zero-valued measured points are
// skipped.
func MeanRelError(estimate, measured experiments.Series) float64 {
	n := len(estimate.Points)
	if len(measured.Points) < n {
		n = len(measured.Points)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if measured.Points[i].Y == 0 {
			continue
		}
		sum += math.Abs(estimate.Points[i].Y-measured.Points[i].Y) / measured.Points[i].Y
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// MeanGain is the mean relative improvement of series a over series b
// (a/b − 1), paired by rank.
func MeanGain(a, b experiments.Series) float64 {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		if b.Points[i].Y == 0 {
			continue
		}
		sum += a.Points[i].Y/b.Points[i].Y - 1
	}
	return sum / float64(n)
}

// MeanSaving is the mean relative reduction of a versus b (1 − a/b),
// paired by rank.
func MeanSaving(a, b experiments.Series) float64 { return -MeanGain(a, b) }

// Row is one line of the paper-vs-reproduction summary.
type Row struct {
	// Figure is the paper figure id.
	Figure string
	// Metric describes the compared quantity.
	Metric string
	// Paper is the value the paper reports (free text: numbers or
	// qualitative anchors).
	Paper string
	// Repro is the value this reproduction measures.
	Repro string
	// Note qualifies the comparison.
	Note string
}

// Summary computes the headline paper-vs-reproduction comparisons from
// regenerated figures. Figures are regenerated with the given options;
// this takes a few minutes at full scale.
func Summary(opts experiments.Options) ([]Row, error) {
	var rows []Row
	get := func(id string) (experiments.Figure, error) {
		g, err := experiments.ByID(id)
		if err != nil {
			return experiments.Figure{}, err
		}
		return g.Run(opts)
	}
	series := func(f experiments.Figure, name string) experiments.Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		return experiments.Series{}
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

	// Figure 5: interconnect-ceiling fractions at 16KB.
	f5, err := get("fig5")
	if err != nil {
		return nil, err
	}
	var fracs []string
	for _, name := range []string{"crc", "3des", "md5", "hfa"} {
		s := series(f5, name)
		fracs = append(fracs, pct(s.Points[len(s.Points)-1].Y/s.Points[0].Y))
	}
	rows = append(rows, Row{
		Figure: "fig5", Metric: "throughput fraction at 16KB granularity (crc/3des/md5/hfa)",
		Paper: "13.6% / 17.3% / 21.2% / 25.8%",
		Repro: strings.Join(fracs, " / "),
		Note:  "interconnect ceilings bind exactly as Equation 4 predicts",
	})

	// Figure 6: model-vs-measured latency error per profile.
	f6, err := get("fig6")
	if err != nil {
		return nil, err
	}
	for i, prof := range []string{"4KB-RRD", "128KB-RRD", "4KB-SWR"} {
		e := MeanRelError(series(f6, prof+"-LogNIC"), series(f6, prof+"-Measured"))
		paper := []string{"0.89%", "0.24%", "2.75%"}[i]
		rows = append(rows, Row{
			Figure: "fig6", Metric: "mean latency estimation error, " + prof,
			Paper: paper, Repro: pct(e),
			Note: "simulator noise floor is higher than hardware averaging",
		})
	}

	// Figure 7: model underprediction across the mixed region.
	f7, err := get("fig7")
	if err != nil {
		return nil, err
	}
	rdM, wrM := series(f7, "RD-Measured"), series(f7, "WR-Measured")
	rdL, wrL := series(f7, "RD-LogNIC"), series(f7, "WR-LogNIC")
	var worst float64
	for i := range rdM.Points {
		meas := rdM.Points[i].Y + wrM.Points[i].Y
		model := rdL.Points[i].Y + wrL.Points[i].Y
		if meas > 0 {
			if gap := 1 - model/meas; gap > worst {
				worst = gap
			}
		}
	}
	rows = append(rows, Row{
		Figure: "fig7", Metric: "peak model underprediction on mixed R/W (GC)",
		Paper: "14.6%", Repro: pct(worst),
		Note: "same sign and mechanism: GC invisible to the static model",
	})

	// Figure 9: saturation parallelism + model error.
	sat, err := experiments.Fig9SaturationCores()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Figure: "fig9", Metric: "cores to saturate md5/kasumi/hfa",
		Paper: "9 / 8 / 11",
		Repro: fmt.Sprintf("%d / %d / %d", sat["md5"], sat["kasumi"], sat["hfa"]),
		Note:  "exact",
	})
	f9, err := get("fig9")
	if err != nil {
		return nil, err
	}
	e9 := MeanRelError(series(f9, "md5-LogNIC"), series(f9, "md5-Measured"))
	rows = append(rows, Row{
		Figure: "fig9", Metric: "mean throughput estimation error (md5 sweep)",
		Paper: "<0.1%", Repro: pct(e9), Note: "",
	})

	// Figures 11/12: allocation-scheme gains.
	f11, err := get("fig11")
	if err != nil {
		return nil, err
	}
	f12, err := get("fig12")
	if err != nil {
		return nil, err
	}
	g := experiments.GainsFromFigures(f11, f12)
	rows = append(rows,
		Row{Figure: "fig11", Metric: "LogNIC-Opt throughput gain vs RR / Equal",
			Paper: "34.8% / 36.4%",
			Repro: pct(g.ThroughputVsRR) + " / " + pct(g.ThroughputVsEqual), Note: ""},
		Row{Figure: "fig12", Metric: "LogNIC-Opt latency saving vs RR / Equal",
			Paper: "22.4% / 22.8%",
			Repro: pct(g.LatencyVsRR) + " / " + pct(g.LatencyVsEqual),
			Note:  "our baselines saturate their queues, so savings run larger"},
	)

	// Figures 13/14: placement gains.
	f13, err := get("fig13")
	if err != nil {
		return nil, err
	}
	f14, err := get("fig14")
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		Row{Figure: "fig13", Metric: "LogNIC-opt throughput gain vs ARM-only / Accel-only",
			Paper: "81.9% / 21.7%",
			Repro: pct(MeanGain(series(f13, "LogNIC-opt"), series(f13, "ARM-only"))) + " / " +
				pct(MeanGain(series(f13, "LogNIC-opt"), series(f13, "Accelerator-only"))),
			Note: "same crossover: ARM wins at 64B, engines at MTU"},
		Row{Figure: "fig14", Metric: "LogNIC-opt latency saving vs ARM-only / Accel-only",
			Paper: "37.9% / 27.3%",
			Repro: pct(MeanSaving(series(f14, "LogNIC-opt"), series(f14, "ARM-only"))) + " / " +
				pct(MeanSaving(series(f14, "LogNIC-opt"), series(f14, "Accelerator-only"))),
			Note: ""},
	)

	// Figure 15: suggested credits.
	credits, err := experiments.Fig15SuggestedCredits()
	if err != nil {
		return nil, err
	}
	var cs []string
	keys := make([]string, 0, len(credits))
	for k := range credits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs = append(cs, strconv.Itoa(credits[k]))
	}
	rows = append(rows, Row{
		Figure: "fig15", Metric: "suggested minimal credits (TP1..TP4)",
		Paper: "5 / 4 / 4 / 4", Repro: strings.Join(cs, " / "),
		Note: "same direction: well below the PANIC default of 8",
	})

	// Figures 16/17: steering wins.
	f16, err := get("fig16")
	if err != nil {
		return nil, err
	}
	f17, err := get("fig17")
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		Row{Figure: "fig16", Metric: "LogNIC latency saving vs worst static split (10/70)",
			Paper: "57.2% (vs worst)", Repro: pct(MeanSaving(series(f16, "LogNIC"), series(f16, "10/70"))),
			Note: "LogNIC beats every static split on every profile"},
		Row{Figure: "fig17", Metric: "LogNIC throughput gain vs worst static split (10/70)",
			Paper: "159.1% (vs worst)", Repro: pct(MeanGain(series(f17, "LogNIC"), series(f17, "10/70"))),
			Note: ""},
	)

	// Figures 18/19: suggested parallel degrees.
	lanes, err := experiments.Fig18SuggestedLanes()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Figure: "fig18/19", Metric: "suggested IP4 parallel degree (50/50 and 80/20 splits)",
		Paper: "6 and 4",
		Repro: fmt.Sprintf("%d and %d", lanes["Traffic Profile 1"], lanes["Traffic Profile 2"]),
		Note:  "exact",
	})
	return rows, nil
}

// SummaryMarkdown renders the summary rows as a Markdown table.
func SummaryMarkdown(rows []Row) string {
	var b strings.Builder
	b.WriteString("| Figure | Metric | Paper | This repo | Note |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			r.Figure, r.Metric, r.Paper, r.Repro, r.Note)
	}
	return b.String()
}
