package report

import (
	"os"
	"path/filepath"
	"testing"

	"lognic/internal/experiments"
)

// The model-only figures (no simulator randomness) are bit-for-bit
// deterministic; pin their full output against checked-in goldens so any
// change to the model's arithmetic or the device catalogs is caught
// loudly. Regenerate with:
//
//	go run ./cmd/lognic-bench -format csv fig5 > internal/report/testdata/fig5.golden.csv
//	go run ./cmd/lognic-bench -format csv fig10 > internal/report/testdata/fig10.golden.csv
func TestModelOnlyFigureGoldens(t *testing.T) {
	for _, id := range []string{"fig5", "fig10"} {
		g, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		fig, err := g.Run(experiments.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := CSV(fig)
		goldenPath := filepath.Join("testdata", id+".golden.csv")
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read golden: %v", err)
		}
		if got != string(want) {
			t.Errorf("%s output drifted from %s.\nIf the change is intended, regenerate the golden.\ngot:\n%s\nwant:\n%s",
				id, goldenPath, got, want)
		}
	}
}
