// Package traffic defines traffic profiles — the third input of the LogNIC
// model (Table 2: ingress bandwidth BW_in and packet size distribution
// dist_size) — and packet generators that realize a profile as a concrete
// arrival stream for the discrete-event simulator in internal/sim.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lognic/internal/dist"
	"lognic/internal/unit"
)

// Arrival selects the inter-arrival process of a generator.
type Arrival int

// Arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps — the paper's
	// observation for data-center traffic and the assumption behind its
	// M/M/1/N queueing derivation.
	ArrivalPoisson Arrival = iota
	// ArrivalDeterministic emits packets back-to-back at the offered rate
	// (constant bit rate), the behavior of a hardware traffic generator
	// pushing line rate.
	ArrivalDeterministic
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Profile is a complete traffic description.
type Profile struct {
	// Name labels the profile ("TP1(64B)", "4KB-RRD", ...).
	Name string
	// Rate is BW_in, the offered ingress bandwidth.
	Rate unit.Bandwidth
	// Sizes is dist_size, the packet size distribution.
	Sizes dist.SizeDist
	// Arrival selects the arrival process (default Poisson).
	Arrival Arrival
	// BurstDegree is the paper's burst-degree dimension: packets arrive
	// in back-to-back bursts whose size is geometric with this mean,
	// while burst starts are spaced to preserve the offered rate. Values
	// ≤ 1 (and the zero value) mean no bursting. Only meaningful for
	// Poisson arrivals.
	BurstDegree float64
	// MeanFlowPackets is the paper's flow-size dimension: consecutive
	// packets are grouped into flows whose length is geometric with this
	// mean. Values ≤ 1 (and the zero value) put every packet in its own
	// flow. Flow ids drive flow-consistent routing in the simulator.
	MeanFlowPackets float64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Rate <= 0 || math.IsNaN(float64(p.Rate)) || math.IsInf(float64(p.Rate), 0) {
		return fmt.Errorf("traffic: profile %q: invalid rate %v", p.Name, float64(p.Rate))
	}
	if p.Sizes.NumPoints() == 0 {
		return fmt.Errorf("traffic: profile %q: empty size distribution", p.Name)
	}
	if p.BurstDegree < 0 || math.IsNaN(p.BurstDegree) || math.IsInf(p.BurstDegree, 0) {
		return fmt.Errorf("traffic: profile %q: invalid burst degree %v", p.Name, p.BurstDegree)
	}
	if p.MeanFlowPackets < 0 || math.IsNaN(p.MeanFlowPackets) || math.IsInf(p.MeanFlowPackets, 0) {
		return fmt.Errorf("traffic: profile %q: invalid mean flow size %v", p.Name, p.MeanFlowPackets)
	}
	return nil
}

// PacketRate returns the mean packet arrival rate (packets/second) implied
// by the byte rate and mean packet size.
func (p Profile) PacketRate() unit.Rate {
	mean := p.Sizes.Mean().Bytes()
	if mean <= 0 {
		return 0
	}
	return unit.Rate(p.Rate.BytesPerSecond() / mean)
}

// Fixed builds a single-size profile. A non-positive size yields a
// profile with an empty size distribution, which Validate rejects — so
// the error surfaces at the construction sites (sim.New, NewGenerator)
// instead of panicking here.
func Fixed(name string, rate unit.Bandwidth, size unit.Size) Profile {
	d, err := dist.Fixed(size)
	if err != nil {
		return Profile{Name: name, Rate: rate}
	}
	return Profile{Name: name, Rate: rate, Sizes: d}
}

// EqualSplit builds a profile splitting bandwidth equally across the given
// packet sizes — the PANIC mixed profiles of §4.6 ("splits bandwidth across
// different-sized flows equally"). Splitting *bandwidth* equally means the
// per-packet probability of size s is proportional to 1/s.
func EqualSplit(name string, rate unit.Bandwidth, sizes ...unit.Size) (Profile, error) {
	if len(sizes) == 0 {
		return Profile{}, errors.New("traffic: EqualSplit needs at least one size")
	}
	pts := make([]dist.SizePoint, len(sizes))
	for i, s := range sizes {
		if s <= 0 {
			return Profile{}, fmt.Errorf("traffic: invalid size %v", float64(s))
		}
		pts[i] = dist.SizePoint{Size: s, Weight: 1 / float64(s)}
	}
	d, err := dist.NewSizeDist(pts)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Name: name, Rate: rate, Sizes: d}, nil
}

// Packet is one generated arrival.
type Packet struct {
	// Seq is the generation index, starting at 0.
	Seq uint64
	// Time is the arrival timestamp in seconds since stream start.
	Time float64
	// Size is the packet size in bytes.
	Size float64
	// Flow identifies the packet's flow; consecutive packets of one flow
	// share the id. Zero-based.
	Flow uint64
}

// Generator produces a packet arrival stream for a profile.
type Generator struct {
	profile Profile
	rng     *rand.Rand
	now     float64
	seq     uint64
	pktRate float64
	inBurst int    // packets remaining in the current burst
	flow    uint64 // current flow id
	inFlow  int    // packets remaining in the current flow
}

// NewGenerator builds a deterministic, seeded generator.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		pktRate: float64(p.PacketRate()),
	}, nil
}

// geometric draws a geometrically distributed burst size with the given
// mean ≥ 1 (support {1, 2, ...}).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	// P(continue) = 1 - 1/mean gives E[size] = mean.
	n := 1
	p := 1 - 1/mean
	for rng.Float64() < p {
		n++
	}
	return n
}

// Next returns the next packet in the stream.
func (g *Generator) Next() Packet {
	size := g.profile.Sizes.Sample(g.rng)
	var gap float64
	switch g.profile.Arrival {
	case ArrivalDeterministic:
		// Keep the byte rate exact per packet: gap = size/rate.
		gap = size.Bytes() / g.profile.Rate.BytesPerSecond()
	default:
		if b := g.profile.BurstDegree; b > 1 {
			// Bursty Poisson: packets within a burst are back to back;
			// burst starts are Poisson at rate/b so the mean packet rate
			// is preserved.
			if g.inBurst > 0 {
				g.inBurst--
				gap = 0
			} else {
				gap = dist.PoissonInterArrival(g.rng, g.pktRate/b)
				g.inBurst = geometric(g.rng, b) - 1
			}
		} else {
			gap = dist.PoissonInterArrival(g.rng, g.pktRate)
		}
	}
	g.now += gap
	if g.profile.MeanFlowPackets > 1 {
		if g.inFlow <= 0 {
			g.flow++
			g.inFlow = geometric(g.rng, g.profile.MeanFlowPackets)
		}
		g.inFlow--
	} else {
		g.flow = g.seq
	}
	p := Packet{Seq: g.seq, Time: g.now, Size: size.Bytes(), Flow: g.flow}
	g.seq++
	return p
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// Seq returns the number of packets generated so far — the generator's
// position in its deterministic stream. A fresh generator with the same
// profile and seed reproduces this generator's exact state (internal RNG,
// clock, burst and flow counters) after Seq() calls to Next(), which is
// how sim.Resume fast-forwards the arrival stream when restoring a
// checkpointed run.
func (g *Generator) Seq() uint64 { return g.seq }
