package traffic

import (
	"math"
	"testing"

	"lognic/internal/dist"
	"lognic/internal/unit"
)

// FuzzProfileValidate checks that the profile validator never panics on
// arbitrary numeric inputs, and that any profile it accepts drives the
// generator soundly: monotone arrival times, sizes within the
// distribution's support. Use `go test -fuzz=FuzzProfileValidate
// ./internal/traffic` to explore.
func FuzzProfileValidate(f *testing.F) {
	f.Add(1e9, 64.0, 1500.0, 1.0, 1.0, 0.0, 0.0, int64(1))
	f.Add(0.0, 64.0, 1500.0, 1.0, 1.0, 0.0, 0.0, int64(1))
	f.Add(math.NaN(), 64.0, 1500.0, 1.0, 1.0, 4.0, 8.0, int64(2))
	f.Add(1e9, -5.0, 0.0, 1.0, 1.0, math.Inf(1), -1.0, int64(3))
	f.Add(math.Inf(1), 64.0, 64.0, 0.0, 0.0, 0.5, 2.0, int64(4))
	f.Fuzz(func(t *testing.T, rate, s1, s2, w1, w2, burst, flow float64, seed int64) {
		sizes, err := dist.NewSizeDist([]dist.SizePoint{
			{Size: unit.Size(s1), Weight: w1},
			{Size: unit.Size(s2), Weight: w2},
		})
		if err != nil {
			sizes = dist.SizeDist{} // exercise the empty-distribution path
		}
		p := Profile{
			Name:            "fuzz",
			Rate:            unit.Bandwidth(rate),
			Sizes:           sizes,
			BurstDegree:     burst,
			MeanFlowPackets: flow,
		}
		if err := p.Validate(); err != nil {
			if _, gerr := NewGenerator(p, seed); gerr == nil {
				t.Fatal("generator accepted a profile the validator rejected")
			}
			return
		}
		gen, err := NewGenerator(p, seed)
		if err != nil {
			t.Fatalf("generator rejected a validated profile: %v", err)
		}
		lo, hi := float64(p.Sizes.Min()), float64(p.Sizes.Max())
		last := math.Inf(-1)
		for i := 0; i < 64; i++ {
			pkt := gen.Next()
			if pkt.Time < last || math.IsNaN(pkt.Time) {
				t.Fatalf("arrival %d: time %v went backwards from %v", i, pkt.Time, last)
			}
			last = pkt.Time
			if pkt.Size < lo || pkt.Size > hi {
				t.Fatalf("arrival %d: size %v outside support [%v, %v]", i, pkt.Size, lo, hi)
			}
		}
	})
}
