package traffic

import (
	"math"
	"testing"

	"lognic/internal/dist"
	"lognic/internal/unit"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestProfileValidate(t *testing.T) {
	ok := Fixed("mtu", unit.Gbps(25), unit.MTU)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	sz, err := dist.Fixed(64)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{Name: "zero-rate", Rate: 0, Sizes: sz},
		{Name: "neg-rate", Rate: -1, Sizes: sz},
		{Name: "nan", Rate: unit.Bandwidth(math.NaN()), Sizes: sz},
		{Name: "no-sizes", Rate: unit.Gbps(1)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", p.Name)
		}
	}
}

// A non-positive size no longer panics: Fixed yields a profile with an
// empty size distribution, and Validate reports it.
func TestFixedBadSizeFailsValidation(t *testing.T) {
	for _, size := range []unit.Size{0, -64} {
		p := Fixed("bad", unit.Gbps(1), size)
		if err := p.Validate(); err == nil {
			t.Errorf("size %v: expected a validation error", float64(size))
		}
	}
}

func TestPacketRate(t *testing.T) {
	p := Fixed("t", unit.Gbps(8), 1000) // 1e9 B/s / 1000 B = 1e6 pps
	if got := p.PacketRate().PerSecond(); !approx(got, 1e6, 1e-12) {
		t.Fatalf("PacketRate = %v", got)
	}
	empty := Profile{Rate: unit.Gbps(1)}
	if empty.PacketRate() != 0 {
		t.Fatal("empty dist should give 0 rate")
	}
}

func TestEqualSplitBandwidthShares(t *testing.T) {
	p, err := EqualSplit("tp1", unit.Gbps(10), 64, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Byte shares should be equal: weight ∝ 1/size ⇒ bytes ∝ size·(1/size).
	bw := p.Sizes.ByteWeights()
	if len(bw) != 2 {
		t.Fatalf("points = %d", len(bw))
	}
	if !approx(bw[0].Weight, 0.5, 1e-9) || !approx(bw[1].Weight, 0.5, 1e-9) {
		t.Fatalf("byte weights = %v", bw)
	}
	if _, err := EqualSplit("bad", unit.Gbps(1)); err == nil {
		t.Fatal("no sizes should fail")
	}
	if _, err := EqualSplit("bad", unit.Gbps(1), 0); err == nil {
		t.Fatal("zero size should fail")
	}
}

func TestGeneratorDeterministicRate(t *testing.T) {
	p := Fixed("cbr", unit.Gbps(8), 1000)
	p.Arrival = ArrivalDeterministic
	g, err := NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	var last Packet
	bytes := 0.0
	for i := 0; i < n; i++ {
		last = g.Next()
		bytes += last.Size
	}
	rate := bytes / last.Time
	if !approx(rate, 1e9, 0.01) {
		t.Fatalf("achieved rate %v, want 1e9", rate)
	}
	if last.Seq != n-1 {
		t.Fatalf("Seq = %d", last.Seq)
	}
}

func TestGeneratorPoissonRate(t *testing.T) {
	p := Fixed("poisson", unit.Gbps(8), 1000)
	g, err := NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var last Packet
	bytes := 0.0
	for i := 0; i < n; i++ {
		last = g.Next()
		bytes += last.Size
	}
	rate := bytes / last.Time
	if !approx(rate, 1e9, 0.02) {
		t.Fatalf("achieved rate %v, want ~1e9", rate)
	}
}

func TestGeneratorMonotoneTime(t *testing.T) {
	p, _ := EqualSplit("mix", unit.Gbps(10), 64, 512, 1500)
	g, err := NewGenerator(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 1000; i++ {
		pkt := g.Next()
		if pkt.Time < prev {
			t.Fatal("time went backwards")
		}
		prev = pkt.Time
	}
}

func TestGeneratorSeedDeterminism(t *testing.T) {
	p, _ := EqualSplit("mix", unit.Gbps(10), 64, 1500)
	g1, _ := NewGenerator(p, 99)
	g2, _ := NewGenerator(p, 99)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	if g1.Profile().Name != "mix" {
		t.Fatal("Profile accessor broken")
	}
}

func TestGeneratorInvalidProfile(t *testing.T) {
	if _, err := NewGenerator(Profile{}, 1); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

func TestArrivalString(t *testing.T) {
	if ArrivalPoisson.String() != "poisson" || ArrivalDeterministic.String() != "deterministic" {
		t.Fatal("arrival names wrong")
	}
	if Arrival(9).String() != "arrival(9)" {
		t.Fatal("unknown arrival name wrong")
	}
}

func TestBurstDegreePreservesRate(t *testing.T) {
	p := Fixed("bursty", unit.Gbps(8), 1000)
	p.BurstDegree = 8
	g, err := NewGenerator(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300000
	var last Packet
	bytes := 0.0
	for i := 0; i < n; i++ {
		last = g.Next()
		bytes += last.Size
	}
	rate := bytes / last.Time
	if !approx(rate, 1e9, 0.03) {
		t.Fatalf("bursty rate %v, want ~1e9", rate)
	}
}

func TestBurstDegreeIncreasesVariance(t *testing.T) {
	gapVar := func(burst float64) float64 {
		p := Fixed("v", unit.Gbps(8), 1000)
		p.BurstDegree = burst
		g, err := NewGenerator(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100000
		prev := 0.0
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			pkt := g.Next()
			gap := pkt.Time - prev
			prev = pkt.Time
			sum += gap
			sumSq += gap * gap
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	plain := gapVar(0)
	bursty := gapVar(8)
	if !(bursty > 2*plain) {
		t.Fatalf("burstiness should inflate gap variance: %v vs %v", plain, bursty)
	}
}

func TestBurstDegreeValidation(t *testing.T) {
	p := Fixed("x", unit.Gbps(1), 64)
	p.BurstDegree = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative burst degree should fail")
	}
	p.BurstDegree = math.Inf(1)
	if err := p.Validate(); err == nil {
		t.Fatal("infinite burst degree should fail")
	}
	// Zero and one are both plain Poisson.
	for _, b := range []float64{0, 1} {
		p.BurstDegree = b
		if err := p.Validate(); err != nil {
			t.Fatalf("burst %v should validate: %v", b, err)
		}
	}
}
