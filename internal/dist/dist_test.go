package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lognic/internal/unit"
)

func TestFixed(t *testing.T) {
	d, err := Fixed(1500)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPoints() != 1 {
		t.Fatalf("NumPoints = %d, want 1", d.NumPoints())
	}
	if d.Mean() != 1500 {
		t.Fatalf("Mean = %v, want 1500", float64(d.Mean()))
	}
	if d.Min() != 1500 || d.Max() != 1500 {
		t.Fatal("Min/Max should equal the fixed size")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := d.Sample(rng); got != 1500 {
			t.Fatalf("Sample = %v, want 1500", float64(got))
		}
	}
}

func TestUniform(t *testing.T) {
	d, err := Uniform(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Weight-0.5) > 1e-12 {
			t.Fatalf("weight = %v, want 0.5", p.Weight)
		}
	}
	if got := float64(d.Mean()); got != 288 {
		t.Fatalf("Mean = %v, want 288", got)
	}
}

func TestNewSizeDistNormalizesAndMerges(t *testing.T) {
	d, err := NewSizeDist([]SizePoint{
		{Size: 64, Weight: 2},
		{Size: 512, Weight: 1},
		{Size: 64, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := d.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (merged duplicates)", len(pts))
	}
	if pts[0].Size != 64 || math.Abs(pts[0].Weight-0.75) > 1e-12 {
		t.Fatalf("pts[0] = %+v, want 64B @0.75", pts[0])
	}
	if pts[1].Size != 512 || math.Abs(pts[1].Weight-0.25) > 1e-12 {
		t.Fatalf("pts[1] = %+v, want 512B @0.25", pts[1])
	}
}

func TestNewSizeDistErrors(t *testing.T) {
	cases := [][]SizePoint{
		nil,
		{},
		{{Size: 0, Weight: 1}},
		{{Size: -5, Weight: 1}},
		{{Size: 64, Weight: -1}},
		{{Size: 64, Weight: 0}},
		{{Size: 64, Weight: math.NaN()}},
		{{Size: 64, Weight: math.Inf(1)}},
	}
	for i, pts := range cases {
		if _, err := NewSizeDist(pts); err == nil {
			t.Errorf("case %d: expected error for %+v", i, pts)
		}
	}
}

func TestSampleFrequencies(t *testing.T) {
	d, err := NewSizeDist([]SizePoint{
		{Size: 64, Weight: 0.2},
		{Size: 512, Weight: 0.3},
		{Size: 1500, Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := map[unit.Size]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	for _, p := range d.Points() {
		got := float64(counts[p.Size]) / n
		if math.Abs(got-p.Weight) > 0.01 {
			t.Errorf("size %v frequency %v, want ~%v", float64(p.Size), got, p.Weight)
		}
	}
}

func TestByteWeightsSumToOne(t *testing.T) {
	d, err := Uniform(64, 512, 1500)
	if err != nil {
		t.Fatal(err)
	}
	bw := d.ByteWeights()
	sum := 0.0
	for _, p := range bw {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("byte weights sum = %v, want 1", sum)
	}
	// Bigger packets must carry a larger byte share.
	if !(bw[2].Weight > bw[1].Weight && bw[1].Weight > bw[0].Weight) {
		t.Fatalf("byte weights not increasing with size: %+v", bw)
	}
}

func TestByteWeightsProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		sizes := []SizePoint{
			{Size: unit.Size(a%1400) + 64, Weight: 1},
			{Size: unit.Size(b%1400) + 64, Weight: 2},
			{Size: unit.Size(c%1400) + 64, Weight: 3},
		}
		d, err := NewSizeDist(sizes)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range d.ByteWeights() {
			if p.Weight < 0 {
				return false
			}
			sum += p.Weight
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanWithinSupportProperty(t *testing.T) {
	f := func(a, b uint16, wRaw uint8) bool {
		w := float64(wRaw%100) + 1
		d, err := NewSizeDist([]SizePoint{
			{Size: unit.Size(a%1436) + 64, Weight: w},
			{Size: unit.Size(b%1436) + 64, Weight: 101 - w},
		})
		if err != nil {
			return false
		}
		m := d.Mean()
		return m >= d.Min() && m <= d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 2.5)
	}
	got := sum / n
	if math.Abs(got-2.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2.5", got)
	}
	if Exponential(rng, 0) != 0 || Exponential(rng, -1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestPoissonInterArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 100000
	rate := 1000.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += PoissonInterArrival(rng, rate)
	}
	got := sum / n
	if math.Abs(got-1/rate) > 0.05/rate {
		t.Fatalf("mean inter-arrival = %v, want ~%v", got, 1/rate)
	}
	if !math.IsInf(PoissonInterArrival(rng, 0), 1) {
		t.Fatal("zero rate should yield +Inf gap")
	}
}

func TestPoissonCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.5, 4, 50, 2000} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(PoissonCount(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if PoissonCount(rng, 0) != 0 || PoissonCount(rng, -3) != 0 {
		t.Fatal("non-positive mean should yield 0 events")
	}
}

func TestStringFormat(t *testing.T) {
	d, err := Uniform(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "64B:50%,512B:50%" {
		t.Fatalf("String = %q", got)
	}
}

func TestSampleEmptyDist(t *testing.T) {
	var d SizeDist
	rng := rand.New(rand.NewSource(1))
	if got := d.Sample(rng); got != 0 {
		t.Fatalf("zero-value dist Sample = %v, want 0", float64(got))
	}
	if d.Min() != 0 || d.Max() != 0 {
		t.Fatal("zero-value dist Min/Max should be 0")
	}
}
