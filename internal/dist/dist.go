// Package dist implements the probability machinery LogNIC's traffic
// handling relies on: discrete packet-size distributions (the dist_size
// parameter from Table 2 of the paper), and exponential/Poisson samplers
// used by the discrete-event simulator to realize the M/M/1/N assumptions
// (Poisson request arrivals, exponential service times).
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"lognic/internal/unit"
)

// SizePoint is one (packet size, probability weight) pair of a discrete
// packet-size distribution.
type SizePoint struct {
	Size   unit.Size
	Weight float64
}

// SizeDist is a discrete distribution over packet sizes. The zero value is
// invalid; construct with NewSizeDist, Fixed, or Uniform.
type SizeDist struct {
	points []SizePoint // normalized, sorted by size, cumulative cached
	cum    []float64
}

// Fixed returns a distribution concentrated on a single packet size.
// The size must be positive.
func Fixed(size unit.Size) (SizeDist, error) {
	return NewSizeDist([]SizePoint{{Size: size, Weight: 1}})
}

// Uniform returns a distribution splitting probability equally across the
// given sizes — the shape of the PANIC traffic profiles in §4.6, which
// "split bandwidth across different-sized flows equally". All sizes must
// be positive and at least one is required.
func Uniform(sizes ...unit.Size) (SizeDist, error) {
	pts := make([]SizePoint, len(sizes))
	for i, s := range sizes {
		pts[i] = SizePoint{Size: s, Weight: 1}
	}
	return NewSizeDist(pts)
}

// NewSizeDist validates and normalizes a set of size points. Duplicate
// sizes are merged. Weights must be non-negative with a positive sum and
// sizes must be positive.
func NewSizeDist(points []SizePoint) (SizeDist, error) {
	if len(points) == 0 {
		return SizeDist{}, errors.New("dist: size distribution needs at least one point")
	}
	merged := map[unit.Size]float64{}
	total := 0.0
	for _, p := range points {
		if p.Size <= 0 {
			return SizeDist{}, fmt.Errorf("dist: non-positive packet size %v", float64(p.Size))
		}
		if p.Weight < 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
			return SizeDist{}, fmt.Errorf("dist: invalid weight %v for size %v", p.Weight, float64(p.Size))
		}
		merged[p.Size] += p.Weight
		total += p.Weight
	}
	if total <= 0 {
		return SizeDist{}, errors.New("dist: weights sum to zero")
	}
	out := make([]SizePoint, 0, len(merged))
	for s, w := range merged {
		if w == 0 {
			continue
		}
		out = append(out, SizePoint{Size: s, Weight: w / total})
	}
	if len(out) == 0 {
		return SizeDist{}, errors.New("dist: all weights zero")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	cum := make([]float64, len(out))
	acc := 0.0
	for i, p := range out {
		acc += p.Weight
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against float drift
	return SizeDist{points: out, cum: cum}, nil
}

// Points returns the normalized (size, weight) pairs sorted by size. The
// returned slice is a copy.
func (d SizeDist) Points() []SizePoint {
	out := make([]SizePoint, len(d.points))
	copy(out, d.points)
	return out
}

// NumPoints reports how many distinct sizes the distribution carries.
func (d SizeDist) NumPoints() int { return len(d.points) }

// Mean returns the expected packet size.
func (d SizeDist) Mean() unit.Size {
	m := 0.0
	for _, p := range d.points {
		m += p.Weight * float64(p.Size)
	}
	return unit.Size(m)
}

// Min and Max return the distribution's support bounds.
func (d SizeDist) Min() unit.Size {
	if len(d.points) == 0 {
		return 0
	}
	return d.points[0].Size
}

// Max returns the largest packet size with non-zero probability.
func (d SizeDist) Max() unit.Size {
	if len(d.points) == 0 {
		return 0
	}
	return d.points[len(d.points)-1].Size
}

// Sample draws a packet size using the provided RNG.
func (d SizeDist) Sample(rng *rand.Rand) unit.Size {
	if len(d.points) == 0 {
		return 0
	}
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.points) {
		i = len(d.points) - 1
	}
	return d.points[i].Size
}

// String renders the distribution like "64B:50%,512B:50%".
func (d SizeDist) String() string {
	var b strings.Builder
	for i, p := range d.points {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%.4g%%", p.Size, p.Weight*100)
	}
	return b.String()
}

// ByteWeights converts probability-by-packet weights into
// fraction-of-bytes weights: a 1500B packet carries more of the offered
// load than a 64B one. LogNIC's Extension #2 mixes per-size estimates using
// byte fractions when the metric is bandwidth.
func (d SizeDist) ByteWeights() []SizePoint {
	mean := float64(d.Mean())
	out := make([]SizePoint, len(d.points))
	for i, p := range d.points {
		out[i] = SizePoint{Size: p.Size, Weight: p.Weight * float64(p.Size) / mean}
	}
	return out
}

// Exponential draws an exponentially distributed value with the given mean
// using the provided RNG. It is the service-time distribution the paper's
// queueing derivation assumes.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// PoissonInterArrival draws the gap until the next arrival of a Poisson
// process with the given rate (events/second).
func PoissonInterArrival(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / rate
}

// PoissonCount draws the number of events of a Poisson process with the
// given expected count, via inversion for small means and a normal
// approximation beyond.
func PoissonCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 700 {
		// Normal approximation with continuity correction; exact inversion
		// would underflow exp(-mean).
		v := rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
