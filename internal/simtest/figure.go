package simtest

import "lognic/internal/experiments"

// FigureDigest canonically hashes a regenerated figure: id, title, axis
// labels, and every series' points in order, with full float bit patterns.
// A figure digest therefore pins the complete data table a generator
// emits, not a summary statistic of it.
func FigureDigest(f experiments.Figure) string {
	d := NewDigester()
	WriteFigure(d, f)
	return d.Sum()
}

// WriteFigure appends a canonical serialization of f to the digester.
func WriteFigure(d *Digester, f experiments.Figure) {
	d.Str("figure")
	d.Str(f.ID)
	d.Str(f.Title)
	d.Str(f.XLabel)
	d.Str(f.YLabel)
	d.Int(len(f.Series))
	for _, s := range f.Series {
		d.Str(s.Name)
		d.Int(len(s.Points))
		for _, p := range s.Points {
			d.F64(p.X)
			d.F64(p.Y)
			d.Str(p.Label)
		}
	}
}
